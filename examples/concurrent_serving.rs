//! Concurrent serving over one shared `DatasetIndex`: freeze the dataset
//! once, then answer a mixed request stream from several threads at once —
//! the deployment shape the two-tier API exists for.
//!
//!     cargo run --release --example concurrent_serving
//!     PANDORA_N=50000 PANDORA_SERVE_THREADS=8 cargo run --release --example concurrent_serving

use std::sync::Arc;
use std::time::Instant;

use pandora::data::synthetic::gaussian_blobs;
use pandora::exec::ExecCtx;
use pandora::hdbscan::{ClusterRequest, DatasetIndex};

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = env_or("PANDORA_N", 20_000);
    let threads = env_or("PANDORA_SERVE_THREADS", 4);
    let requests_per_thread = env_or("PANDORA_REQUESTS", 8);
    let (points, _) = gaussian_blobs(n, 3, 6, 120.0, 1.1, 42);

    // Tier 1: validate + freeze once. Everything in the index — kd-tree,
    // AoSoA leaf blocks, sorted k-NN rows up to minPts = 16 — is read-only
    // from here on, so one Arc serves every thread.
    let t = Instant::now();
    let index = Arc::new(DatasetIndex::freeze(points, 16).expect("finite synthetic data"));
    println!(
        "froze {} points in {:.1} ms (tree + rows for every minPts ≤ {})",
        index.len(),
        t.elapsed().as_secs_f64() * 1e3,
        index.max_min_pts()
    );

    // Tier 2: one cheap session per serving thread, mixed requests.
    let mix = [
        ClusterRequest::new().min_pts(2),
        ClusterRequest::new().min_pts(4).min_cluster_size(10),
        ClusterRequest::new().min_pts(8),
        ClusterRequest::new().min_pts(16).allow_single_cluster(true),
    ];
    let t = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let index = Arc::clone(&index);
            scope.spawn(move || {
                let mut session = index.session_with_ctx(ExecCtx::serial());
                for i in 0..requests_per_thread {
                    let request = &mix[(thread + i) % mix.len()];
                    match session.run(request) {
                        Ok(result) => println!(
                            "thread {thread}: minPts={:<2} mcs={:<2} -> {} clusters, {} noise",
                            request.min_pts,
                            request.min_cluster_size,
                            result.n_clusters(),
                            result.n_noise()
                        ),
                        Err(e) => println!("thread {thread}: rejected: {e}"),
                    }
                }
                // A bad request degrades one response, never the process.
                let err = session.run(&ClusterRequest::new().min_pts(0));
                assert!(err.is_err(), "min_pts = 0 must be rejected");
            });
        }
    });
    let total = threads * requests_per_thread;
    let spent = t.elapsed().as_secs_f64();
    println!(
        "\n{total} requests on {threads} threads over one shared index: \
         {spent:.2} s ({:.1} req/s)",
        total as f64 / spent
    );
}
