//! Per-linkage serving comparison — one frozen [`DatasetIndex`], four
//! [`Linkage`] requests against it.
//!
//! `Single` rides the Borůvka EMST fast path; `Complete` / `Average` /
//! `Ward` dispatch through the NN-chain engine (`Complete` and `Average`
//! over an O(n²) working matrix — ~n²/2 f32, 800 MB at n = 100k, so keep
//! `PANDORA_SCALE` modest — `Ward` over O(n) centroid sums). The metric
//! column shows each linkage's default: mutual reachability everywhere
//! except Ward, whose centroids only exist in coordinate space.
//!
//! ```bash
//! cargo run --release --example linkage_comparison       # 20k points
//! PANDORA_SCALE=5000 cargo run --release --example linkage_comparison
//! ```

use std::sync::Arc;
use std::time::Instant;

use pandora::data::synthetic::gaussian_blobs;
use pandora::hdbscan::{ClusterRequest, DatasetIndex};
use pandora::mst::Linkage;

fn main() {
    let n: usize = std::env::var("PANDORA_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let min_pts = 4usize;
    let (points, _) = gaussian_blobs(n, 3, 6, 200.0, 2.0, 42);
    println!("linkage comparison over n = {n} points (dim 3, minPts {min_pts})");

    // One substrate, many requests: the kd-tree, k-NN rows and point
    // storage are frozen once and shared by every linkage below.
    let t = Instant::now();
    let index = Arc::new(DatasetIndex::freeze(points, min_pts).expect("finite synthetic points"));
    let freeze_s = t.elapsed().as_secs_f64();
    let mut session = index.session();
    println!("  index frozen in {:.1} ms\n", freeze_s * 1e3);

    println!("  linkage   metric              time      clusters  noise  root height");
    for linkage in Linkage::ALL {
        let request = ClusterRequest::new().min_pts(min_pts).linkage(linkage);
        let metric = request.effective_metric(linkage);
        let t = Instant::now();
        let result = session.run(&request).expect("valid request");
        let spent = t.elapsed().as_secs_f64();
        // Edge weights are non-increasing in the index: entry 0 is the root
        // merge height.
        let root_h = result
            .dendrogram
            .edge_weight
            .first()
            .copied()
            .unwrap_or(0.0);
        println!(
            "  {:<8}  {:<18}  {:>8}  {:>8}  {:>5}  {root_h:>11.3}",
            linkage.name(),
            metric.name(),
            format!("{:.1}ms", spent * 1e3),
            result.n_clusters(),
            result.n_noise(),
        );
    }

    // The fast path is an identity, not an approximation: an explicit
    // single-linkage request and the default request are one answer.
    let explicit = session
        .run(
            &ClusterRequest::new()
                .min_pts(min_pts)
                .linkage(Linkage::Single),
        )
        .expect("single");
    let default = session
        .run(&ClusterRequest::new().min_pts(min_pts))
        .expect("default");
    assert_eq!(explicit.labels, default.labels);
    assert_eq!(explicit.dendrogram, default.dendrogram);
    println!("\n  (explicit single ≡ default request, bit for bit)");
}
