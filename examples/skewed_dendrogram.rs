//! Reproduces **Figure 3** of the paper: the dendrogram of a 40-point
//! sample from a 3-D Gaussian under the HDBSCAN\* mutual reachability
//! distance (minPts = 2) is already highly skewed — nothing like the
//! balanced tree a naive divide-and-conquer would hope for.
//!
//! ```sh
//! cargo run --release --example skewed_dendrogram
//! ```

use pandora::core::pandora as pandora_algo;
use pandora::core::{Dendrogram, SortedMst, INVALID};
use pandora::data::synthetic::normal;
use pandora::exec::ExecCtx;
use pandora::mst::{emst, EmstParams};

/// Renders the edge-node tree sideways (root left), one node per line.
fn render(d: &Dendrogram, mst: &SortedMst) {
    let children = d.edge_children();
    // Vertex children per edge.
    let mut vchildren: Vec<Vec<u32>> = vec![Vec::new(); d.n_edges()];
    for (v, &p) in d.vertex_parent.iter().enumerate() {
        vchildren[p as usize].push(v as u32);
    }
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    while let Some((e, depth)) = stack.pop() {
        println!(
            "{:indent$}├─ edge {e:>2}  d={:.3}  ({},{})",
            "",
            d.edge_weight[e as usize],
            mst.src[e as usize],
            mst.dst[e as usize],
            indent = depth * 2
        );
        for &v in &vchildren[e as usize] {
            println!("{:indent$}│   · point {v}", "", indent = depth * 2);
        }
        for c in children[e as usize] {
            if c != INVALID {
                stack.push((c, depth + 1));
            }
        }
    }
}

fn main() {
    let ctx = ExecCtx::threads();
    // 40 points from a 3-D standard normal, exactly as in Fig. 3.
    let points = normal(40, 3, 3);

    let edges = emst(&ctx, &points, &EmstParams::default()).edges;
    let mst = SortedMst::from_edges(&ctx, points.len(), &edges);
    let (dendro, stats) = pandora_algo::dendrogram_from_sorted(&ctx, &mst);

    render(&dendro, &mst);

    let n = dendro.n_edges();
    let ideal = (n as f64).log2();
    println!(
        "\nheight = {} over {} edge nodes; ideal (balanced) height = {:.1}; \
         skew = {:.1}",
        dendro.height(),
        n,
        ideal,
        dendro.skewness()
    );
    println!(
        "contraction levels used by PANDORA: {} (bound: ⌈log2(n+1)⌉ = {})",
        stats.n_levels,
        (n + 1).next_power_of_two().trailing_zeros()
    );
    println!(
        "\npaper's point: even a tiny Gaussian sample yields a strongly \
         skewed dendrogram — the common case PANDORA is built for."
    );
}
