//! Demonstrates the kernel-trace + device-model machinery: run PANDORA once
//! on this machine, then project the very same kernel sequence onto the
//! paper's three chips (64-core EPYC 7A53, MI250X GCD, A100).
//!
//! ```sh
//! PANDORA_SCALE=200000 cargo run --release --example device_projection
//! ```

use pandora::core::pandora as pandora_algo;
use pandora::data::seed_spreader::{Density, SeedSpreader};
use pandora::exec::device::DeviceModel;
use pandora::exec::ExecCtx;
use pandora::mst::{boruvka_mst_seeded, core_distances2, KdTree, MutualReachability};

fn main() {
    let n: usize = std::env::var("PANDORA_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(80_000);
    let points = SeedSpreader::new(n, 3, Density::Variable).generate(5);
    println!(
        "tracing PANDORA on {} points (VisualVar-style, 3-D)…",
        points.len()
    );

    let (ctx, tracer) = ExecCtx::threads().with_tracing();
    let tree = KdTree::build(&ctx, &points);
    let core2 = core_distances2(&ctx, &points, &tree, 2);
    let mut node_core2 = Vec::new();
    tree.min_core2_into(&core2, &mut node_core2);
    let metric = MutualReachability { core2: &core2 };
    let edges = boruvka_mst_seeded(&ctx, &points, &tree, &metric, None, &node_core2);
    tracer.reset(); // keep only the dendrogram kernels

    let t = std::time::Instant::now();
    let (_dendro, stats) = pandora_algo::dendrogram_with_stats(&ctx, points.len(), &edges);
    let host_s = t.elapsed().as_secs_f64();
    let trace = tracer.snapshot();

    println!(
        "\n{} kernel launches recorded across {} contraction levels",
        trace.len(),
        stats.n_levels
    );
    println!("host wall clock: {:.1} ms (this machine)", host_s * 1e3);

    println!(
        "\n{:<22} {:>10} {:>10} {:>10} {:>10}",
        "device (modeled)", "total", "sort", "contract", "expand"
    );
    for device in [
        DeviceModel::epyc_7a53_64c(),
        DeviceModel::mi250x_gcd(),
        DeviceModel::a100(),
    ] {
        let sim = device.simulate(&trace);
        println!(
            "{:<22} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.2}ms",
            sim.device,
            sim.total_s * 1e3,
            sim.phase_s("sort") * 1e3,
            sim.phase_s("contraction") * 1e3,
            sim.phase_s("expansion") * 1e3
        );
    }
    println!(
        "\nthe kernel sequence is identical in every row — only the per-kernel \
         cost model changes (see DESIGN.md §2 for the substitution argument)."
    );
}
