//! The paper's motivating workload (Fig. 1): HDBSCAN\* on a cosmology
//! point cloud. Uses the Soneira–Peebles proxy for HACC and prints the
//! stage breakdown that motivates PANDORA — on skewed data the dendrogram
//! stage dominates unless it, too, is parallel.
//!
//! ```sh
//! PANDORA_SCALE=100000 cargo run --release --example cosmology_clustering
//! ```

use pandora::core::baseline::dendrogram_union_find_mt;
use pandora::data::cosmology::SoneiraPeebles;
use pandora::hdbscan::{Hdbscan, HdbscanParams};

fn main() {
    let n: usize = std::env::var("PANDORA_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    let generator = SoneiraPeebles::with_target_size(n, 3);
    let points = generator.generate(1988);
    println!(
        "HACC proxy: Soneira–Peebles with {} halos, η={}, {} levels → {} points",
        generator.n_halos,
        generator.eta,
        generator.levels,
        points.len()
    );

    let params = HdbscanParams {
        min_pts: 2,
        min_cluster_size: 25,
        allow_single_cluster: false,
    };
    let result = Hdbscan::new(params).run(&points);

    let t = &result.timings;
    println!("\nstage breakdown (measured):");
    println!("  kd-tree build      {:>9.1} ms", t.tree_build_s * 1e3);
    println!("  core distances     {:>9.1} ms", t.core_s * 1e3);
    println!("  Borůvka EMST       {:>9.1} ms", t.mst_s * 1e3);
    println!(
        "  dendrogram (PANDORA) {:>7.1} ms   [sort {:.1} | contraction {:.1} | expansion {:.1}]",
        t.dendrogram_s * 1e3,
        result.pandora_stats.timings.sort_s * 1e3,
        result.pandora_stats.timings.contraction_s * 1e3,
        result.pandora_stats.timings.expansion_s * 1e3,
    );
    println!("  extraction         {:>9.1} ms", t.extract_s * 1e3);

    // The pre-PANDORA status quo: sequential union-find dendrogram.
    let edges: Vec<pandora::core::Edge> = (0..result.mst.n_edges())
        .map(|i| result.mst.edge(i))
        .collect();
    let (_, uf_sort, uf_pass) =
        dendrogram_union_find_mt(&pandora::exec::ExecCtx::threads(), points.len(), &edges);
    println!(
        "\nUnionFind-MT dendrogram on the same MST: {:.1} ms \
         (sort {:.1} + sequential pass {:.1})",
        (uf_sort + uf_pass) * 1e3,
        uf_sort * 1e3,
        uf_pass * 1e3
    );

    println!(
        "\ndendrogram skew (Imb) = {:.0}; height = {} over {} edges \
         (paper reports Imb 1e5 for Hacc37M)",
        result.dendrogram.skewness(),
        result.dendrogram.height(),
        result.dendrogram.n_edges()
    );
    println!(
        "clusters found: {} ({} noise points)",
        result.n_clusters(),
        result.n_noise()
    );
    let mut stabilities: Vec<(usize, f64)> = result
        .stabilities
        .iter()
        .copied()
        .enumerate()
        .skip(1)
        .collect();
    stabilities.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("most stable condensed clusters:");
    for (c, s) in stabilities.iter().take(5) {
        println!("  cluster {c}: stability {s:.1}");
    }
}
