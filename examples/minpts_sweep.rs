//! Engine-backed multi-`minPts` sweep — the paper's Fig. 15 workload
//! served the way a clustering service would: one [`HdbscanEngine`] per
//! dataset, many requests against it.
//!
//! Runs the sweep twice — once through a warm engine (tree built once, one
//! k-NN pass at the sweep maximum, all stage buffers recycled) and once as
//! four cold one-shot `run()` calls — verifies the results are identical,
//! and prints the measured amortization.
//!
//! ```bash
//! cargo run --release --example minpts_sweep          # 20k points
//! PANDORA_SCALE=50000 cargo run --release --example minpts_sweep
//! ```

use std::time::Instant;

use pandora::data::synthetic::gaussian_blobs;
use pandora::hdbscan::{Hdbscan, HdbscanParams};

fn main() {
    let n: usize = std::env::var("PANDORA_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let sweep = [2usize, 4, 8, 16];
    let (points, _) = gaussian_blobs(n, 3, 6, 200.0, 2.0, 42);
    let driver = Hdbscan::new(HdbscanParams::default());
    println!("minPts sweep {sweep:?} over n = {n} points (dim 3)");

    // Warm engine: shared kd-tree + one k-NN pass + pooled stage buffers.
    let t = Instant::now();
    let mut engine = driver.engine(&points);
    let swept = engine.sweep_min_pts(&sweep);
    let engine_s = t.elapsed().as_secs_f64();

    // Cold baseline: four independent one-shot pipelines.
    let t = Instant::now();
    let cold: Vec<_> = sweep
        .iter()
        .map(|&min_pts| {
            Hdbscan::new(HdbscanParams {
                min_pts,
                ..Default::default()
            })
            .run(&points)
        })
        .collect();
    let cold_s = t.elapsed().as_secs_f64();

    println!("\n  minPts  clusters  noise     MST weight");
    for (result, &min_pts) in swept.iter().zip(&sweep) {
        let w: f64 = result.mst.weight.iter().map(|&x| x as f64).sum();
        println!(
            "  {min_pts:>6}  {:>8}  {:>5}  {w:>13.2}",
            result.n_clusters(),
            result.n_noise()
        );
    }

    // The engine path must be an optimization, never a different answer.
    for (a, b) in swept.iter().zip(cold.iter()) {
        assert_eq!(a.labels, b.labels, "engine and one-shot labels diverged");
        assert_eq!(a.mst.weight, b.mst.weight);
    }

    println!(
        "\n  engine sweep: {:.1} ms   four cold runs: {:.1} ms   amortization: {:.2}x",
        engine_s * 1e3,
        cold_s * 1e3,
        cold_s / engine_s.max(1e-12)
    );
    println!("  (identical labels, MSTs and dendrograms on both paths)");
}
