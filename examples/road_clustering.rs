//! Single-linkage clustering of road-network points at multiple scales.
//!
//! Uses the dendrogram directly (the output PANDORA accelerates): cutting
//! it at increasing distance thresholds produces the full hierarchy of
//! spatial groupings, from individual road segments up to connected towns —
//! the "visual and interactive" use of dendrograms the paper's intro cites.
//!
//! ```sh
//! cargo run --release --example road_clustering
//! ```

use pandora::core::pandora as pandora_algo;
use pandora::core::SortedMst;
use pandora::data::trajectories::road_network;
use pandora::exec::ExecCtx;
use pandora::mst::{boruvka_mst, Euclidean, KdTree};

fn main() {
    let ctx = ExecCtx::threads();
    let points = road_network(20_000, 7);
    println!("clustering {} road-network points (2-D)", points.len());

    // Plain single linkage: Euclidean MST → dendrogram.
    let tree = KdTree::build(&ctx, &points);
    let edges = boruvka_mst(&ctx, &points, &tree, &Euclidean);
    let mst = SortedMst::from_edges(&ctx, points.len(), &edges);
    let (dendro, stats) = pandora_algo::dendrogram_from_sorted(&ctx, &mst);
    println!(
        "dendrogram built in {:.1} ms ({} levels, skew {:.0})",
        stats.timings.total() * 1e3,
        stats.n_levels,
        dendro.skewness()
    );

    // Scale sweep: cut the hierarchy at growing thresholds.
    println!(
        "\n{:>10}  {:>9}  {:>14}  {:>10}",
        "cut (m)", "clusters", "largest", "singletons"
    );
    for cut in [5.0f32, 15.0, 40.0, 100.0, 300.0, 1000.0] {
        let labels = dendro.cut(cut, &mst.src, &mst.dst);
        let k = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut sizes = vec![0usize; k];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        let largest = sizes.iter().copied().max().unwrap_or(0);
        let singletons = sizes.iter().filter(|&&s| s == 1).count();
        println!("{cut:>10.0}  {k:>9}  {largest:>14}  {singletons:>10}");
    }
    println!(
        "\nreading: at small cuts every road fragment is its own cluster; as \
         the threshold passes the road spacing the network coalesces — the \
         hierarchy in one structure, no re-clustering per scale."
    );
}
