//! Extension: approximate HDBSCAN\* via the k-NN-graph MST.
//!
//! The exact mutual-reachability EMST (what the paper computes) is the most
//! expensive stage at scale. A common engineering shortcut runs Kruskal on
//! the k-NN graph and patches the forest exactly; this example measures
//! what that buys and costs on a clustered dataset: MST weight ratio,
//! dendrogram agreement and wall-clock.
//!
//! ```sh
//! cargo run --release --example approx_vs_exact
//! ```

use std::time::Instant;

use pandora::core::baseline::dendrogram_union_find;
use pandora::core::SortedMst;
use pandora::data::seed_spreader::{Density, SeedSpreader};
use pandora::exec::ExecCtx;
use pandora::mst::kruskal::total_weight;
use pandora::mst::{
    boruvka_mst_seeded, core_distances2, knn_graph_mst, KdTree, MutualReachability,
};

fn main() {
    let ctx = ExecCtx::threads();
    let n: usize = std::env::var("PANDORA_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000);
    let points = SeedSpreader::new(n, 2, Density::Variable).generate(8);
    println!(
        "approximate vs exact mutual-reachability MST, n = {}",
        points.len()
    );

    let tree = KdTree::build(&ctx, &points);
    let core2 = core_distances2(&ctx, &points, &tree, 4);
    let mut node_core2 = Vec::new();
    tree.min_core2_into(&core2, &mut node_core2);
    let metric = MutualReachability { core2: &core2 };

    let t = Instant::now();
    let exact_edges = boruvka_mst_seeded(&ctx, &points, &tree, &metric, None, &node_core2);
    let exact_s = t.elapsed().as_secs_f64();
    let exact_weight = total_weight(&exact_edges);
    let exact_mst = SortedMst::from_edges(&ctx, points.len(), &exact_edges);
    let exact_dendro = dendrogram_union_find(&exact_mst);

    println!(
        "\n{:>4} {:>12} {:>12} {:>14} {:>12}",
        "k", "time", "speedup", "weight ratio", "height Δ"
    );
    println!(
        "{:>4} {:>11.0}ms {:>12} {:>14} {:>12}",
        "∞",
        exact_s * 1e3,
        "1.0x",
        "1.000000",
        "0"
    );
    for k in [2usize, 4, 8, 16] {
        let t = Instant::now();
        let approx_edges = knn_graph_mst(&ctx, &points, &tree, &metric, k, &node_core2);
        let approx_s = t.elapsed().as_secs_f64();
        let ratio = total_weight(&approx_edges) / exact_weight;
        let approx_mst = SortedMst::from_edges(&ctx, points.len(), &approx_edges);
        let approx_dendro = dendrogram_union_find(&approx_mst);
        let height_delta = approx_dendro.height() as i64 - exact_dendro.height() as i64;
        println!(
            "{k:>4} {:>11.0}ms {:>11.1}x {ratio:>14.6} {height_delta:>12}",
            approx_s * 1e3,
            exact_s / approx_s,
        );
    }
    println!(
        "\nreading: by k≈8 the k-NN-graph MST is within a fraction of a \
         percent of the exact weight at a fraction of the cost; the \
         dendrogram changes only in the lightest merges. The paper's exact \
         EMST remains the reference — this is the documented approximate \
         mode for scale."
    );
}
