//! Extension (paper §2.3.4 / future work): image morphological trees via
//! PANDORA.
//!
//! Single-linkage variants used in image analysis (max-tree, α-tree,
//! component tree) are dendrograms of the image's 4-neighbour grid graph
//! with dissimilarity edge weights. The paper notes its algorithm "can be
//! modified to work for these problems" — and indeed no modification is
//! needed: build the grid MST (Kruskal; the grid graph is already sparse)
//! and hand it to PANDORA. This reproduces the α-tree (constrained
//! connectivity of Soille, the paper's [42]) of a synthetic image.
//!
//! ```sh
//! cargo run --release --example image_component_tree
//! ```

use pandora::core::pandora as pandora_algo;
use pandora::core::{Edge, SortedMst};
use pandora::exec::ExecCtx;
use pandora::mst::kruskal::kruskal_mst;

const W: usize = 96;
const H: usize = 64;

/// Synthetic test card: flat regions, a gradient ramp and speckle noise.
fn synthetic_image() -> Vec<f32> {
    let mut img = vec![0.0f32; W * H];
    let mut state = 0x1234_5678u64;
    let mut rand01 = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1 << 24) as f32
    };
    for y in 0..H {
        for x in 0..W {
            let v = if x < W / 3 {
                10.0 // flat dark region
            } else if x < 2 * W / 3 {
                10.0 + 80.0 * (x - W / 3) as f32 / (W / 3) as f32 // ramp
            } else if (x / 8 + y / 8) % 2 == 0 {
                200.0 // bright checker
            } else {
                40.0 // dark checker
            };
            img[y * W + x] = v + rand01() * 2.0;
        }
    }
    img
}

fn main() {
    let ctx = ExecCtx::threads();
    let img = synthetic_image();
    println!("α-tree of a {W}×{H} synthetic image ({} pixels)", W * H);

    // 4-connectivity grid edges, weight = |Δ intensity| (the α-tree
    // dissimilarity).
    let mut edges = Vec::with_capacity(2 * W * H);
    for y in 0..H {
        for x in 0..W {
            let p = (y * W + x) as u32;
            if x + 1 < W {
                edges.push(Edge::new(
                    p,
                    p + 1,
                    (img[p as usize] - img[p as usize + 1]).abs(),
                ));
            }
            if y + 1 < H {
                let q = p + W as u32;
                edges.push(Edge::new(p, q, (img[p as usize] - img[q as usize]).abs()));
            }
        }
    }
    println!("grid graph: {} edges", edges.len());

    // MST of the grid, then the dendrogram = the α-tree hierarchy.
    let mst_edges = kruskal_mst(&ctx, W * H, &edges);
    let mst = SortedMst::from_edges(&ctx, W * H, &mst_edges);
    let (tree, stats) = pandora_algo::dendrogram_from_sorted(&ctx, &mst);
    println!(
        "α-tree built in {:.1} ms ({} contraction levels, height {}, skew {:.1})",
        stats.timings.total() * 1e3,
        stats.n_levels,
        tree.height(),
        tree.skewness()
    );

    // Flat zones at increasing α: count of connected components whose
    // internal contrast stays ≤ α.
    println!("\n{:>6}  {:>10}  {:>14}", "alpha", "segments", "largest");
    for alpha in [1.0f32, 3.0, 10.0, 30.0, 90.0] {
        let labels = tree.cut(alpha, &mst.src, &mst.dst);
        let k = labels.iter().copied().max().unwrap() as usize + 1;
        let mut sizes = vec![0usize; k];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        println!(
            "{alpha:>6.1}  {k:>10}  {:>14}",
            sizes.iter().copied().max().unwrap_or(0)
        );
    }
    println!(
        "\nreading: α below the noise amplitude keeps every pixel separate; \
         α past the noise merges the flat regions; the ramp fuses only once \
         α exceeds its local step — the α-tree in one pass, no thresholds \
         chosen in advance."
    );
}
