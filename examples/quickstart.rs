//! Quickstart: cluster a 2-D mixture with HDBSCAN\* and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pandora::data::synthetic::gaussian_blobs;
use pandora::hdbscan::{Hdbscan, HdbscanParams};

fn main() {
    // 2 000 points in five well-separated Gaussian blobs.
    let (points, truth) = gaussian_blobs(2_000, 2, 5, 60.0, 1.0, 42);
    println!(
        "clustering {} points in {} dimensions (5 planted blobs)",
        points.len(),
        points.dim()
    );

    let params = HdbscanParams {
        min_pts: 4,
        min_cluster_size: 20,
        allow_single_cluster: false,
    };
    let result = Hdbscan::new(params).run(&points);

    println!(
        "\nfound {} clusters, {} noise points",
        result.n_clusters(),
        result.n_noise()
    );
    println!(
        "pipeline: emst {:.1}ms | dendrogram {:.1}ms | extract {:.1}ms",
        result.timings.emst_s() * 1e3,
        result.timings.dendrogram_s * 1e3,
        result.timings.extract_s * 1e3,
    );
    println!(
        "dendrogram: height {}, skew {:.1}, {} contraction levels",
        result.dendrogram.height(),
        result.dendrogram.skewness(),
        result.pandora_stats.n_levels,
    );

    // Cluster sizes.
    let mut sizes = vec![0usize; result.n_clusters()];
    for &l in &result.labels {
        if l >= 0 {
            sizes[l as usize] += 1;
        }
    }
    for (c, s) in sizes.iter().enumerate() {
        println!("  cluster {c}: {s} points");
    }

    // Agreement with the planted labels (pairwise, sampled).
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in (0..points.len()).step_by(13) {
        for j in (i + 1..points.len()).step_by(29) {
            if result.labels[i] < 0 || result.labels[j] < 0 {
                continue;
            }
            total += 1;
            if (truth[i] == truth[j]) == (result.labels[i] == result.labels[j]) {
                agree += 1;
            }
        }
    }
    println!(
        "\npairwise agreement with planted clustering: {:.1}% ({agree}/{total} pairs)",
        100.0 * agree as f64 / total as f64
    );
}
