//! HDBSCAN\* result edge cases through the full pipeline: degenerate point
//! counts (n ∈ {0, 1, 2}), extreme `cut` thresholds, oversized
//! `min_cluster_size`, and `allow_single_cluster` — on both the one-shot
//! driver and the engine path.

use pandora::exec::ExecCtx;
use pandora::hdbscan::{Hdbscan, HdbscanParams, HdbscanResult};
use pandora::mst::PointSet;

fn run(points: &PointSet, params: HdbscanParams) -> HdbscanResult {
    Hdbscan::with_ctx(params, ExecCtx::serial()).run(points)
}

#[test]
fn empty_point_set() {
    let points = PointSet::new(vec![], 2);
    let result = run(&points, HdbscanParams::default());
    assert_eq!(result.n_clusters(), 0);
    assert_eq!(result.n_noise(), 0);
    assert!(result.labels.is_empty());
    assert!(result.probabilities.is_empty());
    assert!(result.mst.n_edges() == 0);
    // Cuts of an empty hierarchy are empty labelings, not panics.
    assert!(result.cut(0.0).is_empty());
    assert!(result.cut(f32::INFINITY).is_empty());
}

#[test]
fn single_point() {
    let points = PointSet::new(vec![1.5, -2.0], 2);
    let result = run(&points, HdbscanParams::default());
    assert_eq!(result.labels, vec![-1], "one point is noise, not a cluster");
    assert_eq!(result.probabilities, vec![0.0]);
    assert_eq!(result.n_clusters(), 0);
    // A singleton is its own component at any threshold.
    assert_eq!(result.cut(0.0), vec![0]);
    assert_eq!(result.cut(f32::INFINITY), vec![0]);
}

#[test]
fn two_points() {
    let points = PointSet::new(vec![0.0, 0.0, 3.0, 4.0], 2);
    let result = run(
        &points,
        HdbscanParams {
            min_cluster_size: 2,
            ..Default::default()
        },
    );
    assert_eq!(result.mst.n_edges(), 1);
    assert_eq!(result.mst.weight[0], 5.0);
    // Without allow_single_cluster the root is never selected: all noise.
    assert_eq!(result.labels, vec![-1, -1]);
    // Threshold 0 separates them; ∞ joins them.
    assert_eq!(result.cut(0.0), vec![0, 1]);
    assert_eq!(result.cut(f32::INFINITY), vec![0, 0]);
    // Exactly at the merge distance the pair is one component.
    assert_eq!(result.cut(5.0), vec![0, 0]);
}

#[test]
fn two_duplicate_points_cut_at_zero() {
    // Zero-weight edge: a threshold-0 cut must keep the duplicates merged
    // (cut removes strictly-heavier edges only).
    let points = PointSet::new(vec![1.0, 1.0, 1.0, 1.0], 2);
    let result = run(&points, HdbscanParams::default());
    assert_eq!(result.mst.weight, vec![0.0]);
    assert_eq!(result.cut(0.0), vec![0, 0]);
}

#[test]
fn min_cluster_size_exceeding_n_yields_all_noise() {
    // 30 points in one tight blob, but no cluster may have fewer than 100
    // members: nothing is selectable, everything is noise.
    let coords: Vec<f32> = (0..30).flat_map(|i| [i as f32 * 0.01, 0.0]).collect();
    let points = PointSet::new(coords, 2);
    let result = run(
        &points,
        HdbscanParams {
            min_cluster_size: 100,
            ..Default::default()
        },
    );
    assert_eq!(result.n_clusters(), 0);
    assert_eq!(result.n_noise(), 30);
    assert!(result.probabilities.iter().all(|&p| p == 0.0));
    // The single-linkage hierarchy is still intact underneath.
    assert_eq!(result.cut(f32::INFINITY).iter().max(), Some(&0));
}

#[test]
fn allow_single_cluster_recovers_one_blob() {
    // 8 points with min_cluster_size 5: a split would need ≥ 5 points on
    // both sides (≥ 10 total), so no condensed split can survive and the
    // root is the only candidate cluster.
    let coords: Vec<f32> = (0..8).flat_map(|i| [i as f32 * 0.01, 0.0]).collect();
    let points = PointSet::new(coords, 2);
    let strict = run(&points, HdbscanParams::default());
    // The default never selects the root: everything is noise...
    assert_eq!(strict.n_clusters(), 0);
    assert_eq!(strict.n_noise(), 8);
    let single = run(
        &points,
        HdbscanParams {
            allow_single_cluster: true,
            ..Default::default()
        },
    );
    // ...while allow_single_cluster labels every point with the root.
    assert_eq!(single.n_clusters(), 1);
    assert!(single.labels.iter().all(|&l| l == 0));
    assert!(single
        .probabilities
        .iter()
        .all(|&p| (0.0..=1.0).contains(&p)));
}

#[test]
fn engine_handles_degenerate_sets_like_the_one_shot_path() {
    for coords in [vec![], vec![1.0, 2.0], vec![0.0, 0.0, 1.0, 0.0]] {
        let points = PointSet::new(coords, 2);
        let n = points.len();
        let driver = Hdbscan::with_ctx(HdbscanParams::default(), ExecCtx::serial());
        let mut engine = driver.engine(&points);
        // min_pts capped at n (the degenerate sets accept any min_pts for
        // n ≤ 1; two points cap the sweep at 2).
        let sweep: Vec<usize> = [1usize, 2]
            .iter()
            .map(|&m| m.max(1).min(n.max(1)))
            .collect();
        let swept = engine.sweep_min_pts(&sweep);
        for (result, &min_pts) in swept.iter().zip(&sweep) {
            let one_shot = Hdbscan::with_ctx(
                HdbscanParams {
                    min_pts,
                    ..Default::default()
                },
                ExecCtx::serial(),
            )
            .run(&points);
            assert_eq!(result.labels, one_shot.labels, "n={n} m={min_pts}");
            assert_eq!(result.mst.weight, one_shot.mst.weight);
            assert_eq!(result.core2, one_shot.core2);
        }
    }
}

#[test]
#[should_panic(expected = "exceeds the number of points")]
fn min_pts_above_n_panics_through_the_pipeline() {
    let points = PointSet::new(vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0], 2);
    let _ = run(
        &points,
        HdbscanParams {
            min_pts: 4,
            ..Default::default()
        },
    );
}
