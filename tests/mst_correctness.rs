//! Borůvka EMST validated against the dense Prim oracle across dataset
//! families, metrics and execution contexts.

use pandora::core::SortedMst;
use pandora::data::all_datasets;
use pandora::exec::ExecCtx;
use pandora::mst::kruskal::{kruskal_mst, total_weight};
use pandora::mst::prim::prim_mst;
use pandora::mst::{
    boruvka_mst, boruvka_mst_seeded, core_distances2, Euclidean, KdTree, MutualReachability,
};

#[test]
fn boruvka_matches_prim_across_families() {
    let ctx = ExecCtx::threads();
    for spec in all_datasets() {
        let points = spec.generate(700, 3);
        let tree = KdTree::build(&ctx, &points);
        let got = boruvka_mst(&ctx, &points, &tree, &Euclidean);
        assert_eq!(got.len(), points.len() - 1, "{}", spec.name);
        let expect = prim_mst(&points, &Euclidean);
        let (wa, wb) = (total_weight(&got), total_weight(&expect));
        assert!(
            (wa - wb).abs() <= 1e-3 * wb.max(1.0),
            "{}: Borůvka {wa} vs Prim {wb}",
            spec.name
        );
    }
}

#[test]
fn boruvka_matches_prim_under_mutual_reachability() {
    let ctx = ExecCtx::threads();
    for (name, min_pts) in [("Hacc37M", 4usize), ("VisualVar10M2D", 8), ("Pamap2", 16)] {
        let spec = pandora::data::by_name(name).unwrap();
        let points = spec.generate(600, 21);
        let tree = KdTree::build(&ctx, &points);
        let core2 = core_distances2(&ctx, &points, &tree, min_pts);
        let mut node_core2 = Vec::new();
        tree.min_core2_into(&core2, &mut node_core2);
        let metric = MutualReachability { core2: &core2 };
        let got = boruvka_mst_seeded(&ctx, &points, &tree, &metric, None, &node_core2);
        let expect = prim_mst(&points, &metric);
        let (wa, wb) = (total_weight(&got), total_weight(&expect));
        assert!(
            (wa - wb).abs() <= 1e-3 * wb.max(1.0),
            "{name} minPts={min_pts}: {wa} vs {wb}"
        );
    }
}

#[test]
fn boruvka_output_is_a_spanning_tree() {
    let ctx = ExecCtx::threads();
    let points = pandora::data::by_name("Normal100M2D")
        .unwrap()
        .generate(5_000, 8);
    let tree = KdTree::build(&ctx, &points);
    let edges = boruvka_mst(&ctx, &points, &tree, &Euclidean);
    let mst = SortedMst::from_edges(&ctx, points.len(), &edges);
    mst.validate_tree().unwrap();
}

#[test]
fn kruskal_agrees_with_boruvka_on_dense_graph() {
    // Build the complete graph over a few points and feed it to Kruskal;
    // compare with Borůvka on the same points.
    let ctx = ExecCtx::serial();
    let points = pandora::data::synthetic::uniform(120, 2, 5);
    let mut graph = Vec::new();
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            graph.push(pandora::core::Edge::new(
                i as u32,
                j as u32,
                points.dist2(i, j).sqrt(),
            ));
        }
    }
    let via_kruskal = kruskal_mst(&ctx, points.len(), &graph);
    let tree = KdTree::build(&ctx, &points);
    let via_boruvka = boruvka_mst(&ctx, &points, &tree, &Euclidean);
    let (wa, wb) = (total_weight(&via_kruskal), total_weight(&via_boruvka));
    assert!((wa - wb).abs() <= 1e-3 * wb.max(1.0), "{wa} vs {wb}");
}
