//! Property tests for the newer substrate and algorithm pieces: partition,
//! histogram, radix pairs, the mixed baseline, single-level expansion and
//! the k-NN-graph MST.

use proptest::prelude::*;

use pandora::core::baseline::{dendrogram_mixed, dendrogram_union_find};
use pandora::core::single_level::dendrogram_single_level;
use pandora::core::{Edge, SortedMst};
use pandora::exec::histogram::histogram;
use pandora::exec::partition::partition_indices;
use pandora::exec::radix::par_radix_sort_pairs;
use pandora::exec::ExecCtx;

fn tree_strategy() -> impl Strategy<Value = (usize, Vec<Edge>)> {
    (2usize..300).prop_flat_map(|n| {
        let edges = (1..n)
            .map(|v| {
                (0..v, 0u32..32)
                    .prop_map(move |(parent, w)| Edge::new(parent as u32, v as u32, w as f32 * 0.5))
            })
            .collect::<Vec<_>>();
        edges.prop_map(move |e| (n, e))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partition_is_a_stable_split(flags in prop::collection::vec(any::<bool>(), 0..50_000)) {
        let ctx = ExecCtx::threads();
        let n = flags.len();
        let flags_ref = &flags;
        let (yes, no) = partition_indices(&ctx, n, |i| flags_ref[i]);
        prop_assert_eq!(yes.len() + no.len(), n);
        prop_assert!(yes.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(no.windows(2).all(|w| w[0] < w[1]));
        for &i in &yes {
            prop_assert!(flags[i as usize]);
        }
        for &i in &no {
            prop_assert!(!flags[i as usize]);
        }
    }

    #[test]
    fn histogram_counts_everything(keys in prop::collection::vec(0usize..32, 0..40_000)) {
        let ctx = ExecCtx::threads();
        let keys_ref = &keys;
        let hist = histogram(&ctx, keys.len(), 32, |i| keys_ref[i]);
        prop_assert_eq!(hist.iter().sum::<u64>() as usize, keys.len());
        for (bin, &count) in hist.iter().enumerate() {
            let expect = keys.iter().filter(|&&k| k == bin).count() as u64;
            prop_assert_eq!(count, expect);
        }
    }

    #[test]
    fn radix_pairs_keep_key_value_binding(
        pairs in prop::collection::vec((any::<u64>(), any::<u32>()), 0..40_000)
    ) {
        let ctx = ExecCtx::threads();
        let mut keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
        let mut values: Vec<u32> = pairs.iter().map(|&(_, v)| v).collect();
        par_radix_sort_pairs(&ctx, &mut keys, &mut values);
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // The multiset of (key, value) pairs is preserved.
        let mut got: Vec<(u64, u32)> = keys.into_iter().zip(values).collect();
        let mut expect = pairs;
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn mixed_baseline_matches_union_find((n, edges) in tree_strategy()) {
        let ctx = ExecCtx::serial();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let expect = dendrogram_union_find(&mst);
        for fraction in [0.1f64, 0.5] {
            prop_assert_eq!(dendrogram_mixed(&ctx, &mst, fraction), expect.clone());
        }
    }

    #[test]
    fn single_level_matches_union_find((n, edges) in tree_strategy()) {
        let ctx = ExecCtx::serial();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        prop_assert_eq!(dendrogram_single_level(&ctx, &mst), dendrogram_union_find(&mst));
    }

    #[test]
    fn linkage_matrix_is_well_formed((n, edges) in tree_strategy()) {
        let ctx = ExecCtx::serial();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let d = dendrogram_union_find(&mst);
        let z = d.to_linkage();
        prop_assert_eq!(z.len(), n - 1);
        for w in z.windows(2) {
            prop_assert!(w[0].2 <= w[1].2);
        }
        prop_assert_eq!(z.last().unwrap().3 as usize, n);
    }
}

#[test]
fn knn_graph_mst_is_spanning_on_clusters() {
    use pandora::data::synthetic::gaussian_blobs;
    use pandora::mst::{knn_graph_mst, Euclidean, KdTree};
    let ctx = ExecCtx::threads();
    let (points, _) = gaussian_blobs(800, 2, 4, 500.0, 0.5, 3);
    let tree = KdTree::build(&ctx, &points);
    for k in [1usize, 3, 8] {
        let edges = knn_graph_mst(&ctx, &points, &tree, &Euclidean, k, &[]);
        let mst = SortedMst::from_edges(&ctx, points.len(), &edges);
        mst.validate_tree().unwrap();
        // Exactly 3 long bridges between the 4 far-apart blobs.
        let bridges = edges.iter().filter(|e| e.w > 100.0).count();
        assert_eq!(bridges, 3, "k={k}");
    }
}
