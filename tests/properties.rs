//! Property-based tests (proptest) for the paper's invariants.

use proptest::prelude::*;

use pandora::core::baseline::dendrogram_union_find;
use pandora::core::levels::build_hierarchy;
use pandora::core::pandora as pandora_algo;
use pandora::core::validate::check_lcda_theorem;
use pandora::core::{Edge, SortedMst};
use pandora::exec::scan::{exclusive_scan_in_place, seq_exclusive_scan};
use pandora::exec::sort::par_sort_by_key;
use pandora::exec::ExecCtx;

/// Strategy: a random tree as (n_vertices, attachment choices, weights).
///
/// Vertex `v ≥ 1` attaches to a vertex in `0..v`; weights may repeat to
/// exercise the tie-break.
fn tree_strategy() -> impl Strategy<Value = (usize, Vec<Edge>)> {
    (2usize..400).prop_flat_map(|n| {
        let edges = (1..n)
            .map(|v| {
                (0..v, 0u32..64).prop_map(move |(parent, w10)| {
                    Edge::new(parent as u32, v as u32, w10 as f32 / 4.0)
                })
            })
            .collect::<Vec<_>>();
        edges.prop_map(move |e| (n, e))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pandora_always_matches_union_find((n, edges) in tree_strategy()) {
        let ctx = ExecCtx::serial();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let (got, _) = pandora_algo::dendrogram_from_sorted(&ctx, &mst);
        got.validate().unwrap();
        let expect = dendrogram_union_find(&mst);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn contraction_bounds_hold((n, edges) in tree_strategy()) {
        let ctx = ExecCtx::serial();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let h = build_hierarchy(&ctx, &mst);
        // Level count bound (paper §4.2): ⌈log2(n+1)⌉ contractions.
        let n_edges = mst.n_edges();
        prop_assert!(h.n_levels() <= (n_edges + 2).ilog2() as usize + 2);
        // α bound per level: n_α ≤ (n_level − 1)/2.
        for (l, count) in h.alpha_counts().iter().enumerate() {
            let level_edges = h.trees[l].n_edges();
            prop_assert!(level_edges == 0 || *count <= (level_edges - 1) / 2);
        }
        // Level sizes strictly decrease.
        for w in h.trees.windows(2) {
            prop_assert!(w[1].n_edges() < w[0].n_edges());
        }
    }

    #[test]
    fn lcda_theorem_on_random_trees((n, edges) in tree_strategy()) {
        let ctx = ExecCtx::serial();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let (d, _) = pandora_algo::dendrogram_from_sorted(&ctx, &mst);
        // Theorem 1: LCDA(a,b) = heaviest edge on the tree path a..b.
        check_lcda_theorem(&mst, &d, 16, 0xC0FFEE);
    }

    #[test]
    fn dendrogram_parent_indices_decrease((n, edges) in tree_strategy()) {
        let ctx = ExecCtx::serial();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let (d, _) = pandora_algo::dendrogram_from_sorted(&ctx, &mst);
        for e in 1..d.n_edges() {
            let p = d.edge_parent[e];
            prop_assert!(p < e as u32);
            // Parent is at least as heavy.
            prop_assert!(d.edge_weight[p as usize] >= d.edge_weight[e]);
        }
    }

    #[test]
    fn cluster_sizes_partition_points((n, edges) in tree_strategy()) {
        let ctx = ExecCtx::serial();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let (d, _) = pandora_algo::dendrogram_from_sorted(&ctx, &mst);
        let sizes = d.cluster_sizes();
        prop_assert_eq!(sizes[0] as usize, n);
        // Every edge's size = sum of children sizes (+ vertex children).
        let children = d.edge_children();
        let mut vertex_count = vec![0u32; d.n_edges()];
        for &p in &d.vertex_parent {
            vertex_count[p as usize] += 1;
        }
        for e in 0..d.n_edges() {
            let mut expect = vertex_count[e];
            for c in children[e] {
                if c != pandora::core::INVALID {
                    expect += sizes[c as usize];
                }
            }
            prop_assert_eq!(sizes[e], expect);
        }
    }

    #[test]
    fn parallel_scan_matches_sequential(xs in prop::collection::vec(0u64..1000, 0..60_000)) {
        let ctx = ExecCtx::threads();
        let mut par = xs.clone();
        let total_par = exclusive_scan_in_place(&ctx, &mut par);
        let mut seq = xs;
        let total_seq = seq_exclusive_scan(&mut seq);
        prop_assert_eq!(total_par, total_seq);
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn parallel_sort_matches_std(xs in prop::collection::vec(any::<u32>(), 0..60_000)) {
        let ctx = ExecCtx::threads();
        let mut par: Vec<u32> = xs.clone();
        par_sort_by_key(&ctx, &mut par, |&x| x);
        let mut expect = xs;
        expect.sort_unstable();
        prop_assert_eq!(par, expect);
    }

    #[test]
    fn radix_sort_matches_std(xs in prop::collection::vec(any::<u64>(), 0..60_000)) {
        let ctx = ExecCtx::threads();
        let mut par = xs.clone();
        pandora::exec::radix::par_radix_sort_u64(&ctx, &mut par);
        let mut expect = xs;
        expect.sort_unstable();
        prop_assert_eq!(par, expect);
    }
}
