//! Census cross-check (differential satellite): the §4.2 structural
//! accounting must agree *between dendrogram backends* on random trees —
//! the leaf/α identity holds level by level on the α-contraction
//! hierarchy, and the chain-length distribution derived from each
//! backend's dendrogram is identical (the dendrogram is canonical, so any
//! divergence is a backend bug, not a modeling choice).
//!
//! Reuses the adversarial MST strategy from `common` (replayable via
//! `PROPTEST_CASE=<index>`).

mod common;

use common::mst_strategy;
use proptest::prelude::*;

use pandora::core::census::{chain_lengths, hierarchy_census};
use pandora::core::levels::build_hierarchy;
use pandora::core::{DendrogramBackend, DendrogramWorkspace, SortedMst};
use pandora::exec::ExecCtx;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Leaf/α identity (`n_leaf = n_α + 1`) per contraction level, and a
    /// chain-length distribution that every backend reproduces exactly.
    #[test]
    fn census_agrees_between_backends(case in mst_strategy()) {
        let ctx = ExecCtx::serial();
        let mst = SortedMst::from_edges(&ctx, case.n_vertices, &case.edges);

        // §4.2 identity on the α-contraction hierarchy itself.
        let hierarchy = build_hierarchy(&ctx, &mst);
        for (level, census) in hierarchy_census(&ctx, &hierarchy).iter().enumerate() {
            prop_assert!(
                census.leaf_alpha_identity_holds(),
                "leaf/alpha identity broken at level {}: case[{}]",
                level, &case.params
            );
        }

        // Chain-length distribution: identical across backends and
        // contexts because the dendrogram is canonical.
        let mut reference: Option<Vec<usize>> = None;
        for backend in DendrogramBackend::ALL {
            for ctx in [ExecCtx::serial(), ExecCtx::threads()] {
                let mut ws = DendrogramWorkspace::new();
                let (dendro, _) = backend.build(&ctx, &mst, &mut ws);
                let lengths = chain_lengths(&dendro);
                // Every edge sits in exactly one chain.
                prop_assert_eq!(
                    lengths.iter().sum::<usize>(),
                    mst.n_edges(),
                    "chain lengths must partition the edges: backend={} case[{}]",
                    backend.name(), &case.params
                );
                match &reference {
                    None => reference = Some(lengths),
                    Some(expect) => prop_assert_eq!(
                        &lengths, expect,
                        "chain-length distribution diverged: backend={} case[{}]",
                        backend.name(), &case.params
                    ),
                }
            }
        }
    }
}
