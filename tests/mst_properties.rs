//! Property-based tests (proptest) for the EMST substrate: Borůvka must
//! match the Prim oracle on adversarial inputs — duplicate points,
//! collinear grids, single-cluster blobs, all with quantized coordinates so
//! exact distance ties abound — and the kd-tree's structural invariants
//! (contiguous subtree ranges, boxes containing their points, cached splits
//! separating the children) must hold for every build configuration.

use proptest::prelude::*;

use pandora::core::pandora::dendrogram_from_sorted;
use pandora::core::SortedMst;
use pandora::exec::ExecCtx;
use pandora::mst::kruskal::total_weight;
use pandora::mst::prim::prim_mst;
use pandora::mst::{
    boruvka_mst, core_distances2, emst, EmstParams, Euclidean, KdTree, MutualReachability, PointSet,
};

/// Adversarial point sets. `mode` picks the family; coordinates are
/// quantized to quarter-units so equal distances (the tie-break stress
/// case) are common, not measure-zero.
fn adversarial_points() -> impl Strategy<Value = PointSet> {
    (0usize..3, 2usize..4, 8usize..100).prop_flat_map(|(mode, dim, n)| {
        prop::collection::vec(0u32..32, n * dim..n * dim + 1).prop_map(move |raw| {
            let coords: Vec<f32> = match mode {
                // Duplicates: coordinates drawn from an 8-value alphabet,
                // so many points coincide exactly.
                0 => raw.iter().map(|&v| (v % 8) as f32).collect(),
                // Collinear: every point sits on the main diagonal.
                1 => raw
                    .chunks(dim)
                    .flat_map(|c| std::iter::repeat_n(c[0] as f32 * 0.25, dim))
                    .collect(),
                // Single-cluster blob on a quarter-unit grid.
                _ => raw.iter().map(|&v| v as f32 * 0.25).collect(),
            };
            PointSet::new(coords, dim)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn boruvka_matches_prim_euclidean(points in adversarial_points()) {
        let ctx = ExecCtx::serial();
        let tree = KdTree::build(&ctx, &points);
        let got = boruvka_mst(&ctx, &points, &tree, &Euclidean);
        prop_assert_eq!(got.len(), points.len() - 1);
        let expect = prim_mst(&points, &Euclidean);
        let (wa, wb) = (total_weight(&got), total_weight(&expect));
        prop_assert!(
            (wa - wb).abs() <= 1e-3 * wb.max(1.0),
            "Boruvka {} vs Prim {}", wa, wb
        );
    }

    #[test]
    fn boruvka_matches_prim_mutual_reachability(
        (points, min_pts) in (adversarial_points(), 2usize..8)
    ) {
        let ctx = ExecCtx::serial();
        let min_pts = min_pts.min(points.len());
        let result = emst(&ctx, &points, &EmstParams::with_min_pts(min_pts));
        prop_assert_eq!(result.edges.len(), points.len() - 1);
        let metric = MutualReachability { core2: &result.core2 };
        let expect = prim_mst(&points, &metric);
        let (wa, wb) = (total_weight(&result.edges), total_weight(&expect));
        prop_assert!(
            (wa - wb).abs() <= 1e-3 * wb.max(1.0),
            "minPts={}: Boruvka {} vs Prim {}", min_pts, wa, wb
        );
    }

    #[test]
    fn serial_and_threaded_emst_agree_exactly(
        (points, min_pts) in (adversarial_points(), 1usize..6)
    ) {
        // The whole parallel EMST stage must be deterministic across
        // execution contexts: the atomic min-edge reduction is commutative
        // and every tie is index-broken, so serial and threaded runs must
        // produce the SAME edges (not just the same weight), and therefore
        // identical dendrograms.
        let min_pts = min_pts.min(points.len());
        let serial_ctx = ExecCtx::serial();
        let threaded_ctx = ExecCtx::threads();
        let a = emst(&serial_ctx, &points, &EmstParams::with_min_pts(min_pts));
        let b = emst(&threaded_ctx, &points, &EmstParams::with_min_pts(min_pts));
        prop_assert_eq!(a.core2.as_slice(), b.core2.as_slice());
        prop_assert_eq!(a.edges.len(), b.edges.len());
        for (ea, eb) in a.edges.iter().zip(b.edges.iter()) {
            prop_assert_eq!((ea.u, ea.v, ea.w), (eb.u, eb.v, eb.w));
        }
        let wa = total_weight(&a.edges);
        let wb = total_weight(&b.edges);
        prop_assert_eq!(wa, wb);
        // Identical edges must condense into identical dendrograms.
        let mst_a = SortedMst::from_edges(&serial_ctx, points.len(), &a.edges);
        let mst_b = SortedMst::from_edges(&threaded_ctx, points.len(), &b.edges);
        let (da, _) = dendrogram_from_sorted(&serial_ctx, &mst_a);
        let (db, _) = dendrogram_from_sorted(&threaded_ctx, &mst_b);
        prop_assert_eq!(da, db);
    }

    #[test]
    fn kdtree_invariants_hold_for_every_build(points in adversarial_points()) {
        for leaf_size in [1usize, 4, 32] {
            let serial = KdTree::build_with_leaf_size(&ExecCtx::serial(), &points, leaf_size);
            serial.check_invariants(&points).unwrap();
            let threaded = KdTree::build_with_leaf_size(&ExecCtx::threads(), &points, leaf_size);
            threaded.check_invariants(&points).unwrap();
            // Median splits keep the depth logarithmic even with total
            // coordinate degeneracy (the index tie-break still halves).
            let bound = (points.len().max(2)).ilog2() as usize + 2;
            prop_assert!(
                serial.depth() <= bound,
                "depth {} exceeds {} at n={} leaf={}",
                serial.depth(), bound, points.len(), leaf_size
            );
        }
    }

    #[test]
    fn core_distances_match_brute_force(points in adversarial_points()) {
        let ctx = ExecCtx::serial();
        let tree = KdTree::build(&ctx, &points);
        let min_pts = 3usize.min(points.len());
        let core2 = core_distances2(&ctx, &points, &tree, min_pts);
        for (q, &got) in core2.iter().enumerate() {
            let mut d: Vec<f32> = (0..points.len())
                .filter(|&p| p != q)
                .map(|p| points.dist2(q, p))
                .collect();
            d.sort_by(f32::total_cmp);
            let expect = if min_pts >= 2 { d[min_pts - 2] } else { 0.0 };
            prop_assert_eq!(got, expect, "q={}", q);
        }
    }
}
