//! Property-based tests (proptest) for the EMST substrate: Borůvka must
//! match the Prim oracle on adversarial inputs — duplicate points,
//! collinear grids, single-cluster blobs, all with quantized coordinates so
//! exact distance ties abound — and the kd-tree's structural invariants
//! (contiguous subtree ranges, boxes containing their points, cached splits
//! separating the children) must hold for every build configuration.

use proptest::prelude::*;

use pandora::core::pandora::dendrogram_from_sorted;
use pandora::core::SortedMst;
use pandora::exec::ExecCtx;
use pandora::mst::kruskal::total_weight;
use pandora::mst::prim::prim_mst;
use pandora::mst::{
    boruvka_mst, core_distances2, emst, emst_from_index, knn_rows_into, row_witness_scan,
    EmstIndex, EmstParams, EmstScratch, Euclidean, KdTree, KnnRows, MutualReachability, PointSet,
};

/// Adversarial point sets. `mode` picks the family; coordinates are
/// quantized to quarter-units so equal distances (the tie-break stress
/// case) are common, not measure-zero.
fn adversarial_points() -> impl Strategy<Value = PointSet> {
    (0usize..3, 2usize..4, 8usize..100).prop_flat_map(|(mode, dim, n)| {
        prop::collection::vec(0u32..32, n * dim..n * dim + 1).prop_map(move |raw| {
            let coords: Vec<f32> = match mode {
                // Duplicates: coordinates drawn from an 8-value alphabet,
                // so many points coincide exactly.
                0 => raw.iter().map(|&v| (v % 8) as f32).collect(),
                // Collinear: every point sits on the main diagonal.
                1 => raw
                    .chunks(dim)
                    .flat_map(|c| std::iter::repeat_n(c[0] as f32 * 0.25, dim))
                    .collect(),
                // Single-cluster blob on a quarter-unit grid.
                _ => raw.iter().map(|&v| v as f32 * 0.25).collect(),
            };
            PointSet::new(coords, dim)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn boruvka_matches_prim_euclidean(points in adversarial_points()) {
        let ctx = ExecCtx::serial();
        let tree = KdTree::build(&ctx, &points);
        let got = boruvka_mst(&ctx, &points, &tree, &Euclidean);
        prop_assert_eq!(got.len(), points.len() - 1);
        let expect = prim_mst(&points, &Euclidean);
        let (wa, wb) = (total_weight(&got), total_weight(&expect));
        prop_assert!(
            (wa - wb).abs() <= 1e-3 * wb.max(1.0),
            "Boruvka {} vs Prim {}", wa, wb
        );
    }

    #[test]
    fn boruvka_matches_prim_mutual_reachability(
        (points, min_pts) in (adversarial_points(), 2usize..8)
    ) {
        let ctx = ExecCtx::serial();
        let min_pts = min_pts.min(points.len());
        let result = emst(&ctx, &points, &EmstParams::with_min_pts(min_pts));
        prop_assert_eq!(result.edges.len(), points.len() - 1);
        let metric = MutualReachability { core2: &result.core2 };
        let expect = prim_mst(&points, &metric);
        let (wa, wb) = (total_weight(&result.edges), total_weight(&expect));
        prop_assert!(
            (wa - wb).abs() <= 1e-3 * wb.max(1.0),
            "minPts={}: Boruvka {} vs Prim {}", min_pts, wa, wb
        );
    }

    #[test]
    fn serial_and_threaded_emst_agree_exactly(
        (points, min_pts) in (adversarial_points(), 1usize..6)
    ) {
        // The whole parallel EMST stage must be deterministic across
        // execution contexts: the atomic min-edge reduction is commutative
        // and every tie is index-broken, so serial and threaded runs must
        // produce the SAME edges (not just the same weight), and therefore
        // identical dendrograms.
        let min_pts = min_pts.min(points.len());
        let serial_ctx = ExecCtx::serial();
        let threaded_ctx = ExecCtx::threads();
        let a = emst(&serial_ctx, &points, &EmstParams::with_min_pts(min_pts));
        let b = emst(&threaded_ctx, &points, &EmstParams::with_min_pts(min_pts));
        prop_assert_eq!(a.core2.as_slice(), b.core2.as_slice());
        prop_assert_eq!(a.edges.len(), b.edges.len());
        for (ea, eb) in a.edges.iter().zip(b.edges.iter()) {
            prop_assert_eq!((ea.u, ea.v, ea.w), (eb.u, eb.v, eb.w));
        }
        let wa = total_weight(&a.edges);
        let wb = total_weight(&b.edges);
        prop_assert_eq!(wa, wb);
        // Identical edges must condense into identical dendrograms.
        let mst_a = SortedMst::from_edges(&serial_ctx, points.len(), &a.edges);
        let mst_b = SortedMst::from_edges(&threaded_ctx, points.len(), &b.edges);
        let (da, _) = dendrogram_from_sorted(&serial_ctx, &mst_a);
        let (db, _) = dendrogram_from_sorted(&threaded_ctx, &mst_b);
        prop_assert_eq!(da, db);
    }

    #[test]
    fn kdtree_invariants_hold_for_every_build(points in adversarial_points()) {
        for leaf_size in [1usize, 4, 32] {
            let serial = KdTree::build_with_leaf_size(&ExecCtx::serial(), &points, leaf_size);
            serial.check_invariants(&points).unwrap();
            let threaded = KdTree::build_with_leaf_size(&ExecCtx::threads(), &points, leaf_size);
            threaded.check_invariants(&points).unwrap();
            // Median splits keep the depth logarithmic even with total
            // coordinate degeneracy (the index tie-break still halves).
            let bound = (points.len().max(2)).ilog2() as usize + 2;
            prop_assert!(
                serial.depth() <= bound,
                "depth {} exceeds {} at n={} leaf={}",
                serial.depth(), bound, points.len(), leaf_size
            );
        }
    }

    #[test]
    fn row_witness_scan_invariants(
        (points, min_pts, comp_seed) in (adversarial_points(), 2usize..6, any::<u64>())
    ) {
        // The witness scan's documented contract, on ties-everywhere inputs
        // with an arbitrary component labelling:
        //   * `best` is the brute-force canonical minimum (smaller metric
        //     distance, then smaller index) over the row's foreign members;
        //   * a found `second` is foreign, lives outside `best`'s component,
        //     and its exact metric distance is ≥ `best`'s — so a promoted
        //     2-hop witness can never propose an edge shorter than the true
        //     nearest-foreign distance;
        //   * `second` is found whenever the row holds a foreign member
        //     outside `best`'s component.
        let ctx = ExecCtx::serial();
        let n = points.len();
        let min_pts = min_pts.min(n);
        let tree = KdTree::build(&ctx, &points);
        let k = (min_pts + 3).min(n - 1);
        let (mut row_d2, mut row_idx) = (Vec::new(), Vec::new());
        knn_rows_into(&ctx, &points, &tree, k, &mut row_d2, &mut row_idx);
        let rows = KnnRows { k, d2: &row_d2, idx: &row_idx };
        // Brute-force core distances keep the oracle independent of `knn`.
        let core2: Vec<f32> = (0..n)
            .map(|q| {
                let mut d: Vec<f32> = (0..n)
                    .filter(|&p| p != q)
                    .map(|p| points.dist2(q, p))
                    .collect();
                d.sort_by(f32::total_cmp);
                d[min_pts - 2]
            })
            .collect();
        let metric = MutualReachability { core2: &core2 };
        let exact = |q: usize, p: u32| {
            points
                .dist2(q, p as usize)
                .max(core2[q])
                .max(core2[p as usize])
        };
        // A deterministic pseudo-random labelling into four components —
        // arbitrary labels are exactly what mid-run Borůvka hands the scan.
        let comp: Vec<u32> = (0..n as u64)
            .map(|p| ((p.wrapping_add(1).wrapping_mul(comp_seed | 1)) >> 32) as u32 % 4)
            .collect();
        for q in 0..n {
            let root = comp[q] as usize;
            let (best, second) = row_witness_scan(&rows, &metric, q as u32, root, &comp);
            let members: Vec<u32> = (0..k)
                .map(|j| row_idx[q * k + j])
                .take_while(|&p| p != u32::MAX)
                .collect();
            let expect_best = members
                .iter()
                .filter(|&&p| comp[p as usize] as usize != root)
                .map(|&p| (exact(q, p), p))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            match expect_best {
                Some(expected) => prop_assert_eq!(best, expected, "q={}", q),
                None => prop_assert_eq!(best.1, u32::MAX, "q={}", q),
            }
            let two_hop_exists = best.1 != u32::MAX
                && members.iter().any(|&p| {
                    comp[p as usize] as usize != root && comp[p as usize] != comp[best.1 as usize]
                });
            if second.1 != u32::MAX {
                prop_assert_ne!(comp[second.1 as usize] as usize, root, "q={}", q);
                prop_assert_ne!(comp[second.1 as usize], comp[best.1 as usize], "q={}", q);
                prop_assert_eq!(second.0, exact(q, second.1), "q={}", q);
                prop_assert!(
                    second.0 >= best.0,
                    "q={}: second {} undercuts nearest-foreign {}", q, second.0, best.0
                );
            } else {
                prop_assert!(!two_hop_exists, "q={}: missed a 2-hop witness", q);
            }
        }
    }

    #[test]
    fn warm_index_path_matches_cold_and_prim_exactly(
        (points, min_pts) in (adversarial_points(), 1usize..6)
    ) {
        // The frozen-index path layers every acceleration at once — row
        // screen, merge-surviving witnesses, endgame snapshots (second run
        // through the same scratch), shared-store adoption (fresh scratch
        // after a publish) — and must still return the cold run's edges
        // BIT-identically, serial and threaded, while the cold run itself
        // matches the Prim oracle on these tie-heavy inputs.
        let min_pts = min_pts.min(points.len());
        let serial = ExecCtx::serial();
        let cold = emst(&serial, &points, &EmstParams::with_min_pts(min_pts));
        let metric = MutualReachability { core2: &cold.core2 };
        let oracle = prim_mst(&points, &metric);
        let (wc, wo) = (total_weight(&cold.edges), total_weight(&oracle));
        prop_assert!((wc - wo).abs() <= 1e-3 * wo.max(1.0), "cold {} vs Prim {}", wc, wo);
        for ctx in [ExecCtx::serial(), ExecCtx::threads()] {
            let index = EmstIndex::freeze(&ctx, points.clone(), min_pts)
                .expect("freeze a non-empty dataset");
            let mut scratch = EmstScratch::new();
            let first = emst_from_index(&ctx, &index, min_pts, &mut scratch)
                .expect("valid request");
            let second = emst_from_index(&ctx, &index, min_pts, &mut scratch)
                .expect("valid request");
            let mut fresh = EmstScratch::new();
            let adopted = emst_from_index(&ctx, &index, min_pts, &mut fresh)
                .expect("valid request");
            for run in [&first, &second, &adopted] {
                prop_assert_eq!(run.core2.as_slice(), cold.core2.as_slice());
                prop_assert_eq!(run.edges.len(), cold.edges.len());
                for (ea, eb) in run.edges.iter().zip(cold.edges.iter()) {
                    prop_assert_eq!(
                        (ea.u, ea.v, ea.w.to_bits()),
                        (eb.u, eb.v, eb.w.to_bits())
                    );
                }
            }
        }
    }

    #[test]
    fn core_distances_match_brute_force(points in adversarial_points()) {
        let ctx = ExecCtx::serial();
        let tree = KdTree::build(&ctx, &points);
        let min_pts = 3usize.min(points.len());
        let core2 = core_distances2(&ctx, &points, &tree, min_pts);
        for (q, &got) in core2.iter().enumerate() {
            let mut d: Vec<f32> = (0..points.len())
                .filter(|&p| p != q)
                .map(|p| points.dist2(q, p))
                .collect();
            d.sort_by(f32::total_cmp);
            let expect = if min_pts >= 2 { d[min_pts - 2] } else { 0.0 };
            prop_assert_eq!(got, expect, "q={}", q);
        }
    }
}
