//! End-to-end HDBSCAN\* behaviour on planted structure.

use pandora::data::synthetic::gaussian_blobs;
use pandora::hdbscan::{Hdbscan, HdbscanParams};
use pandora::mst::PointSet;

fn pairwise_agreement(truth: &[u32], labels: &[i32], n: usize) -> f64 {
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in (0..n).step_by(7) {
        for j in (i + 1..n).step_by(11) {
            if labels[i] < 0 || labels[j] < 0 {
                continue;
            }
            total += 1;
            if (truth[i] == truth[j]) == (labels[i] == labels[j]) {
                agree += 1;
            }
        }
    }
    agree as f64 / total.max(1) as f64
}

#[test]
fn recovers_blob_count_across_dimensions() {
    for (dim, k) in [(2usize, 4usize), (3, 3), (5, 2), (7, 3)] {
        let (points, truth) = gaussian_blobs(1_200, dim, k, 120.0, 1.0, dim as u64);
        let result = Hdbscan::new(HdbscanParams {
            min_pts: 4,
            min_cluster_size: 15,
            allow_single_cluster: false,
        })
        .run(&points);
        assert_eq!(result.n_clusters(), k, "dim={dim}");
        let agreement = pairwise_agreement(&truth, &result.labels, points.len());
        assert!(agreement > 0.99, "dim={dim}: agreement {agreement}");
    }
}

#[test]
fn varying_density_blobs_are_separated() {
    // One tight and one diffuse blob — the case plain DBSCAN struggles with
    // and HDBSCAN* motivates.
    let (tight, _) = gaussian_blobs(400, 2, 1, 1.0, 0.2, 1);
    let (diffuse, _) = gaussian_blobs(400, 2, 1, 1.0, 4.0, 2);
    let mut coords = Vec::new();
    coords.extend_from_slice(tight.coords());
    for i in 0..diffuse.len() {
        coords.push(diffuse.point(i)[0] + 200.0);
        coords.push(diffuse.point(i)[1]);
    }
    let points = PointSet::new(coords, 2);
    let result = Hdbscan::new(HdbscanParams {
        min_pts: 8,
        min_cluster_size: 30,
        allow_single_cluster: false,
    })
    .run(&points);
    assert_eq!(result.n_clusters(), 2);
    // The two halves must not share labels.
    let first = result.labels[..400].iter().filter(|&&l| l >= 0).max();
    let second = result.labels[400..].iter().filter(|&&l| l >= 0).max();
    assert_ne!(first, second);
}

#[test]
fn probabilities_bounded_and_noise_zero() {
    let (points, _) = gaussian_blobs(600, 3, 3, 90.0, 1.0, 9);
    let result = Hdbscan::new(HdbscanParams::default()).run(&points);
    for (i, &p) in result.probabilities.iter().enumerate() {
        assert!((0.0..=1.0).contains(&p));
        if result.labels[i] == -1 {
            assert_eq!(p, 0.0, "noise point {i} with probability {p}");
        }
    }
}

#[test]
fn condensed_tree_sizes_are_consistent() {
    let (points, _) = gaussian_blobs(800, 2, 4, 70.0, 0.9, 33);
    let result = Hdbscan::new(HdbscanParams::default()).run(&points);
    let ct = &result.condensed;
    // Sum of point rows per cluster + cluster rows equals parent sizes.
    let mut fallout = vec![0u64; ct.n_clusters()];
    for row in 0..ct.parent.len() {
        fallout[ct.parent[row] as usize] += ct.size[row] as u64;
    }
    // The root's fall-outs + child-cluster sizes must cover all points.
    assert_eq!(fallout[0], points.len() as u64);
}

#[test]
fn single_linkage_cut_matches_cluster_structure() {
    let (points, truth) = gaussian_blobs(500, 2, 5, 200.0, 0.5, 21);
    let result = Hdbscan::new(HdbscanParams::default()).run(&points);
    // Cut far below the blob separation: exactly 5 clusters.
    let labels = result.cut(50.0);
    let k = labels.iter().copied().max().unwrap() + 1;
    assert_eq!(k, 5);
    let as_i32: Vec<i32> = labels.iter().map(|&l| l as i32).collect();
    assert!(pairwise_agreement(&truth, &as_i32, points.len()) > 0.999);
}
