//! Structural work-optimality checks (paper §4): the contraction hierarchy
//! must shrink geometrically and the expansion must touch each edge only
//! O(log n) times — *independent of dendrogram skew*. These are the
//! structural facts behind Theorem 4's matching upper bound; we assert them
//! directly instead of asserting wall-clock (which is flaky in CI).

use pandora::core::levels::build_hierarchy;
use pandora::core::pandora as pandora_algo;
use pandora::core::{Edge, SortedMst};
use pandora::exec::trace::KernelKind;
use pandora::exec::ExecCtx;

fn hierarchy_checks(n: usize, edges: &[Edge], label: &str) {
    let ctx = ExecCtx::serial();
    let mst = SortedMst::from_edges(&ctx, n, edges);
    let h = build_hierarchy(&ctx, &mst);
    let n_edges = mst.n_edges();

    // Level bound (⌈log2(n+1)⌉ contractions).
    assert!(
        h.n_levels() <= (n_edges + 2).ilog2() as usize + 2,
        "{label}: {} levels for n={n_edges}",
        h.n_levels()
    );
    // Geometric decay ⇒ total edges across levels ≤ 2n.
    let total: usize = h.trees.iter().map(|t| t.n_edges()).sum();
    assert!(
        total <= 2 * n_edges + 1,
        "{label}: hierarchy holds {total} edges for n={n_edges}"
    );
}

#[test]
fn hierarchy_is_geometric_on_extreme_shapes() {
    let n = 50_000usize;
    let chain: Vec<Edge> = (0..n - 1)
        .map(|i| Edge::new(i as u32, i as u32 + 1, (n - i) as f32))
        .collect();
    hierarchy_checks(n, &chain, "chain");

    let star: Vec<Edge> = (1..n)
        .map(|i| Edge::new(0, i as u32, (n - i) as f32))
        .collect();
    hierarchy_checks(n, &star, "star");

    let balanced: Vec<Edge> = (1..n)
        .map(|i| Edge::new((i / 2) as u32, i as u32, 1.0 / i as f32))
        .collect();
    hierarchy_checks(n, &balanced, "balanced");

    // Comb: a chain with a leaf at every link — maximal chain-edge count.
    let mut comb = Vec::new();
    let half = n / 2;
    for i in 0..half - 1 {
        comb.push(Edge::new(i as u32, i as u32 + 1, (n - i) as f32));
    }
    for i in 0..half {
        comb.push(Edge::new(i as u32, (half + i) as u32, 0.5 / (i + 1) as f32));
    }
    hierarchy_checks(2 * half, &comb, "comb");
}

#[test]
fn traced_work_is_n_log_n_independent_of_skew() {
    // Compare total traced kernel elements between the most and least
    // skewed shapes at the same n: work-optimality predicts the ratio stays
    // O(1) (top-down would be Θ(n/log n) apart).
    let n = 20_000usize;
    let shapes: Vec<(&str, Vec<Edge>)> = vec![
        (
            "chain",
            (0..n - 1)
                .map(|i| Edge::new(i as u32, i as u32 + 1, (n - i) as f32))
                .collect(),
        ),
        (
            "balanced",
            (1..n)
                .map(|i| Edge::new((i / 2) as u32, i as u32, 1.0 / i as f32))
                .collect(),
        ),
    ];
    let mut totals = Vec::new();
    for (label, edges) in &shapes {
        let (ctx, tracer) = ExecCtx::serial().with_tracing();
        let _ = pandora_algo::dendrogram(&ctx, n, edges);
        let trace = tracer.snapshot();
        let total: u64 = KernelKind::ALL.iter().map(|&k| trace.total_n(k)).sum();
        totals.push((label, total));
    }
    let (a, b) = (totals[0].1 as f64, totals[1].1 as f64);
    let ratio = a.max(b) / a.min(b).max(1.0);
    assert!(
        ratio < 4.0,
        "work varies {ratio:.1}x between skew extremes: {totals:?}"
    );
}

#[test]
fn skewness_measured_matches_shape() {
    let ctx = ExecCtx::serial();
    let n = 10_000usize;
    let chain: Vec<Edge> = (0..n - 1)
        .map(|i| Edge::new(i as u32, i as u32 + 1, (n - i) as f32))
        .collect();
    let d = pandora_algo::dendrogram(&ctx, n, &chain);
    // A chain's height is n-1; skew ≈ n / log2 n.
    assert_eq!(d.height(), n - 1);
    assert!(d.skewness() > 500.0);

    let balanced: Vec<Edge> = (1..n)
        .map(|i| Edge::new((i / 2) as u32, i as u32, 1.0 / i as f32))
        .collect();
    let d = pandora_algo::dendrogram(&ctx, n, &balanced);
    assert!(d.skewness() < 3.0, "balanced skew {}", d.skewness());
}
