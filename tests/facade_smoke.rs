//! Smoke tests for the workspace facade: the `pandora::` re-exports must
//! resolve, the prelude must cover the common entry points, and the README /
//! crate-root quickstart snippet must actually run.

use pandora::prelude::*;

/// Every workspace member is reachable through its `pandora::` re-export.
#[test]
fn reexports_resolve() {
    // exec
    let ctx: pandora::exec::ExecCtx = pandora::exec::ExecCtx::serial();
    assert!(ctx.is_serial());
    // core
    let edges = vec![
        pandora::core::Edge::new(0, 1, 2.0),
        pandora::core::Edge::new(1, 2, 1.0),
    ];
    let dendro = pandora::core::pandora::dendrogram(&ctx, 3, &edges);
    assert_eq!(dendro.root(), Some(0));
    // mst
    let points = pandora::mst::PointSet::new(vec![0.0, 0.0, 1.0, 0.0], 2);
    assert_eq!(points.len(), 2);
    // data
    assert!(!pandora::data::all_datasets().is_empty());
    // hdbscan
    let _params = pandora::hdbscan::HdbscanParams::default();
}

/// The prelude exposes the names the examples and docs lean on.
#[test]
fn prelude_covers_common_entry_points() {
    let ctx = ExecCtx::threads();
    let edges = vec![Edge::new(0, 1, 2.0), Edge::new(1, 2, 1.0)];
    let mst = SortedMst::from_edges(&ctx, 3, &edges);
    assert_eq!(mst.n_edges(), 2);
    let (d, stats) = dendrogram_with_stats(&ctx, 3, &edges);
    d.validate().unwrap();
    assert!(stats.n_levels >= 1);
    assert_eq!(dendrogram(&ctx, 3, &edges), d);

    let points = PointSet::new(vec![0.0, 0.0, 0.1, 0.0, 5.0, 5.0], 2);
    let tree = KdTree::build(&ctx, &points);
    let core2 = core_distances2(&ctx, &points, &tree, 2);
    assert_eq!(core2.len(), points.len());
    let mst_edges = boruvka_mst(&ctx, &points, &tree, &Euclidean);
    assert_eq!(mst_edges.len(), points.len() - 1);
    let _metric = MutualReachability { core2: &core2 };
}

/// The repository tree carries no stray empty directories (e.g. an
/// abandoned `examples_tmp/`). Git cannot even represent empty
/// directories in a commit, so a CI-side check of the checkout can never
/// see the hazard — this test runs wherever `cargo test` runs, i.e. on
/// the machine where the litter actually exists, before it confuses the
/// next `ls`.
#[test]
fn repository_has_no_stray_empty_directories() {
    fn scan(dir: &std::path::Path, stray: &mut Vec<std::path::PathBuf>) {
        let mut entries = 0usize;
        for entry in std::fs::read_dir(dir).expect("readable repo dir") {
            let entry = entry.expect("readable dir entry");
            entries += 1;
            let path = entry.path();
            let name = entry.file_name();
            if path.is_dir() && name != ".git" && name != "target" {
                scan(&path, stray);
            }
        }
        if entries == 0 {
            stray.push(dir.to_path_buf());
        }
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut stray = Vec::new();
    scan(root, &mut stray);
    assert!(
        stray.is_empty(),
        "stray empty directories in the tree (remove them): {stray:?}"
    );
}

/// The quickstart from `README.md` / the `pandora` crate root, verbatim.
#[test]
fn readme_quickstart_runs() {
    use pandora::hdbscan::{ClusterRequest, DatasetIndex};
    use pandora::mst::PointSet;
    use std::sync::Arc;

    // Three tight 2-D blobs.
    let mut coords = Vec::new();
    for c in 0..3 {
        for i in 0..50 {
            let (cx, cy) = (c as f32 * 10.0, c as f32 * -7.0);
            coords.push(cx + (i % 7) as f32 * 0.01);
            coords.push(cy + (i / 7) as f32 * 0.01);
        }
    }
    let points = PointSet::try_new(coords, 2).expect("finite");
    let index = Arc::new(DatasetIndex::freeze(points, 8).expect("valid ceiling"));

    let mut session = index.session();
    let result = session
        .run(&ClusterRequest::new().min_pts(2))
        .expect("valid request");
    assert_eq!(result.n_clusters(), 3);

    // The legacy one-shot driver answers through the same tiers.
    use pandora::hdbscan::{Hdbscan, HdbscanParams};
    let coords: Vec<f32> = (0..60)
        .flat_map(|i| {
            let c = (i / 20) as f32;
            [c * 30.0 + (i % 5) as f32 * 0.01, c * -20.0]
        })
        .collect();
    let blobs = PointSet::new(coords, 2);
    let result = Hdbscan::new(HdbscanParams::default()).run(&blobs);
    assert_eq!(result.n_clusters(), 3);
}
