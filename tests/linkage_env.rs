//! `PANDORA_LINKAGE` environment plumbing, isolated in its own test
//! binary: env vars are process-global, so the mutation lives in a single
//! `#[test]` in a binary nothing else shares (the same pattern keeps the
//! other suites env-clean, and the CI linkage axis can still export the
//! variable externally without racing these assertions).

use std::sync::Arc;

use pandora::exec::ExecCtx;
use pandora::hdbscan::{ClusterRequest, DatasetIndex};
use pandora::mst::{Linkage, LINKAGE_ENV};

#[test]
fn env_resolution_and_request_precedence() {
    // All scenarios in one test: parallel test threads must never observe
    // each other's env mutations.
    std::env::remove_var(LINKAGE_ENV);
    assert_eq!(Linkage::resolve(None), Linkage::Single, "default");

    std::env::set_var(LINKAGE_ENV, "ward");
    assert_eq!(Linkage::resolve(None), Linkage::Ward, "env applies");
    assert_eq!(
        Linkage::resolve(Some(Linkage::Complete)),
        Linkage::Complete,
        "request beats env"
    );

    std::env::set_var(LINKAGE_ENV, "not-a-linkage");
    assert_eq!(
        Linkage::resolve(None),
        Linkage::Single,
        "unparseable env is ignored, never escalated"
    );

    // End to end: a default request under PANDORA_LINKAGE=ward serves the
    // same result as an explicit Ward request with the env unset.
    let coords: Vec<f32> = (0..160)
        .map(|i| (i as f32) * 0.37 + (i % 7) as f32)
        .collect();
    let points = pandora::mst::PointSet::new(coords, 2);
    let index =
        Arc::new(DatasetIndex::freeze_with_ctx(ExecCtx::serial(), points, 4).expect("freeze"));
    let mut session = index.session();

    std::env::remove_var(LINKAGE_ENV);
    let explicit = session
        .run(&ClusterRequest::new().min_pts(3).linkage(Linkage::Ward))
        .expect("explicit ward");

    std::env::set_var(LINKAGE_ENV, "ward");
    let via_env = session
        .run(&ClusterRequest::new().min_pts(3))
        .expect("env ward");
    assert_eq!(explicit.dendrogram, via_env.dendrogram);
    assert_eq!(explicit.labels, via_env.labels);

    // And the request still overrides the env end to end.
    let single_override = session
        .run(&ClusterRequest::new().min_pts(3).linkage(Linkage::Single))
        .expect("request override");
    std::env::remove_var(LINKAGE_ENV);
    let single_default = session
        .run(&ClusterRequest::new().min_pts(3))
        .expect("default single");
    assert_eq!(single_override.dendrogram, single_default.dendrogram);
    assert_eq!(single_override.labels, single_default.labels);
}
