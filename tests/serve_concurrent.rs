//! The serving API's contract, stress-tested: one `Arc<DatasetIndex>`
//! shared by many threads must answer every mixed request **bit-identical**
//! to the cold one-shot pipeline, with the scratch books balanced and no
//! panic reachable from user input.
//!
//! The CI thread matrix runs this file under both `PANDORA_THREADS=1` and
//! `PANDORA_THREADS=4`, so the threaded-context paths (`ExecCtx::threads`
//! inside a serving thread, concurrent broadcasts on the global pool) are
//! exercised at both extremes.

use std::sync::Arc;

use pandora::data::synthetic::gaussian_blobs;
use pandora::exec::ExecCtx;
use pandora::hdbscan::{ClusterRequest, DatasetIndex, Hdbscan, HdbscanResult, PandoraError};
use pandora::mst::PointSet;

/// Asserts two pipeline results agree in every deterministic field.
fn assert_results_identical(a: &HdbscanResult, b: &HdbscanResult, what: &str) {
    assert_eq!(a.core2, b.core2, "{what}: core distances");
    assert_eq!(a.mst.src, b.mst.src, "{what}: MST sources");
    assert_eq!(a.mst.dst, b.mst.dst, "{what}: MST destinations");
    assert_eq!(a.mst.weight, b.mst.weight, "{what}: MST weights");
    assert_eq!(a.dendrogram, b.dendrogram, "{what}: dendrogram");
    assert_eq!(a.labels, b.labels, "{what}: labels");
    assert_eq!(a.probabilities, b.probabilities, "{what}: probabilities");
    assert_eq!(a.stabilities, b.stabilities, "{what}: stabilities");
}

#[test]
fn concurrent_sessions_are_bit_identical_to_cold_runs() {
    const THREADS: usize = 4;
    const REQUESTS_PER_THREAD: usize = 6;

    let (points, _) = gaussian_blobs(900, 2, 4, 110.0, 0.9, 31);
    // The mixed request matrix: minPts and min_cluster_size both vary, so
    // concurrent sessions exercise different row prefixes, different
    // metric ranks in the endgame cache, and different condense cuts.
    let mix = [
        ClusterRequest::new().min_pts(2),
        ClusterRequest::new().min_pts(3).min_cluster_size(3),
        ClusterRequest::new().min_pts(8).min_cluster_size(10),
        ClusterRequest::new().min_pts(16),
        ClusterRequest::new().min_pts(1), // plain single linkage
        ClusterRequest::new().min_pts(4).allow_single_cluster(true),
    ];

    // Ground truth per mix member, computed cold (fresh substrate each).
    let cold: Vec<HdbscanResult> = mix
        .iter()
        .map(|request| Hdbscan::with_ctx(request.to_params(), ExecCtx::serial()).run(&points))
        .collect();

    let index = Arc::new(DatasetIndex::freeze(points, 16).expect("finite dataset freezes"));

    // N threads × M requests, every thread walking the mix at a different
    // offset so distinct requests are genuinely in flight simultaneously.
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let index = Arc::clone(&index);
            let cold = &cold;
            let mix = &mix;
            scope.spawn(move || {
                let mut session = index.session();
                for i in 0..REQUESTS_PER_THREAD {
                    let which = (thread * 2 + i) % mix.len();
                    let served = session
                        .run(&mix[which])
                        .expect("every mix member is a valid request");
                    assert_results_identical(
                        &served,
                        &cold[which],
                        &format!("thread {thread} request {i} (mix {which})"),
                    );
                    assert_eq!(
                        session.scratch_outstanding(),
                        0,
                        "thread {thread}: leaked scratch after request {i}"
                    );
                }
            });
        }
    });

    // Every session parked its scratch on drop; the pool serves it back.
    assert_eq!(index.pooled_sessions(), THREADS);
    let mut warm = index.session();
    assert_eq!(index.pooled_sessions(), THREADS - 1);
    let served = warm.run(&mix[0]).expect("warm session still serves");
    assert_results_identical(&served, &cold[0], "post-stress warm session");
}

#[test]
fn serving_threads_may_use_the_shared_thread_pool() {
    // Sessions dispatching stages on ExecCtx::threads() from multiple
    // serving threads broadcast concurrently on the process-global pool;
    // results must still be exact (the pool serializes regions, never
    // corrupts them).
    let (points, _) = gaussian_blobs(500, 3, 3, 80.0, 1.0, 7);
    let cold = Hdbscan::with_ctx(
        ClusterRequest::new().min_pts(4).to_params(),
        ExecCtx::serial(),
    )
    .run(&points);
    let index = Arc::new(DatasetIndex::freeze(points, 8).expect("freeze"));
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let index = Arc::clone(&index);
            let cold = &cold;
            scope.spawn(move || {
                let mut session = index.session_with_ctx(ExecCtx::threads());
                for _ in 0..3 {
                    let served = session
                        .run(&ClusterRequest::new().min_pts(4))
                        .expect("valid request");
                    assert_results_identical(&served, cold, "threaded-ctx session");
                }
            });
        }
    });
}

#[test]
fn a_second_session_warms_from_the_shared_endgame_store() {
    // The endgame store lives on the frozen index, not inside any session:
    // the first request against a dataset publishes its endgame snapshots,
    // and a session drawn cold afterwards — while the first still holds its
    // scratch, so nothing warm can be handed over through the park pool —
    // adopts them instead of re-proving the bounds from scratch. Observable
    // as an adoption tick plus a strictly smaller tree re-search bill on
    // the engine counters, with answers still bit-identical to cold.
    let (points, _) = gaussian_blobs(600, 2, 4, 160.0, 0.8, 21);
    let cold = Hdbscan::with_ctx(
        ClusterRequest::new().min_pts(4).to_params(),
        ExecCtx::serial(),
    )
    .run(&points);
    let index = Arc::new(DatasetIndex::freeze(points, 8).expect("freeze"));
    let stats = index.emst().stats();
    assert_eq!(stats.snapshot_adopts(), 0, "no adoption before any request");

    let mut first = index.session();
    let served = first
        .run(&ClusterRequest::new().min_pts(4))
        .expect("valid request");
    assert_results_identical(&served, &cold, "first (cold-store) session");
    assert!(
        index.emst().endgame_store().is_published(),
        "the first request must publish its endgame snapshots"
    );
    assert_eq!(
        stats.snapshot_adopts(),
        0,
        "the first session had nothing to adopt"
    );
    let first_searches = stats.researches();
    assert!(
        first_searches > 0,
        "separated blobs must force real endgame re-searches on a cold run"
    );

    // `first` is still alive, so this session starts from a fresh scratch.
    let mut second = index.session();
    let served = second
        .run(&ClusterRequest::new().min_pts(4))
        .expect("valid request");
    assert_results_identical(&served, &cold, "second (adopting) session");
    assert_eq!(
        stats.snapshot_adopts(),
        1,
        "the second session's cold scratch must adopt the published set"
    );
    let second_searches = stats.researches() - first_searches;
    assert!(
        second_searches < first_searches,
        "adopted endgame bounds must cut the re-search bill: \
         {second_searches} vs cold {first_searches}"
    );
}

#[test]
fn no_user_input_reaches_a_panic_in_the_serving_api() {
    // The acceptance checklist's error paths: non-finite coordinates,
    // min_pts ∈ {0, n + 1}, empty dataset — all errors, never panics.
    assert_eq!(
        PointSet::try_new(vec![1.0, f32::NAN, 2.0, 3.0], 2).err(),
        Some(PandoraError::NonFinite { point: 0, dim: 1 })
    );
    assert_eq!(
        PointSet::try_new(vec![1.0, 2.0, 3.0], 2).err(),
        Some(PandoraError::BadShape { len: 3, dim: 2 })
    );
    assert_eq!(
        DatasetIndex::freeze(PointSet::try_new(vec![], 2).expect("empty set is valid"), 2).err(),
        Some(PandoraError::EmptyDataset)
    );

    let (points, _) = gaussian_blobs(60, 2, 2, 40.0, 0.5, 3);
    let n = points.len();
    let index = Arc::new(DatasetIndex::freeze(points, n).expect("freeze at the n ceiling"));
    let mut session = index.session();
    // min_pts = n is the largest valid request; 0 and n + 1 are errors.
    assert!(session.run(&ClusterRequest::new().min_pts(n)).is_ok());
    for bad in [0usize, n + 1] {
        let err = session.run(&ClusterRequest::new().min_pts(bad));
        assert!(
            matches!(
                err,
                Err(PandoraError::BadParams {
                    param: "min_pts",
                    ..
                })
            ),
            "min_pts={bad} gave {err:?}"
        );
    }
    assert!(session
        .run(&ClusterRequest::new().min_cluster_size(0))
        .is_err());
    // Rejected requests leave the session fully serviceable.
    assert_eq!(session.scratch_outstanding(), 0);
    assert!(session.run(&ClusterRequest::new()).is_ok());
}

#[test]
fn request_order_cannot_leak_state_between_sessions() {
    // Two sessions over one index, interleaved wildly different requests:
    // the endgame cache and pooled buffers inside each session must never
    // bleed into the other's answers (each is compared against cold).
    let (points, _) = gaussian_blobs(400, 2, 3, 70.0, 0.8, 13);
    let orders: [&[usize]; 2] = [&[16, 2, 8, 2, 16], &[2, 16, 2, 8, 8]];
    let cold: Vec<HdbscanResult> = [2usize, 8, 16]
        .iter()
        .map(|&m| {
            Hdbscan::with_ctx(
                ClusterRequest::new().min_pts(m).to_params(),
                ExecCtx::serial(),
            )
            .run(&points)
        })
        .collect();
    let which = |m: usize| {
        [2usize, 8, 16]
            .iter()
            .position(|&x| x == m)
            .expect("member")
    };
    let index = Arc::new(DatasetIndex::freeze(points, 16).expect("freeze"));
    std::thread::scope(|scope| {
        for order in orders {
            let index = Arc::clone(&index);
            let cold = &cold;
            scope.spawn(move || {
                let mut session = index.session();
                for &m in order {
                    let served = session
                        .run(&ClusterRequest::new().min_pts(m))
                        .expect("valid request");
                    assert_results_identical(&served, &cold[which(m)], &format!("minPts={m}"));
                }
            });
        }
    });
}
