//! The `pandorad` wire contract, driven over real sockets: responses are
//! **bit-identical** to in-process `Session::run`, malformed input gets a
//! typed error (never a disconnect), duplicate in-flight requests provably
//! coalesce (engine-run counter), and a full queue sheds with a typed
//! `overloaded` error instead of queueing unboundedly.
//!
//! CI runs this file in the `PANDORA_THREADS ∈ {1,4}` matrix, so the
//! daemon's default worker-lane sizing is exercised at both extremes
//! (tests that need a specific lane count pin it via `DaemonConfig`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pandora::data::synthetic::gaussian_blobs;
use pandora::exec::ExecCtx;
use pandora::hdbscan::daemon::{json::Json, proto, Daemon, DaemonConfig};
use pandora::hdbscan::{ClusterRequest, DatasetIndex};
use pandora::mst::PointSet;

/// One newline-delimited JSON-RPC connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(daemon: &Daemon) -> Self {
        let stream = TcpStream::connect(daemon.local_addr()).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Self {
            reader,
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server disconnected instead of responding");
        line.trim_end().to_string()
    }

    fn call(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn blobs(n: usize, seed: u64) -> PointSet {
    let (points, _) = gaussian_blobs(n, 2, 3, 60.0, 0.8, seed);
    points
}

fn freeze(points: PointSet, max_min_pts: usize) -> Arc<DatasetIndex> {
    Arc::new(DatasetIndex::freeze_with_ctx(ExecCtx::serial(), points, max_min_pts).expect("freeze"))
}

/// The exact response line the daemon must produce for `request`, computed
/// in-process through the same `Session::run` + canonical encoder.
fn expected_cluster_line(index: &Arc<DatasetIndex>, id: i64, request: &ClusterRequest) -> String {
    let mut session = index.session_with_ctx(ExecCtx::serial());
    let result = session.run(request).expect("valid request");
    proto::response_ok(&Json::Int(id), proto::cluster_result(&result))
}

fn error_code(line: &str) -> String {
    let parsed = Json::parse(line).expect("response is valid JSON");
    parsed
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no error code in: {line}"))
        .to_string()
}

#[test]
fn concurrent_mixed_method_clients_get_bit_identical_payloads() {
    let daemon = Daemon::bind("127.0.0.1:0", DaemonConfig::new().workers(3)).expect("bind");
    let index = freeze(blobs(600, 7), 16);
    daemon
        .registry()
        .register("blobs", Arc::clone(&index), false)
        .expect("register");

    std::thread::scope(|scope| {
        for thread in 0..4i64 {
            let daemon = &daemon;
            let index = &index;
            scope.spawn(move || {
                let mut client = Client::connect(daemon);
                for i in 0..4i64 {
                    // Distinct params per (thread, i) so genuinely different
                    // requests are in flight at once.
                    let min_pts = 2 + ((thread + i) % 4) as usize * 3;
                    let mcs = 5 + thread as usize;
                    let id = thread * 100 + i;
                    let request = ClusterRequest::new().min_pts(min_pts).min_cluster_size(mcs);
                    let reply = client.call(&format!(
                        r#"{{"id":{id},"method":"cluster","params":{{"dataset":"blobs","min_pts":{min_pts},"min_cluster_size":{mcs}}}}}"#
                    ));
                    assert_eq!(
                        reply,
                        expected_cluster_line(index, id, &request),
                        "thread {thread} request {i}: wire payload diverged from Session::run"
                    );
                    // Interleave a stats call: must answer inline on the
                    // same connection without disturbing the stream.
                    let stats = client.call(&format!(r#"{{"id":"s{id}","method":"stats"}}"#));
                    assert!(stats.contains(r#""uptime_ms""#), "{stats}");
                }
            });
        }
    });

    daemon.shutdown();
    daemon.join();
}

#[test]
fn wire_load_and_sweep_match_in_process_results() {
    let daemon = Daemon::bind("127.0.0.1:0", DaemonConfig::new().workers(2)).expect("bind");
    let points = blobs(240, 13);
    // Serialize the coordinates through float Display (shortest
    // round-trip): the daemon must recover bit-identical f32s.
    let coords: Vec<String> = points.coords().iter().map(|v| format!("{v}")).collect();
    let mut client = Client::connect(&daemon);
    let reply = client.call(&format!(
        r#"{{"id":1,"method":"load","params":{{"name":"wire","dim":2,"points":[{}],"max_min_pts":12}}}}"#,
        coords.join(",")
    ));
    assert!(reply.contains(r#""n":240"#), "{reply}");

    let index = freeze(points, 12);
    let min_pts = [2usize, 4, 9];
    let base = ClusterRequest::new().min_cluster_size(6);
    let results: Vec<_> = {
        let mut session = index.session_with_ctx(ExecCtx::serial());
        min_pts
            .iter()
            .map(|&m| session.run(&base.min_pts(m)).expect("valid"))
            .collect()
    };
    let expected = proto::response_ok(&Json::Int(2), proto::sweep_result(&min_pts, &results));
    let reply = client.call(
        r#"{"id":2,"method":"sweep","params":{"dataset":"wire","min_pts":[2,4,9],"min_cluster_size":6}}"#,
    );
    assert_eq!(reply, expected, "sweep payload diverged from Session::run");

    // Duplicate load without replace is a typed error; with replace it wins.
    let dup = client
        .call(r#"{"id":3,"method":"load","params":{"name":"wire","dim":1,"points":[1,2,3]}}"#);
    assert_eq!(error_code(&dup), "dataset_exists");
    let swap = client.call(
        r#"{"id":4,"method":"load","params":{"name":"wire","dim":1,"points":[1,2,3],"replace":true}}"#,
    );
    assert!(swap.contains(r#""n":3"#), "{swap}");

    daemon.shutdown();
    daemon.join();
}

#[test]
fn stats_exposes_boruvka_witness_and_snapshot_counters() {
    // The per-dataset `stats` rows carry the Borůvka effectiveness
    // counters (docs/SERVING.md): witness hits, tree re-searches and
    // endgame-snapshot adoptions — present from the first reply (all
    // zero before any engine work) and moving once a request runs.
    let daemon = Daemon::bind("127.0.0.1:0", DaemonConfig::new().workers(2)).expect("bind");
    daemon
        .registry()
        .register("d", freeze(blobs(400, 41), 8), false)
        .expect("register");
    let mut client = Client::connect(&daemon);

    let dataset_row = |line: &str| -> (usize, usize, usize) {
        let parsed = Json::parse(line).expect("stats is valid JSON");
        let datasets = parsed
            .get("result")
            .and_then(|r| r.get("datasets"))
            .and_then(Json::as_slice)
            .unwrap_or_else(|| panic!("no datasets array in: {line}"));
        let row = datasets
            .iter()
            .find(|row| row.get("name").and_then(Json::as_str) == Some("d"))
            .unwrap_or_else(|| panic!("no row for dataset d in: {line}"));
        let field = |key: &str| {
            row.get(key)
                .and_then(Json::as_usize)
                .unwrap_or_else(|| panic!("no {key} counter in: {line}"))
        };
        (
            field("witness_hits"),
            field("researches"),
            field("snapshot_adopts"),
        )
    };

    let line = client.call(r#"{"id":1,"method":"stats"}"#);
    assert_eq!(
        dataset_row(&line),
        (0, 0, 0),
        "counters must exist and read zero before any engine work: {line}"
    );

    let ok = client.call(r#"{"id":2,"method":"cluster","params":{"dataset":"d","min_pts":4}}"#);
    assert!(ok.contains(r#""result""#), "{ok}");
    let line = client.call(r#"{"id":3,"method":"stats"}"#);
    let (hits, _, _) = dataset_row(&line);
    assert!(hits > 0, "a cluster run must score witness hits: {line}");

    daemon.shutdown();
    daemon.join();
}

#[test]
fn malformed_input_gets_typed_errors_not_disconnects() {
    let daemon = Daemon::bind("127.0.0.1:0", DaemonConfig::new().workers(1)).expect("bind");
    daemon
        .registry()
        .register("d", freeze(blobs(80, 3), 8), false)
        .expect("register");
    let mut client = Client::connect(&daemon);

    let cases = [
        ("{not json", "parse_error"),
        (r#"{"id":1,"method":"divide"}"#, "unknown_method"),
        (r#"{"id":2}"#, "bad_request"),
        (r#"{"id":3,"method":"cluster"}"#, "bad_request"),
        (
            r#"{"id":4,"method":"cluster","params":{"dataset":"d","min_pts":"four"}}"#,
            "bad_request",
        ),
        (
            r#"{"id":5,"method":"cluster","params":{"dataset":"d","linkage":"median"}}"#,
            "bad_params",
        ),
        (
            r#"{"id":6,"method":"cluster","params":{"dataset":"nope"}}"#,
            "unknown_dataset",
        ),
        (
            // Valid shape, invalid value: rejected by the engine, not a panic.
            r#"{"id":7,"method":"cluster","params":{"dataset":"d","min_pts":0}}"#,
            "bad_params",
        ),
        (
            // Ward × mutual-reachability is the engine's BadParams rejection
            // (Ward's own default metric is Euclidean, so force the clash).
            r#"{"id":8,"method":"cluster","params":{"dataset":"d","min_pts":4,"linkage":"ward","metric":"mutual-reachability"}}"#,
            "bad_params",
        ),
    ];
    for (line, code) in cases {
        let reply = client.call(line);
        assert_eq!(error_code(&reply), code, "{line} → {reply}");
    }

    // The same connection still serves valid work after every error.
    let ok = client.call(r#"{"id":9,"method":"cluster","params":{"dataset":"d","min_pts":3}}"#);
    assert!(ok.contains(r#""result""#), "{ok}");

    daemon.shutdown();
    daemon.join();
}

/// The blocker request every scheduling test uses to keep the single
/// worker lane busy: a 15-member sweep (~hundreds of ms) instead of one
/// ~20 ms cluster run, so admissions sent "while the lane is busy" have a
/// wide, reliable window.
const BLOCKER: &str = r#"{"id":"blocker","method":"sweep","params":{"dataset":"d","min_pts":[2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]}}"#;
const BLOCKER_RUNS: u64 = 15;

/// Waits (on the in-process counter — precise, no sampling race) until the
/// engine has started more runs than `engine_runs_before`.
fn wait_for_engine_start(daemon: &Daemon, engine_runs_before: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while daemon.counters().engine_runs == engine_runs_before {
        assert!(
            Instant::now() < deadline,
            "timed out waiting for the blocker to reach the engine"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn duplicate_inflight_requests_coalesce_into_one_engine_run() {
    const DUPES: usize = 5;
    // One worker lane: the blocker occupies it, so everything sent while
    // it runs is admitted (and coalesced) before the next job starts.
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        DaemonConfig::new().workers(1).queue_depth(16),
    )
    .expect("bind");
    daemon
        .registry()
        .register("d", freeze(blobs(2000, 17), 16), false)
        .expect("register");

    let mut dupes: Vec<Client> = (0..DUPES).map(|_| Client::connect(&daemon)).collect();
    let before = daemon.counters();

    // Occupy the single lane, then confirm it is actually running.
    let mut blocker = Client::connect(&daemon);
    blocker.send(BLOCKER);
    wait_for_engine_start(&daemon, before.engine_runs);

    // Five byte-identical requests from five connections: one leader gets
    // queued, four attach to its in-flight computation.
    for (i, client) in dupes.iter_mut().enumerate() {
        client.send(&format!(
            r#"{{"id":{i},"method":"cluster","params":{{"dataset":"d","min_pts":4,"min_cluster_size":7}}}}"#
        ));
    }
    let replies: Vec<String> = dupes.iter_mut().map(Client::recv).collect();
    let expected: Vec<String> = (0..DUPES)
        .map(|i| {
            let mut line = replies[0].clone();
            // Same payload, each under its own id.
            line.replace_range(
                ..line.find(',').expect("id field"),
                format!(r#"{{"id":{i}"#).as_str(),
            );
            line
        })
        .collect();
    assert_eq!(replies, expected, "coalesced payloads must be identical");
    assert!(replies[0].contains(r#""n_clusters""#), "{}", replies[0]);
    assert!(blocker.recv().contains("result"));

    let after = daemon.counters();
    assert_eq!(
        after.engine_runs - before.engine_runs,
        BLOCKER_RUNS + 1,
        "exactly the blocker sweep + one coalesced leader may hit the engine"
    );
    assert_eq!(
        after.coalesced - before.coalesced,
        (DUPES - 1) as u64,
        "every duplicate but the leader must be answered from the shared run"
    );

    daemon.shutdown();
    daemon.join();
}

#[test]
fn full_queue_sheds_with_typed_overloaded_error() {
    let daemon =
        Daemon::bind("127.0.0.1:0", DaemonConfig::new().workers(1).queue_depth(2)).expect("bind");
    daemon
        .registry()
        .register("d", freeze(blobs(2000, 23), 16), false)
        .expect("register");

    let before = daemon.counters();
    let mut blocker = Client::connect(&daemon);
    blocker.send(BLOCKER);
    wait_for_engine_start(&daemon, before.engine_runs);

    // One connection, three *distinct* requests (no coalescing): the
    // reader admits them in order, so the first two take the queue slots
    // and the third is shed immediately with a typed error.
    let mut client = Client::connect(&daemon);
    for (i, mcs) in [3usize, 4, 5].iter().enumerate() {
        client.send(&format!(
            r#"{{"id":{i},"method":"cluster","params":{{"dataset":"d","min_pts":2,"min_cluster_size":{mcs}}}}}"#
        ));
    }
    // The shed reply arrives first — admission control answers before the
    // queued work is even scheduled.
    let shed = client.recv();
    assert!(shed.contains(r#""id":2"#), "{shed}");
    assert_eq!(error_code(&shed), "overloaded");
    assert!(daemon.counters().shed >= 1);

    // The queued requests still complete normally after the blocker.
    for _ in 0..2 {
        let reply = client.recv();
        assert!(reply.contains(r#""n_clusters""#), "{reply}");
    }
    assert!(blocker.recv().contains("result"));

    daemon.shutdown();
    daemon.join();
}

#[test]
fn wire_shutdown_drains_and_stops_the_daemon() {
    let daemon = Daemon::bind("127.0.0.1:0", DaemonConfig::new().workers(2)).expect("bind");
    daemon
        .registry()
        .register("d", freeze(blobs(120, 29), 8), false)
        .expect("register");

    let mut client = Client::connect(&daemon);
    // Queue real work, then shut down on another connection: the queued
    // request must still be answered (drain, don't drop). Wait until the
    // engine has picked it up so the shutdown can't win the admission race.
    let before = daemon.counters();
    client.send(r#"{"id":1,"method":"cluster","params":{"dataset":"d","min_pts":3}}"#);
    let deadline = Instant::now() + Duration::from_secs(30);
    while daemon.counters().engine_runs == before.engine_runs {
        assert!(
            Instant::now() < deadline,
            "request never reached the engine"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut admin = Client::connect(&daemon);
    let reply = admin.call(r#"{"id":"bye","method":"shutdown"}"#);
    assert!(reply.contains(r#""stopping":true"#), "{reply}");
    let queued = client.recv();
    assert!(queued.contains(r#""n_clusters""#), "{queued}");

    let addr = daemon.local_addr();
    daemon.join();
    // After join the listener is gone: a fresh connect must fail (or be
    // refused on first use).
    let dead = TcpStream::connect(addr)
        .and_then(|mut s| {
            s.write_all(b"{\"id\":1,\"method\":\"stats\"}\n")?;
            let mut line = String::new();
            BufReader::new(s).read_line(&mut line)
        })
        .unwrap_or(0);
    assert_eq!(dead, 0, "daemon still answering after join()");
}
