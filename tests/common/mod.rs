//! Shared adversarial sorted-MST generator for the differential suites
//! (`dendrogram_differential.rs`, `census_crosscheck.rs`).
//!
//! [`mst_strategy`] implements the vendored-proptest [`Strategy`] trait
//! directly, so every case is a pure function of the RNG stream: the
//! standard `PROPTEST_CASE=<index>` replay path lands on the exact failing
//! tree, and [`MstCase::params`] carries the generating parameters into
//! failure messages.

#![allow(dead_code)] // each test binary uses a different subset

pub mod linkage;

use proptest::prelude::*;
use rand::prelude::*;

use pandora::core::Edge;

/// One generated test tree plus the parameters that produced it.
#[derive(Clone, Debug)]
pub struct MstCase {
    /// Vertex count (`edges.len() + 1`, except 0 for the empty tree).
    pub n_vertices: usize,
    /// Tree edges in generation order (NOT canonically sorted).
    pub edges: Vec<Edge>,
    /// Human-readable generating parameters, embedded in assert messages
    /// so a failure is diagnosable before it is replayed.
    pub params: String,
}

/// How edge weights are drawn — duplicate/tied weights are the adversarial
/// cases for the sorted-order tie-break.
#[derive(Clone, Copy, Debug)]
enum WeightMode {
    /// ~Distinct weights (2^20 levels; collisions possible but rare).
    Distinct,
    /// Heavily quantized: many ties, few distinct values.
    Quantized,
    /// Every weight equal: the dendrogram is decided by tie-break alone.
    AllEqual,
}

impl WeightMode {
    fn pick(rng: &mut StdRng) -> Self {
        match rng.gen_range(0..4u32) {
            0 => Self::AllEqual,
            1 => Self::Quantized,
            _ => Self::Distinct,
        }
    }

    fn draw(self, rng: &mut StdRng) -> f32 {
        match self {
            Self::Distinct => rng.gen_range(0..1 << 20) as f32 / 64.0,
            Self::Quantized => rng.gen_range(0..6) as f32 * 0.5,
            Self::AllEqual => 2.5,
        }
    }
}

/// The tree shapes the dendrogram stage is most sensitive to.
const SHAPES: [&str; 7] = [
    "tiny",  // n ∈ {0, 1, 2}: empty, vertex-only, single-edge
    "chain", // pure path: maximum dendrogram height
    "star",  // one hub: maximum degree, flattest hierarchy
    "balanced-binary",
    "caterpillar", // spine + legs: mixed chain/star
    "random-attach",
    "skewed-attach", // attach near the most recent vertex: deep and thin
];

/// A strategy over adversarial spanning trees.
///
/// Replayable by construction: values are drawn exclusively from the
/// passed RNG, which is exactly what the shim's `PROPTEST_CASE`
/// fast-forward assumes.
pub struct MstStrategy {
    /// Maximum vertex count for the non-tiny shapes (inclusive).
    pub max_n: usize,
}

/// Adversarial trees up to 400 vertices (the differential-suite default).
pub fn mst_strategy() -> MstStrategy {
    MstStrategy { max_n: 400 }
}

impl Strategy for MstStrategy {
    type Value = MstCase;

    fn generate(&self, rng: &mut StdRng) -> MstCase {
        let shape = SHAPES[rng.gen_range(0..SHAPES.len())];
        let wmode = WeightMode::pick(rng);
        let n = match shape {
            "tiny" => rng.gen_range(0..3usize),
            _ => rng.gen_range(3..=self.max_n),
        };
        let mut case = build_tree(shape, n, wmode, rng);
        // Feed the edges to consumers in a scrambled order: the canonical
        // sort, not generation order, must decide the dendrogram.
        case.edges.shuffle(rng);
        case
    }
}

fn build_tree(shape: &str, n: usize, wmode: WeightMode, rng: &mut StdRng) -> MstCase {
    let parent = |v: usize, rng: &mut StdRng| -> usize {
        match shape {
            "chain" => v - 1,
            "star" => 0,
            "balanced-binary" => (v - 1) / 2,
            // Even vertices form the spine, odd ones hang off it.
            "caterpillar" => {
                if v.is_multiple_of(2) {
                    v.saturating_sub(2)
                } else {
                    v - 1
                }
            }
            "skewed-attach" => v - 1 - rng.gen_range(0..2.min(v)),
            _ => rng.gen_range(0..v),
        }
    };
    let edges: Vec<Edge> = (1..n)
        .map(|v| {
            let p = parent(v, rng) as u32;
            let w = wmode.draw(rng);
            // Scrambled endpoint order: canonicalization is under test too.
            if rng.gen_bool(0.5) {
                Edge::new(p, v as u32, w)
            } else {
                Edge::new(v as u32, p, w)
            }
        })
        .collect();
    MstCase {
        n_vertices: n,
        edges,
        params: format!("shape={shape} n={n} weights={wmode:?}"),
    }
}

/// A deterministic all-equal-weights random tree (the n = 1000 tie-break
/// regression input; not a strategy so the size is exact, not sampled).
pub fn all_equal_weights_tree(n: usize, seed: u64) -> MstCase {
    let mut rng = StdRng::seed_from_u64(seed);
    build_tree("random-attach", n, WeightMode::AllEqual, &mut rng)
}
