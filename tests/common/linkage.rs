//! Shared adversarial point-set generator and naive agglomerative oracle
//! for the linkage differential suite (`linkage_differential.rs`).
//!
//! The oracle is the textbook O(n²·n) greedy: at every step it scans all
//! live cluster pairs, recomputes their linkage distance **directly from
//! the original points** (no Lance–Williams incrementalism — independence
//! from the engine under test is the point), and merges the global
//! minimum. For the reducible linkages the NN-chain engine serves, the
//! greedy tree is unique on tie-free inputs, so the two must agree.
//!
//! Height comparison contract (mirrors the engine's working spaces):
//!
//! * single / complete — min/max **selection** over f32 squared base
//!   distances is exact in any order, so oracle heights are bitwise equal
//!   to the engine's (`h` below is the f32 result widened to f64);
//! * average / Ward — the oracle accumulates in f64 while the engine folds
//!   f32, so heights match within a relative tolerance only.

use proptest::prelude::*;
use rand::prelude::*;

use pandora::mst::{Linkage, PointSet};

/// One generated point set plus the parameters that produced it.
#[derive(Clone, Debug)]
pub struct LinkageCase {
    pub points: PointSet,
    /// Human-readable generating parameters for failure messages.
    pub params: String,
}

/// Point-set shapes adversarial for agglomerative merging. Every shape
/// carries full-entropy continuous jitter so base distances are tie-free
/// by construction (the greedy tree is then unique — see module docs).
const SHAPES: [&str; 5] = [
    "uniform",     // no structure: generic positions
    "blobs",       // clustered: long runs of intra-cluster merges
    "line-jitter", // near-collinear: chained merges, skewed trees
    "grid-jitter", // near-regular: many nearly-equal candidate pairs
    "tight-pairs", // two-point micro-clusters merging first
];

/// A strategy over adversarial point sets (2 ≤ n ≤ `max_n`, dim ∈ 1..=3).
///
/// Implements the vendored-proptest [`Strategy`] trait directly so cases
/// are a pure function of the RNG stream (`PROPTEST_CASE=<index>` replay).
pub struct PointStrategy {
    pub max_n: usize,
}

/// Adversarial point sets up to 96 points (the oracle is O(n³); this keeps
/// a 96-case proptest run in seconds).
pub fn point_strategy() -> PointStrategy {
    PointStrategy { max_n: 96 }
}

impl Strategy for PointStrategy {
    type Value = LinkageCase;

    fn generate(&self, rng: &mut StdRng) -> LinkageCase {
        let shape = SHAPES[rng.gen_range(0..SHAPES.len())];
        let dim = rng.gen_range(1..=3usize);
        let n = rng.gen_range(2..=self.max_n);
        let mut coords = Vec::with_capacity(n * dim);
        let jitter = |rng: &mut StdRng, scale: f32| rng.gen_range(-scale..scale);
        match shape {
            "blobs" => {
                let k = rng.gen_range(1..=4usize);
                let centers: Vec<f32> = (0..k * dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
                for _ in 0..n {
                    let c = rng.gen_range(0..k);
                    for d in 0..dim {
                        coords.push(centers[c * dim + d] + jitter(rng, 1.0));
                    }
                }
            }
            "line-jitter" => {
                for i in 0..n {
                    coords.push(i as f32 + jitter(rng, 0.01));
                    for _ in 1..dim {
                        coords.push(jitter(rng, 0.01));
                    }
                }
            }
            "grid-jitter" => {
                let side = (n as f32).powf(1.0 / dim as f32).ceil() as usize;
                for i in 0..n {
                    let mut v = i;
                    for _ in 0..dim {
                        coords.push((v % side) as f32 + jitter(rng, 0.002));
                        v /= side;
                    }
                }
            }
            "tight-pairs" => {
                for i in 0..n {
                    let anchor = (i / 2) as f32 * 10.0;
                    for d in 0..dim {
                        let off = if d == 0 { anchor } else { 0.0 };
                        coords.push(off + jitter(rng, 0.05));
                    }
                }
            }
            _ => {
                for _ in 0..n * dim {
                    coords.push(rng.gen_range(-10.0..10.0f32));
                }
            }
        }
        LinkageCase {
            points: PointSet::new(coords, dim),
            params: format!("shape={shape} n={n} dim={dim}"),
        }
    }
}

/// One oracle merge: canonical endpoints (witness points for single
/// linkage, cluster representatives otherwise, smaller id first) and the
/// finalized height. For single/complete, `h` is an exact f32 value
/// widened to f64 (bitwise-comparable to the engine); for average/Ward it
/// is an independent f64 recomputation (tolerance-comparable).
#[derive(Clone, Debug, PartialEq)]
pub struct OracleMerge {
    pub u: u32,
    pub v: u32,
    pub h: f64,
}

/// Squared core distance of every point by brute force: the `min_pts`-th
/// smallest squared distance counting the point itself (the HDBSCAN\*
/// convention the kd-tree rows implement).
pub fn brute_core2(points: &PointSet, min_pts: usize) -> Vec<f32> {
    let n = points.len();
    (0..n)
        .map(|i| {
            let mut d: Vec<f32> = (0..n).map(|j| points.dist2(i, j)).collect();
            d.sort_by(f32::total_cmp);
            d[min_pts - 1]
        })
        .collect()
}

/// The naive global-minimum agglomerative oracle (see module docs).
///
/// `mreach` floors every base distance at the points' squared core
/// distances, exactly as the engine's matrix fill does.
pub fn naive_agglomerative(
    points: &PointSet,
    core2: &[f32],
    linkage: Linkage,
    mreach: bool,
) -> Vec<OracleMerge> {
    let n = points.len();
    // Squared base working distances, floored like the engine's fill.
    let mut base = vec![0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut d = points.dist2(i, j);
            if mreach {
                d = d.max(core2[i]).max(core2[j]);
            }
            base[i * n + j] = d;
            base[j * n + i] = d;
        }
    }

    let dim = points.dim();
    let mut members: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32]).collect();
    let mut alive = vec![true; n];
    let mut rep: Vec<u32> = (0..n as u32).collect();
    // f64 coordinate sums for Ward's closed form.
    let mut csum: Vec<f64> = points.coords().iter().map(|&c| c as f64).collect();

    // Linkage distance of clusters (a, b) recomputed from scratch:
    // (ordering key, finalized height, recorded endpoints).
    let cluster_dist = |a: usize,
                        b: usize,
                        members: &[Vec<u32>],
                        rep: &[u32],
                        csum: &[f64]|
     -> (f64, f64, (u32, u32)) {
        let reps = (rep[a].min(rep[b]), rep[a].max(rep[b]));
        match linkage {
            Linkage::Single | Linkage::Complete => {
                let mut sel = f32::NAN;
                let mut wit = (u32::MAX, u32::MAX);
                for &p in &members[a] {
                    for &q in &members[b] {
                        let d = base[p as usize * n + q as usize];
                        let better = if sel.is_nan() {
                            true
                        } else if linkage == Linkage::Single {
                            d < sel
                        } else {
                            d > sel
                        };
                        if better {
                            sel = d;
                            wit = (p.min(q), p.max(q));
                        }
                    }
                }
                let ends = if linkage == Linkage::Single {
                    wit
                } else {
                    reps
                };
                (sel as f64, sel.sqrt() as f64, ends)
            }
            Linkage::Average => {
                let mut sum = 0.0f64;
                for &p in &members[a] {
                    for &q in &members[b] {
                        sum += (base[p as usize * n + q as usize].sqrt()) as f64;
                    }
                }
                let mean = sum / (members[a].len() as f64 * members[b].len() as f64);
                (mean, mean, reps)
            }
            Linkage::Ward => {
                let (sa, sb) = (members[a].len() as f64, members[b].len() as f64);
                let mut d2 = 0.0f64;
                for k in 0..dim {
                    let diff = csum[a * dim + k] / sa - csum[b * dim + k] / sb;
                    d2 += diff * diff;
                }
                let key = (2.0 * sa * sb / (sa + sb)) * d2;
                (key, key.sqrt(), reps)
            }
        }
    };

    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    for _ in 1..n {
        let mut best: Option<(f64, usize, usize)> = None;
        for a in (0..n).filter(|&a| alive[a]) {
            for b in ((a + 1)..n).filter(|&b| alive[b]) {
                let (key, _, _) = cluster_dist(a, b, &members, &rep, &csum);
                if best.is_none_or(|(bk, ..)| key < bk) {
                    best = Some((key, a, b));
                }
            }
        }
        let (_, a, b) = best.expect("two live clusters remain");
        let (_, h, (u, v)) = cluster_dist(a, b, &members, &rep, &csum);
        merges.push(OracleMerge { u, v, h });

        let absorbed = std::mem::take(&mut members[b]);
        members[a].extend(absorbed);
        alive[b] = false;
        rep[a] = rep[a].min(rep[b]);
        for k in 0..dim {
            csum[a * dim + k] += csum[b * dim + k];
        }
    }
    merges
}
