//! The dendrogram differential harness: every [`DendrogramBackend`] ×
//! {serial, threaded} must produce **bit-identical** dendrograms (parents,
//! heights, chain keys) and identical downstream HDBSCAN labels — on
//! adversarial generated trees (chains, stars, balanced binary, tied
//! weights, n ∈ {0, 1, 2}) and on pipeline-produced MSTs through
//! [`Session::run`]. The ground truth is the sequential union–find oracle
//! (paper Algorithm 2).
//!
//! Run under `PANDORA_THREADS ∈ {1, 4}` by the CI matrix; replay one case
//! with `PROPTEST_CASE=<index>`.

mod common;

use std::sync::Arc;

use common::{all_equal_weights_tree, mst_strategy};
use proptest::prelude::*;

use pandora::core::baseline::dendrogram_union_find;
use pandora::core::expansion::{assign_chain_keys_into, sort_chain_keys};
use pandora::core::levels::build_hierarchy;
use pandora::core::{DendrogramBackend, DendrogramWorkspace, SortedMst};
use pandora::data::synthetic::gaussian_blobs;
use pandora::exec::ExecCtx;
use pandora::hdbscan::{ClusterRequest, DatasetIndex};

fn contexts() -> [(&'static str, ExecCtx); 2] {
    [
        ("serial", ExecCtx::serial()),
        ("threads", ExecCtx::threads()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The core differential property: every backend, under every context,
    /// equals the oracle bit-for-bit (hence also each other), validates
    /// structurally, and agrees on the derived height.
    #[test]
    fn all_backends_and_contexts_match_the_oracle(case in mst_strategy()) {
        let mst = SortedMst::from_edges(&ExecCtx::serial(), case.n_vertices, &case.edges);
        let oracle = dendrogram_union_find(&mst);
        let oracle_height = oracle.height();
        for backend in DendrogramBackend::ALL {
            for (ctx_name, ctx) in contexts() {
                let mut ws = DendrogramWorkspace::new();
                let (got, stats) = backend.build(&ctx, &mst, &mut ws);
                prop_assert!(
                    got.validate().is_ok(),
                    "invalid dendrogram: backend={} ctx={ctx_name} case[{}]",
                    backend.name(), case.params
                );
                prop_assert_eq!(
                    &got, &oracle,
                    "backend={} ctx={} case[{}]", backend.name(), ctx_name, &case.params
                );
                prop_assert_eq!(got.height(), oracle_height);
                prop_assert!(stats.n_levels >= 1);
                prop_assert_eq!(stats.level_edge_counts[0], mst.n_edges());
            }
        }
    }

    /// The α-contraction chain keys themselves (not just the stitched
    /// parents) are bit-identical between serial and threaded contexts.
    #[test]
    fn chain_keys_bit_identical_across_contexts(case in mst_strategy()) {
        let mst = SortedMst::from_edges(&ExecCtx::serial(), case.n_vertices, &case.edges);
        let mut keys = Vec::new();
        let mut reference: Option<Vec<u64>> = None;
        for (ctx_name, ctx) in contexts() {
            let hierarchy = build_hierarchy(&ctx, &mst);
            assign_chain_keys_into(&ctx, &hierarchy, &mut keys);
            sort_chain_keys(&ctx, &mut keys);
            match &reference {
                None => reference = Some(keys.clone()),
                Some(expect) => prop_assert_eq!(
                    &keys, expect,
                    "chain keys diverge: ctx={} case[{}]", ctx_name, &case.params
                ),
            }
        }
    }
}

/// Tie-break regression (satellite): with every weight equal at n = 1000,
/// the dendrogram is decided purely by the canonical sorted order — and
/// every backend × context must still agree with the oracle, regardless of
/// the order the edges arrive in.
#[test]
fn all_equal_weights_at_n_1000_are_deterministic() {
    let case = all_equal_weights_tree(1000, 0xD15C0);
    let serial = ExecCtx::serial();
    let mst = SortedMst::from_edges(&serial, case.n_vertices, &case.edges);

    // Input permutation cannot change the canonical form.
    let mut scrambled = case.edges.clone();
    scrambled.reverse();
    scrambled.rotate_left(271);
    let mst2 = SortedMst::from_edges(&ExecCtx::threads(), case.n_vertices, &scrambled);
    assert_eq!(mst.src, mst2.src, "case[{}]", case.params);
    assert_eq!(mst.dst, mst2.dst, "case[{}]", case.params);
    assert_eq!(mst.weight, mst2.weight, "case[{}]", case.params);

    let oracle = dendrogram_union_find(&mst);
    for backend in DendrogramBackend::ALL {
        for (ctx_name, ctx) in contexts() {
            let mut ws = DendrogramWorkspace::new();
            let (got, _) = backend.build(&ctx, &mst, &mut ws);
            assert_eq!(
                got,
                oracle,
                "backend={} ctx={ctx_name} case[{}]",
                backend.name(),
                case.params
            );
        }
    }
}

/// Pipeline-produced MSTs: through `Session::run`, every backend (selected
/// per request and via the default resolution) yields identical
/// dendrograms, labels and probabilities under both contexts.
#[test]
fn session_results_identical_across_backends_and_contexts() {
    let (points, _) = gaussian_blobs(600, 3, 4, 6.0, 1.0, 42);
    let mut reference = None;
    for (ctx_name, ctx) in contexts() {
        let index = Arc::new(
            DatasetIndex::freeze_with_ctx(ctx, points.clone(), 8).expect("freeze succeeds"),
        );
        let mut session = index.session();
        for backend in DendrogramBackend::ALL {
            let request = ClusterRequest::new().min_pts(4).dendrogram(backend);
            let result = session.run(&request).expect("valid request");
            assert_eq!(result.labels.len(), 600);
            match &reference {
                None => reference = Some(result),
                Some(expect) => {
                    let what = format!("backend={} ctx={ctx_name}", backend.name());
                    assert_eq!(result.dendrogram, expect.dendrogram, "{what}: dendrogram");
                    assert_eq!(result.labels, expect.labels, "{what}: labels");
                    assert_eq!(
                        result.probabilities, expect.probabilities,
                        "{what}: probabilities"
                    );
                    assert_eq!(result.mst.src, expect.mst.src, "{what}: mst");
                }
            }
        }
        // Default resolution (no per-request override; honours
        // PANDORA_DENDROGRAM, which the CI matrix sweeps) is one of the
        // backends above, so it must match too.
        let result = session
            .run(&ClusterRequest::new().min_pts(4))
            .expect("valid request");
        let expect = reference.as_ref().expect("reference set");
        assert_eq!(result.labels, expect.labels, "default backend: labels");
        assert_eq!(
            result.dendrogram, expect.dendrogram,
            "default backend: dendrogram"
        );
    }
}
