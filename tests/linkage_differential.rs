//! The linkage differential harness: every [`Linkage`] × {serial,
//! threaded} NN-chain run must (a) be **bit-identical** across contexts,
//! (b) match the naive O(n²·n) global-minimum agglomerative oracle on
//! adversarial tie-free point sets (bitwise for single/complete, f64
//! tolerance for average/Ward — see `common/linkage.rs` for the
//! contract), and (c) for single linkage, coincide with the Borůvka EMST
//! fast path — the correctness keystone that lets the serving tier swap
//! one for the other.
//!
//! Mutual reachability at `min_pts ≥ 2` floors many pairs to the same
//! core distance, so ties are inherent and greedy trees are no longer
//! unique; those cases assert the tie-robust invariants instead (weight
//! multisets, context determinism) rather than oracle equality.
//!
//! Run under `PANDORA_THREADS ∈ {1, 4}` by the CI matrix; replay one case
//! with `PROPTEST_CASE=<index>`.

mod common;

use std::sync::Arc;

use common::linkage::{brute_core2, naive_agglomerative, point_strategy};
use proptest::prelude::*;

use pandora::core::{DendrogramBackend, Edge};
use pandora::exec::{ExecCtx, ScratchPool};
use pandora::hdbscan::{ClusterRequest, DatasetIndex};
use pandora::mst::{emst, nnchain_merges, EmstParams, Linkage, PointSet};

fn contexts() -> [(&'static str, ExecCtx); 2] {
    [
        ("serial", ExecCtx::serial()),
        ("threads", ExecCtx::threads()),
    ]
}

/// Runs the NN-chain engine and asserts pool-lease balance.
fn engine_merges(
    ctx: &ExecCtx,
    points: &PointSet,
    core2: &[f32],
    linkage: Linkage,
    mreach: bool,
) -> Vec<Edge> {
    let pool = ScratchPool::new();
    let run = nnchain_merges(ctx, points, core2, linkage, mreach, &pool);
    assert_eq!(pool.outstanding(), 0, "leaked pool leases ({linkage})");
    run.merges
}

/// Canonical form of a merge/edge list: sorted by endpoint pair (the two
/// engines merge in different orders; the spanning structure is what must
/// agree).
fn canon(edges: &[Edge]) -> Vec<(u32, u32, f32)> {
    let mut v: Vec<(u32, u32, f32)> = edges
        .iter()
        .map(|e| (e.u.min(e.v), e.u.max(e.v), e.w))
        .collect();
    v.sort_by_key(|e| (e.0, e.1));
    v
}

/// Sorted weight bit patterns (the tie-robust multiset invariant).
fn weight_multiset(edges: &[Edge]) -> Vec<u32> {
    let mut w: Vec<u32> = edges.iter().map(|e| e.w.to_bits()).collect();
    w.sort_unstable();
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The oracle property: every linkage, under every context, produces
    /// the unique greedy agglomerative tree on tie-free Euclidean inputs.
    #[test]
    fn every_linkage_matches_the_naive_oracle(case in point_strategy()) {
        for linkage in Linkage::ALL {
            let oracle = naive_agglomerative(&case.points, &[], linkage, false);
            let mut seen: Option<Vec<Edge>> = None;
            for (ctx_name, ctx) in contexts() {
                let merges = engine_merges(&ctx, &case.points, &[], linkage, false);
                prop_assert_eq!(
                    merges.len(), oracle.len(),
                    "merge count: {} ctx={} case[{}]", linkage, ctx_name, &case.params
                );
                let got = canon(&merges);
                let bitwise = matches!(linkage, Linkage::Single | Linkage::Complete);
                for (g, o) in got.iter().zip(&oracle_canon(&oracle)) {
                    prop_assert_eq!(
                        (g.0, g.1), (o.0, o.1),
                        "endpoints: {} ctx={} case[{}]", linkage, ctx_name, &case.params
                    );
                    if bitwise {
                        prop_assert_eq!(
                            g.2 as f64, o.2,
                            "exact height: {} ctx={} case[{}]", linkage, ctx_name, &case.params
                        );
                    } else {
                        let tol = 1e-4 * o.2.abs().max(1e-6);
                        prop_assert!(
                            (g.2 as f64 - o.2).abs() <= tol,
                            "height {} vs oracle {}: {} ctx={} case[{}]",
                            g.2, o.2, linkage, ctx_name, &case.params
                        );
                    }
                }
                // Serial ≡ threaded, bit for bit (merge order included).
                match &seen {
                    None => seen = Some(merges),
                    Some(first) => {
                        prop_assert_eq!(first.len(), merges.len());
                        for (a, b) in first.iter().zip(&merges) {
                            prop_assert_eq!(
                                (a.u, a.v, a.w.to_bits()), (b.u, b.v, b.w.to_bits()),
                                "context divergence: {} case[{}]", linkage, &case.params
                            );
                        }
                    }
                }
            }
        }
    }

    /// The correctness keystone: NN-chain single linkage emits exactly the
    /// EMST edge set (witness pairs realize the cut-property minima), so
    /// the serving tier's fast path and the general engine are one
    /// algorithm in two costumes.
    #[test]
    fn nnchain_single_equals_the_boruvka_emst(case in point_strategy()) {
        let ctx = ExecCtx::serial();
        // min_pts = 1: mutual reachability degenerates to Euclidean, so
        // the comparison is tie-free and bitwise.
        let tree = emst(&ctx, &case.points, &EmstParams::with_min_pts(1));
        let merges = engine_merges(&ctx, &case.points, &[], Linkage::Single, false);
        let bits = |e: &[Edge]| {
            let mut v: Vec<(u32, u32, u32)> = e
                .iter()
                .map(|e| (e.u.min(e.v), e.u.max(e.v), e.w.to_bits()))
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(
            bits(&merges), bits(&tree.edges),
            "single ≠ EMST: case[{}]", &case.params
        );
    }

    /// Mutual reachability (`min_pts ≥ 2`) introduces inherent ties, so
    /// the tie-robust invariants take over: the single-linkage weight
    /// multiset still equals the Borůvka mutual-reachability MST's (MST
    /// weight multisets are unique even under ties), every linkage stays
    /// bit-identical across contexts, and no height sits below the floor.
    #[test]
    fn mutual_reachability_holds_the_tie_robust_invariants(case in point_strategy()) {
        let n = case.points.len();
        for min_pts in [2usize, 4] {
            if min_pts > n {
                continue;
            }
            let core2 = brute_core2(&case.points, min_pts);
            let floor = core2.iter().cloned().fold(f32::INFINITY, f32::min).sqrt();
            let params = EmstParams::with_min_pts(min_pts);
            let tree = emst(&ExecCtx::serial(), &case.points, &params);
            for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
                let serial =
                    engine_merges(&ExecCtx::serial(), &case.points, &core2, linkage, true);
                let threaded =
                    engine_merges(&ExecCtx::threads(), &case.points, &core2, linkage, true);
                prop_assert_eq!(
                    canon(&serial).iter().map(|e| (e.0, e.1, e.2.to_bits())).collect::<Vec<_>>(),
                    canon(&threaded).iter().map(|e| (e.0, e.1, e.2.to_bits())).collect::<Vec<_>>(),
                    "context divergence: {} min_pts={} case[{}]", linkage, min_pts, &case.params
                );
                for e in &serial {
                    prop_assert!(
                        e.w >= floor,
                        "height {} below mreach floor {}: {} case[{}]",
                        e.w, floor, linkage, &case.params
                    );
                }
                if linkage == Linkage::Single {
                    prop_assert_eq!(
                        weight_multiset(&serial), weight_multiset(&tree.edges),
                        "single-linkage weight multiset ≠ MST: min_pts={} case[{}]",
                        min_pts, &case.params
                    );
                }
            }
        }
    }
}

/// Canonical form of an oracle merge list (same ordering as [`canon`]).
fn oracle_canon(merges: &[common::linkage::OracleMerge]) -> Vec<(u32, u32, f64)> {
    let mut v: Vec<(u32, u32, f64)> = merges.iter().map(|m| (m.u, m.v, m.h)).collect();
    v.sort_by_key(|m| (m.0, m.1));
    v
}

/// Both dendrogram backends consume an NN-chain merge sequence unchanged:
/// served results per linkage are bit-identical across
/// [`DendrogramBackend`]s, end to end through [`Session::run`].
#[test]
fn both_dendrogram_backends_consume_every_linkage_identically() {
    use pandora::data::synthetic::gaussian_blobs;
    let (points, _) = gaussian_blobs(400, 2, 3, 80.0, 0.9, 31);
    let index =
        Arc::new(DatasetIndex::freeze_with_ctx(ExecCtx::serial(), points, 8).expect("freeze"));
    let mut session = index.session();
    for linkage in Linkage::ALL {
        let mut reference = None;
        for backend in DendrogramBackend::ALL {
            let request = ClusterRequest::new()
                .min_pts(4)
                .linkage(linkage)
                .dendrogram(backend);
            let served = session.run(&request).expect("valid request");
            served.dendrogram.validate().unwrap();
            match &reference {
                None => reference = Some(served),
                Some(first) => {
                    assert_eq!(
                        first.dendrogram,
                        served.dendrogram,
                        "backend divergence: {linkage} × {}",
                        backend.name()
                    );
                    assert_eq!(first.labels, served.labels);
                    assert_eq!(first.probabilities, served.probabilities);
                }
            }
        }
        assert_eq!(session.scratch_outstanding(), 0, "{linkage}");
    }
}
