//! Cross-crate equivalence: PANDORA must produce *exactly* the dendrogram of
//! the sequential union–find baseline (and the top-down baseline) on every
//! dataset family of Table 2, for multiple `minPts`, in both serial and
//! parallel execution.

use pandora::core::baseline::{dendrogram_top_down, dendrogram_union_find};
use pandora::core::pandora as pandora_algo;
use pandora::core::{Edge, SortedMst};
use pandora::data::all_datasets;
use pandora::exec::ExecCtx;
use pandora::mst::{boruvka_mst_seeded, core_distances2, KdTree, MutualReachability};

fn mutual_reachability_mst(
    ctx: &ExecCtx,
    points: &pandora::mst::PointSet,
    min_pts: usize,
) -> Vec<Edge> {
    let tree = KdTree::build(ctx, points);
    let core2 = core_distances2(ctx, points, &tree, min_pts);
    let mut node_core2 = Vec::new();
    tree.min_core2_into(&core2, &mut node_core2);
    let metric = MutualReachability { core2: &core2 };
    boruvka_mst_seeded(ctx, points, &tree, &metric, None, &node_core2)
}

#[test]
fn pandora_equals_union_find_on_all_table2_families() {
    let ctx = ExecCtx::threads();
    for spec in all_datasets() {
        let points = spec.generate(2_500, 99);
        for min_pts in [2usize, 4] {
            let edges = mutual_reachability_mst(&ctx, &points, min_pts);
            let mst = SortedMst::from_edges(&ctx, points.len(), &edges);
            let (got, _) = pandora_algo::dendrogram_from_sorted(&ctx, &mst);
            got.validate().unwrap_or_else(|e| {
                panic!("{} minPts={min_pts}: invalid dendrogram: {e}", spec.name)
            });
            let expect = dendrogram_union_find(&mst);
            assert_eq!(
                got, expect,
                "{} minPts={min_pts}: PANDORA != union-find",
                spec.name
            );
        }
    }
}

#[test]
fn pandora_equals_top_down_on_selected_families() {
    let ctx = ExecCtx::serial();
    for name in ["Hacc37M", "Uniform100M2D", "RoadNetwork3"] {
        let spec = pandora::data::by_name(name).unwrap();
        let points = spec.generate(1_200, 5);
        let edges = mutual_reachability_mst(&ctx, &points, 2);
        let mst = SortedMst::from_edges(&ctx, points.len(), &edges);
        let (got, _) = pandora_algo::dendrogram_from_sorted(&ctx, &mst);
        let expect = dendrogram_top_down(&mst);
        assert_eq!(got, expect, "{name}: PANDORA != top-down");
    }
}

#[test]
fn serial_and_parallel_agree_bit_for_bit() {
    for spec in all_datasets().into_iter().take(5) {
        let points = spec.generate(3_000, 123);
        let edges = mutual_reachability_mst(&ExecCtx::threads(), &points, 2);
        let serial = pandora::core::pandora::dendrogram(&ExecCtx::serial(), points.len(), &edges);
        let parallel =
            pandora::core::pandora::dendrogram(&ExecCtx::threads(), points.len(), &edges);
        assert_eq!(serial, parallel, "{}", spec.name);
    }
}

#[test]
fn extreme_shapes_chain_star_balanced() {
    let ctx = ExecCtx::threads();
    let n = 4_096usize;

    // Chain with descending weights: fully skewed, no α edges at level 0.
    let chain: Vec<Edge> = (0..n - 1)
        .map(|i| Edge::new(i as u32, i as u32 + 1, (n - i) as f32))
        .collect();
    // Star: the other fully-skewed extreme.
    let star: Vec<Edge> = (1..n)
        .map(|i| Edge::new(0, i as u32, (n - i) as f32))
        .collect();
    // Balanced binary merge tree: vertex i joins i/2's cluster.
    let balanced: Vec<Edge> = (1..n)
        .map(|i| Edge::new((i / 2) as u32, i as u32, 1.0 / (i as f32)))
        .collect();

    for (label, edges) in [("chain", chain), ("star", star), ("balanced", balanced)] {
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let (got, stats) = pandora_algo::dendrogram_from_sorted(&ctx, &mst);
        got.validate().unwrap();
        assert_eq!(got, dendrogram_union_find(&mst), "{label}");
        // Level bound from the paper §4.2.
        assert!(
            stats.n_levels <= (n + 1).ilog2() as usize + 2,
            "{label}: {} levels",
            stats.n_levels
        );
    }
}
