//! Verifies the EMST hot path's allocation contract with a counting global
//! allocator: steady-state k-NN and nearest-foreign queries must perform
//! **zero** heap allocations per query, and the batched core-distance
//! kernel must allocate only its output plus per-chunk scratch.
//!
//! This file holds a single test function: the allocation counter is
//! process-global, so concurrently running tests would pollute each
//! other's windows.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use pandora::exec::ExecCtx;
use pandora::hdbscan::{Hdbscan, HdbscanParams};
use pandora::mst::{
    boruvka_mst, core_distances2, Euclidean, KdTree, KnnHeap, MutualReachability, PointSet,
};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to the System allocator plus an atomic counter
// bump — layout handling, uniqueness and liveness of returned pointers are
// exactly System's, which upholds the GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY (each method below): the caller's GlobalAlloc obligations
    // (valid layout; ptr previously returned by this allocator with the
    // same layout) are forwarded verbatim to System, which they were
    // ultimately issued by.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller guarantees `layout` is valid; forwarded as-is.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: see impl-level note — obligations forwarded to System.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from a matching System allocation.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: see impl-level note — obligations forwarded to System.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` come from a matching System allocation.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Minimum allocation count over `reps` runs of `f`.
///
/// The counter is process-wide, so a measurement window can be polluted by
/// unrelated runtime/harness allocations on other threads (observed: ~2
/// stray allocations in roughly half of CI runs). A *real* per-query
/// allocation shows up in every window at n-proportional volume, so taking
/// the minimum keeps the contracts exact without the flake.
fn min_allocs_over(reps: usize, mut f: impl FnMut()) -> usize {
    (0..reps.max(1))
        .map(|_| allocs_during(&mut f))
        .min()
        .expect("at least one rep")
}

#[test]
fn steady_state_queries_do_not_allocate() {
    // Serial context: the measurement thread is the only allocator user.
    let ctx = ExecCtx::serial();
    let n = 2000usize;
    let mut coords = Vec::with_capacity(n * 3);
    // Deterministic pseudo-random coordinates (LCG), no rand dependency.
    let mut state = 0x2545F491_4F6CDD1Du64;
    for _ in 0..n * 3 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        coords.push(((state >> 40) as f32) / (1 << 24) as f32 * 100.0);
    }
    let points = PointSet::new(coords, 3);
    let tree = KdTree::build(&ctx, &points);

    // --- knn_into with a reused heap: zero allocations per query. ---
    let k = 8usize;
    let mut heap = KnnHeap::new(k);
    tree.knn_into(&points, 0, k, &mut heap); // warm the heap's capacity
    let knn_allocs = min_allocs_over(3, || {
        for q in 0..n as u32 {
            tree.knn_into(&points, q, k, &mut heap);
            assert_eq!(heap.sorted().len(), k);
        }
    });
    assert_eq!(knn_allocs, 0, "knn_into allocated in the steady state");

    // --- nearest_foreign: zero allocations per query (incl. the
    //     mutual-reachability metric with subtree core bounds). ---
    let core2 = core_distances2(&ctx, &points, &tree, 2);
    let mut node_core2 = Vec::new();
    tree.min_core2_into(&core2, &mut node_core2);
    let comp: Vec<u32> = (0..n as u32).map(|v| v % 7).collect();
    let purity = tree.component_purity(&comp);
    let metric = MutualReachability { core2: &core2 };
    let foreign_allocs = min_allocs_over(3, || {
        for q in 0..n as u32 {
            let found = tree.nearest_foreign(&points, &metric, q, &comp, &purity, &node_core2);
            assert!(found.is_some());
            let found = tree.nearest_foreign(&points, &Euclidean, q, &comp, &purity, &[]);
            assert!(found.is_some());
        }
    });
    assert_eq!(
        foreign_allocs, 0,
        "nearest_foreign allocated in the steady state"
    );

    // --- Batched core distances: output vector + per-chunk scratch only,
    //     nothing proportional to the query count. ---
    let core_allocs = min_allocs_over(3, || {
        let out = core_distances2(&ctx, &points, &tree, 9);
        assert_eq!(out.len(), n);
    });
    assert!(
        core_allocs <= 2 + n / 256 + 1,
        "core_distances2 made {core_allocs} allocations for {n} queries"
    );

    // --- Full Borůvka: the round-persistent buffers are allocated once up
    //     front (via a run-local scratch pool, whose free lists add a few
    //     bookkeeping allocations when the buffers are returned), so an
    //     entire run (every round, every per-lane query) stays within a
    //     small constant allocation budget — nothing proportional to
    //     n × rounds. With ~2000 points and ~10 rounds, a per-query or
    //     per-round-per-point allocation would blow well past the budget.
    let boruvka_allocs = min_allocs_over(3, || {
        let edges = boruvka_mst(&ctx, &points, &tree, &metric);
        assert_eq!(edges.len(), n - 1);
    });
    assert!(
        boruvka_allocs <= 24,
        "boruvka_mst made {boruvka_allocs} allocations for a full run \
         (steady-state queries must be allocation-free per lane)"
    );

    // --- Warm engine: after the first run, every stage workspace (kd-tree,
    //     k-NN rows, Borůvka buffers, contraction hierarchy, chain keys) is
    //     reused, so a complete warm `run_with` allocates only its outputs
    //     (result vectors, condensed tree, a few per-level bookkeeping
    //     vectors) — a small constant w.r.t. n. At n = 2000 a single leaked
    //     per-point or per-round reallocation pattern adds thousands of
    //     allocations, an order of magnitude past this bound; steady-state
    //     reuse is thereby proven, not assumed.
    let driver = Hdbscan::with_ctx(HdbscanParams::default(), ExecCtx::serial());
    let mut engine = driver.engine(&points);
    engine.prepare(8);
    let _ = engine.run_with(8); // first run: populates every workspace
    let warm_allocs = min_allocs_over(3, || {
        let result = engine.run_with(8);
        assert_eq!(result.labels.len(), n);
    });
    assert!(
        warm_allocs <= 160,
        "a warm engine run made {warm_allocs} allocations \
         (stage workspaces are not being reused)"
    );
    // And the books balance: nothing stays leased between runs.
    let session = engine.session().expect("warm engine has a session");
    assert_eq!(session.scratch_outstanding(), 0);

    // --- Warm dendrogram workspace, threaded path: once primed, a full
    //     α-contraction run through `ExecCtx::threads()` allocates only the
    //     returned dendrogram arrays, a few per-level bookkeeping vectors
    //     and the pool's per-region dispatch latches — the same constant
    //     budget as the warm engine, nothing proportional to n. The tree
    //     is larger than the dispatch grain so the threaded lanes really
    //     engage (under PANDORA_THREADS=1 the pool runs inline).
    use pandora::core::{dendrogram_from_sorted_with, DendrogramWorkspace, Edge, SortedMst};
    let tctx = ExecCtx::threads();
    let nd = 6000usize;
    let mut wstate = 0x9E3779B97F4A7C15u64;
    let edges: Vec<Edge> = (1..nd)
        .map(|v| {
            wstate = wstate
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let parent = (wstate >> 33) as usize % v;
            Edge::new(parent as u32, v as u32, ((wstate >> 16) & 0xFFFF) as f32)
        })
        .collect();
    let mst = SortedMst::from_edges(&tctx, nd, &edges);
    let mut dendro_ws = DendrogramWorkspace::new();
    let _ = dendrogram_from_sorted_with(&tctx, &mst, &mut dendro_ws); // prime
    let warm_dendro_allocs = min_allocs_over(3, || {
        let (d, _) = dendrogram_from_sorted_with(&tctx, &mst, &mut dendro_ws);
        assert_eq!(d.n_edges(), nd - 1);
    });
    assert!(
        warm_dendro_allocs <= 160,
        "a warm threaded dendrogram run made {warm_dendro_allocs} allocations \
         (the workspace is not being reused through the threaded path)"
    );
    assert_eq!(dendro_ws.scratch().outstanding(), 0);

    // --- Warm work-optimal backend through the SAME workspace: every
    //     per-split-level array (edge-rank halves, remapped endpoints,
    //     attach tables, component roots/tops, the contraction DSU, leaf
    //     `rep` scratch) is leased from the pool, so a warm run allocates
    //     only the returned dendrogram arrays, the frontier bookkeeping
    //     Vec<Subproblem>s and one small SeqDsu per leaf. At nd = 6000 the
    //     splitter runs two real levels; the pre-pooling implementation
    //     cloned four n-sized arrays per split and allocated ~10 more
    //     inside it — hundreds of allocations, far past this budget.
    use pandora::core::dendrogram_work_optimal_with;
    let _ = dendrogram_work_optimal_with(&tctx, &mst, &mut dendro_ws); // prime
    let warm_wo_allocs = min_allocs_over(3, || {
        let (d, _) = dendrogram_work_optimal_with(&tctx, &mst, &mut dendro_ws);
        assert_eq!(d.n_edges(), nd - 1);
    });
    assert!(
        warm_wo_allocs <= 48,
        "a warm work-optimal run made {warm_wo_allocs} allocations \
         (split-level buffers are not being pooled)"
    );
    assert_eq!(dendro_ws.scratch().outstanding(), 0);
}
