//! Failure injection: malformed inputs must fail loudly and precisely, not
//! corrupt results.

use pandora::core::pandora as pandora_algo;
use pandora::core::{Edge, SortedMst};
use pandora::exec::ExecCtx;
use pandora::mst::PointSet;

#[test]
#[should_panic(expected = "must have")]
fn too_few_edges_rejected() {
    let ctx = ExecCtx::serial();
    let _ = SortedMst::from_edges(&ctx, 4, &[Edge::new(0, 1, 1.0)]);
}

#[test]
#[should_panic(expected = "must have")]
fn too_many_edges_rejected() {
    let ctx = ExecCtx::serial();
    let edges = vec![
        Edge::new(0, 1, 1.0),
        Edge::new(1, 2, 1.0),
        Edge::new(0, 2, 1.0),
    ];
    let _ = SortedMst::from_edges(&ctx, 3, &edges);
}

#[test]
#[should_panic(expected = "self-loop")]
fn self_loops_rejected() {
    let ctx = ExecCtx::serial();
    let _ = SortedMst::from_edges(&ctx, 2, &[Edge::new(1, 1, 1.0)]);
}

#[test]
#[should_panic(expected = "out of range")]
fn out_of_range_endpoint_rejected() {
    let ctx = ExecCtx::serial();
    let _ = SortedMst::from_edges(&ctx, 2, &[Edge::new(0, 5, 1.0)]);
}

#[test]
#[should_panic(expected = "NaN")]
fn nan_weight_rejected() {
    let ctx = ExecCtx::serial();
    let _ = SortedMst::from_edges(&ctx, 2, &[Edge::new(0, 1, f32::NAN)]);
}

#[test]
fn cycle_detected_by_validation() {
    // A "tree" with a duplicated edge instead of a connector: right count,
    // wrong topology; from_sorted_arrays defers to validate_tree.
    let mst = SortedMst::from_sorted_arrays(4, vec![0, 0, 0], vec![1, 1, 2], vec![3.0, 2.0, 1.0]);
    assert!(mst.validate_tree().is_err());
}

#[test]
fn disconnected_forest_fails_validation() {
    // Edge count is taken on faith by from_sorted_arrays; the DSU check
    // must catch the cycle implied by a disconnected "tree".
    let mst = SortedMst::from_sorted_arrays(4, vec![0, 2, 0], vec![1, 3, 1], vec![3.0, 2.0, 1.0]);
    assert!(mst.validate_tree().is_err());
}

#[test]
#[should_panic(expected = "multiple of dim")]
fn pointset_dimension_mismatch() {
    let _ = PointSet::new(vec![1.0, 2.0, 3.0], 2);
}

#[test]
fn pandora_on_degenerate_weights_is_exact() {
    // All-equal weights: maximal tie-breaking stress. PANDORA must still
    // match union-find exactly via the canonical order.
    let ctx = ExecCtx::threads();
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(4);
    for n in [10usize, 100, 1000] {
        let edges: Vec<Edge> = (1..n)
            .map(|v| Edge::new(rng.gen_range(0..v) as u32, v as u32, 1.0))
            .collect();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let (got, _) = pandora_algo::dendrogram_from_sorted(&ctx, &mst);
        got.validate().unwrap();
        assert_eq!(
            got,
            pandora::core::baseline::dendrogram_union_find(&mst),
            "n={n}"
        );
    }
}

#[test]
fn zero_and_negative_weights_handled() {
    let ctx = ExecCtx::serial();
    let edges = vec![
        Edge::new(0, 1, 0.0),
        Edge::new(1, 2, -1.5),
        Edge::new(2, 3, 2.0),
    ];
    let mst = SortedMst::from_edges(&ctx, 4, &edges);
    let (d, _) = pandora_algo::dendrogram_from_sorted(&ctx, &mst);
    d.validate().unwrap();
    // Heaviest (2.0) is the root; the negative weight sorts last.
    assert_eq!(mst.weight[0], 2.0);
    assert_eq!(mst.weight[2], -1.5);
}

#[test]
fn io_rejects_corrupt_files() {
    use pandora::data::io;
    assert!(io::from_bytes(b"garbage").is_err());
    let mut truncated = io::to_bytes(&PointSet::new(vec![1.0, 2.0], 2));
    truncated.pop();
    assert!(io::from_bytes(&truncated).is_err());
}
