//! The engine's contract, proptest-enforced: every result a warm
//! [`HdbscanEngine`] sweep produces is **bit-identical** to the
//! corresponding one-shot run — MST edges, core distances, dendrogram,
//! labels, probabilities — in both serial and threaded contexts, on
//! adversarial inputs (duplicate points, collinear grids, quantized
//! coordinates where exact distance ties abound).
//!
//! This is what licenses every engine optimization (shared kd-tree, one
//! k-NN pass serving all `minPts` by prefix, the Borůvka row screen, the
//! cross-run endgame cache, pooled buffers): they must be pure
//! amortizations, never different answers.

use proptest::prelude::*;

use pandora::exec::ExecCtx;
use pandora::hdbscan::{Hdbscan, HdbscanParams, HdbscanResult};
use pandora::mst::{emst, EmstParams, PointSet};

/// Adversarial point sets (same families as `tests/mst_properties.rs`):
/// duplicates, collinear diagonals, quarter-unit grids.
fn adversarial_points() -> impl Strategy<Value = PointSet> {
    (0usize..3, 2usize..4, 8usize..80).prop_flat_map(|(mode, dim, n)| {
        prop::collection::vec(0u32..32, n * dim..n * dim + 1).prop_map(move |raw| {
            let coords: Vec<f32> = match mode {
                0 => raw.iter().map(|&v| (v % 8) as f32).collect(),
                1 => raw
                    .chunks(dim)
                    .flat_map(|c| std::iter::repeat_n(c[0] as f32 * 0.25, dim))
                    .collect(),
                _ => raw.iter().map(|&v| v as f32 * 0.25).collect(),
            };
            PointSet::new(coords, dim)
        })
    })
}

/// Asserts two pipeline results are bit-identical in every deterministic
/// field (timings excluded, obviously).
fn assert_results_identical(a: &HdbscanResult, b: &HdbscanResult, what: &str) {
    assert_eq!(a.core2, b.core2, "{what}: core distances");
    assert_eq!(a.mst.src, b.mst.src, "{what}: MST sources");
    assert_eq!(a.mst.dst, b.mst.dst, "{what}: MST destinations");
    assert_eq!(a.mst.weight, b.mst.weight, "{what}: MST weights");
    assert_eq!(a.dendrogram, b.dendrogram, "{what}: dendrogram");
    assert_eq!(a.labels, b.labels, "{what}: labels");
    assert_eq!(a.probabilities, b.probabilities, "{what}: probabilities");
    assert_eq!(a.stabilities, b.stabilities, "{what}: stabilities");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_sweep_is_bit_identical_to_one_shot(points in adversarial_points()) {
        let n = points.len();
        // The paper's sweep, clamped to the point count (min_pts ≤ n).
        let sweep: Vec<usize> = [2usize, 4, 8, 16]
            .iter()
            .map(|&m| m.min(n))
            .collect();
        for ctx in [ExecCtx::serial(), ExecCtx::threads()] {
            let threaded = ctx.lanes() > 1;
            let what = if threaded { "threaded" } else { "serial" };
            let driver = Hdbscan::with_ctx(HdbscanParams::default(), ctx.clone());
            let mut engine = driver.engine(&points);
            let swept = engine.sweep_min_pts(&sweep);
            for (result, &min_pts) in swept.iter().zip(&sweep) {
                // One-shot pipeline, cold workspaces each time.
                let one_shot = Hdbscan::with_ctx(
                    HdbscanParams { min_pts, ..Default::default() },
                    ctx.clone(),
                )
                .run(&points);
                assert_results_identical(result, &one_shot, &format!("{what} m={min_pts}"));

                // And against the pre-engine orchestrator (`emst`), which
                // shares no workspace code with the engine path: the swept
                // MST must be the exact same tree.
                let cold = emst(&ctx, &points, &EmstParams::with_min_pts(min_pts));
                prop_assert_eq!(result.core2.as_slice(), cold.core2.as_slice());
                prop_assert_eq!(result.mst.n_edges(), cold.edges.len());
                let mst = pandora::core::SortedMst::from_edges(&ctx, n, &cold.edges);
                prop_assert_eq!(result.mst.src.as_slice(), mst.src.as_slice());
                prop_assert_eq!(result.mst.dst.as_slice(), mst.dst.as_slice());
                prop_assert_eq!(result.mst.weight.as_slice(), mst.weight.as_slice());
            }
        }
    }

    #[test]
    fn serial_and_threaded_engines_agree_exactly(points in adversarial_points()) {
        let n = points.len();
        let sweep: Vec<usize> = [2usize, 3, 8].iter().map(|&m| m.min(n)).collect();
        let serial = Hdbscan::with_ctx(HdbscanParams::default(), ExecCtx::serial())
            .engine(&points)
            .sweep_min_pts(&sweep);
        let threaded = Hdbscan::with_ctx(HdbscanParams::default(), ExecCtx::threads())
            .engine(&points)
            .sweep_min_pts(&sweep);
        for ((a, b), &min_pts) in serial.iter().zip(&threaded).zip(&sweep) {
            assert_results_identical(a, b, &format!("serial-vs-threaded m={min_pts}"));
        }
    }

    #[test]
    fn repeated_and_unordered_requests_stay_identical(points in adversarial_points()) {
        // A serving engine sees arbitrary request orders — descending,
        // repeated, interleaved. Every answer must match the one-shot
        // pipeline regardless of what the engine served before (the
        // endgame cache and row reuse must never leak state between
        // requests).
        let n = points.len();
        let requests: Vec<usize> = [8usize, 2, 8, 16, 2, 1]
            .iter()
            .map(|&m| m.min(n))
            .collect();
        let ctx = ExecCtx::serial();
        let driver = Hdbscan::with_ctx(HdbscanParams::default(), ctx.clone());
        let mut engine = driver.engine(&points);
        for &min_pts in &requests {
            let warm = engine.run_with(min_pts);
            let one_shot = Hdbscan::with_ctx(
                HdbscanParams { min_pts, ..Default::default() },
                ctx.clone(),
            )
            .run(&points);
            assert_results_identical(&warm, &one_shot, &format!("request m={min_pts}"));
        }
    }
}
