//! Offline shim for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Provides `Mutex` and `Condvar` with parking_lot's ergonomics (no poison
//! `Result`s) on top of `std::sync`. A poisoned std mutex is recovered
//! transparently: parking_lot has no poisoning, so neither does this shim.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is only ever `None` transiently inside
/// [`Condvar::wait`], which moves the std guard out and back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison_inner(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(unpoison(self.inner.lock())),
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison_mut(self.inner.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Avoid blocking in Debug: report lock state only, like upstream.
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

fn unpoison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn unpoison_mut<'a, T: ?Sized>(
    r: Result<&'a mut T, std::sync::PoisonError<&'a mut T>>,
) -> &'a mut T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn unpoison_inner<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

/// A condition variable usable with [`MutexGuard`] (`wait(&mut guard)`).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during condvar wait");
        guard.inner = Some(unpoison(self.inner.wait(std_guard)));
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
    }
}
