//! Offline shim for the `bytes` crate (see `vendor/README.md`).
//!
//! Provides [`BytesMut`] plus the little-endian [`Buf`]/[`BufMut`] accessors
//! this workspace's binary codecs use. All reads panic on underflow, same
//! as upstream `bytes`.

use std::ops::Deref;

/// A growable byte buffer (a thin wrapper over `Vec<u8>`).
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Write-side accessors (little-endian put_* family).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor accessors (little-endian get_* family).
///
/// Implemented for `&[u8]`, where the slice itself is the cursor: reads
/// consume from the front by re-slicing.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Reads the next `N` bytes as an array. Panics if fewer remain.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let (head, tail) = self.split_at(N);
        *self = tail;
        head.try_into().expect("split_at returned wrong length")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDRx");
        buf.put_u32_le(7);
        buf.put_u64_le(1 << 40);
        buf.put_f32_le(2.5);
        let bytes = buf.to_vec();
        let mut cursor: &[u8] = &bytes;
        assert_eq!(cursor.remaining(), 20);
        cursor.advance(4);
        assert_eq!(cursor.get_u32_le(), 7);
        assert_eq!(cursor.get_u64_le(), 1 << 40);
        assert_eq!(cursor.get_f32_le(), 2.5);
        assert_eq!(cursor.remaining(), 0);
    }
}
