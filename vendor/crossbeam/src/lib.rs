//! Offline shim for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only `crossbeam::channel::{bounded, Sender, Receiver}` is provided,
//! backed by `std::sync::mpsc::sync_channel`. Semantics relevant to this
//! workspace match crossbeam: `bounded(cap)` blocks senders once `cap`
//! messages are in flight, and dropping every `Sender` terminates the
//! receiver's iterator.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is in the channel (or all receivers are
        /// gone, in which case the message is handed back in the error).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; `Err` when the channel is closed.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocking iterator over messages; ends when every sender is gone.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_close() {
            let (tx, rx) = bounded::<u32>(1);
            let tx2 = tx.clone();
            std::thread::spawn(move || {
                tx2.send(7).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 7);
            drop(tx);
            assert_eq!(rx.iter().count(), 0);
        }
    }
}
