//! Offline shim for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the API surface this workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `Bencher::{iter, iter_batched}`, `BenchmarkId`, `Throughput` — with a
//! simple wall-clock measurement loop: run untimed warm-up iterations
//! until the configured warm-up time is spent (`warm_up_time`, at least
//! one iteration), then run timed iterations until the group's measurement
//! time budget or sample cap is hit, and report mean, median (p50), p95
//! and minimum per-iteration times (plus throughput if configured). The
//! percentiles make run-to-run deltas usable as PR evidence: p50 is robust
//! to scheduler noise and p95 exposes tail regressions that a mean hides.
//!
//! Bench executables only measure when invoked with `--bench` (which
//! `cargo bench` passes) or with `PANDORA_BENCH=1` in the environment;
//! otherwise they print a skip notice and exit 0 so `cargo test` stays
//! fast.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export of the standard black box, for parity with upstream.
pub use std::hint::black_box;

/// Top-level benchmark driver; configures defaults for its groups.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the time budget each benchmark's measurement loop targets.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the untimed warm-up budget run before measurement (caches,
    /// branch predictors, lazily-spawned pool threads). At least one
    /// warm-up iteration always runs, even with a zero budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the default iteration count cap per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n;
        self
    }

    /// Upstream parses CLI args here; the shim handles args in
    /// [`should_run_benches`] instead, so this is the identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup {
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            sample_size: self.default_sample_size,
            _criterion: std::marker::PhantomData,
            name,
            throughput: None,
        }
    }

    /// Convenience single-benchmark entry point.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Units for reporting work done per iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the shim treats all variants alike
/// (fresh setup per iteration, setup time excluded from measurement).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, the upstream convention.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// A set of benchmarks sharing sample-size / throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Overrides the group's measurement time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Overrides the group's warm-up budget (see [`Criterion::warm_up_time`]).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            max_samples: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting is per-benchmark, so this only prints a
    /// separator).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        let full = format!("{}/{}", self.name, id.id);
        if samples.is_empty() {
            println!("{full:<56} (no samples)");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let min = sorted[0];
        let p50 = percentile(&sorted, 0.50);
        let p95 = percentile(&sorted, 0.95);
        let mut line = format!(
            "{full:<56} mean {:>12} p50 {:>12} p95 {:>12} min {:>12} n={}",
            fmt_duration(mean),
            fmt_duration(p50),
            fmt_duration(p95),
            fmt_duration(min),
            samples.len()
        );
        if let Some(t) = self.throughput {
            let per_sec = |count: u64| count as f64 / mean.as_secs_f64();
            match t {
                Throughput::Elements(n) => {
                    let _ = write!(line, "  {:.3} Melem/s", per_sec(n) / 1e6);
                }
                Throughput::Bytes(n) => {
                    let _ = write!(line, "  {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0));
                }
            }
        }
        println!("{line}");
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set.
///
/// Public so serving code (the `pandorad` stats endpoint) reports p50/p95
/// with the same estimator the bench tables use. Empty input yields zero.
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    debug_assert!(sorted.is_sorted());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Runs and times one benchmark's iterations.
pub struct Bencher {
    budget: Duration,
    warm_up: Duration,
    max_samples: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly (untimed warm-up iterations until the
    /// warm-up budget is spent, then up to the sample cap or the time
    /// budget, whichever comes first).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_started = Instant::now();
        loop {
            black_box(routine()); // warm-up, untimed
            if warm_started.elapsed() >= self.warm_up {
                break;
            }
        }
        let started = Instant::now();
        while self.samples.len() < self.max_samples
            && (self.samples.is_empty() || started.elapsed() < self.budget)
        {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh values from `setup`; setup time is not
    /// measured (in either the warm-up or the measurement phase).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut warm_spent = Duration::ZERO;
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input)); // warm-up, untimed
            warm_spent += t.elapsed();
            if warm_spent >= self.warm_up {
                break;
            }
        }
        let started = Instant::now();
        while self.samples.len() < self.max_samples
            && (self.samples.is_empty() || started.elapsed() < self.budget)
        {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.iter_batched(setup_wrapper(&mut setup), |mut i| routine(&mut i), _size);
    }
}

fn setup_wrapper<I>(setup: &mut impl FnMut() -> I) -> impl FnMut() -> I + '_ {
    move || setup()
}

/// Decides whether this bench process should actually measure.
///
/// `cargo bench` passes `--bench` to harness-less bench executables;
/// anything else (notably `cargo test`, which runs bench targets to keep
/// them honest) gets a fast no-op so the tier-1 gate stays quick. Setting
/// `PANDORA_BENCH=1` forces measurement regardless of argv.
pub fn should_run_benches() -> bool {
    std::env::args().any(|a| a == "--bench") || std::env::var_os("PANDORA_BENCH").is_some()
}

/// Groups benchmark functions under one entry point, optionally with a
/// custom `Criterion` config. Both upstream forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main()` running each registered group (when benching is enabled;
/// see [`should_run_benches`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::should_run_benches() {
                println!(
                    "criterion shim: skipping benches (run via `cargo bench` or set PANDORA_BENCH=1)"
                );
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Criterion {
        Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::ZERO)
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = quick_config();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut count = 0u64;
        group.bench_function(BenchmarkId::new("count", 100), |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter_batched(
                || vec![x; 16],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(count >= 1, "routine never ran");
    }

    #[test]
    fn sample_cap_is_respected() {
        let mut c = quick_config();
        let mut group = c.benchmark_group("cap");
        group.sample_size(2);
        let mut runs = 0u32;
        group.bench_function("capped", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // one warm-up (zero warm-up budget) + at most 2 samples
        assert!(runs <= 3);
    }

    #[test]
    fn warm_up_budget_runs_extra_untimed_iterations() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("warmup");
        group.sample_size(1);
        let mut runs = 0u32;
        group.bench_function("spin", |b| {
            b.iter(|| {
                runs += 1;
                std::thread::sleep(Duration::from_millis(1));
            })
        });
        // ≥ 5 warm-up iterations (5ms budget / 1ms each) + 1 sample.
        assert!(runs >= 5, "only {runs} runs");
    }

    #[test]
    fn percentiles_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 0.50), ms(50));
        assert_eq!(percentile(&sorted, 0.95), ms(95));
        assert_eq!(percentile(&sorted, 1.0), ms(100));
        let single = vec![ms(7)];
        assert_eq!(percentile(&single, 0.50), ms(7));
        assert_eq!(percentile(&single, 0.95), ms(7));
    }
}
