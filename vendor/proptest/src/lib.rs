//! Offline shim for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, strategies for
//! integer ranges, tuples, `Vec<S>`, [`any`], and
//! [`collection::vec`]; the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header) and `prop_assert*` macros.
//!
//! Cases are generated from a deterministic RNG (seed = FNV hash of the
//! test name, advanced per case), so failures are reproducible run-to-run.
//! There is **no shrinking**: a failing case panics with the case index.
//!
//! # Single-case replay
//!
//! A failure message names the case index that failed; setting
//! `PROPTEST_CASE=<index>` re-runs **just that case** (the RNG is advanced
//! past the earlier cases without executing their bodies), so a debugging
//! loop over an expensive property costs one case per iteration instead of
//! the whole run:
//!
//! ```bash
//! PROPTEST_CASE=17 cargo test -p pandora --test properties failing_prop
//! ```

use rand::prelude::*;

/// Number-of-cases configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Scalar types [`any`] can produce. Integers favor boundary values
/// occasionally so properties see zeros and extremes, not just bulk.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                // 1-in-16: boundary values.
                if rng.gen_range(0u32..16) == 0 {
                    *[0 as $t, 1 as $t, <$t>::MAX, <$t>::MAX - 1]
                        .choose(rng)
                        .expect("non-empty boundary set")
                } else {
                    rng.gen()
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(-1.0e12f64..1.0e12)
    }
}

/// Strategy over the full domain of `T` (see [`any`]).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — a strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::*;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Minimal runner used by the [`crate::proptest!`] expansion.

    use super::*;

    /// FNV-1a, used to derive a per-test RNG seed from its name.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The case index requested via `PROPTEST_CASE` (replay mode), if any.
    pub fn replay_case() -> Option<u32> {
        std::env::var("PROPTEST_CASE").ok()?.parse().ok()
    }

    /// Runs `body` on `config.cases` generated inputs — or, when
    /// `PROPTEST_CASE=<index>` is set, on exactly that case (generation for
    /// the earlier cases still advances the RNG, so the replayed input is
    /// bit-identical to the one the full run produced).
    pub fn run<S: Strategy>(
        test_name: &str,
        config: &ProptestConfig,
        strategy: &S,
        body: impl Fn(S::Value),
    ) {
        let mut rng = StdRng::seed_from_u64(seed_for(test_name));
        // The env var applies to every property the invocation executes;
        // properties with fewer cases than the requested index (usually
        // unrelated tests swept up by a broad filter) fall back to a full
        // run instead of spuriously failing.
        match replay_case() {
            Some(replay) if (replay as u64) < config.cases as u64 => {
                // Discard the inputs of the earlier cases; values are a
                // pure function of the RNG stream, so this lands on the
                // exact failing input.
                for _ in 0..replay {
                    let _ = strategy.generate(&mut rng);
                }
                let value = strategy.generate(&mut rng);
                eprintln!(
                    "proptest: replaying only case {replay} of `{test_name}` (PROPTEST_CASE)"
                );
                body(value);
                return;
            }
            Some(replay) => {
                eprintln!(
                    "proptest: PROPTEST_CASE={replay} is out of range for `{test_name}` \
                     ({} cases); running the property in full",
                    config.cases
                );
            }
            None => {}
        }
        for case in 0..config.cases {
            let value = strategy.generate(&mut rng);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
            if let Err(payload) = result {
                eprintln!(
                    "proptest: property `{test_name}` failed at case {case}/{} \
                     (deterministic seed {}; no shrinking in this shim). \
                     Re-run just this case with PROPTEST_CASE={case}",
                    config.cases,
                    seed_for(test_name),
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Defines property tests. Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_name(input in strategy_expr) { /* asserts */ }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($pat:pat in $strategy:expr) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = $strategy;
                $crate::test_runner::run(
                    stringify!($name),
                    &config,
                    &strategy,
                    |$pat| $body,
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($pat:pat in $strategy:expr) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($pat in $strategy) $body
            )*
        }
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };

    pub mod prop {
        //! The `prop::` path exposed by upstream proptest's prelude.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1usize..10).prop_flat_map(|n| {
            let items = (0..n).map(|_| 0u32..100).collect::<Vec<_>>();
            items.prop_map(move |v| (n, v))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn flat_map_respects_length((n, v) in pair()) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn collection_vec_in_bounds(xs in prop::collection::vec(any::<u64>(), 0..50)) {
            prop_assert!(xs.len() < 50);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::prelude::*;
        let s = crate::collection::vec(0u32..1000, 5..6);
        let seed = crate::test_runner::seed_for("x");
        let a = s.generate(&mut StdRng::seed_from_u64(seed));
        let b = s.generate(&mut StdRng::seed_from_u64(seed));
        assert_eq!(a, b);
    }

    #[test]
    fn replay_reproduces_the_exact_case_input() {
        use std::cell::RefCell;
        // Record every case input of a normal run, then check that RNG
        // fast-forwarding (what PROPTEST_CASE does) reproduces each one.
        let config = crate::ProptestConfig::with_cases(8);
        let strategy = crate::collection::vec(0u32..1_000_000, 3..7);
        let seen: RefCell<Vec<Vec<u32>>> = RefCell::new(Vec::new());
        crate::test_runner::run("replay_demo", &config, &strategy, |v| {
            seen.borrow_mut().push(v);
        });
        let seen = seen.into_inner();
        assert_eq!(seen.len(), 8);
        use rand::prelude::*;
        for (case, expected) in seen.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(crate::test_runner::seed_for("replay_demo"));
            for _ in 0..case {
                let _ = crate::Strategy::generate(&strategy, &mut rng);
            }
            let replayed = crate::Strategy::generate(&strategy, &mut rng);
            assert_eq!(&replayed, expected, "case {case}");
        }
    }
}
