//! Offline shim for the `rand` crate, 0.8-style API (see `vendor/README.md`).
//!
//! Provides the surface this workspace uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], a
//! deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64) and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but not
//! bit-compatible with upstream rand.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream rand), backing [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range types [`Rng::gen_range`] accepts for a value type `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo reduction: bias is negligible for the spans used here.
                self.start.wrapping_add((u128::sample(rng) % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((u128::sample(rng) % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range called with empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++ seeded via
    /// SplitMix64 (Blackman & Vigna). Fast, full 256-bit state, and good
    /// enough statistically for synthetic data generation and tests.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Upstream rand's small fast RNG; here simply an alias of [`StdRng`].
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (&mut *rng).gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (&mut *rng).gen_range(0..self.len());
                self.get(i)
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use rand::prelude::*;`.
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }
}
