//! The frozen EMST substrate: an immutable, `Send + Sync` index one
//! dataset, shared by arbitrarily many concurrent requests.
//!
//! [`crate::workspace::EmstWorkspace`] amortizes the spatial substrate
//! across *sequential* runs, but it is a single-owner structure: the rows
//! grow on demand, the kd-tree is built lazily, and every run threads
//! `&mut` state. A serving deployment wants the opposite split — cuSLINK
//! ships its pipeline as independently reusable building blocks behind a
//! stable API, and ParChain's framework draws the same boundary between
//! the immutable proximity substrate and per-query state. This module is
//! that boundary for the EMST stage:
//!
//! * [`EmstIndex`] — everything that is **read-only after a freeze step**:
//!   the validated [`PointSet`], the kd-tree (with its AoSoA leaf blocks),
//!   and one sorted k-NN pass captured at the largest `minPts` the index
//!   will serve (plus [`ROW_SLACK`] spare neighbours, so the Borůvka row
//!   screen stays exact at the ceiling). The index is `Send + Sync`; wrap
//!   it in an `Arc` and every serving thread reads the same tree.
//! * [`EmstScratch`] — everything a single request mutates: the pooled
//!   Borůvka round buffers, the per-node core-minimum bounds, and the
//!   cross-run [`EndgameCache`]. Cheap to create, reusable across
//!   requests, never shared between two in-flight runs.
//!
//! [`emst_from_index`] answers one `minPts` request from the pair, with
//! results **bit-identical** to the one-shot [`crate::emst::emst`] path
//! (enforced by `tests/serve_concurrent.rs` and the engine equivalence
//! proptests). Every entry point is fallible: bad datasets and bad
//! parameters come back as [`PandoraError`], never a panic.

use std::time::Instant;

use pandora_core::Edge;
use pandora_exec::{ExecCtx, ScratchPool};

use crate::boruvka::{boruvka_mst_with, BoruvkaExtras, BoruvkaStats, EndgameCache, EndgameStore};
use crate::emst::{Emst, EmstTimings};
use crate::error::PandoraError;
use crate::kdtree::{KdTree, DEFAULT_LEAF_SIZE};
use crate::knn::{core2_from_rows, knn_rows_into, KnnRows};
use crate::metric::{Euclidean, MetricKind, MutualReachability};
use crate::point::PointSet;
use crate::workspace::ROW_SLACK;

/// An immutable, shareable EMST substrate for one dataset (module docs).
///
/// Everything inside is read-only after [`EmstIndex::freeze`] returns, so
/// `&EmstIndex` (typically through an `Arc`) can serve any number of
/// concurrent [`emst_from_index`] calls, each with its own
/// [`EmstScratch`].
#[derive(Debug)]
pub struct EmstIndex {
    /// Process-unique identity of this freeze (see [`EmstIndex::instance_id`]).
    id: u64,
    points: PointSet,
    tree: KdTree,
    /// The largest `minPts` this index serves.
    max_min_pts: usize,
    /// Neighbours captured per sorted row (0 when `n <= 1`).
    rows_k: usize,
    row_d2: Vec<f32>,
    row_idx: Vec<u32>,
    build_s: f64,
    rows_s: f64,
    /// Shared endgame-snapshot store: the best endgame bounds any request
    /// against this index has produced, published for every other scratch
    /// set to adopt. Living on the index makes the `instance_id` binding
    /// structural — a snapshot can never outlive or migrate off the freeze
    /// it was proved against.
    endgame_store: EndgameStore,
    /// Aggregate Borůvka effectiveness counters across every request
    /// served from this index (witness hits, re-searches, snapshot
    /// adoptions).
    stats: BoruvkaStats,
}

/// Compile-time proof the index is shareable across serving threads.
fn _assert_index_is_send_sync() {
    fn assert<T: Send + Sync>() {}
    assert::<EmstIndex>();
}

impl EmstIndex {
    /// Freezes the EMST substrate for `points`: builds the kd-tree and
    /// captures sorted k-NN rows wide enough for every request with
    /// `min_pts <= max_min_pts` (plus [`ROW_SLACK`] spare neighbours).
    /// Takes ownership of the points — the index must outlive any borrower
    /// relationship to stay `'static`-shareable behind an `Arc`.
    ///
    /// # Errors
    ///
    /// * [`PandoraError::EmptyDataset`] — `points` holds no points;
    /// * [`PandoraError::BadParams`] — `max_min_pts` is 0, or exceeds the
    ///   point count (for two or more points).
    pub fn freeze(
        ctx: &ExecCtx,
        points: PointSet,
        max_min_pts: usize,
    ) -> Result<Self, PandoraError> {
        Self::freeze_with_leaf_size(ctx, points, max_min_pts, DEFAULT_LEAF_SIZE)
    }

    /// [`EmstIndex::freeze`] with a caller-chosen kd-tree leaf capacity.
    pub fn freeze_with_leaf_size(
        ctx: &ExecCtx,
        points: PointSet,
        max_min_pts: usize,
        leaf_size: usize,
    ) -> Result<Self, PandoraError> {
        let n = points.len();
        if n == 0 {
            return Err(PandoraError::EmptyDataset);
        }
        check_min_pts(max_min_pts, n, "max_min_pts")?;

        ctx.set_phase("emst_build");
        let t = Instant::now();
        let tree = KdTree::build_with_leaf_size(ctx, &points, leaf_size);
        let build_s = t.elapsed().as_secs_f64();

        // One sorted pass at the ceiling; every smaller minPts is a prefix.
        let rows_k = if n > 1 {
            (max_min_pts - 1 + ROW_SLACK).min(n - 1)
        } else {
            0
        };
        ctx.set_phase("emst_core");
        let t = Instant::now();
        let (mut row_d2, mut row_idx) = (Vec::new(), Vec::new());
        if rows_k > 0 {
            knn_rows_into(ctx, &points, &tree, rows_k, &mut row_d2, &mut row_idx);
        }
        let rows_s = t.elapsed().as_secs_f64();

        // Process-unique freeze id: scratch sets bind their cross-run
        // caches to it, so bounds proved against one index can never be
        // applied to another (indexes are immutable, so identity — not a
        // content hash — is sufficient and O(1)).
        static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        Ok(Self {
            // pandora-lint: allow(PL004) — process-unique id: the RMW can never dispense duplicates, and nothing orders against it
            id: NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            points,
            tree,
            max_min_pts,
            rows_k,
            row_d2,
            row_idx,
            build_s,
            rows_s,
            endgame_store: EndgameStore::new(),
            stats: BoruvkaStats::new(),
        })
    }

    /// The indexed dataset.
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// The frozen kd-tree.
    pub fn tree(&self) -> &KdTree {
        &self.tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points (never true: freezing an empty
    /// dataset is rejected — kept for clippy's `len`-without-`is_empty`).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The largest `minPts` this index serves.
    pub fn max_min_pts(&self) -> usize {
        self.max_min_pts
    }

    /// Neighbours captured per sorted k-NN row.
    pub fn rows_k(&self) -> usize {
        self.rows_k
    }

    /// Borrowed view of the sorted k-NN rows (`None` for single-point
    /// datasets, which have no neighbours to capture).
    pub fn rows(&self) -> Option<KnnRows<'_>> {
        (self.rows_k > 0).then_some(KnnRows {
            k: self.rows_k,
            d2: &self.row_d2,
            idx: &self.row_idx,
        })
    }

    /// Process-unique identity of this freeze. Two indexes never share an
    /// id, so per-scratch cross-run caches keyed on it can never transfer
    /// bounds between datasets.
    pub fn instance_id(&self) -> u64 {
        self.id
    }

    /// The shared endgame-snapshot store for this freeze. Requests served
    /// through [`emst_from_index`] adopt from and publish to it
    /// automatically; it is exposed so serving layers can reason about (and
    /// test) warm-up behaviour.
    pub fn endgame_store(&self) -> &EndgameStore {
        &self.endgame_store
    }

    /// Aggregate Borůvka effectiveness counters for every request served
    /// from this index: merge-surviving witness hits, fallback
    /// `nearest_foreign_bounded` re-searches, and shared-snapshot
    /// adoptions.
    pub fn stats(&self) -> &BoruvkaStats {
        &self.stats
    }

    /// Seconds the freeze spent building the kd-tree.
    pub fn build_seconds(&self) -> f64 {
        self.build_s
    }

    /// Seconds the freeze spent capturing the k-NN rows.
    pub fn rows_seconds(&self) -> f64 {
        self.rows_s
    }

    /// Fills `core2` with every point's squared core distance for
    /// `min_pts`, by prefix lookup into the frozen rows — bit-identical to
    /// a fresh k-NN query at that `min_pts` (the multiset of k-nearest
    /// distances is unique). `core2` is cleared and resized.
    ///
    /// # Errors
    ///
    /// [`PandoraError::BadParams`] when `min_pts` is 0, exceeds the point
    /// count, or exceeds [`EmstIndex::max_min_pts`].
    pub fn core2_into(
        &self,
        ctx: &ExecCtx,
        min_pts: usize,
        core2: &mut Vec<f32>,
    ) -> Result<(), PandoraError> {
        self.check_request(min_pts)?;
        let n = self.points.len();
        core2.clear();
        core2.resize(n, 0.0);
        if min_pts >= 2 && n > 1 {
            debug_assert!(self.rows_k >= (min_pts - 1).min(n - 1));
            core2_from_rows(ctx, &self.row_d2, self.rows_k, min_pts, core2);
        }
        Ok(())
    }

    /// Validates a request's `min_pts` against this index.
    fn check_request(&self, min_pts: usize) -> Result<(), PandoraError> {
        check_min_pts(min_pts, self.points.len(), "min_pts")?;
        if min_pts > self.max_min_pts {
            return Err(PandoraError::BadParams {
                param: "min_pts",
                value: min_pts,
                reason: "exceeds the minPts ceiling this index was frozen for",
            });
        }
        Ok(())
    }
}

/// Shared `minPts` range validation (freeze ceiling and per-request).
fn check_min_pts(min_pts: usize, n: usize, param: &'static str) -> Result<(), PandoraError> {
    if min_pts == 0 {
        return Err(PandoraError::BadParams {
            param,
            value: min_pts,
            reason: "must be at least 1",
        });
    }
    if n >= 2 && min_pts > n {
        return Err(PandoraError::BadParams {
            param,
            value: min_pts,
            reason: "exceeds the number of points (the minPts-th neighbour does not exist)",
        });
    }
    Ok(())
}

/// The mutable half of a request: pooled round buffers, per-request
/// pruning bounds and the cross-run endgame cache. One per in-flight run;
/// reuse across sequential runs keeps the steady state allocation-free.
///
/// A scratch set may be reused across **different** indexes too: it
/// remembers which index its cross-run endgame bounds were proved
/// against ([`EmstIndex::instance_id`]) and drops them on a switch, so
/// stale bounds from one dataset can never leak into another's MST. (The
/// buffer pool itself is content-free and carries over freely.)
#[derive(Debug, Default)]
pub struct EmstScratch {
    pool: ScratchPool,
    endgame: EndgameCache,
    node_core2: Vec<f32>,
    /// `instance_id` of the index the endgame bounds belong to.
    bound_to: Option<u64>,
}

impl EmstScratch {
    /// Creates an empty (cold) scratch set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The backing buffer pool (for allocation/leak accounting).
    pub fn pool(&self) -> &ScratchPool {
        &self.pool
    }

    /// Whether the cross-run endgame cache holds transferable bounds.
    pub fn endgame_is_warm(&self) -> bool {
        self.endgame.is_warm()
    }

    /// Points the cross-run caches at `index`, discarding them if they
    /// were proved against a different one.
    fn rebind(&mut self, index: &EmstIndex) {
        if self.bound_to != Some(index.id) {
            self.endgame.clear();
            self.bound_to = Some(index.id);
        }
    }
}

/// The per-request EMST stage body shared by the frozen-index path
/// ([`emst_from_index`]) and the single-owner workspace path
/// ([`crate::workspace::emst_into`]): per-subtree pruning bounds, metric
/// selection, and the fully-configured Borůvka run. **One implementation**
/// — the two public surfaces differ only in where the tree, rows and
/// core distances come from, so they cannot drift apart and silently
/// break the bit-identicality contract.
#[allow(clippy::too_many_arguments)] // internal seam between the two substrates
pub(crate) fn run_request(
    ctx: &ExecCtx,
    points: &PointSet,
    tree: &KdTree,
    rows: Option<KnnRows<'_>>,
    core2: &[f32],
    min_pts: usize,
    metric: MetricKind,
    node_core2: &mut Vec<f32>,
    endgame: &mut EndgameCache,
    pool: &ScratchPool,
    stats: Option<&BoruvkaStats>,
) -> Vec<Edge> {
    // Per-request metric selection: an explicitly Euclidean request (or a
    // mutual-reachability one at `min_pts ≤ 1`, where every core distance
    // is zero) takes the plain-Euclidean arm regardless of `min_pts`.
    let euclidean = metric.effectively_euclidean(min_pts);
    if !euclidean && points.len() > 1 {
        // Per-subtree core minima for mutual-reachability pruning — a
        // property of this request, computed into caller scratch so the
        // (possibly shared) tree stays untouched.
        tree.min_core2_into(core2, node_core2);
    } else {
        node_core2.clear();
    }
    ctx.set_phase("emst_boruvka");
    // The endgame cache's metric rank is the `minPts` the bounds were
    // proved under (1 = plain Euclidean, the base of the monotone family —
    // which is why the Euclidean arm always registers rank 1, even when a
    // request pairs the Euclidean metric with a larger `min_pts`).
    if euclidean {
        boruvka_mst_with(
            ctx,
            points,
            tree,
            &Euclidean,
            BoruvkaExtras {
                rows,
                cache: Some((endgame, 1)),
                stats,
                ..Default::default()
            },
            pool,
        )
    } else {
        let metric = MutualReachability { core2 };
        boruvka_mst_with(
            ctx,
            points,
            tree,
            &metric,
            BoruvkaExtras {
                rows,
                node_core2: node_core2.as_slice(),
                cache: Some((endgame, min_pts.max(1))),
                stats,
                ..Default::default()
            },
            pool,
        )
    }
}

/// Answers one `minPts` request from a frozen [`EmstIndex`] and a
/// per-request [`EmstScratch`].
///
/// The returned MST edges and core distances are **bit-identical** to
/// [`crate::emst::emst`] at the same `min_pts`: the row screen, the
/// endgame transfer and the subtree bounds are all strictly conservative.
/// Reported [`EmstTimings`] cover only this call (`tree_build_s` is always
/// 0 — the build was paid by the freeze).
///
/// # Errors
///
/// [`PandoraError::BadParams`] when `min_pts` is 0, exceeds the point
/// count, or exceeds the index's frozen ceiling.
pub fn emst_from_index(
    ctx: &ExecCtx,
    index: &EmstIndex,
    min_pts: usize,
    scratch: &mut EmstScratch,
) -> Result<Emst, PandoraError> {
    emst_from_index_with(ctx, index, min_pts, MetricKind::MutualReachability, scratch)
}

/// [`emst_from_index`] with an explicit per-request base metric.
///
/// [`MetricKind::MutualReachability`] is the HDBSCAN\* default;
/// [`MetricKind::Euclidean`] builds the plain Euclidean MST while still
/// reporting the core distances for `min_pts` (they simply do not enter
/// the metric). Bit-identical to [`emst_from_index`] under the default.
///
/// # Errors
///
/// As [`emst_from_index`].
pub fn emst_from_index_with(
    ctx: &ExecCtx,
    index: &EmstIndex,
    min_pts: usize,
    metric: MetricKind,
    scratch: &mut EmstScratch,
) -> Result<Emst, PandoraError> {
    ctx.set_phase("emst_core");
    let t = Instant::now();
    let mut core2 = Vec::new();
    index.core2_into(ctx, min_pts, &mut core2)?;
    scratch.rebind(index);
    // Cold scratch sets warm up from the best snapshot any earlier request
    // against this index published (module docs: the store lives on the
    // index, so the bounds are guaranteed to have been proved right here).
    if scratch.endgame.adopt_from(&index.endgame_store) {
        index.stats.note_adopt();
    }
    let core_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let edges = run_request(
        ctx,
        &index.points,
        &index.tree,
        index.rows(),
        &core2,
        min_pts,
        metric,
        &mut scratch.node_core2,
        &mut scratch.endgame,
        &scratch.pool,
        Some(&index.stats),
    );
    let boruvka_s = t.elapsed().as_secs_f64();
    // Offer this run's endgame bounds back to the shared store so the next
    // cold scratch (another session, another daemon lane) starts warm.
    scratch.endgame.publish_to(&index.endgame_store);

    Ok(Emst {
        edges,
        core2,
        timings: EmstTimings {
            tree_build_s: 0.0,
            core_s,
            boruvka_s,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emst::{emst, EmstParams};
    use rand::prelude::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            (0..n * dim).map(|_| rng.gen_range(-5.0..5.0f32)).collect(),
            dim,
        )
    }

    #[test]
    fn frozen_index_matches_cold_runs_exactly() {
        let ctx = ExecCtx::serial();
        let points = random_points(400, 3, 11);
        let index = EmstIndex::freeze(&ctx, points.clone(), 16).expect("freeze a valid dataset");
        let mut scratch = EmstScratch::new();
        for min_pts in [1usize, 2, 4, 8, 16] {
            let served =
                emst_from_index(&ctx, &index, min_pts, &mut scratch).expect("valid request");
            let cold = emst(&ctx, &points, &EmstParams::with_min_pts(min_pts));
            assert_eq!(served.core2, cold.core2, "min_pts={min_pts}");
            assert_eq!(served.edges.len(), cold.edges.len());
            for (a, b) in served.edges.iter().zip(cold.edges.iter()) {
                assert_eq!((a.u, a.v, a.w), (b.u, b.v, b.w), "min_pts={min_pts}");
            }
            assert_eq!(served.timings.tree_build_s, 0.0);
        }
        assert_eq!(index.rows_k(), 15 + ROW_SLACK);
        assert_eq!(scratch.pool().outstanding(), 0);
    }

    #[test]
    fn shared_index_serves_concurrent_scratches() {
        // The tentpole property at the mst layer: one &EmstIndex, many
        // threads, each with its own EmstScratch — all answers identical
        // to the cold path.
        let ctx = ExecCtx::serial();
        let points = random_points(300, 2, 7);
        let index =
            std::sync::Arc::new(EmstIndex::freeze(&ctx, points.clone(), 8).expect("freeze"));
        let cold: Vec<_> = [2usize, 4, 8]
            .iter()
            .map(|&m| emst(&ctx, &points, &EmstParams::with_min_pts(m)))
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let index = std::sync::Arc::clone(&index);
                std::thread::spawn(move || {
                    let ctx = ExecCtx::serial();
                    let mut scratch = EmstScratch::new();
                    let mine = [2usize, 4, 8][t % 3];
                    emst_from_index(&ctx, &index, mine, &mut scratch)
                        .map(|r| (mine, r))
                        .expect("valid request")
                })
            })
            .collect();
        for h in handles {
            let (mine, served) = h.join().expect("serving thread");
            let want = &cold[[2usize, 4, 8]
                .iter()
                .position(|&m| m == mine)
                .expect("member")];
            assert_eq!(served.core2, want.core2, "min_pts={mine}");
            for (a, b) in served.edges.iter().zip(want.edges.iter()) {
                assert_eq!((a.u, a.v, a.w), (b.u, b.v, b.w), "min_pts={mine}");
            }
        }
    }

    #[test]
    fn freeze_rejects_bad_inputs_without_panicking() {
        let ctx = ExecCtx::serial();
        assert_eq!(
            EmstIndex::freeze(&ctx, PointSet::new(vec![], 2), 2).err(),
            Some(PandoraError::EmptyDataset)
        );
        let points = random_points(5, 2, 1);
        assert!(matches!(
            EmstIndex::freeze(&ctx, points.clone(), 0).err(),
            Some(PandoraError::BadParams {
                param: "max_min_pts",
                value: 0,
                ..
            })
        ));
        assert!(matches!(
            EmstIndex::freeze(&ctx, points, 6).err(),
            Some(PandoraError::BadParams {
                param: "max_min_pts",
                value: 6,
                ..
            })
        ));
    }

    #[test]
    fn requests_outside_the_frozen_range_error() {
        let ctx = ExecCtx::serial();
        let index = EmstIndex::freeze(&ctx, random_points(40, 2, 3), 4).expect("freeze");
        let mut scratch = EmstScratch::new();
        for bad in [0usize, 5, 41] {
            let err = emst_from_index(&ctx, &index, bad, &mut scratch).err();
            assert!(
                matches!(
                    err,
                    Some(PandoraError::BadParams {
                        param: "min_pts",
                        ..
                    })
                ),
                "min_pts={bad} gave {err:?}"
            );
        }
        // The books stay balanced even across rejected requests.
        assert_eq!(scratch.pool().outstanding(), 0);
    }

    #[test]
    fn single_point_dataset_serves_trivially() {
        let ctx = ExecCtx::serial();
        let index = EmstIndex::freeze(&ctx, PointSet::new(vec![1.0, 2.0], 2), 4).expect("freeze");
        assert_eq!(index.rows_k(), 0);
        let mut scratch = EmstScratch::new();
        let served = emst_from_index(&ctx, &index, 2, &mut scratch).expect("serve");
        assert!(served.edges.is_empty());
        assert_eq!(served.core2, vec![0.0]);
    }

    #[test]
    fn scratch_reuse_across_different_indexes_stays_exact() {
        // Regression (review finding): the endgame cache validates
        // snapshots only by shape, so reusing one scratch across two
        // same-size indexes of DIFFERENT datasets must drop the bounds —
        // otherwise geometry proved on A silently corrupts B's MST.
        let ctx = ExecCtx::serial();
        let a_points = random_points(300, 2, 1);
        let b_points = random_points(300, 2, 99); // same n/dim, different data
        let a = EmstIndex::freeze(&ctx, a_points, 8).expect("freeze A");
        let b = EmstIndex::freeze(&ctx, b_points.clone(), 8).expect("freeze B");
        let mut scratch = EmstScratch::new();
        // Warm the endgame bounds on A...
        let _ = emst_from_index(&ctx, &a, 2, &mut scratch).expect("serve A");
        let _ = emst_from_index(&ctx, &a, 4, &mut scratch).expect("serve A again");
        assert!(scratch.endgame_is_warm());
        // ...then serve B with the SAME scratch: bounds must be dropped
        // (rebind) and the answer must equal B's cold run exactly.
        let served = emst_from_index(&ctx, &b, 4, &mut scratch).expect("serve B");
        let cold = emst(&ctx, &b_points, &EmstParams::with_min_pts(4));
        assert_eq!(served.core2, cold.core2);
        for (x, y) in served.edges.iter().zip(cold.edges.iter()) {
            assert_eq!((x.u, x.v, x.w), (y.u, y.v, y.w));
        }
    }

    /// Well-separated blobs: late Borůvka rounds have blob-sized
    /// components whose interiors cannot resolve from k-NN rows (every row
    /// member is domestic), forcing real endgame tree searches — the
    /// workload the snapshot store exists for.
    fn blob_points(per_blob: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [
            (-40.0f32, -40.0f32),
            (40.0, -40.0),
            (-40.0, 40.0),
            (40.0, 40.0),
        ];
        let mut data = Vec::with_capacity(per_blob * centers.len() * 2);
        for &(cx, cy) in &centers {
            for _ in 0..per_blob {
                data.push(cx + rng.gen_range(-2.0..2.0f32));
                data.push(cy + rng.gen_range(-2.0..2.0f32));
            }
        }
        PointSet::new(data, 2)
    }

    #[test]
    fn second_scratch_adopts_the_shared_endgame_snapshot() {
        // The cross-session tentpole property at the mst layer: the first
        // request publishes its endgame snapshots to the index's shared
        // store, and a brand-new (cold) scratch set adopts them — dropping
        // its re-search volume below the cold run's — while staying
        // bit-identical to the cold one-shot path.
        let ctx = ExecCtx::serial();
        let points = blob_points(150, 21);
        let index = EmstIndex::freeze(&ctx, points.clone(), 8).expect("freeze");
        assert!(!index.endgame_store().is_published());
        assert_eq!(index.stats().snapshot_adopts(), 0);

        let mut s1 = EmstScratch::new();
        let first = emst_from_index(&ctx, &index, 4, &mut s1).expect("serve");
        assert!(
            index.endgame_store().is_published(),
            "the first completed run must publish its snapshots"
        );
        assert_eq!(
            index.stats().snapshot_adopts(),
            0,
            "nothing to adopt on an empty store"
        );
        let cold_searches = index.stats().researches();
        assert!(cold_searches > 0);

        let mut s2 = EmstScratch::new();
        let second = emst_from_index(&ctx, &index, 4, &mut s2).expect("serve");
        assert_eq!(
            index.stats().snapshot_adopts(),
            1,
            "a cold scratch must adopt the published set"
        );
        let warm_searches = index.stats().researches() - cold_searches;
        assert!(
            warm_searches < cold_searches,
            "adopted bounds must cut re-searches ({warm_searches} vs {cold_searches})"
        );

        // Bit-identical to each other and to the cold one-shot path.
        let cold = emst(&ctx, &points, &EmstParams::with_min_pts(4));
        assert_eq!(first.core2, cold.core2);
        assert_eq!(second.core2, cold.core2);
        for ((a, b), c) in first
            .edges
            .iter()
            .zip(second.edges.iter())
            .zip(cold.edges.iter())
        {
            assert_eq!((a.u, a.v, a.w), (b.u, b.v, b.w));
            assert_eq!((a.u, a.v, a.w), (c.u, c.v, c.w));
        }
    }

    #[test]
    fn lower_rank_runs_replace_the_published_set() {
        // Publish policy: steady-state streams at one rank publish once;
        // only a strictly lower rank (bounds valid for strictly more
        // future requests) replaces the stored set.
        let ctx = ExecCtx::serial();
        let index = EmstIndex::freeze(&ctx, random_points(300, 2, 33), 8).expect("freeze");
        let mut scratch = EmstScratch::new();
        let _ = emst_from_index(&ctx, &index, 4, &mut scratch).expect("serve");
        assert_eq!(index.endgame_store().publishes(), 1);
        let _ = emst_from_index(&ctx, &index, 4, &mut scratch).expect("serve");
        assert_eq!(
            index.endgame_store().publishes(),
            1,
            "same rank must not republish"
        );
        let _ = emst_from_index(&ctx, &index, 2, &mut scratch).expect("serve");
        assert_eq!(
            index.endgame_store().publishes(),
            2,
            "a lower rank replaces the set"
        );
        let _ = emst_from_index(&ctx, &index, 8, &mut scratch).expect("serve");
        assert_eq!(
            index.endgame_store().publishes(),
            2,
            "a higher rank never replaces"
        );
    }

    #[test]
    fn witness_hits_accumulate_on_the_index_stats() {
        let ctx = ExecCtx::serial();
        let index = EmstIndex::freeze(&ctx, random_points(500, 3, 5), 8).expect("freeze");
        let mut scratch = EmstScratch::new();
        let _ = emst_from_index(&ctx, &index, 4, &mut scratch).expect("serve");
        let stats = index.stats();
        assert!(
            stats.witness_hits() + stats.researches() > 0,
            "a full run must account its queries"
        );
    }

    #[test]
    fn warm_scratch_keeps_endgame_bounds() {
        let ctx = ExecCtx::serial();
        let index = EmstIndex::freeze(&ctx, random_points(200, 2, 9), 8).expect("freeze");
        let mut scratch = EmstScratch::new();
        assert!(!scratch.endgame_is_warm());
        let _ = emst_from_index(&ctx, &index, 2, &mut scratch).expect("serve");
        assert!(
            scratch.endgame_is_warm(),
            "run one must stage endgame bounds"
        );
        let hits_before = scratch.pool().reuse_hits();
        let _ = emst_from_index(&ctx, &index, 4, &mut scratch).expect("serve");
        assert!(
            scratch.pool().reuse_hits() > hits_before,
            "warm runs must reuse pooled buffers"
        );
    }
}
