//! Batched k-nearest-neighbour queries and core distances.
//!
//! HDBSCAN\*'s `minPts` parameter defines the **core distance** of a point:
//! the distance to its `minPts`-th nearest neighbour, counting the point
//! itself (paper §6.5; `minPts = 2` means "distance to the nearest other
//! point"). Queries run embarrassingly parallel over points; each worker
//! chunk reuses one [`KnnHeap`] across its queries, so the steady state
//! performs no heap allocation per query.

use pandora_exec::trace::KernelKind;
use pandora_exec::{ExecCtx, UnsafeSlice};

use crate::kdtree::{KdTree, KnnHeap};
use crate::point::PointSet;

/// Squared core distance of every point for the given `min_pts`.
///
/// `min_pts` counts the point itself (HDBSCAN\* convention), so the
/// neighbour query uses `k = min_pts - 1`. `min_pts = 1` gives all-zero
/// core distances (plain single linkage).
///
/// # Panics
///
/// Panics if `min_pts` is 0, or if `min_pts > n` for a set of two or more
/// points: the `min_pts`-th neighbour does not exist, so the core distance
/// is undefined (silently truncating to the farthest existing neighbour
/// would produce a different clustering than requested). Empty and
/// single-point sets accept any `min_pts` and return all-zero core
/// distances — there is nothing to cluster, so no request can be
/// mis-served.
pub fn core_distances2(
    ctx: &ExecCtx,
    points: &PointSet,
    tree: &KdTree,
    min_pts: usize,
) -> Vec<f32> {
    core_pass(ctx, points, tree, min_pts, None)
}

/// [`core_distances2`] fused with neighbour capture: returns the squared
/// core distances **and** every point's `min_pts - 1` nearest neighbours
/// (row-major `n × (min_pts - 1)`, in no particular order within a row).
///
/// The EMST orchestrator uses the neighbour lists to seed the first
/// Borůvka round: for a heap member `p` of `q`, the mutual-reachability
/// distance collapses to `max(core2[q], core2[p])` (the Euclidean part is
/// `≤ core2[q]` by definition), so the cheapest heap member is an exact
/// first-round candidate that prunes the all-nearest-neighbour round.
/// Same panics as [`core_distances2`].
pub fn core_distances2_and_knn(
    ctx: &ExecCtx,
    points: &PointSet,
    tree: &KdTree,
    min_pts: usize,
) -> (Vec<f32>, Vec<u32>) {
    let n = points.len();
    let mut nn = vec![u32::MAX; n * min_pts.saturating_sub(1)];
    let core2 = core_pass(ctx, points, tree, min_pts, Some(&mut nn));
    (core2, nn)
}

/// The shared core-distance traversal, optionally capturing each point's
/// heap members into `nn` (row-major `n × (min_pts - 1)`, unordered — no
/// consumer needs the neighbours sorted, so the per-query sort is skipped).
fn core_pass(
    ctx: &ExecCtx,
    points: &PointSet,
    tree: &KdTree,
    min_pts: usize,
    nn: Option<&mut [u32]>,
) -> Vec<f32> {
    let n = points.len();
    assert!(min_pts >= 1, "min_pts must be at least 1");
    assert!(
        n <= 1 || min_pts <= n,
        "min_pts ({min_pts}) exceeds the number of points ({n}): \
         the {min_pts}-th nearest neighbour does not exist"
    );
    let k = min_pts - 1;
    let mut core2 = vec![0.0f32; n];
    if k == 0 || n <= 1 {
        return core2;
    }
    {
        let core_view = UnsafeSlice::new(&mut core2);
        let nn_view = nn.map(|s| {
            assert_eq!(s.len(), n * k, "one neighbour row per point");
            UnsafeSlice::new(s)
        });
        let perm = tree.perm();
        ctx.for_each_chunk_traced(
            n,
            256,
            KernelKind::TreeTraverse,
            (n as u64) * 48 * k as u64,
            |range| {
                // One reused heap per chunk; queries walk the points in
                // kd-tree (spatial) order so consecutive traversals touch
                // overlapping subtrees while they are still cached.
                let mut heap = KnnHeap::new(k);
                for i in range {
                    let q = perm[i] as usize;
                    tree.knn_into(points, q as u32, k, &mut heap);
                    // min_pts <= n guarantees the k-th neighbour exists.
                    debug_assert_eq!(heap.len(), k);
                    // SAFETY: perm is a permutation — row q is owned here.
                    unsafe { core_view.write(q, heap.max_d2()) };
                    if let Some(view) = &nn_view {
                        for (j, &(_, p)) in heap.items().iter().enumerate() {
                            // SAFETY: as above.
                            unsafe { view.write(q * k + j, p) };
                        }
                    }
                }
            },
        );
    }
    core2
}

/// Captures every point's `k` nearest neighbours as **sorted rows**:
/// row-major `n × k` arrays of squared Euclidean distances and indices,
/// ascending by `(distance, index)` within a row, padded with
/// `(f32::INFINITY, u32::MAX)` when fewer than `k` neighbours exist.
///
/// This is the engine's one-pass-per-dataset substrate
/// ([`crate::workspace::EmstWorkspace`]): because the `j`-th entry of a
/// sorted row is the exact distance to the `(j+1)`-th nearest neighbour,
/// the squared core distance for **every** `min_pts ≤ k + 1` is a prefix
/// lookup (`row_d2[min_pts - 2]`) — bit-identical to a fresh
/// [`core_distances2`] query at that `min_pts`, since the multiset of
/// k-nearest distances is unique. The rows also drive the Borůvka
/// row screen ([`crate::knn::KnnRows`]).
///
/// Buffers are cleared and resized; capacity is retained across calls.
pub fn knn_rows_into(
    ctx: &ExecCtx,
    points: &PointSet,
    tree: &KdTree,
    k: usize,
    row_d2: &mut Vec<f32>,
    row_idx: &mut Vec<u32>,
) {
    let n = points.len();
    row_d2.clear();
    row_d2.resize(n * k, f32::INFINITY);
    row_idx.clear();
    row_idx.resize(n * k, u32::MAX);
    if k == 0 || n <= 1 {
        return;
    }
    {
        let d2_view = UnsafeSlice::new(row_d2.as_mut_slice());
        let idx_view = UnsafeSlice::new(row_idx.as_mut_slice());
        let perm = tree.perm();
        ctx.for_each_chunk_traced(
            n,
            256,
            KernelKind::TreeTraverse,
            (n as u64) * 48 * k as u64,
            |range| {
                let mut heap = KnnHeap::new(k);
                for i in range {
                    let q = perm[i] as usize;
                    tree.knn_into(points, q as u32, k, &mut heap);
                    for (j, &(d2, p)) in heap.sorted().iter().enumerate() {
                        // SAFETY: perm is a permutation — row q is owned
                        // by exactly this iteration.
                        unsafe {
                            d2_view.write(q * k + j, d2);
                            idx_view.write(q * k + j, p);
                        }
                    }
                }
            },
        );
    }
}

/// Fills `core2` with every point's squared core distance for `min_pts`
/// by **prefix lookup** into sorted k-NN rows (`row_d2`, row-major
/// `n × k`, ascending): the `(min_pts − 2)`-th entry of a sorted row is
/// the exact distance to the `(min_pts − 1)`-th nearest neighbour, so the
/// result is bit-identical to a fresh [`core_distances2`] query. This is
/// the one implementation behind both serving substrates
/// ([`crate::workspace::EmstWorkspace`] and [`crate::index::EmstIndex`]).
///
/// Requires `min_pts >= 2`, `k >= min_pts - 1` and
/// `core2.len() * k == row_d2.len()`; callers handle the
/// `min_pts <= 1` / tiny-`n` cases (all-zero core distances) themselves.
pub fn core2_from_rows(ctx: &ExecCtx, row_d2: &[f32], k: usize, min_pts: usize, core2: &mut [f32]) {
    let n = core2.len();
    debug_assert!(min_pts >= 2 && k >= min_pts - 1);
    debug_assert_eq!(row_d2.len(), n * k);
    let core_view = UnsafeSlice::new(core2);
    ctx.for_each_chunk(n, pandora_exec::DEFAULT_GRAIN, |range| {
        for q in range {
            // SAFETY: disjoint writes.
            unsafe { core_view.write(q, row_d2[q * k + (min_pts - 2)]) };
        }
    });
}

/// A borrowed view over sorted k-NN rows (see [`knn_rows_into`]).
///
/// The Borůvka row screen uses these rows two ways, both **exact**:
///
/// * if the best foreign row member sits *strictly* below the row's k-th
///   distance, it is the point's true nearest foreign neighbour (every
///   non-member is at least the k-th distance away), so the tree traversal
///   is skipped entirely;
/// * otherwise the k-th distance is a valid monotone lower bound on the
///   nearest-foreign distance, feeding the boundary-point filter.
///
/// Both arguments require the metric to **dominate the Euclidean
/// distance** (`dist2(a,b) ≥ ‖a−b‖²`), which holds for [`crate::metric::Euclidean`]
/// and [`crate::metric::MutualReachability`].
#[derive(Debug, Clone, Copy)]
pub struct KnnRows<'a> {
    /// Neighbours per row.
    pub k: usize,
    /// Squared Euclidean distances, row-major `n × k`, ascending per row.
    pub d2: &'a [f32],
    /// Neighbour indices parallel to `d2` (`u32::MAX` = padding).
    pub idx: &'a [u32],
}

/// Batched k-NN: indices of the `k` nearest neighbours of every point,
/// row-major `n × k` (padded with `u32::MAX` when fewer exist).
pub fn knn_indices(ctx: &ExecCtx, points: &PointSet, tree: &KdTree, k: usize) -> Vec<u32> {
    let n = points.len();
    let mut out = vec![u32::MAX; n * k];
    {
        let view = UnsafeSlice::new(&mut out);
        ctx.for_each_chunk_traced(
            n,
            256,
            KernelKind::TreeTraverse,
            (n as u64) * 48 * k as u64,
            |range| {
                let mut heap = KnnHeap::new(k);
                for q in range {
                    tree.knn_into(points, q as u32, k, &mut heap);
                    for (j, &(_, p)) in heap.sorted().iter().enumerate() {
                        // SAFETY: row q is owned by this iteration.
                        unsafe { view.write(q * k + j, p) };
                    }
                }
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            (0..n * dim).map(|_| rng.gen_range(0.0..1.0f32)).collect(),
            dim,
        )
    }

    #[test]
    fn min_pts_two_is_nearest_other_point() {
        let ctx = ExecCtx::serial();
        let points = PointSet::new(vec![0.0, 0.0, 1.0, 0.0, 5.0, 0.0], 2);
        let tree = KdTree::build(&ctx, &points);
        let core2 = core_distances2(&ctx, &points, &tree, 2);
        assert_eq!(core2, vec![1.0, 1.0, 16.0]);
    }

    #[test]
    fn min_pts_one_is_zero() {
        let ctx = ExecCtx::serial();
        let points = random_points(20, 2, 4);
        let tree = KdTree::build(&ctx, &points);
        assert!(core_distances2(&ctx, &points, &tree, 1)
            .iter()
            .all(|&c| c == 0.0));
    }

    #[test]
    fn core_distances_monotone_in_min_pts() {
        let ctx = ExecCtx::serial();
        let points = random_points(200, 3, 5);
        let tree = KdTree::build(&ctx, &points);
        let c2 = core_distances2(&ctx, &points, &tree, 2);
        let c4 = core_distances2(&ctx, &points, &tree, 4);
        let c8 = core_distances2(&ctx, &points, &tree, 8);
        for i in 0..points.len() {
            assert!(c2[i] <= c4[i] && c4[i] <= c8[i]);
        }
    }

    #[test]
    fn min_pts_equal_to_n_uses_farthest_neighbour() {
        // Boundary: min_pts = n is the largest valid request; every point's
        // core distance is then its distance to the farthest other point.
        let ctx = ExecCtx::serial();
        let points = PointSet::new(vec![0.0, 0.0, 1.0, 0.0, 5.0, 0.0], 2);
        let tree = KdTree::build(&ctx, &points);
        let core2 = core_distances2(&ctx, &points, &tree, 3);
        assert_eq!(core2, vec![25.0, 16.0, 25.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds the number of points")]
    fn min_pts_above_n_panics() {
        let ctx = ExecCtx::serial();
        let points = PointSet::new(vec![0.0, 0.0, 1.0, 0.0, 5.0, 0.0], 2);
        let tree = KdTree::build(&ctx, &points);
        let _ = core_distances2(&ctx, &points, &tree, 4);
    }

    #[test]
    fn empty_and_singleton_sets_accept_any_min_pts() {
        let ctx = ExecCtx::serial();
        let points = PointSet::new(vec![], 2);
        let tree = KdTree::build(&ctx, &points);
        assert!(core_distances2(&ctx, &points, &tree, 5).is_empty());
        // A single point has no clustering to mis-serve; the degenerate
        // request stays trivially satisfiable (regression: the default
        // pipeline at min_pts = 2 must not panic on singletons).
        let one = PointSet::new(vec![1.0, 2.0], 2);
        let tree = KdTree::build(&ctx, &one);
        assert_eq!(core_distances2(&ctx, &one, &tree, 5), vec![0.0]);
    }

    #[test]
    fn sorted_rows_match_core_distances_by_prefix() {
        let ctx = ExecCtx::serial();
        let points = random_points(150, 3, 9);
        let tree = KdTree::build(&ctx, &points);
        let k = 7usize;
        let (mut d2, mut idx) = (Vec::new(), Vec::new());
        knn_rows_into(&ctx, &points, &tree, k, &mut d2, &mut idx);
        assert_eq!(d2.len(), 150 * k);
        // Rows ascend, and the (m-2)-th entry is the min_pts = m core
        // distance — the engine's prefix contract.
        for min_pts in 2..=k + 1 {
            let core2 = core_distances2(&ctx, &points, &tree, min_pts);
            for q in 0..points.len() {
                assert!(d2[q * k..(q + 1) * k].windows(2).all(|w| w[0] <= w[1]));
                assert_eq!(d2[q * k + min_pts - 2], core2[q], "q={q} m={min_pts}");
            }
        }
    }

    #[test]
    fn sorted_rows_pad_when_k_exceeds_n() {
        let ctx = ExecCtx::serial();
        let points = PointSet::new(vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0], 2);
        let tree = KdTree::build(&ctx, &points);
        let (mut d2, mut idx) = (Vec::new(), Vec::new());
        knn_rows_into(&ctx, &points, &tree, 5, &mut d2, &mut idx);
        // Each point has only 2 neighbours; the tail is padding.
        for q in 0..3 {
            assert_eq!(idx[q * 5 + 2], u32::MAX);
            assert_eq!(d2[q * 5 + 2], f32::INFINITY);
        }
        assert_eq!(idx[0], 1);
        assert_eq!(d2[0], 1.0);
    }

    #[test]
    fn knn_indices_shape_and_content() {
        let ctx = ExecCtx::serial();
        let points = PointSet::new(vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0], 2);
        let tree = KdTree::build(&ctx, &points);
        let idx = knn_indices(&ctx, &points, &tree, 2);
        assert_eq!(idx.len(), 6);
        assert_eq!(idx[0], 1); // nearest to point 0 is point 1
        assert_eq!(idx[2], 0); // nearest to point 1 is point 0 (tie → smaller)
    }
}
