//! Point sets: flat, dimension-generic f32 coordinates.

/// A set of `len` points in `dim` dimensions, stored row-major.
#[derive(Debug, Clone)]
pub struct PointSet {
    coords: Vec<f32>,
    dim: usize,
}

impl PointSet {
    /// Wraps a flat coordinate buffer (`len * dim` values, row-major).
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a multiple of `dim`, or if any
    /// coordinate is not finite.
    pub fn new(coords: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            coords.len() % dim,
            0,
            "coordinate buffer not a multiple of dim"
        );
        // Unconditional: a single NaN coordinate poisons every distance
        // comparison downstream (Borůvka candidate packing, kd-tree splits)
        // and can turn release builds into infinite loops. The O(n·dim)
        // scan is noise next to any algorithm run over the same data.
        if let Some(pos) = coords.iter().position(|c| !c.is_finite()) {
            panic!(
                "non-finite coordinate {} at point {} dim {}",
                coords[pos],
                pos / dim,
                pos % dim
            );
        }
        Self { coords, dim }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    #[inline(always)]
    pub fn point(&self, i: usize) -> &[f32] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// The raw coordinate buffer.
    pub fn coords(&self) -> &[f32] {
        &self.coords
    }

    /// Squared Euclidean distance between points `a` and `b`.
    ///
    /// Specialized for the low dimensionalities that dominate spatial
    /// clustering workloads (paper Table 2 is 2–7 D) so the compiler emits
    /// straight-line code instead of a runtime-bound loop.
    #[inline(always)]
    pub fn dist2(&self, a: usize, b: usize) -> f32 {
        let pa = self.point(a);
        let pb = self.point(b);
        match self.dim {
            2 => {
                let (dx, dy) = (pa[0] - pb[0], pa[1] - pb[1]);
                dx * dx + dy * dy
            }
            3 => {
                let (dx, dy, dz) = (pa[0] - pb[0], pa[1] - pb[1], pa[2] - pb[2]);
                dx * dx + dy * dy + dz * dz
            }
            _ => {
                let mut acc = 0.0f32;
                for d in 0..self.dim {
                    let diff = pa[d] - pb[d];
                    acc += diff * diff;
                }
                acc
            }
        }
    }

    /// Keeps only the points at the given indices (in order).
    pub fn select(&self, indices: &[u32]) -> PointSet {
        let mut coords = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            coords.extend_from_slice(self.point(i as usize));
        }
        PointSet::new(coords, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let ps = PointSet::new(vec![0.0, 0.0, 3.0, 4.0], 2);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.dim(), 2);
        assert_eq!(ps.point(1), &[3.0, 4.0]);
        assert_eq!(ps.dist2(0, 1), 25.0);
    }

    #[test]
    fn select_subsets() {
        let ps = PointSet::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2);
        let sub = ps.select(&[2, 0]);
        assert_eq!(sub.point(0), &[5.0, 6.0]);
        assert_eq!(sub.point(1), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn bad_buffer_panics() {
        let _ = PointSet::new(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    #[should_panic(expected = "non-finite coordinate")]
    fn nan_coordinate_panics() {
        let _ = PointSet::new(vec![1.0, f32::NAN, 3.0, 4.0], 2);
    }

    #[test]
    #[should_panic(expected = "point 1 dim 0")]
    fn infinite_coordinate_panics_with_location() {
        let _ = PointSet::new(vec![1.0, 2.0, f32::INFINITY, 4.0], 2);
    }
}
