//! Point sets: flat, dimension-generic f32 coordinates.

use crate::error::PandoraError;

/// A set of `len` points in `dim` dimensions, stored row-major.
#[derive(Debug, Clone)]
pub struct PointSet {
    coords: Vec<f32>,
    dim: usize,
}

impl PointSet {
    /// Wraps a flat coordinate buffer (`len * dim` values, row-major),
    /// validating it: `dim` must be positive, the buffer length a multiple
    /// of `dim`, and every coordinate finite.
    ///
    /// This is the fallible entry point serving layers should use — a bad
    /// dataset comes back as a [`PandoraError`] instead of crashing the
    /// process. [`PointSet::new`] is the panicking convenience wrapper.
    ///
    /// ```
    /// use pandora_mst::{PandoraError, PointSet};
    ///
    /// let ok = PointSet::try_new(vec![0.0, 0.0, 3.0, 4.0], 2);
    /// assert_eq!(ok.map(|p| p.len()), Ok(2));
    ///
    /// let bad = PointSet::try_new(vec![1.0, f32::NAN], 2);
    /// assert_eq!(bad.err(), Some(PandoraError::NonFinite { point: 0, dim: 1 }));
    /// ```
    pub fn try_new(coords: Vec<f32>, dim: usize) -> Result<Self, PandoraError> {
        if dim == 0 || !coords.len().is_multiple_of(dim) {
            return Err(PandoraError::BadShape {
                len: coords.len(),
                dim,
            });
        }
        // Unconditional: a single NaN coordinate poisons every distance
        // comparison downstream (Borůvka candidate packing, kd-tree splits)
        // and can turn release builds into infinite loops. The O(n·dim)
        // scan is noise next to any algorithm run over the same data.
        if let Some(pos) = coords.iter().position(|c| !c.is_finite()) {
            return Err(PandoraError::NonFinite {
                point: pos / dim,
                dim: pos % dim,
            });
        }
        Ok(Self { coords, dim })
    }

    /// Wraps a flat coordinate buffer (`len * dim` values, row-major).
    ///
    /// Thin wrapper over [`PointSet::try_new`] for contexts where a bad
    /// dataset is a programming error (tests, generators, figure
    /// binaries); serving paths should call `try_new` and surface the
    /// error instead.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a multiple of `dim`, if `dim` is
    /// zero, or if any coordinate is not finite.
    pub fn new(coords: Vec<f32>, dim: usize) -> Self {
        match Self::try_new(coords, dim) {
            Ok(points) => points,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    #[inline(always)]
    pub fn point(&self, i: usize) -> &[f32] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// The raw coordinate buffer.
    pub fn coords(&self) -> &[f32] {
        &self.coords
    }

    /// Squared Euclidean distance between points `a` and `b`.
    ///
    /// Specialized for the low dimensionalities that dominate spatial
    /// clustering workloads (paper Table 2 is 2–7 D) so the compiler emits
    /// straight-line code instead of a runtime-bound loop.
    #[inline(always)]
    pub fn dist2(&self, a: usize, b: usize) -> f32 {
        let pa = self.point(a);
        let pb = self.point(b);
        match self.dim {
            2 => {
                let (dx, dy) = (pa[0] - pb[0], pa[1] - pb[1]);
                dx * dx + dy * dy
            }
            3 => {
                let (dx, dy, dz) = (pa[0] - pb[0], pa[1] - pb[1], pa[2] - pb[2]);
                dx * dx + dy * dy + dz * dz
            }
            _ => {
                let mut acc = 0.0f32;
                for d in 0..self.dim {
                    let diff = pa[d] - pb[d];
                    acc += diff * diff;
                }
                acc
            }
        }
    }

    /// Keeps only the points at the given indices (in order).
    pub fn select(&self, indices: &[u32]) -> PointSet {
        let mut coords = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            coords.extend_from_slice(self.point(i as usize));
        }
        PointSet::new(coords, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let ps = PointSet::new(vec![0.0, 0.0, 3.0, 4.0], 2);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.dim(), 2);
        assert_eq!(ps.point(1), &[3.0, 4.0]);
        assert_eq!(ps.dist2(0, 1), 25.0);
    }

    #[test]
    fn select_subsets() {
        let ps = PointSet::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2);
        let sub = ps.select(&[2, 0]);
        assert_eq!(sub.point(0), &[5.0, 6.0]);
        assert_eq!(sub.point(1), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn bad_buffer_panics() {
        let _ = PointSet::new(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    #[should_panic(expected = "non-finite coordinate")]
    fn nan_coordinate_panics() {
        let _ = PointSet::new(vec![1.0, f32::NAN, 3.0, 4.0], 2);
    }

    #[test]
    #[should_panic(expected = "point 1 dim 0")]
    fn infinite_coordinate_panics_with_location() {
        let _ = PointSet::new(vec![1.0, 2.0, f32::INFINITY, 4.0], 2);
    }

    #[test]
    fn try_new_reports_structured_errors() {
        use crate::error::PandoraError;
        assert_eq!(
            PointSet::try_new(vec![1.0, 2.0, 3.0], 2).err(),
            Some(PandoraError::BadShape { len: 3, dim: 2 })
        );
        assert_eq!(
            PointSet::try_new(vec![1.0], 0).err(),
            Some(PandoraError::BadShape { len: 1, dim: 0 })
        );
        assert_eq!(
            PointSet::try_new(vec![1.0, 2.0, f32::NEG_INFINITY, 4.0], 2).err(),
            Some(PandoraError::NonFinite { point: 1, dim: 0 })
        );
        let ok = PointSet::try_new(vec![], 3).expect("empty buffers are a valid (empty) set");
        assert_eq!(ok.len(), 0);
    }
}
