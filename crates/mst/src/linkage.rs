//! Linkage selection for the agglomerative engine.
//!
//! The reproduction started as exactly one workload — single-linkage
//! mutual-reachability HDBSCAN\* — but the substrate underneath (frozen
//! kd-tree, sorted k-NN rows, pooled scratch, deterministic parallel
//! reductions) serves any reducible Lance–Williams linkage through the
//! nearest-neighbor-chain engine in [`crate::nnchain`] (per ParChain,
//! arXiv 2106.04727). This module defines *which* linkage a request runs
//! under and how that choice is resolved.
//!
//! Selection precedence mirrors `DendrogramBackend` exactly:
//! **request > environment > default** — an explicit
//! `ClusterRequest::linkage` wins; otherwise the [`LINKAGE_ENV`] variable
//! (`PANDORA_LINKAGE=single|complete|average|ward`) applies; otherwise
//! single linkage runs. An unparseable environment value is ignored rather
//! than escalated — the serving tier never panics on configuration.
//!
//! # Which path each linkage takes
//!
//! * [`Linkage::Single`] — the fast Borůvka EMST path (dual-tree over the
//!   kd-tree); the NN-chain engine reproduces it bit-identically on
//!   tie-free inputs, which the differential suite enforces.
//! * [`Linkage::Complete`] / [`Linkage::Average`] — NN-chain over a
//!   condensed distance matrix with Lance–Williams updates.
//! * [`Linkage::Ward`] — NN-chain over cluster centroid/size arrays (the
//!   exact Ward objective, no matrix needed); defined only for the
//!   Euclidean base metric, which request validation enforces.

use std::fmt;

/// Environment variable overriding the default linkage
/// (`PANDORA_LINKAGE=single|complete|average|ward`).
pub const LINKAGE_ENV: &str = "PANDORA_LINKAGE";

/// The agglomerative linkage criterion a clustering request runs under.
///
/// All four are *reducible* in the Lance–Williams sense, which is what
/// makes the nearest-neighbor-chain algorithm exact for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// Minimum distance between members (the HDBSCAN\* default; served by
    /// the Borůvka EMST fast path).
    #[default]
    Single,
    /// Maximum distance between members.
    Complete,
    /// Unweighted average of member-pair distances (UPGMA).
    Average,
    /// Ward's minimum-variance criterion (Euclidean only).
    Ward,
}

impl Linkage {
    /// Every linkage, in default-first order (for differential sweeps).
    pub const ALL: [Self; 4] = [Self::Single, Self::Complete, Self::Average, Self::Ward];

    /// The canonical spelling (also the env/CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            Self::Single => "single",
            Self::Complete => "complete",
            Self::Average => "average",
            Self::Ward => "ward",
        }
    }

    /// Parses a linkage name (case-insensitive; accepts the canonical
    /// spellings plus common aliases). Returns `None` on anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "single" | "min" | "minimum" | "nearest" => Some(Self::Single),
            "complete" | "max" | "maximum" | "furthest" | "farthest" => Some(Self::Complete),
            "average" | "mean" | "upgma" => Some(Self::Average),
            "ward" | "variance" | "ward2" => Some(Self::Ward),
            _ => None,
        }
    }

    /// Reads [`LINKAGE_ENV`]; `None` if unset or unparseable (an invalid
    /// override is ignored, never a panic — serving-tier contract).
    pub fn from_env() -> Option<Self> {
        std::env::var(LINKAGE_ENV)
            .ok()
            .and_then(|v| Self::parse(&v))
    }

    /// Applies the selection precedence: `requested` > env > default.
    pub fn resolve(requested: Option<Self>) -> Self {
        requested.or_else(Self::from_env).unwrap_or_default()
    }

    /// Whether this linkage is served by the Borůvka EMST fast path
    /// (`true` only for [`Linkage::Single`]; the rest route through
    /// [`crate::nnchain`]).
    pub fn uses_emst_fast_path(self) -> bool {
        self == Self::Single
    }
}

impl fmt::Display for Linkage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_canonical_names_and_aliases() {
        for l in Linkage::ALL {
            assert_eq!(Linkage::parse(l.name()), Some(l));
        }
        assert_eq!(Linkage::parse(" WARD "), Some(Linkage::Ward));
        assert_eq!(Linkage::parse("UPGMA"), Some(Linkage::Average));
        assert_eq!(Linkage::parse("max"), Some(Linkage::Complete));
        assert_eq!(Linkage::parse("median"), None);
        assert_eq!(Linkage::parse(""), None);
    }

    #[test]
    fn resolve_prefers_request_over_default() {
        // Env interaction is exercised in `tests/linkage_env.rs` (env vars
        // are process-global; unit tests here stay mutation-free).
        assert_eq!(Linkage::resolve(Some(Linkage::Ward)), Linkage::Ward);
    }

    #[test]
    fn only_single_gets_the_fast_path() {
        assert!(Linkage::Single.uses_emst_fast_path());
        for l in [Linkage::Complete, Linkage::Average, Linkage::Ward] {
            assert!(!l.uses_emst_fast_path());
        }
    }

    #[test]
    fn display_matches_name() {
        for l in Linkage::ALL {
            assert_eq!(format!("{l}"), l.name());
        }
    }
}
