//! Distance metrics for MST construction.
//!
//! HDBSCAN\* runs single-linkage over the **mutual reachability distance**
//! `d_mreach(a,b) = max(core_k(a), core_k(b), d(a,b))` (paper §6.5). All
//! internal computation uses *squared* distances: `max` commutes with the
//! monotone square, so comparisons are unaffected and `sqrt` is deferred to
//! the final edge weights.

use crate::point::PointSet;

/// Which base dissimilarity a clustering request runs under — the
/// **per-request metric selection** the serving tier threads down to the
/// compute substrate (Borůvka EMST or the NN-chain engine), instead of the
/// metric being baked into call sites.
///
/// Both kinds are served from the same frozen spatial substrate: mutual
/// reachability is plain Euclidean plus a per-point core-distance floor, so
/// the kd-tree and k-NN rows never change shape with the metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MetricKind {
    /// HDBSCAN\*'s `d_mreach(a,b) = max(core_k(a), core_k(b), d(a,b))`
    /// (the default). Degenerates to Euclidean at `minPts ≤ 1`, where every
    /// core distance is zero.
    #[default]
    MutualReachability,
    /// Plain Euclidean distance, regardless of `minPts` (core distances are
    /// still computed for the result, they just do not enter the metric).
    Euclidean,
}

impl MetricKind {
    /// Every metric kind, in default-first order.
    pub const ALL: [Self; 2] = [Self::MutualReachability, Self::Euclidean];

    /// The canonical spelling.
    pub fn name(self) -> &'static str {
        match self {
            Self::MutualReachability => "mutual-reachability",
            Self::Euclidean => "euclidean",
        }
    }

    /// Parses a metric name (case-insensitive; accepts the canonical
    /// spellings plus common aliases). Returns `None` on anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "mutual-reachability" | "mutual_reachability" | "mreach" | "mutual" => {
                Some(Self::MutualReachability)
            }
            "euclidean" | "euclid" | "l2" => Some(Self::Euclidean),
            _ => None,
        }
    }

    /// Whether a request under this metric at `min_pts` is *effectively*
    /// Euclidean: either the metric is Euclidean outright, or it is mutual
    /// reachability with every core distance identically zero
    /// (`min_pts ≤ 1`). The dispatch layer uses this to pick the Euclidean
    /// Borůvka arm and to validate Ward requests.
    pub fn effectively_euclidean(self, min_pts: usize) -> bool {
        match self {
            Self::Euclidean => true,
            Self::MutualReachability => min_pts <= 1,
        }
    }
}

impl core::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A metric usable by the Borůvka EMST and k-NN code paths.
///
/// All values are squared distances.
pub trait Metric: Sync {
    /// Squared distance between points `a` and `b`.
    fn dist2(&self, points: &PointSet, a: u32, b: u32) -> f32;

    /// Finalizes a precomputed squared **Euclidean** distance into this
    /// metric's squared distance for the pair `(a, b)`.
    ///
    /// Must agree exactly with [`Metric::dist2`]; the chunked leaf kernels
    /// ([`euclid_block_dist2`]) compute the Euclidean part for a whole block
    /// of points at once and hand each lane's result through here.
    fn refine_euclid2(&self, euclid_d2: f32, a: u32, b: u32) -> f32;

    /// Lower bound on the squared distance from query point `q` to any point
    /// inside the axis-aligned box `[bbox_min, bbox_max]`, given the minimum
    /// (squared) core distance of the points inside the box.
    fn box_bound2(&self, points: &PointSet, q: u32, box_dist2: f32, box_min_core2: f32) -> f32;
}

/// Width of the chunked leaf distance kernels: distances to this many
/// consecutive points are computed per inner-loop step.
///
/// Eight f32 lanes fill one AVX2 register (or two NEON registers), and the
/// kernels below are written as fixed-trip-count loops over contiguous
/// coordinates precisely so LLVM auto-vectorizes them at this width.
pub const LEAF_BLOCK: usize = 8;

/// Squared Euclidean distances from `q` (one point, `dim` coordinates) to
/// one [`LEAF_BLOCK`]-point coordinate block in **dimension-major** layout:
/// `block[d * LEAF_BLOCK + j]` is coordinate `d` of block point `j`
/// (AoSoA — the kd-tree stores leaf coordinates this way).
///
/// Every dimension is a contiguous 8-lane subtract–square–accumulate with a
/// fixed trip count, the exact shape LLVM turns into packed vector ops; no
/// strided loads or shuffles are needed. Callers always pass a full block
/// (padding lanes compute garbage distances that are simply never read).
#[inline]
pub fn euclid_block_dist2(q: &[f32], block: &[f32], out: &mut [f32; LEAF_BLOCK]) {
    debug_assert_eq!(block.len(), q.len() * LEAF_BLOCK);
    match *q {
        [q0, q1] => {
            for j in 0..LEAF_BLOCK {
                let dx = block[j] - q0;
                let dy = block[LEAF_BLOCK + j] - q1;
                out[j] = dx * dx + dy * dy;
            }
        }
        [q0, q1, q2] => {
            for j in 0..LEAF_BLOCK {
                let dx = block[j] - q0;
                let dy = block[LEAF_BLOCK + j] - q1;
                let dz = block[2 * LEAF_BLOCK + j] - q2;
                out[j] = dx * dx + dy * dy + dz * dz;
            }
        }
        _ => {
            out.fill(0.0);
            for (d, &qc) in q.iter().enumerate() {
                let lane = &block[d * LEAF_BLOCK..(d + 1) * LEAF_BLOCK];
                for j in 0..LEAF_BLOCK {
                    let diff = lane[j] - qc;
                    out[j] += diff * diff;
                }
            }
        }
    }
}

/// Squared distance from a point to an axis-aligned bounding box.
///
/// Per-axis overshoot as a branch-free clamp, with the same low-dimension
/// specialization as [`crate::point::PointSet::dist2`] — this runs twice
/// per internal node visited on the kd-tree hot path.
#[inline(always)]
pub fn point_box_dist2(p: &[f32], bbox_min: &[f32], bbox_max: &[f32]) -> f32 {
    #[inline(always)]
    fn axis(c: f32, lo: f32, hi: f32) -> f32 {
        let diff = (lo - c).max(c - hi).max(0.0);
        diff * diff
    }
    match p.len() {
        2 => axis(p[0], bbox_min[0], bbox_max[0]) + axis(p[1], bbox_min[1], bbox_max[1]),
        3 => {
            axis(p[0], bbox_min[0], bbox_max[0])
                + axis(p[1], bbox_min[1], bbox_max[1])
                + axis(p[2], bbox_min[2], bbox_max[2])
        }
        _ => {
            let mut acc = 0.0f32;
            for d in 0..p.len() {
                acc += axis(p[d], bbox_min[d], bbox_max[d]);
            }
            acc
        }
    }
}

/// Plain Euclidean distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct Euclidean;

impl Metric for Euclidean {
    #[inline(always)]
    fn dist2(&self, points: &PointSet, a: u32, b: u32) -> f32 {
        points.dist2(a as usize, b as usize)
    }

    #[inline(always)]
    fn refine_euclid2(&self, euclid_d2: f32, _a: u32, _b: u32) -> f32 {
        euclid_d2
    }

    #[inline(always)]
    fn box_bound2(&self, _points: &PointSet, _q: u32, box_dist2: f32, _box_min_core2: f32) -> f32 {
        box_dist2
    }
}

/// HDBSCAN\*'s mutual reachability distance over squared core distances.
#[derive(Debug, Clone, Copy)]
pub struct MutualReachability<'a> {
    /// Squared core distance (distance to the `minPts`-th neighbour) per point.
    pub core2: &'a [f32],
}

impl Metric for MutualReachability<'_> {
    #[inline(always)]
    fn dist2(&self, points: &PointSet, a: u32, b: u32) -> f32 {
        let d2 = points.dist2(a as usize, b as usize);
        d2.max(self.core2[a as usize]).max(self.core2[b as usize])
    }

    #[inline(always)]
    fn refine_euclid2(&self, euclid_d2: f32, a: u32, b: u32) -> f32 {
        euclid_d2
            .max(self.core2[a as usize])
            .max(self.core2[b as usize])
    }

    #[inline(always)]
    fn box_bound2(&self, _points: &PointSet, q: u32, box_dist2: f32, box_min_core2: f32) -> f32 {
        // d_mreach(q, x) ≥ max(core(q), d(q,x), min core in box) for any x
        // in the box.
        box_dist2.max(self.core2[q as usize]).max(box_min_core2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_kind_parse_and_effective_euclidean() {
        for k in MetricKind::ALL {
            assert_eq!(MetricKind::parse(k.name()), Some(k));
        }
        assert_eq!(
            MetricKind::parse(" MREACH "),
            Some(MetricKind::MutualReachability)
        );
        assert_eq!(MetricKind::parse("L2"), Some(MetricKind::Euclidean));
        assert_eq!(MetricKind::parse("cosine"), None);
        assert!(MetricKind::Euclidean.effectively_euclidean(8));
        assert!(MetricKind::MutualReachability.effectively_euclidean(1));
        assert!(!MetricKind::MutualReachability.effectively_euclidean(2));
        assert_eq!(MetricKind::default(), MetricKind::MutualReachability);
    }

    #[test]
    fn point_box_distance() {
        let bbox_min = [0.0, 0.0];
        let bbox_max = [1.0, 1.0];
        assert_eq!(point_box_dist2(&[0.5, 0.5], &bbox_min, &bbox_max), 0.0);
        assert_eq!(point_box_dist2(&[2.0, 0.5], &bbox_min, &bbox_max), 1.0);
        assert_eq!(point_box_dist2(&[2.0, 2.0], &bbox_min, &bbox_max), 2.0);
        assert_eq!(point_box_dist2(&[-1.0, 0.5], &bbox_min, &bbox_max), 1.0);
    }

    #[test]
    fn mutual_reachability_takes_max() {
        let points = PointSet::new(vec![0.0, 0.0, 1.0, 0.0], 2);
        let core2 = vec![4.0, 0.25];
        let m = MutualReachability { core2: &core2 };
        // d² = 1, core²(0) = 4 dominates.
        assert_eq!(m.dist2(&points, 0, 1), 4.0);
        let m2 = MutualReachability { core2: &[0.0, 0.0] };
        assert_eq!(m2.dist2(&points, 0, 1), 1.0);
    }

    #[test]
    fn block_kernel_matches_scalar_dist2() {
        for dim in [2usize, 3, 5] {
            // One full AoSoA block of deterministic coordinates plus a
            // query point; the kernel must agree bitwise with the scalar
            // path (the tree's `refine_euclid2` contract depends on it).
            let n = LEAF_BLOCK;
            let coords: Vec<f32> = (0..(n + 1) * dim)
                .map(|i| ((i * 37 % 101) as f32) * 0.25 - 12.0)
                .collect();
            let points = PointSet::new(coords, dim);
            let q = points.point(n);
            // Dimension-major block: lane d holds coordinate d of all points.
            let mut block = vec![0.0f32; LEAF_BLOCK * dim];
            for p in 0..n {
                for (d, &c) in points.point(p).iter().enumerate() {
                    block[d * LEAF_BLOCK + p] = c;
                }
            }
            let mut out = [0.0f32; LEAF_BLOCK];
            euclid_block_dist2(q, &block, &mut out);
            for (p, &got) in out.iter().enumerate() {
                assert_eq!(got, points.dist2(n, p), "dim={dim} p={p}");
            }
        }
    }

    #[test]
    fn refine_euclid2_agrees_with_dist2() {
        let points = PointSet::new(vec![0.0, 0.0, 3.0, 4.0, 1.0, 1.0], 2);
        let core2 = vec![4.0, 30.0, 0.5];
        let m = MutualReachability { core2: &core2 };
        for (a, b) in [(0u32, 1u32), (1, 2), (0, 2)] {
            let e2 = points.dist2(a as usize, b as usize);
            assert_eq!(m.refine_euclid2(e2, a, b), m.dist2(&points, a, b));
            assert_eq!(
                Euclidean.refine_euclid2(e2, a, b),
                Euclidean.dist2(&points, a, b)
            );
        }
    }

    #[test]
    fn bounds_never_exceed_distance() {
        let points = PointSet::new(vec![0.0, 0.0, 3.0, 4.0], 2);
        let core2 = vec![1.0, 9.0];
        let m = MutualReachability { core2: &core2 };
        let d2 = m.dist2(&points, 0, 1);
        // Box containing point 1 exactly.
        let bd2 = point_box_dist2(points.point(0), points.point(1), points.point(1));
        let bound = m.box_bound2(&points, 0, bd2, 9.0);
        assert!(bound <= d2);
    }
}
