//! Reusable EMST stage workspace: build the spatial substrate **once per
//! dataset**, serve many `minPts` queries from it.
//!
//! The one-shot orchestrator ([`crate::emst::emst`]) rebuilds the kd-tree,
//! re-runs the core-distance k-NN pass and reallocates every Borůvka buffer
//! on each call — fine for a single figure run, wasteful for the workloads
//! the paper's §6.5 study implies (the same dataset swept over
//! `mpts ∈ {2, 4, 8, 16}`) and for serving repeated clustering requests.
//! [`EmstWorkspace`] amortizes all of it:
//!
//! * the kd-tree (with its AoSoA leaf-coordinate blocks) is built once and
//!   owned by the workspace;
//! * one sorted k-NN pass at the **largest** `minPts` of interest captures
//!   per-point neighbour rows; the squared core distance for every smaller
//!   `minPts` is then a prefix lookup (`row[min_pts − 2]`), bit-identical
//!   to a fresh k-NN query because the multiset of k-nearest distances is
//!   unique;
//! * the same rows drive the Borůvka **row screen**
//!   ([`crate::knn::KnnRows`]): most first-round queries resolve exactly
//!   from their row without touching the tree, and rows double as
//!   boundary-filter lower bounds in later rounds;
//! * every Borůvka round buffer is drawn from a pooled
//!   [`pandora_exec::scratch::ScratchPool`], so repeat runs perform no
//!   per-run buffer allocation.
//!
//! Results are **bit-identical** to the one-shot path (serial and
//! threaded) — enforced by `tests/engine_equivalence.rs`.

use std::time::Instant;

use pandora_exec::{ExecCtx, ScratchPool};

use crate::boruvka::EndgameCache;
use crate::emst::{Emst, EmstTimings};
use crate::kdtree::{KdTree, DEFAULT_LEAF_SIZE};
use crate::knn::{core2_from_rows, knn_rows_into, KnnRows};
use crate::metric::MetricKind;
use crate::point::PointSet;

/// Extra neighbours captured past the largest requested `minPts` when
/// preparing a sweep ([`EmstWorkspace::prepare`]).
///
/// The row screen proves a row-resolved winner exact only when it sits
/// *strictly below* the row's k-th distance; at `minPts = k + 1` the core
/// distance **is** the k-th distance, so a slack-free row can never certify
/// the largest swept `minPts`. A few spare neighbours restore the screen
/// for every member of the sweep at a marginal one-off k-NN cost.
pub const ROW_SLACK: usize = 8;

/// Identity of the dataset a workspace was warmed on: shape plus a content
/// hash (FNV-1a over the raw coordinate bytes). A buffer address would be
/// a tempting fast path, but it is unsound from the workspace's vantage:
/// the original point set may be dropped between runs and a *different*
/// dataset allocated at the recycled address, so contents are always
/// hashed (an O(n·dim) scan — noise next to any pipeline stage).
#[derive(Clone, Copy, PartialEq)]
struct DatasetId {
    n: usize,
    dim: usize,
    content: u64,
}

impl DatasetId {
    fn of(points: &PointSet) -> Self {
        Self {
            n: points.len(),
            dim: points.dim(),
            content: fnv1a_f32(points.coords()),
        }
    }

    /// Whether `points` is (observably) the dataset this id was taken of.
    fn matches(&self, points: &PointSet) -> bool {
        (self.n, self.dim) == (points.len(), points.dim())
            && self.content == fnv1a_f32(points.coords())
    }
}

/// FNV-1a over the raw bytes of a coordinate slice.
fn fnv1a_f32(coords: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for c in coords {
        for b in c.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// A long-lived EMST workspace bound to one dataset (see the module docs).
pub struct EmstWorkspace {
    leaf_size: usize,
    /// Identity of the dataset the tree was warmed on (`None` = cold).
    bound: Option<DatasetId>,
    tree: Option<KdTree>,
    /// Neighbours captured per row (0 = no rows yet).
    rows_k: usize,
    row_d2: Vec<f32>,
    row_idx: Vec<u32>,
    /// Per-node subtree core minima of the *current* run (recomputed per
    /// `minPts`, buffer reused).
    node_core2: Vec<f32>,
    scratch: ScratchPool,
    endgame: EndgameCache,
    build_s: f64,
    rows_s: f64,
}

impl Default for EmstWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl EmstWorkspace {
    /// Creates a cold workspace with the default kd-tree leaf size.
    pub fn new() -> Self {
        Self::with_leaf_size(DEFAULT_LEAF_SIZE)
    }

    /// Creates a cold workspace with a caller-chosen kd-tree leaf size.
    pub fn with_leaf_size(leaf_size: usize) -> Self {
        Self {
            leaf_size,
            bound: None,
            tree: None,
            rows_k: 0,
            row_d2: Vec::new(),
            row_idx: Vec::new(),
            node_core2: Vec::new(),
            scratch: ScratchPool::new(),
            endgame: EndgameCache::new(),
            build_s: 0.0,
            rows_s: 0.0,
        }
    }

    /// Builds the kd-tree if this is the first call; returns the seconds
    /// spent (0 when already warm).
    ///
    /// # Panics
    ///
    /// Panics if the workspace was warmed on a **different dataset**: a
    /// workspace serves exactly one dataset for its lifetime (the tree
    /// indexes concrete coordinates, so swapping point sets silently would
    /// corrupt every result). Identity is checked by shape plus a content
    /// hash — same-shape different-content datasets are rejected, not
    /// corrupted.
    pub fn ensure_tree(&mut self, ctx: &ExecCtx, points: &PointSet) -> f64 {
        match &self.bound {
            None => self.bound = Some(DatasetId::of(points)),
            Some(id) => assert!(
                id.matches(points),
                "EmstWorkspace is bound to the dataset it was warmed on \
                 (got a different point set of shape {}x{})",
                points.len(),
                points.dim()
            ),
        }
        if self.tree.is_some() {
            return 0.0;
        }
        ctx.set_phase("emst_build");
        let t = Instant::now();
        self.tree = Some(KdTree::build_with_leaf_size(ctx, points, self.leaf_size));
        let spent = t.elapsed().as_secs_f64();
        self.build_s += spent;
        spent
    }

    /// Ensures the sorted k-NN rows cover `min_pts` (capturing
    /// `min(min_pts − 1, n − 1)` neighbours per point if they do not yet);
    /// returns the seconds spent (0 when already wide enough).
    ///
    /// # Panics
    ///
    /// Panics if `min_pts` is 0 or (for `n ≥ 2`) exceeds the point count —
    /// the same contract as [`crate::knn::core_distances2`].
    pub fn ensure_rows(&mut self, ctx: &ExecCtx, points: &PointSet, min_pts: usize) -> f64 {
        let n = points.len();
        assert!(min_pts >= 1, "min_pts must be at least 1");
        assert!(
            n <= 1 || min_pts <= n,
            "min_pts ({min_pts}) exceeds the number of points ({n}): \
             the {min_pts}-th nearest neighbour does not exist"
        );
        let k = (min_pts - 1).min(n.saturating_sub(1));
        self.capture_rows(ctx, points, k)
    }

    /// Prepares the workspace for a sweep whose largest `minPts` is
    /// `max_min_pts`: builds the tree and captures rows wide enough for
    /// every member **plus [`ROW_SLACK`] spare neighbours** (so the row
    /// screen stays exact even at the sweep maximum). Returns the seconds
    /// spent on shared (amortized) work this call.
    pub fn prepare(&mut self, ctx: &ExecCtx, points: &PointSet, max_min_pts: usize) -> f64 {
        let mut spent = self.ensure_tree(ctx, points);
        let n = points.len();
        assert!(max_min_pts >= 1, "min_pts must be at least 1");
        assert!(
            n <= 1 || max_min_pts <= n,
            "min_pts ({max_min_pts}) exceeds the number of points ({n}): \
             the {max_min_pts}-th nearest neighbour does not exist"
        );
        let k = (max_min_pts - 1 + ROW_SLACK).min(n.saturating_sub(1));
        spent += self.capture_rows(ctx, points, k);
        spent
    }

    fn capture_rows(&mut self, ctx: &ExecCtx, points: &PointSet, k: usize) -> f64 {
        if k <= self.rows_k || points.len() <= 1 {
            return 0.0;
        }
        let tree = self.tree.as_ref().expect("ensure_tree before rows");
        ctx.set_phase("emst_core");
        let t = Instant::now();
        knn_rows_into(ctx, points, tree, k, &mut self.row_d2, &mut self.row_idx);
        self.rows_k = k;
        let spent = t.elapsed().as_secs_f64();
        self.rows_s += spent;
        spent
    }

    /// The owned kd-tree (`None` before the first [`EmstWorkspace::ensure_tree`]).
    pub fn tree(&self) -> Option<&KdTree> {
        self.tree.as_ref()
    }

    /// Neighbours currently captured per row.
    pub fn rows_k(&self) -> usize {
        self.rows_k
    }

    /// Total seconds spent building the tree (amortized over all runs).
    pub fn build_seconds(&self) -> f64 {
        self.build_s
    }

    /// Total seconds spent capturing k-NN rows (amortized over all runs).
    pub fn rows_seconds(&self) -> f64 {
        self.rows_s
    }

    /// The scratch pool backing the Borůvka buffers (for accounting).
    pub fn scratch(&self) -> &ScratchPool {
        &self.scratch
    }
}

/// Runs one EMST under the mutual-reachability metric for `min_pts` out of
/// a (possibly warm) workspace.
///
/// The first call pays the kd-tree build and (unless
/// [`EmstWorkspace::prepare`] already ran) a k-NN pass; later calls reuse
/// both, so a sweep pays **one build + one k-NN pass** total. Reported
/// [`EmstTimings`] cover only the seconds actually spent in this call —
/// warm runs report `tree_build_s = 0`.
///
/// The returned MST edges and core distances are bit-identical to
/// [`crate::emst::emst`] with the same `min_pts`.
///
/// # Panics
///
/// As [`crate::emst::emst`]: `min_pts` must be ≥ 1 and (for `n ≥ 2`) at
/// most `n`; the workspace must not have been warmed on a different
/// dataset.
pub fn emst_into(ctx: &ExecCtx, points: &PointSet, min_pts: usize, ws: &mut EmstWorkspace) -> Emst {
    emst_into_with(ctx, points, min_pts, MetricKind::MutualReachability, ws)
}

/// [`emst_into`] with an explicit per-request base metric
/// ([`MetricKind::Euclidean`] builds the plain Euclidean MST; core
/// distances are still computed for the result). Bit-identical to
/// [`emst_into`] under the default mutual-reachability metric.
///
/// # Panics
///
/// As [`emst_into`].
pub fn emst_into_with(
    ctx: &ExecCtx,
    points: &PointSet,
    min_pts: usize,
    metric: MetricKind,
    ws: &mut EmstWorkspace,
) -> Emst {
    let n = points.len();
    let mut timings = EmstTimings {
        tree_build_s: ws.ensure_tree(ctx, points),
        ..Default::default()
    };

    ctx.set_phase("emst_core");
    let t = Instant::now();
    let mut rows_spent = ws.ensure_rows(ctx, points, min_pts);
    // Core distances by prefix: the (min_pts − 1)-th entry of a sorted row
    // is the exact distance to the (min_pts − 1)-th nearest neighbour.
    let mut core2 = vec![0.0f32; n];
    if min_pts >= 2 && n > 1 {
        debug_assert!(ws.rows_k >= (min_pts - 1).min(n - 1));
        core2_from_rows(ctx, &ws.row_d2, ws.rows_k, min_pts, &mut core2);
    }
    rows_spent += t.elapsed().as_secs_f64();
    timings.core_s = rows_spent;

    // The stage body (subtree bounds, metric selection, configured
    // Borůvka) is shared with the frozen-index path — one implementation,
    // so the two substrates cannot drift apart (`index::run_request`).
    let t = Instant::now();
    let tree = ws.tree.as_ref().expect("tree ensured above");
    let rows = (ws.rows_k > 0).then_some(KnnRows {
        k: ws.rows_k,
        d2: &ws.row_d2,
        idx: &ws.row_idx,
    });
    let edges = crate::index::run_request(
        ctx,
        points,
        tree,
        rows,
        &core2,
        min_pts,
        metric,
        &mut ws.node_core2,
        &mut ws.endgame,
        &ws.scratch,
        None,
    );
    timings.boruvka_s = t.elapsed().as_secs_f64();

    Emst {
        edges,
        core2,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emst::{emst, EmstParams};
    use rand::prelude::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            (0..n * dim).map(|_| rng.gen_range(-5.0..5.0f32)).collect(),
            dim,
        )
    }

    #[test]
    fn warm_sweep_matches_cold_runs_exactly() {
        let ctx = ExecCtx::serial();
        let points = random_points(400, 3, 11);
        let mut ws = EmstWorkspace::new();
        ws.prepare(&ctx, &points, 16);
        for min_pts in [2usize, 4, 8, 16] {
            let warm = emst_into(&ctx, &points, min_pts, &mut ws);
            let cold = emst(&ctx, &points, &EmstParams::with_min_pts(min_pts));
            assert_eq!(warm.core2, cold.core2, "min_pts={min_pts}");
            assert_eq!(warm.edges.len(), cold.edges.len());
            for (a, b) in warm.edges.iter().zip(cold.edges.iter()) {
                assert_eq!((a.u, a.v, a.w), (b.u, b.v, b.w), "min_pts={min_pts}");
            }
        }
        // The tree was built exactly once and the rows captured once.
        assert!(ws.build_seconds() > 0.0);
        assert_eq!(ws.rows_k(), 15 + ROW_SLACK);
        assert_eq!(ws.scratch().outstanding(), 0);
    }

    #[test]
    fn rows_grow_on_demand() {
        let ctx = ExecCtx::serial();
        let points = random_points(120, 2, 3);
        let mut ws = EmstWorkspace::new();
        let a = emst_into(&ctx, &points, 2, &mut ws);
        assert_eq!(ws.rows_k(), 1);
        let b = emst_into(&ctx, &points, 6, &mut ws);
        assert_eq!(ws.rows_k(), 5);
        let cold_a = emst(&ctx, &points, &EmstParams::with_min_pts(2));
        let cold_b = emst(&ctx, &points, &EmstParams::with_min_pts(6));
        assert_eq!(a.core2, cold_a.core2);
        assert_eq!(b.core2, cold_b.core2);
    }

    #[test]
    fn min_pts_one_and_tiny_inputs() {
        let ctx = ExecCtx::serial();
        let mut ws = EmstWorkspace::new();
        let points = random_points(50, 2, 7);
        let r = emst_into(&ctx, &points, 1, &mut ws);
        assert!(r.core2.iter().all(|&c| c == 0.0));
        assert_eq!(r.edges.len(), 49);

        for n in [0usize, 1] {
            let mut ws = EmstWorkspace::new();
            let tiny = random_points(n, 2, 1);
            let r = emst_into(&ctx, &tiny, 2, &mut ws);
            assert!(r.edges.is_empty());
            assert_eq!(r.core2.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the number of points")]
    fn min_pts_above_n_panics_like_one_shot() {
        let ctx = ExecCtx::serial();
        let points = random_points(5, 2, 1);
        let mut ws = EmstWorkspace::new();
        let _ = emst_into(&ctx, &points, 6, &mut ws);
    }

    #[test]
    #[should_panic(expected = "bound to the dataset")]
    fn rejects_a_different_dataset() {
        let ctx = ExecCtx::serial();
        let mut ws = EmstWorkspace::new();
        let _ = emst_into(&ctx, &random_points(30, 2, 1), 2, &mut ws);
        let _ = emst_into(&ctx, &random_points(40, 2, 2), 2, &mut ws);
    }

    #[test]
    #[should_panic(expected = "bound to the dataset")]
    fn rejects_a_same_shape_different_content_dataset() {
        // The silent-corruption case: identical (n, dim) but different
        // coordinates must be caught by the content hash, not served from
        // the stale tree.
        let ctx = ExecCtx::serial();
        let mut ws = EmstWorkspace::new();
        let _ = emst_into(&ctx, &random_points(30, 2, 1), 2, &mut ws);
        let _ = emst_into(&ctx, &random_points(30, 2, 99), 2, &mut ws);
    }

    #[test]
    fn accepts_a_moved_copy_of_the_same_dataset() {
        // A clone relocates the coord buffer; the content hash must still
        // recognize it as the bound dataset.
        let ctx = ExecCtx::serial();
        let points = random_points(30, 2, 1);
        let copy = points.clone();
        let mut ws = EmstWorkspace::new();
        let a = emst_into(&ctx, &points, 2, &mut ws);
        let b = emst_into(&ctx, &copy, 2, &mut ws);
        assert_eq!(a.core2, b.core2);
    }

    #[test]
    fn timings_are_amortized() {
        let ctx = ExecCtx::serial();
        let points = random_points(300, 2, 9);
        let mut ws = EmstWorkspace::new();
        ws.prepare(&ctx, &points, 8);
        let first = emst_into(&ctx, &points, 4, &mut ws);
        // Tree and rows were prepared before the run: nothing rebuilt.
        assert_eq!(first.timings.tree_build_s, 0.0);
        let second = emst_into(&ctx, &points, 8, &mut ws);
        assert_eq!(second.timings.tree_build_s, 0.0);
        assert!(second.timings.boruvka_s > 0.0);
    }
}
