//! End-to-end EMST orchestration: kd-tree build → core distances → Borůvka.
//!
//! The paper treats EMST construction (its ArborX stage, \[39\]) as a
//! single pre-processing step ahead of the PANDORA dendrogram; this module
//! is that step as one call. It owns the phase sequencing the individual
//! kernels (`kdtree`, `knn`, `boruvka`) should not know about:
//!
//! 1. build the kd-tree over the points (traced phase `emst_build`);
//! 2. compute `minPts` core distances and their per-subtree minima for
//!    mutual-reachability pruning (phase `emst_core`);
//! 3. run Borůvka under the mutual-reachability metric — or plain
//!    Euclidean when `min_pts <= 1`, where both metrics coincide
//!    (phase `emst_boruvka`).
//!
//! Every stage is wall-clock timed ([`EmstTimings`]) and kernel-traced via
//! [`pandora_exec::trace`], so the bench harness and the HDBSCAN\* pipeline
//! report the same decomposition the paper's Figures 1 and 12 use.

use std::time::Instant;

use pandora_core::Edge;
use pandora_exec::{ExecCtx, ScratchPool};

use crate::boruvka::{boruvka_mst, boruvka_mst_seeded, boruvka_mst_with, BoruvkaExtras};
use crate::kdtree::{KdTree, DEFAULT_LEAF_SIZE};
use crate::knn::{core2_from_rows, knn_rows_into, KnnRows};
use crate::metric::{Euclidean, MutualReachability};
use crate::point::PointSet;
use crate::workspace::ROW_SLACK;

/// Parameters of an EMST run.
#[derive(Debug, Clone, Copy)]
pub struct EmstParams {
    /// HDBSCAN\* `minPts` (counting the point itself). `min_pts <= 1`
    /// yields the plain Euclidean MST. Must not exceed the point count;
    /// see [`crate::knn::core_distances2`].
    pub min_pts: usize,
    /// kd-tree leaf capacity.
    pub leaf_size: usize,
}

impl Default for EmstParams {
    fn default() -> Self {
        Self {
            min_pts: 2,
            leaf_size: DEFAULT_LEAF_SIZE,
        }
    }
}

impl EmstParams {
    /// Parameters with the given `min_pts` and the default leaf size.
    pub fn with_min_pts(min_pts: usize) -> Self {
        Self {
            min_pts,
            ..Self::default()
        }
    }
}

/// Per-stage wall-clock seconds of an EMST run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmstTimings {
    /// kd-tree construction.
    pub tree_build_s: f64,
    /// Core-distance k-NN queries (incl. attaching subtree minima).
    pub core_s: f64,
    /// Borůvka rounds.
    pub boruvka_s: f64,
}

impl EmstTimings {
    /// Total EMST seconds.
    pub fn total(&self) -> f64 {
        self.tree_build_s + self.core_s + self.boruvka_s
    }
}

/// The result of an EMST run.
#[derive(Debug, Clone)]
pub struct Emst {
    /// The `n − 1` MST edges (weights are metric distances, not squared).
    pub edges: Vec<Edge>,
    /// Squared core distance per point (all zero when `min_pts <= 1`).
    pub core2: Vec<f32>,
    /// Stage timings.
    pub timings: EmstTimings,
}

/// Runs the full EMST pipeline on `points`.
///
/// Returns the mutual-reachability MST for `params.min_pts >= 2`, the
/// Euclidean MST otherwise. Non-finite coordinates are rejected by
/// [`PointSet::new`], so every distance seen here is finite and the
/// Borůvka liveness check can be unconditional.
pub fn emst(ctx: &ExecCtx, points: &PointSet, params: &EmstParams) -> Emst {
    let n = points.len();

    ctx.set_phase("emst_build");
    let t = Instant::now();
    let tree = KdTree::build_with_leaf_size(ctx, points, params.leaf_size);
    let tree_build_s = t.elapsed().as_secs_f64();

    let mut timings = EmstTimings {
        tree_build_s,
        ..Default::default()
    };

    if n <= 1 {
        // Degenerate sets: nothing to connect, every core distance is 0.
        return Emst {
            edges: Vec::new(),
            core2: vec![0.0; n],
            timings,
        };
    }

    if params.min_pts <= 1 {
        // Plain single linkage: zero core distances, Euclidean metric.
        ctx.set_phase("emst_boruvka");
        let t = Instant::now();
        let edges = boruvka_mst(ctx, points, &tree, &Euclidean);
        timings.boruvka_s = t.elapsed().as_secs_f64();
        return Emst {
            edges,
            core2: vec![0.0; n],
            timings,
        };
    }

    ctx.set_phase("emst_core");
    let t = Instant::now();
    // Sorted k-NN rows, `ROW_SLACK` wider than the core-distance prefix —
    // the same substrate the frozen-index path captures at freeze time.
    // Feeding the rows (rather than collapsed per-point seeds) into
    // Borůvka arms the row screen and the merge-surviving 2-hop witnesses
    // on the cold one-shot path too: round one mostly resolves straight
    // from the rows, later rounds from surviving witnesses.
    let k = (params.min_pts - 1 + ROW_SLACK).min(n - 1);
    let (mut row_d2, mut row_idx) = (Vec::new(), Vec::new());
    knn_rows_into(ctx, points, &tree, k, &mut row_d2, &mut row_idx);
    // Core distances by prefix: the (minPts − 2)-th entry of a sorted row
    // is the exact distance to the (minPts − 1)-th nearest neighbour.
    let mut core2 = vec![0.0f32; n];
    core2_from_rows(ctx, &row_d2, k, params.min_pts, &mut core2);
    // Per-request subtree core minima for mutual-reachability pruning; the
    // tree itself stays immutable (and thus shareable across requests).
    let mut node_core2 = Vec::new();
    tree.min_core2_into(&core2, &mut node_core2);
    timings.core_s = t.elapsed().as_secs_f64();

    ctx.set_phase("emst_boruvka");
    let t = Instant::now();
    let metric = MutualReachability { core2: &core2 };
    let rows = KnnRows {
        k,
        d2: &row_d2,
        idx: &row_idx,
    };
    let pool = ScratchPool::new();
    let edges = boruvka_mst_with(
        ctx,
        points,
        &tree,
        &metric,
        BoruvkaExtras {
            rows: Some(rows),
            node_core2: &node_core2,
            ..Default::default()
        },
        &pool,
    );
    timings.boruvka_s = t.elapsed().as_secs_f64();

    Emst {
        edges,
        core2,
        timings,
    }
}

/// Mutual-reachability MST with **caller-provided** squared core distances
/// (e.g. subset MSTs evaluated under a global metric, as DBCV needs).
///
/// Builds the tree, computes the subtree core minima for pruning, and runs
/// Borůvka; `core2.len()` must equal `points.len()`.
pub fn emst_with_core2(ctx: &ExecCtx, points: &PointSet, core2: &[f32]) -> Vec<Edge> {
    assert_eq!(core2.len(), points.len(), "one core distance per point");
    let tree = KdTree::build(ctx, points);
    let mut node_core2 = Vec::new();
    tree.min_core2_into(core2, &mut node_core2);
    let metric = MutualReachability { core2 };
    boruvka_mst_seeded(ctx, points, &tree, &metric, None, &node_core2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::total_weight;
    use crate::metric::Metric;
    use crate::prim::prim_mst;
    use rand::prelude::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            (0..n * dim).map(|_| rng.gen_range(-5.0..5.0f32)).collect(),
            dim,
        )
    }

    #[test]
    fn emst_matches_prim_for_default_params() {
        let ctx = ExecCtx::serial();
        let points = random_points(300, 3, 7);
        let result = emst(&ctx, &points, &EmstParams::default());
        assert_eq!(result.edges.len(), 299);
        assert_eq!(result.core2.len(), 300);
        let metric = MutualReachability {
            core2: &result.core2,
        };
        let expect = prim_mst(&points, &metric);
        let (wa, wb) = (total_weight(&result.edges), total_weight(&expect));
        assert!((wa - wb).abs() < 1e-3 * wb.max(1.0), "{wa} vs {wb}");
    }

    #[test]
    fn min_pts_one_is_euclidean() {
        let ctx = ExecCtx::serial();
        let points = random_points(200, 2, 3);
        let result = emst(&ctx, &points, &EmstParams::with_min_pts(1));
        assert!(result.core2.iter().all(|&c| c == 0.0));
        let expect = prim_mst(&points, &Euclidean);
        let (wa, wb) = (total_weight(&result.edges), total_weight(&expect));
        assert!((wa - wb).abs() < 1e-3 * wb.max(1.0), "{wa} vs {wb}");
    }

    #[test]
    fn timings_and_phases_are_recorded() {
        let (ctx, tracer) = ExecCtx::serial().with_tracing();
        let points = random_points(400, 2, 5);
        let result = emst(&ctx, &points, &EmstParams::default());
        assert!(result.timings.tree_build_s > 0.0);
        assert!(result.timings.boruvka_s > 0.0);
        assert!(result.timings.total() >= result.timings.core_s);
        let phases = tracer.snapshot().phases();
        for phase in ["emst_build", "emst_core", "emst_boruvka"] {
            assert!(phases.contains(&phase), "missing phase {phase}");
        }
    }

    #[test]
    fn with_custom_core2_respects_metric() {
        let ctx = ExecCtx::serial();
        let points = random_points(120, 2, 9);
        // Inflated core distances dominate every pairwise distance.
        let core2 = vec![1.0e6f32; 120];
        let edges = emst_with_core2(&ctx, &points, &core2);
        assert_eq!(edges.len(), 119);
        let metric = MutualReachability { core2: &core2 };
        assert!(metric.dist2(&points, 0, 1) == 1.0e6);
        assert!(edges.iter().all(|e| (e.w - 1000.0).abs() < 1e-3));
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let ctx = ExecCtx::serial();
        // Degenerate sets must stay trivially well-defined even with the
        // default min_pts = 2 (there is no neighbour, but also nothing to
        // cluster).
        for params in [EmstParams::with_min_pts(1), EmstParams::default()] {
            let empty = PointSet::new(vec![], 2);
            assert!(emst(&ctx, &empty, &params).edges.is_empty());
            let one = PointSet::new(vec![0.0, 0.0], 2);
            let result = emst(&ctx, &one, &params);
            assert!(result.edges.is_empty());
            assert_eq!(result.core2, vec![0.0]);
        }
    }
}
