//! # pandora-mst
//!
//! Euclidean and mutual-reachability minimum spanning trees — the substrate
//! the paper takes from ArborX (\[39\]) rebuilt in Rust:
//!
//! * [`point::PointSet`] — flat f32 point storage;
//! * [`kdtree::KdTree`] — parallel-built bounding-box kd-tree with k-NN and
//!   component-aware nearest-foreign queries;
//! * [`knn`] — batched k-NN / HDBSCAN\* core distances;
//! * [`boruvka`] — parallel Borůvka MST over any [`metric::Metric`]
//!   (Euclidean or mutual reachability);
//! * [`prim`] / [`kruskal`] — exact oracles and graph-input MST.

pub mod boruvka;
pub mod kdtree;
pub mod knn;
pub mod knn_graph;
pub mod kruskal;
pub mod metric;
pub mod point;
pub mod prim;

pub use boruvka::boruvka_mst;
pub use kdtree::KdTree;
pub use knn::core_distances2;
pub use knn_graph::knn_graph_mst;
pub use metric::{Euclidean, Metric, MutualReachability};
pub use point::PointSet;
