//! # pandora-mst
//!
//! Euclidean and mutual-reachability minimum spanning trees — the substrate
//! the paper takes from ArborX (\[39\]) rebuilt in Rust:
//!
//! * [`point::PointSet`] — flat f32 point storage (rejects non-finite
//!   coordinates, so every distance downstream is finite);
//! * [`kdtree::KdTree`] — parallel-built bounding-box kd-tree with
//!   allocation-free k-NN and component-aware nearest-foreign queries
//!   (SoA node metadata, cached splits, fixed-capacity traversal stacks);
//! * [`knn`] — batched k-NN / HDBSCAN\* core distances over reused
//!   per-worker scratch;
//! * [`boruvka`] — parallel Borůvka MST over any [`metric::Metric`]
//!   (Euclidean or mutual reachability), warm-started across rounds;
//! * [`emst`](mod@emst) — the orchestrated build → core distances →
//!   Borůvka pipeline with per-stage timings and kernel-trace phases;
//! * [`linkage`] / [`nnchain`] — the agglomerative generalization: a
//!   per-request [`linkage::Linkage`] (single / complete / average / Ward)
//!   served by a nearest-neighbor-chain engine (ParChain, arXiv
//!   2106.04727) over the same frozen substrate, with per-request
//!   [`metric::MetricKind`] selection;
//! * [`workspace`] — the reusable [`workspace::EmstWorkspace`]: tree built
//!   once per dataset, sorted k-NN rows serving every `minPts` by prefix,
//!   pooled Borůvka buffers — the substrate of multi-`minPts` sweeps;
//! * [`prim`] / [`kruskal`] — exact oracles and graph-input MST.

pub mod boruvka;
pub mod emst;
pub mod error;
pub mod index;
pub mod kdtree;
pub mod knn;
pub mod knn_graph;
pub mod kruskal;
pub mod linkage;
pub mod metric;
pub mod nnchain;
pub mod point;
pub mod prim;
pub mod workspace;

pub use boruvka::{
    boruvka_mst, boruvka_mst_seeded, boruvka_mst_with, row_witness_scan, BoruvkaExtras,
    BoruvkaStats, EndgameCache, EndgameStore, SnapshotSet,
};
pub use emst::{emst, emst_with_core2, Emst, EmstParams, EmstTimings};
pub use error::PandoraError;
pub use index::{emst_from_index, emst_from_index_with, EmstIndex, EmstScratch};
pub use kdtree::{ForeignSearch, KdTree, KnnHeap};
pub use knn::{core_distances2, core_distances2_and_knn, knn_rows_into, KnnRows};
pub use knn_graph::knn_graph_mst;
pub use linkage::{Linkage, LINKAGE_ENV};
pub use metric::{Euclidean, Metric, MetricKind, MutualReachability};
pub use nnchain::{nnchain_from_index, nnchain_merges, NnChainRun};
pub use point::PointSet;
pub use workspace::{emst_into, emst_into_with, EmstWorkspace, ROW_SLACK};
