//! Nearest-neighbor-chain agglomerative clustering (per ParChain,
//! arXiv 2106.04727) — the engine behind every non-single linkage.
//!
//! # Algorithm
//!
//! The NN-chain algorithm grows a stack of clusters in which each entry is
//! the nearest neighbour of the one below it; distances along the chain
//! strictly decrease, so the walk must reach a **reciprocal** nearest
//! neighbour pair, which is merged. For *reducible* linkages (single,
//! complete, average and Ward all are — Lance–Williams updates can never
//! pull a merged cluster closer to a third party than both parents were)
//! merging a reciprocal pair is always exact: some optimal greedy order
//! performs exactly these merges, and the remaining chain stays valid.
//! Total work is O(n) chain steps, each an O(live clusters) scan.
//!
//! # Substrates
//!
//! Two interchangeable compute substrates sit under one chain driver:
//!
//! * **Condensed matrix** (single / complete / average): an upper-triangle
//!   f32 distance matrix over the base metric (Euclidean or mutual
//!   reachability), updated in place by the Lance–Williams rule of the
//!   linkage. Single linkage additionally tracks the **witness pair** —
//!   the original point pair realizing each cluster distance — so its
//!   merge edges are exactly the MST edges the Borůvka path finds (the
//!   lightest cross edge is an MST edge by the cut property), and on
//!   tie-free inputs the resulting dendrogram is bit-identical to the
//!   EMST fast path (the differential suite enforces this).
//! * **Centroid arrays** (Ward): cluster coordinate sums and sizes, O(n·d)
//!   memory and no matrix. Ward's criterion has the closed form
//!   `d²(A,B) = (2|A||B| / (|A|+|B|)) · ‖μA − μB‖²`, which for singletons
//!   reduces to the squared Euclidean distance — so Ward heights live in
//!   the same distance units as the other linkages after the final `sqrt`.
//!   Ward is defined only over the Euclidean base metric; the serving tier
//!   validates this before dispatching here.
//!
//! The matrix is allocated per run rather than leased from the
//! [`ScratchPool`]: pooling an O(n²/2) buffer would park hundreds of
//! megabytes in every session pool. All O(n) buffers (chain stack, active
//! list, cluster sizes/representatives, centroid sums) are pooled.
//!
//! # Determinism
//!
//! Serial and threaded runs are **bit-identical**: candidate-NN scans are
//! [`ExecCtx::reduce`] reductions whose combine is a min under the total
//! order `(distance, slot)` — commutative and associative, hence
//! independent of lane count and chunk scheduling — and Lance–Williams row
//! updates write disjoint entries per surviving cluster. This is the same
//! duplicate-weight determinism contract the dendrogram stage documents in
//! `core/src/edge.rs`.
//!
//! # Output
//!
//! Each of the n−1 merges is recorded as an [`Edge`] between the merged
//! clusters' *representatives* (their minimum original point id; witness
//! pairs for single linkage). Because every merge joins two disjoint
//! clusters, the merge list is a spanning tree of the points — it feeds
//! `SortedMst::from_edges` and both dendrogram backends completely
//! unchanged.

use std::time::Instant;

use pandora_core::Edge;
use pandora_exec::{ExecCtx, ScratchPool, UnsafeSlice};

use crate::emst::{Emst, EmstTimings};
use crate::error::PandoraError;
use crate::index::{EmstIndex, EmstScratch};
use crate::linkage::Linkage;
use crate::metric::MetricKind;
use crate::point::PointSet;

/// Candidate-NN scans shorter than this run inline on the calling thread
/// even in a threaded context (the reduction result is identical either
/// way; only the dispatch overhead differs).
const SCAN_GRAIN: usize = 1024;

/// Lance–Williams row updates shorter than this run inline.
const UPDATE_GRAIN: usize = 2048;

/// One NN-chain run: the merge list plus per-phase seconds.
#[derive(Debug, Clone)]
pub struct NnChainRun {
    /// The n−1 merges, in merge order (not sorted by height); endpoints
    /// are cluster representatives (witness point pairs for single
    /// linkage), weights are finalized distances.
    pub merges: Vec<Edge>,
    /// Seconds spent initializing the substrate (matrix fill or centroid
    /// arrays).
    pub init_s: f64,
    /// Seconds spent walking the chain (scans, merges, row updates).
    pub chain_s: f64,
}

/// Condensed upper-triangle index of the pair `(i, j)` with `i < j` over
/// `n` slots.
#[inline(always)]
fn pidx(n: usize, i: u32, j: u32) -> usize {
    let (i, j) = (i as usize, j as usize);
    debug_assert!(i < j && j < n);
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

/// Deterministic parallel argmin over `active` (excluding `x`): minimum
/// under the total order `(distance, slot)`. The combine is commutative
/// and associative, so the result is independent of chunk scheduling and
/// lane count — serial ≡ threaded bit-identical.
fn scan_nearest(
    ctx: &ExecCtx,
    x: u32,
    active: &[u32],
    dist: impl Fn(u32) -> f32 + Sync,
) -> (f32, u32) {
    ctx.reduce(
        active.len(),
        SCAN_GRAIN,
        (f32::INFINITY, u32::MAX),
        |mut best, range| {
            for &c in &active[range] {
                if c == x {
                    continue;
                }
                let d = dist(c);
                if d < best.0 || (d == best.0 && c < best.1) {
                    best = (d, c);
                }
            }
            best
        },
        |a, b| {
            if b.0 < a.0 || (b.0 == a.0 && b.1 < a.1) {
                b
            } else {
                a
            }
        },
    )
}

/// A compute substrate the chain driver runs over: pairwise cluster
/// distances in some *working space* (squared, unsquared — whatever the
/// linkage's update rule is exact in), merged in place.
trait Substrate: Sync {
    /// Working-space distance between live clusters `a` and `b` (`a ≠ b`).
    fn pair_dist(&self, a: u32, b: u32) -> f32;
    /// Nearest live cluster to `x` over `active` (excluding `x`), min by
    /// `(distance, slot)`.
    fn nearest(&self, ctx: &ExecCtx, x: u32, active: &[u32]) -> (f32, u32);
    /// The original-point endpoints to record for merging `a` and `b`.
    fn edge_endpoints(&self, a: u32, b: u32) -> (u32, u32);
    /// Maps a working-space height to the reported edge weight.
    fn finalize(&self, h: f32) -> f32;
    /// Merges `kill` into `keep` (`keep < kill`), updating the distances
    /// of every cluster in `active` (which already excludes `kill`).
    fn merge(&mut self, ctx: &ExecCtx, keep: u32, kill: u32, active: &[u32]);
}

/// The shared chain driver (see the module docs for the invariant).
fn run_chain<S: Substrate>(ctx: &ExecCtx, n: usize, sub: &mut S, pool: &ScratchPool) -> Vec<Edge> {
    let mut chain = pool.take_u32();
    let mut active = pool.take_u32();
    let mut pos = pool.take_u32();
    active.extend(0..n as u32);
    pos.extend(0..n as u32);
    let mut merges = Vec::with_capacity(n.saturating_sub(1));

    while merges.len() + 1 < n {
        if chain.is_empty() {
            // Deterministic restart: the smallest live slot.
            let mut start = active[0];
            for &c in &active[1..] {
                if c < start {
                    start = c;
                }
            }
            chain.push(start);
        }
        loop {
            let x = *chain.last().expect("chain reseeded above");
            let (mut d, mut y) = sub.nearest(ctx, x, &active);
            debug_assert!(y != u32::MAX, "a live neighbour always exists");
            if chain.len() >= 2 {
                // Prefer the predecessor on exact ties: `nearest` already
                // scanned it, so d ≤ d(x, prev); equality means x and prev
                // are reciprocal under the tie-break, and merging them is
                // what guarantees termination (otherwise distances along
                // the chain strictly decrease).
                let prev = chain[chain.len() - 2];
                let dp = sub.pair_dist(x, prev);
                if dp <= d {
                    d = dp;
                    y = prev;
                }
            }
            if chain.len() >= 2 && y == chain[chain.len() - 2] {
                let (keep, kill) = (x.min(y), x.max(y));
                let (eu, ev) = sub.edge_endpoints(keep, kill);
                merges.push(Edge::new(eu, ev, sub.finalize(d)));
                chain.pop();
                chain.pop();
                // Drop `kill` from the active list *before* the row update
                // so the update never touches the dead slot.
                let pk = pos[kill as usize] as usize;
                active.swap_remove(pk);
                if pk < active.len() {
                    pos[active[pk] as usize] = pk as u32;
                }
                sub.merge(ctx, keep, kill, &active);
                break;
            }
            chain.push(y);
        }
    }

    pool.put_u32(chain);
    pool.put_u32(active);
    pool.put_u32(pos);
    merges
}

/// Which Lance–Williams rule the matrix substrate applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MatrixKernel {
    /// min; working space = squared base distance, finalize = sqrt.
    Single,
    /// max; working space = squared base distance, finalize = sqrt (max
    /// commutes with the monotone square, so squaring is exact).
    Complete,
    /// size-weighted mean; working space = *unsquared* base distance
    /// (the mean does not commute with sqrt), finalize = identity.
    Average,
}

/// Condensed-matrix substrate (single / complete / average).
struct MatrixSubstrate {
    n: usize,
    kernel: MatrixKernel,
    /// Upper-triangle working-space distances, indexed by [`pidx`].
    m: Vec<f32>,
    /// Single linkage only: the original point pair realizing each entry.
    witness: Option<Vec<(u32, u32)>>,
    /// Cluster sizes per live slot (average's weights).
    size: Vec<u32>,
    /// Minimum original point id per live slot.
    rep: Vec<u32>,
}

impl MatrixSubstrate {
    fn init(
        ctx: &ExecCtx,
        points: &PointSet,
        core2: &[f32],
        kernel: MatrixKernel,
        mreach: bool,
        pool: &ScratchPool,
    ) -> Self {
        let n = points.len();
        let mut size = pool.take_u32();
        size.resize(n, 1);
        let mut rep = pool.take_u32();
        rep.extend(0..n as u32);

        let pairs = n * n.saturating_sub(1) / 2;
        let mut m = vec![0.0f32; pairs];
        let mut witness = (kernel == MatrixKernel::Single).then(|| vec![(0u32, 0u32); pairs]);
        ctx.set_phase("nnchain_fill");
        {
            let ms = UnsafeSlice::new(&mut m);
            let ws = witness.as_mut().map(|w| UnsafeSlice::new(w.as_mut_slice()));
            ctx.for_each_chunk(n.saturating_sub(1), 1, |rows| {
                for i in rows {
                    let iu = i as u32;
                    let base = pidx(n, iu, iu + 1);
                    for j in (i + 1)..n {
                        let mut d = points.dist2(i, j);
                        if mreach {
                            d = d.max(core2[i]).max(core2[j]);
                        }
                        let v = if kernel == MatrixKernel::Average {
                            d.sqrt()
                        } else {
                            d
                        };
                        let k = base + (j - i - 1);
                        // SAFETY: row `i` owns the contiguous entry block
                        // `pidx(n, i, i+1)..pidx(n, i, n-1)`; rows are
                        // disjoint, so no index is touched twice.
                        unsafe {
                            ms.write(k, v);
                            if let Some(w) = &ws {
                                w.write(k, (iu, j as u32));
                            }
                        }
                    }
                }
            });
        }
        Self {
            n,
            kernel,
            m,
            witness,
            size,
            rep,
        }
    }

    fn release(self, pool: &ScratchPool) {
        pool.put_u32(self.size);
        pool.put_u32(self.rep);
    }
}

impl Substrate for MatrixSubstrate {
    #[inline(always)]
    fn pair_dist(&self, a: u32, b: u32) -> f32 {
        self.m[pidx(self.n, a.min(b), a.max(b))]
    }

    fn nearest(&self, ctx: &ExecCtx, x: u32, active: &[u32]) -> (f32, u32) {
        let (m, n) = (self.m.as_slice(), self.n);
        scan_nearest(ctx, x, active, |c| m[pidx(n, x.min(c), x.max(c))])
    }

    fn edge_endpoints(&self, a: u32, b: u32) -> (u32, u32) {
        match &self.witness {
            Some(w) => w[pidx(self.n, a.min(b), a.max(b))],
            None => (self.rep[a as usize], self.rep[b as usize]),
        }
    }

    #[inline(always)]
    fn finalize(&self, h: f32) -> f32 {
        match self.kernel {
            MatrixKernel::Single | MatrixKernel::Complete => h.sqrt(),
            MatrixKernel::Average => h,
        }
    }

    fn merge(&mut self, ctx: &ExecCtx, keep: u32, kill: u32, active: &[u32]) {
        let (sk, sl) = (self.size[keep as usize], self.size[kill as usize]);
        let (n, kernel) = (self.n, self.kernel);
        let ms = UnsafeSlice::new(&mut self.m);
        let ws = self
            .witness
            .as_mut()
            .map(|w| UnsafeSlice::new(w.as_mut_slice()));
        ctx.for_each(active.len(), UPDATE_GRAIN, |p| {
            let c = active[p];
            if c == keep {
                return;
            }
            let ik = pidx(n, keep.min(c), keep.max(c));
            let il = pidx(n, kill.min(c), kill.max(c));
            // SAFETY: `ik` and `il` are functions of this iteration's `c`
            // alone (`keep`/`kill` are fixed and no longer in `active`),
            // so iterations read and write disjoint entries.
            unsafe {
                let (dk, dl) = (ms.read(ik), ms.read(il));
                let merged = match kernel {
                    MatrixKernel::Single => {
                        if let Some(w) = &ws {
                            if dl < dk {
                                // The kill-side pair realizes the minimum.
                                w.write(ik, w.read(il));
                            }
                        }
                        dk.min(dl)
                    }
                    MatrixKernel::Complete => dk.max(dl),
                    MatrixKernel::Average => (sk as f32 * dk + sl as f32 * dl) / ((sk + sl) as f32),
                };
                ms.write(ik, merged);
            }
        });
        self.size[keep as usize] = sk + sl;
        self.rep[keep as usize] = self.rep[keep as usize].min(self.rep[kill as usize]);
    }
}

/// Ward's criterion in working space (squared units):
/// `(2·|A|·|B| / (|A|+|B|)) · ‖μA − μB‖²` from coordinate sums and sizes.
#[inline]
fn ward_dist2(csum: &[f32], size: &[u32], dim: usize, a: u32, b: u32) -> f32 {
    let (a, b) = (a as usize, b as usize);
    let (sa, sb) = (size[a] as f32, size[b] as f32);
    let ca = &csum[a * dim..(a + 1) * dim];
    let cb = &csum[b * dim..(b + 1) * dim];
    let mut d2 = 0.0f32;
    for (&xa, &xb) in ca.iter().zip(cb) {
        let diff = xa / sa - xb / sb;
        d2 += diff * diff;
    }
    (2.0 * sa * sb / (sa + sb)) * d2
}

/// Centroid-array substrate (Ward; Euclidean base only).
struct WardSubstrate {
    dim: usize,
    /// Per-slot coordinate sums (`size[s]`-denominated centroids).
    csum: Vec<f32>,
    size: Vec<u32>,
    rep: Vec<u32>,
}

impl WardSubstrate {
    fn init(ctx: &ExecCtx, points: &PointSet, pool: &ScratchPool) -> Self {
        ctx.set_phase("nnchain_fill");
        let n = points.len();
        let mut csum = pool.take_f32();
        csum.extend_from_slice(points.coords());
        let mut size = pool.take_u32();
        size.resize(n, 1);
        let mut rep = pool.take_u32();
        rep.extend(0..n as u32);
        Self {
            dim: points.dim(),
            csum,
            size,
            rep,
        }
    }

    fn release(self, pool: &ScratchPool) {
        pool.put_f32(self.csum);
        pool.put_u32(self.size);
        pool.put_u32(self.rep);
    }
}

impl Substrate for WardSubstrate {
    #[inline(always)]
    fn pair_dist(&self, a: u32, b: u32) -> f32 {
        ward_dist2(&self.csum, &self.size, self.dim, a, b)
    }

    fn nearest(&self, ctx: &ExecCtx, x: u32, active: &[u32]) -> (f32, u32) {
        let (csum, size, dim) = (self.csum.as_slice(), self.size.as_slice(), self.dim);
        scan_nearest(ctx, x, active, |c| ward_dist2(csum, size, dim, x, c))
    }

    fn edge_endpoints(&self, a: u32, b: u32) -> (u32, u32) {
        (self.rep[a as usize], self.rep[b as usize])
    }

    #[inline(always)]
    fn finalize(&self, h: f32) -> f32 {
        h.sqrt()
    }

    fn merge(&mut self, _ctx: &ExecCtx, keep: u32, kill: u32, _active: &[u32]) {
        let (keep, kill) = (keep as usize, kill as usize);
        let dim = self.dim;
        // Centroid sums are additive: no per-neighbour row update exists,
        // which is exactly why Ward needs no matrix.
        let (head, tail) = self.csum.split_at_mut(kill * dim);
        for (dst, src) in head[keep * dim..(keep + 1) * dim]
            .iter_mut()
            .zip(&tail[..dim])
        {
            *dst += *src;
        }
        self.size[keep] += self.size[kill];
        self.rep[keep] = self.rep[keep].min(self.rep[kill]);
    }
}

/// Runs the NN-chain engine over `points` under `linkage`.
///
/// `mreach` selects the base dissimilarity: `true` applies the mutual
/// reachability floor from `core2` (squared core distances, one per
/// point), `false` runs plain Euclidean and ignores `core2`.
///
/// Returns the n−1 merge edges (a spanning tree of the points — see the
/// module docs) plus per-phase seconds. Serial and threaded contexts are
/// bit-identical.
///
/// # Panics
///
/// Panics if `linkage` is [`Linkage::Ward`] and `mreach` is set (Ward is
/// undefined over mutual reachability — the serving tier validates this
/// as a typed error before dispatching here), or if `mreach` is set and
/// `core2` is not one entry per point.
pub fn nnchain_merges(
    ctx: &ExecCtx,
    points: &PointSet,
    core2: &[f32],
    linkage: Linkage,
    mreach: bool,
    pool: &ScratchPool,
) -> NnChainRun {
    assert!(
        !(linkage == Linkage::Ward && mreach),
        "Ward linkage is undefined over mutual reachability"
    );
    assert!(
        !mreach || core2.len() == points.len(),
        "mutual reachability needs one squared core distance per point"
    );
    let n = points.len();
    if n <= 1 {
        return NnChainRun {
            merges: Vec::new(),
            init_s: 0.0,
            chain_s: 0.0,
        };
    }

    let t = Instant::now();
    match linkage {
        Linkage::Ward => {
            let mut sub = WardSubstrate::init(ctx, points, pool);
            let init_s = t.elapsed().as_secs_f64();
            ctx.set_phase("nnchain_chain");
            let t = Instant::now();
            let merges = run_chain(ctx, n, &mut sub, pool);
            let chain_s = t.elapsed().as_secs_f64();
            sub.release(pool);
            NnChainRun {
                merges,
                init_s,
                chain_s,
            }
        }
        _ => {
            let kernel = match linkage {
                Linkage::Single => MatrixKernel::Single,
                Linkage::Complete => MatrixKernel::Complete,
                Linkage::Average => MatrixKernel::Average,
                Linkage::Ward => unreachable!("handled above"),
            };
            let mut sub = MatrixSubstrate::init(ctx, points, core2, kernel, mreach, pool);
            let init_s = t.elapsed().as_secs_f64();
            ctx.set_phase("nnchain_chain");
            let t = Instant::now();
            let merges = run_chain(ctx, n, &mut sub, pool);
            let chain_s = t.elapsed().as_secs_f64();
            sub.release(pool);
            NnChainRun {
                merges,
                init_s,
                chain_s,
            }
        }
    }
}

/// Answers one linkage request from a frozen [`EmstIndex`] and a
/// per-request [`EmstScratch`] — the NN-chain counterpart of
/// [`crate::index::emst_from_index`], sharing its substrate (core
/// distances by prefix lookup into the frozen rows, pooled scratch).
///
/// The returned [`Emst`] holds the merge list as its edges (a spanning
/// tree; feed it to `SortedMst::from_edges` like any MST) and the core
/// distances for `min_pts`; `boruvka_s` reports the NN-chain seconds.
///
/// # Errors
///
/// [`PandoraError::BadParams`] when `min_pts` is invalid for the index
/// (as [`crate::index::emst_from_index`]), or when `linkage` is
/// [`Linkage::Ward`] and the metric is effectively mutual reachability
/// (`metric` is [`MetricKind::MutualReachability`] with `min_pts ≥ 2`).
pub fn nnchain_from_index(
    ctx: &ExecCtx,
    index: &EmstIndex,
    min_pts: usize,
    linkage: Linkage,
    metric: MetricKind,
    scratch: &mut EmstScratch,
) -> Result<Emst, PandoraError> {
    let mreach = !metric.effectively_euclidean(min_pts);
    if linkage == Linkage::Ward && mreach {
        return Err(PandoraError::BadParams {
            param: "linkage",
            value: min_pts,
            reason: "Ward linkage is undefined over mutual reachability; \
                     request the Euclidean metric (or min_pts = 1)",
        });
    }
    ctx.set_phase("emst_core");
    let t = Instant::now();
    let mut core2 = Vec::new();
    index.core2_into(ctx, min_pts, &mut core2)?;
    let core_s = t.elapsed().as_secs_f64();

    let run = nnchain_merges(ctx, index.points(), &core2, linkage, mreach, scratch.pool());
    Ok(Emst {
        edges: run.merges,
        core2,
        timings: EmstTimings {
            tree_build_s: 0.0,
            core_s,
            boruvka_s: run.init_s + run.chain_s,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emst::{emst, EmstParams};
    use rand::prelude::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            (0..n * dim).map(|_| rng.gen_range(-5.0..5.0f32)).collect(),
            dim,
        )
    }

    fn euclid_run(points: &PointSet, linkage: Linkage, ctx: &ExecCtx) -> Vec<Edge> {
        let pool = ScratchPool::new();
        let run = nnchain_merges(ctx, points, &[], linkage, false, &pool);
        assert_eq!(pool.outstanding(), 0, "all pooled buffers returned");
        run.merges
    }

    #[test]
    fn hand_checked_line_single() {
        let points = PointSet::new(vec![0.0, 1.0, 3.0, 7.0], 1);
        let ctx = ExecCtx::serial();
        let merges = euclid_run(&points, Linkage::Single, &ctx);
        // Merge order: (0,1)@1, ({0,1},2)@2 via witness (1,2), (..,3)@4 via (2,3).
        let got: Vec<(u32, u32, f32)> = merges.iter().map(|e| (e.u, e.v, e.w)).collect();
        assert_eq!(got, vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0)]);
    }

    #[test]
    fn hand_checked_line_complete() {
        let points = PointSet::new(vec![0.0, 1.0, 3.0, 7.0], 1);
        let ctx = ExecCtx::serial();
        let merges = euclid_run(&points, Linkage::Complete, &ctx);
        // (0,1)@1; then d({0,1},2) = max(3,2) = 3 vs d(2,3) = 4: merge
        // ({0,1},2)@3; finally max distance to 3 is 7.
        let got: Vec<(u32, u32, f32)> = merges.iter().map(|e| (e.u, e.v, e.w)).collect();
        assert_eq!(got, vec![(0, 1, 1.0), (0, 2, 3.0), (0, 3, 7.0)]);
    }

    #[test]
    fn hand_checked_line_average() {
        let points = PointSet::new(vec![0.0, 1.0, 3.0, 7.0], 1);
        let ctx = ExecCtx::serial();
        let merges = euclid_run(&points, Linkage::Average, &ctx);
        let got: Vec<(u32, u32, f32)> = merges.iter().map(|e| (e.u, e.v, e.w)).collect();
        // (0,1)@1; d({0,1},2) = (3+2)/2 = 2.5 < d(2,3) = 4; then
        // d({0,1,2},3) = (7+6+4)/3.
        assert_eq!(got[0], (0, 1, 1.0));
        assert_eq!(got[1], (0, 2, 2.5));
        assert_eq!(got[2].2, (7.0f32 + 6.0 + 4.0) / 3.0);
    }

    #[test]
    fn hand_checked_line_ward() {
        let points = PointSet::new(vec![0.0, 1.0, 3.0, 7.0], 1);
        let ctx = ExecCtx::serial();
        let merges = euclid_run(&points, Linkage::Ward, &ctx);
        let got: Vec<(u32, u32, f32)> = merges.iter().map(|e| (e.u, e.v, e.w)).collect();
        // Singleton Ward distance = Euclidean: (0,1)@1. Then
        // d²({0,1},{2}) = (2·2·1/3)·(3 − 0.5)² = 8.333…, d²({2},{3}) = 16:
        // merge ({0,1},2) at sqrt(25/3).
        assert_eq!(got[0], (0, 1, 1.0));
        assert_eq!(got[1].0, 0);
        assert_eq!(got[1].1, 2);
        // Same association as the engine: coefficient times the
        // accumulated squared centroid difference.
        let d2 = (2.0f32 * 2.0 * 1.0 / 3.0) * 6.25;
        assert_eq!(got[1].2, d2.sqrt());
    }

    #[test]
    fn serial_and_threaded_are_bit_identical_for_every_linkage() {
        let points = random_points(300, 3, 42);
        let serial = ExecCtx::serial();
        let threaded = ExecCtx::threads();
        for linkage in Linkage::ALL {
            let a = euclid_run(&points, linkage, &serial);
            let b = euclid_run(&points, linkage, &threaded);
            assert_eq!(a.len(), b.len(), "linkage={linkage}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!((x.u, x.v, x.w), (y.u, y.v, y.w), "linkage={linkage}");
            }
        }
    }

    #[test]
    fn single_linkage_witness_edges_equal_the_emst() {
        // Tie-free random coordinates: the MST is unique, so the NN-chain
        // witness edges must be exactly the Borůvka edge set (as sets —
        // merge order differs from Borůvka's discovery order).
        let points = random_points(250, 2, 7);
        let ctx = ExecCtx::serial();
        let merges = euclid_run(&points, Linkage::Single, &ctx);
        let tree = emst(&ctx, &points, &EmstParams::with_min_pts(1));
        let canon = |edges: &[Edge]| {
            let mut v: Vec<(u32, u32, u32)> = edges
                .iter()
                .map(|e| (e.u.min(e.v), e.u.max(e.v), e.w.to_bits()))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(canon(&merges), canon(&tree.edges));
    }

    #[test]
    fn mutual_reachability_floor_is_applied() {
        // Two tight pairs far apart; with a large min_pts-like floor the
        // within-pair merge heights are lifted to the core distance.
        let points = PointSet::new(vec![0.0, 0.1, 10.0, 10.1], 1);
        let core2 = vec![4.0, 4.0, 4.0, 4.0];
        let ctx = ExecCtx::serial();
        let pool = ScratchPool::new();
        let run = nnchain_merges(&ctx, &points, &core2, Linkage::Complete, true, &pool);
        assert_eq!(run.merges[0].w, 2.0, "floored to sqrt(core2)");
        assert_eq!(run.merges[1].w, 2.0);
    }

    #[test]
    fn tiny_inputs_produce_empty_merge_lists() {
        let ctx = ExecCtx::serial();
        for n in [0usize, 1] {
            let points = random_points(n, 2, 1);
            let merges = euclid_run(&points, Linkage::Average, &ctx);
            assert!(merges.is_empty());
        }
        let two = random_points(2, 2, 5);
        for linkage in Linkage::ALL {
            let merges = euclid_run(&two, linkage, &ctx);
            assert_eq!(merges.len(), 1);
            // With two points every linkage degenerates to the distance.
            assert_eq!(merges[0].w, two.dist2(0, 1).sqrt());
        }
    }

    #[test]
    fn from_index_matches_direct_engine_runs() {
        let points = random_points(150, 2, 13);
        let ctx = ExecCtx::serial();
        let index = EmstIndex::freeze(&ctx, points.clone(), 4).expect("valid dataset");
        let mut scratch = EmstScratch::new();
        let served = nnchain_from_index(
            &ctx,
            &index,
            4,
            Linkage::Complete,
            MetricKind::MutualReachability,
            &mut scratch,
        )
        .expect("valid request");
        let mut core2 = Vec::new();
        index.core2_into(&ctx, 4, &mut core2).expect("in ceiling");
        let pool = ScratchPool::new();
        let direct = nnchain_merges(&ctx, &points, &core2, Linkage::Complete, true, &pool);
        assert_eq!(served.edges.len(), direct.merges.len());
        for (a, b) in served.edges.iter().zip(&direct.merges) {
            assert_eq!((a.u, a.v, a.w), (b.u, b.v, b.w));
        }
        assert_eq!(served.core2, core2);
        assert_eq!(scratch.pool().outstanding(), 0);
    }

    #[test]
    fn ward_over_mutual_reachability_is_a_typed_error() {
        let points = random_points(50, 2, 3);
        let ctx = ExecCtx::serial();
        let index = EmstIndex::freeze(&ctx, points, 4).expect("valid dataset");
        let mut scratch = EmstScratch::new();
        let err = nnchain_from_index(
            &ctx,
            &index,
            4,
            Linkage::Ward,
            MetricKind::MutualReachability,
            &mut scratch,
        )
        .expect_err("undefined combination");
        assert!(matches!(
            err,
            PandoraError::BadParams {
                param: "linkage",
                ..
            }
        ));
        // Euclidean Ward at the same min_pts is fine.
        let ok = nnchain_from_index(
            &ctx,
            &index,
            4,
            Linkage::Ward,
            MetricKind::Euclidean,
            &mut scratch,
        );
        assert!(ok.is_ok());
        // So is mutual reachability at min_pts = 1 (identically Euclidean).
        let ok = nnchain_from_index(
            &ctx,
            &index,
            1,
            Linkage::Ward,
            MetricKind::MutualReachability,
            &mut scratch,
        );
        assert!(ok.is_ok());
    }
}
