//! Dense Prim's algorithm — an O(n²) oracle for MST tests.
//!
//! Exact and metric-generic; used to validate the Borůvka implementation on
//! small inputs (the paper cites Prim \[38\] among the classical choices).

use pandora_core::Edge;

use crate::metric::Metric;
use crate::point::PointSet;

/// Computes the MST of `points` under `metric` with dense Prim.
///
/// Intended for n ≲ 10⁴ (oracle use only).
pub fn prim_mst<M: Metric>(points: &PointSet, metric: &M) -> Vec<Edge> {
    let n = points.len();
    if n <= 1 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best_d2 = vec![f32::INFINITY; n];
    let mut best_from = vec![0u32; n];
    let mut edges = Vec::with_capacity(n - 1);

    in_tree[0] = true;
    for (v, d2) in best_d2.iter_mut().enumerate().skip(1) {
        *d2 = metric.dist2(points, 0, v as u32);
    }
    for _ in 1..n {
        // Cheapest frontier vertex; ties by smaller index (deterministic).
        let mut pick = usize::MAX;
        let mut pick_d2 = f32::INFINITY;
        for v in 0..n {
            if !in_tree[v] && best_d2[v] < pick_d2 {
                pick = v;
                pick_d2 = best_d2[v];
            }
        }
        debug_assert_ne!(pick, usize::MAX);
        in_tree[pick] = true;
        edges.push(Edge::new(best_from[pick], pick as u32, pick_d2.sqrt()));
        for v in 0..n {
            if !in_tree[v] {
                let d2 = metric.dist2(points, pick as u32, v as u32);
                if d2 < best_d2[v] {
                    best_d2[v] = d2;
                    best_from[v] = pick as u32;
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;

    #[test]
    fn unit_square() {
        // 4 corners: MST weight = 3 sides.
        let points = PointSet::new(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0], 2);
        let edges = prim_mst(&points, &Euclidean);
        assert_eq!(edges.len(), 3);
        let total: f32 = edges.iter().map(|e| e.w).sum();
        assert!((total - 3.0).abs() < 1e-6);
    }

    #[test]
    fn collinear_points() {
        let points = PointSet::new(vec![0.0, 0.0, 10.0, 0.0, 1.0, 0.0, 11.0, 0.0], 2);
        let edges = prim_mst(&points, &Euclidean);
        let total: f32 = edges.iter().map(|e| e.w).sum();
        // 0-2 (1) + 2-1 (9) + 1-3 (1) = 11.
        assert!((total - 11.0).abs() < 1e-5);
    }

    #[test]
    fn empty_and_single() {
        assert!(prim_mst(&PointSet::new(vec![], 2), &Euclidean).is_empty());
        assert!(prim_mst(&PointSet::new(vec![1.0, 1.0], 2), &Euclidean).is_empty());
    }
}
