//! Approximate MST via the k-nearest-neighbour graph.
//!
//! A widely used engineering shortcut for HDBSCAN\* at scale: Kruskal over
//! the k-NN graph gives a spanning forest whose weight is very close to the
//! exact EMST for modest `k`, at a fraction of the Borůvka cost. The forest
//! may be disconnected, so remaining components are joined with *exact*
//! Borůvka rounds — the output is always a spanning tree, and exact when
//! `k ≥ n − 1`.
//!
//! The paper computes exact EMSTs; this module is an extension for
//! downstream users (clearly flagged as approximate), plus a measurement
//! hook for how close the approximation gets (`weight_ratio` in tests).

use std::sync::atomic::Ordering;

use pandora_core::Edge;
use pandora_exec::dsu::SeqDsu;
use pandora_exec::sort::par_sort_by_key;
use pandora_exec::trace::KernelKind;
use pandora_exec::{ExecCtx, UnsafeSlice};

use crate::kdtree::{KdTree, KnnHeap};
use crate::metric::Metric;
use crate::point::PointSet;

/// Spanning tree from the k-NN graph plus exact completion rounds.
///
/// `node_core2` is either empty (no subtree pruning bounds) or the
/// per-node core minima from [`KdTree::min_core2_into`] for the metric's
/// `minPts` — purely an optimization for the completion rounds under
/// mutual reachability (results are identical either way).
pub fn knn_graph_mst<M: Metric>(
    ctx: &ExecCtx,
    points: &PointSet,
    tree: &KdTree,
    metric: &M,
    k: usize,
    node_core2: &[f32],
) -> Vec<Edge> {
    let n = points.len();
    if n <= 1 {
        return Vec::new();
    }
    let k = k.clamp(1, n - 1);

    // k-NN candidate edges under the metric, canonicalized u < v.
    let mut candidates: Vec<(u32, u32, u32)> = vec![(0, 0, 0); n * k]; // (wkey, u, v)
    {
        let view = UnsafeSlice::new(&mut candidates);
        ctx.for_each_chunk_traced(
            n,
            256,
            KernelKind::TreeTraverse,
            (n * k * 48) as u64,
            |range| {
                let mut heap = KnnHeap::new(k);
                for q in range {
                    tree.knn_into(points, q as u32, k, &mut heap);
                    let nn = heap.sorted();
                    for (j, &(_, p)) in nn.iter().enumerate() {
                        // Metric distance may exceed the Euclidean k-NN
                        // distance (mutual reachability); recompute.
                        let d2 = metric.dist2(points, q as u32, p);
                        let (a, b) = if (q as u32) < p {
                            (q as u32, p)
                        } else {
                            (p, q as u32)
                        };
                        // SAFETY: slot q*k+j owned by this iteration.
                        unsafe {
                            view.write(
                                q * k + j,
                                (pandora_exec::atomic::f32_to_ordered_u32(d2), a, b),
                            )
                        };
                    }
                    // Pad rows when fewer than k neighbours exist.
                    for j in nn.len()..k {
                        // SAFETY: slot q*k+j owned by this iteration.
                        unsafe { view.write(q * k + j, (u32::MAX, 0, 0)) };
                    }
                }
            },
        );
    }

    // Kruskal over the candidates (sorted ascending by squared distance).
    par_sort_by_key(ctx, &mut candidates, |&t| t);
    ctx.record(
        KernelKind::SeqLoop,
        candidates.len() as u64,
        (candidates.len() * 12) as u64,
    );
    let mut dsu = SeqDsu::new(n);
    let mut edges: Vec<Edge> = Vec::with_capacity(n - 1);
    for &(wkey, a, b) in &candidates {
        if wkey == u32::MAX || (a == 0 && b == 0) {
            continue;
        }
        if dsu.union(a, b).is_some() {
            let d2 = pandora_exec::atomic::ordered_u32_to_f32(wkey);
            edges.push(Edge::new(a, b, d2.sqrt()));
            if edges.len() == n - 1 {
                break;
            }
        }
    }

    // Completion: join remaining components with exact nearest-foreign
    // queries (one candidate per component root, Borůvka style).
    while edges.len() < n - 1 {
        // Sequential labelling is fine here: completion is rare and the DSU
        // is nearly flat after Kruskal.
        let mut comp = vec![0u32; n];
        for v in 0..n as u32 {
            comp[v as usize] = dsu.find(v);
        }
        let purity = tree.component_purity(&comp);
        let candidate: Vec<std::sync::atomic::AtomicU64> = (0..n)
            .map(|_| std::sync::atomic::AtomicU64::new(u64::MAX))
            .collect();
        let mut best_of = vec![(f32::INFINITY, u32::MAX); n];
        {
            let best_view = UnsafeSlice::new(&mut best_of);
            let (comp_ref, purity_ref, cand_ref) = (&comp, &purity, &candidate);
            ctx.for_each_chunk_traced(n, 256, KernelKind::TreeTraverse, (n * 64) as u64, |range| {
                for q in range {
                    if let Some((d2, p)) = tree
                        .nearest_foreign(points, metric, q as u32, comp_ref, purity_ref, node_core2)
                    {
                        // SAFETY: slot q owned by this iteration.
                        unsafe { best_view.write(q, (d2, p)) };
                        let key = ((pandora_exec::atomic::f32_to_ordered_u32(d2) as u64) << 32)
                            | q as u64;
                        // pandora-lint: allow(PL004) — commutative min over packed (dist, idx); the chunk join publishes the winner
                        cand_ref[comp_ref[q] as usize].fetch_min(key, Ordering::Relaxed);
                    }
                }
            });
        }
        let mut progressed = false;
        for root in 0..n as u32 {
            if comp[root as usize] != root {
                continue;
            }
            // pandora-lint: allow(PL004) — read after for_each_chunk joined — the barrier supplies the happens-before
            let packed = candidate[root as usize].load(Ordering::Relaxed);
            if packed == u64::MAX {
                continue;
            }
            let q = packed as u32;
            let (d2, p) = best_of[q as usize];
            if dsu.union(q, p).is_some() {
                edges.push(Edge::new(q, p, d2.sqrt()));
                progressed = true;
            }
        }
        assert!(progressed, "completion made no progress");
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::total_weight;
    use crate::metric::Euclidean;
    use crate::prim::prim_mst;
    use rand::prelude::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            (0..n * dim).map(|_| rng.gen_range(-5.0..5.0f32)).collect(),
            dim,
        )
    }

    #[test]
    fn always_a_spanning_tree() {
        let ctx = ExecCtx::serial();
        for k in [1usize, 2, 4, 16] {
            let points = random_points(300, 2, k as u64);
            let tree = KdTree::build(&ctx, &points);
            let edges = knn_graph_mst(&ctx, &points, &tree, &Euclidean, k, &[]);
            assert_eq!(edges.len(), 299, "k={k}");
            let mst = pandora_core::SortedMst::from_edges(&ctx, 300, &edges);
            mst.validate_tree().unwrap();
        }
    }

    #[test]
    fn weight_close_to_exact_and_improving_with_k() {
        let ctx = ExecCtx::serial();
        let points = random_points(400, 2, 9);
        let tree = KdTree::build(&ctx, &points);
        let exact = total_weight(&prim_mst(&points, &Euclidean));
        let mut prev_ratio = f64::INFINITY;
        for k in [2usize, 4, 8] {
            let approx = total_weight(&knn_graph_mst(&ctx, &points, &tree, &Euclidean, k, &[]));
            let ratio = approx / exact;
            assert!((1.0 - 1e-6..1.10).contains(&ratio), "k={k}: ratio {ratio}");
            assert!(ratio <= prev_ratio + 1e-9, "ratio not improving at k={k}");
            prev_ratio = ratio;
        }
        // k=8 on 2-D random points is typically within a fraction of a
        // percent of exact.
        assert!(prev_ratio < 1.01, "k=8 ratio {prev_ratio}");
    }

    #[test]
    fn large_k_is_exact() {
        let ctx = ExecCtx::serial();
        let points = random_points(60, 3, 4);
        let tree = KdTree::build(&ctx, &points);
        let exact = total_weight(&prim_mst(&points, &Euclidean));
        let approx = total_weight(&knn_graph_mst(&ctx, &points, &tree, &Euclidean, 59, &[]));
        assert!((approx - exact).abs() < 1e-4 * exact.max(1.0));
    }

    #[test]
    fn disconnected_knn_graph_gets_completed() {
        // Two far apart tight clusters with k=1: the k-NN graph cannot
        // bridge them; the completion round must.
        let ctx = ExecCtx::serial();
        let mut coords = Vec::new();
        for i in 0..20 {
            coords.extend_from_slice(&[i as f32 * 0.01, 0.0]);
        }
        for i in 0..20 {
            coords.extend_from_slice(&[1000.0 + i as f32 * 0.01, 0.0]);
        }
        let points = PointSet::new(coords, 2);
        let tree = KdTree::build(&ctx, &points);
        let edges = knn_graph_mst(&ctx, &points, &tree, &Euclidean, 1, &[]);
        assert_eq!(edges.len(), 39);
        // Exactly one long bridge edge.
        let bridges = edges.iter().filter(|e| e.w > 100.0).count();
        assert_eq!(bridges, 1);
    }
}
