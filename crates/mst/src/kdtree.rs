//! A bounding-box kd-tree over a [`PointSet`].
//!
//! This plays the role ArborX's BVH plays in the paper's EMST pipeline
//! (\[39\]): it answers k-nearest-neighbour queries (core distances) and
//! component-aware nearest-foreign-point queries (Borůvka rounds).
//!
//! Construction is level-synchronous: all nodes of a level are partitioned
//! in parallel (median split along the widest box dimension), which is the
//! standard GPU-friendly formulation and maps onto the substrate's
//! `for_each`. Subtree point ranges stay contiguous in the permutation
//! array, so per-node metadata (bounding boxes, min core distance,
//! component purity) can be maintained with leaf-up sweeps.

use pandora_exec::trace::KernelKind;
use pandora_exec::{ExecCtx, UnsafeSlice};

use crate::metric::{point_box_dist2, Metric};
use crate::point::PointSet;

const INVALID: u32 = u32::MAX;

/// Default leaf capacity.
pub const DEFAULT_LEAF_SIZE: usize = 32;

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Left child id, `INVALID` for leaves (right is then also `INVALID`).
    left: u32,
    /// Right child id.
    right: u32,
    /// Subtree range start in `perm`.
    start: u32,
    /// Subtree range end in `perm`.
    end: u32,
}

impl Node {
    #[inline(always)]
    fn is_leaf(&self) -> bool {
        self.left == INVALID
    }
}

/// A static kd-tree.
pub struct KdTree {
    dim: usize,
    nodes: Vec<Node>,
    /// Per-node bounding boxes, flat `[node][dim]`.
    bbox_min: Vec<f32>,
    bbox_max: Vec<f32>,
    /// Point indices, grouped so each subtree is a contiguous range.
    perm: Vec<u32>,
    /// Per-node minimum squared core distance (after [`KdTree::attach_core2`]).
    min_core2: Option<Vec<f32>>,
}

impl KdTree {
    /// Builds a tree with the default leaf size.
    pub fn build(ctx: &ExecCtx, points: &PointSet) -> Self {
        Self::build_with_leaf_size(ctx, points, DEFAULT_LEAF_SIZE)
    }

    /// Builds a tree with a caller-chosen leaf capacity.
    pub fn build_with_leaf_size(ctx: &ExecCtx, points: &PointSet, leaf_size: usize) -> Self {
        let n = points.len();
        let dim = points.dim();
        let leaf_size = leaf_size.max(1);
        ctx.record(KernelKind::TreeBuild, n as u64, (n * dim * 4) as u64);

        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut nodes = vec![Node {
            left: INVALID,
            right: INVALID,
            start: 0,
            end: n as u32,
        }];
        let mut bbox_min = vec![f32::INFINITY; dim];
        let mut bbox_max = vec![f32::NEG_INFINITY; dim];
        if n == 0 {
            return Self {
                dim,
                nodes,
                bbox_min,
                bbox_max,
                perm,
                min_core2: None,
            };
        }

        let mut frontier: Vec<u32> = vec![0];
        while !frontier.is_empty() {
            // Sequential: allocate children for nodes that will split.
            let mut splitting: Vec<u32> = Vec::new();
            let mut next_frontier: Vec<u32> = Vec::new();
            for &nid in &frontier {
                let node = nodes[nid as usize];
                let len = (node.end - node.start) as usize;
                if len > leaf_size {
                    let mid = node.start + (len as u32) / 2;
                    let left = nodes.len() as u32;
                    nodes[nid as usize].left = left;
                    nodes[nid as usize].right = left + 1;
                    nodes.push(Node {
                        left: INVALID,
                        right: INVALID,
                        start: node.start,
                        end: mid,
                    });
                    nodes.push(Node {
                        left: INVALID,
                        right: INVALID,
                        start: mid,
                        end: node.end,
                    });
                    splitting.push(nid);
                    next_frontier.push(left);
                    next_frontier.push(left + 1);
                }
            }
            // Parallel: bounding boxes for the whole frontier.
            bbox_min.resize(nodes.len() * dim, f32::INFINITY);
            bbox_max.resize(nodes.len() * dim, f32::NEG_INFINITY);
            {
                let min_view = UnsafeSlice::new(&mut bbox_min);
                let max_view = UnsafeSlice::new(&mut bbox_max);
                let (nodes_ref, perm_ref, frontier_ref) = (&nodes, &perm, &frontier);
                ctx.for_each(frontier.len(), 1, |fi| {
                    let nid = frontier_ref[fi] as usize;
                    let node = nodes_ref[nid];
                    let mut lo = vec![f32::INFINITY; dim];
                    let mut hi = vec![f32::NEG_INFINITY; dim];
                    for &p in &perm_ref[node.start as usize..node.end as usize] {
                        let pt = points.point(p as usize);
                        for d in 0..dim {
                            lo[d] = lo[d].min(pt[d]);
                            hi[d] = hi[d].max(pt[d]);
                        }
                    }
                    for d in 0..dim {
                        // SAFETY: each node's box slots are written by the
                        // single task owning that frontier entry.
                        unsafe {
                            min_view.write(nid * dim + d, lo[d]);
                            max_view.write(nid * dim + d, hi[d]);
                        }
                    }
                });
            }
            // Parallel: partition splitting nodes around the median of the
            // widest box dimension.
            {
                let perm_view = UnsafeSlice::new(&mut perm);
                let (nodes_ref, splitting_ref) = (&nodes, &splitting);
                let (bmin, bmax) = (&bbox_min, &bbox_max);
                ctx.for_each(splitting.len(), 1, |si| {
                    let nid = splitting_ref[si] as usize;
                    let node = nodes_ref[nid];
                    let mut split_dim = 0;
                    let mut widest = f32::NEG_INFINITY;
                    for d in 0..dim {
                        let w = bmax[nid * dim + d] - bmin[nid * dim + d];
                        if w > widest {
                            widest = w;
                            split_dim = d;
                        }
                    }
                    let mid = (node.end - node.start) as usize / 2;
                    // SAFETY: subtree ranges of distinct frontier nodes are
                    // disjoint.
                    let range =
                        unsafe { perm_view.slice_mut(node.start as usize..node.end as usize) };
                    range.select_nth_unstable_by(mid, |&a, &b| {
                        let ca = points.point(a as usize)[split_dim];
                        let cb = points.point(b as usize)[split_dim];
                        ca.total_cmp(&cb).then(a.cmp(&b))
                    });
                });
            }
            frontier = next_frontier;
        }

        Self {
            dim,
            nodes,
            bbox_min,
            bbox_max,
            perm,
            min_core2: None,
        }
    }

    /// Number of points indexed.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Number of tree nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Attaches per-node minimum squared core distances (leaf-up sweep),
    /// enabling mutual-reachability pruning bounds.
    pub fn attach_core2(&mut self, core2: &[f32]) {
        assert_eq!(core2.len(), self.perm.len());
        let mut min_core = vec![f32::INFINITY; self.nodes.len()];
        // Children have larger ids than parents: reverse order is leaf-up.
        for nid in (0..self.nodes.len()).rev() {
            let node = self.nodes[nid];
            if node.is_leaf() {
                let mut m = f32::INFINITY;
                for &p in &self.perm[node.start as usize..node.end as usize] {
                    m = m.min(core2[p as usize]);
                }
                min_core[nid] = m;
            } else {
                min_core[nid] = min_core[node.left as usize].min(min_core[node.right as usize]);
            }
        }
        self.min_core2 = Some(min_core);
    }

    /// Per-node component purity: the component id shared by every point in
    /// the subtree, or `u32::MAX` if mixed. Leaf-up sweep, O(n).
    pub fn component_purity(&self, comp: &[u32]) -> Vec<u32> {
        let mut purity = vec![INVALID; self.nodes.len()];
        for nid in (0..self.nodes.len()).rev() {
            let node = self.nodes[nid];
            if node.is_leaf() {
                let range = &self.perm[node.start as usize..node.end as usize];
                purity[nid] = match range.first() {
                    None => INVALID,
                    Some(&first_point) => {
                        let first = comp[first_point as usize];
                        if range.iter().all(|&p| comp[p as usize] == first) {
                            first
                        } else {
                            INVALID
                        }
                    }
                };
            } else {
                let l = purity[node.left as usize];
                let r = purity[node.right as usize];
                purity[nid] = if l == r { l } else { INVALID };
            }
        }
        purity
    }

    /// The `k` nearest neighbours of point `q` (excluding `q` itself),
    /// returned as `(squared distance, index)` sorted ascending.
    pub fn knn(&self, points: &PointSet, q: u32, k: usize) -> Vec<(f32, u32)> {
        let mut heap = BoundedMaxHeap::new(k);
        let qp = points.point(q as usize);
        let mut stack: Vec<(u32, f32)> = vec![(0, self.node_box_dist2(0, qp))];
        while let Some((nid, box_d2)) = stack.pop() {
            if box_d2 > heap.worst() {
                continue;
            }
            let node = self.nodes[nid as usize];
            if node.is_leaf() {
                for &p in &self.perm[node.start as usize..node.end as usize] {
                    if p == q {
                        continue;
                    }
                    let d2 = points.dist2(q as usize, p as usize);
                    heap.push(d2, p);
                }
            } else {
                let dl = self.node_box_dist2(node.left as usize, qp);
                let dr = self.node_box_dist2(node.right as usize, qp);
                // Push farther child first so the nearer is explored next.
                if dl <= dr {
                    stack.push((node.right, dr));
                    stack.push((node.left, dl));
                } else {
                    stack.push((node.left, dl));
                    stack.push((node.right, dr));
                }
            }
        }
        heap.into_sorted()
    }

    /// Nearest point to `q` in a *different component*, under `metric`.
    ///
    /// `purity` comes from [`KdTree::component_purity`] for the current
    /// Borůvka round. Returns `(squared distance, index)`; ties broken by
    /// smaller index for determinism.
    pub fn nearest_foreign<M: Metric>(
        &self,
        points: &PointSet,
        metric: &M,
        q: u32,
        comp: &[u32],
        purity: &[u32],
    ) -> Option<(f32, u32)> {
        let mut best_d2 = f32::INFINITY;
        let mut best_p = INVALID;
        let qp = points.point(q as usize);
        let my_comp = comp[q as usize];
        let zero_core = [];
        let min_core2: &[f32] = self.min_core2.as_deref().unwrap_or(&zero_core);
        let node_bound = |nid: usize| -> f32 {
            let box_d2 = self.node_box_dist2(nid, qp);
            let mc = if min_core2.is_empty() {
                0.0
            } else {
                min_core2[nid]
            };
            metric.box_bound2(points, q, box_d2, mc)
        };
        let mut stack: Vec<(u32, f32)> = vec![(0, node_bound(0))];
        while let Some((nid, bound)) = stack.pop() {
            // Strict comparison: an equal-bound subtree may still hold an
            // equal-distance point with a smaller index (deterministic ties).
            if bound > best_d2 {
                continue;
            }
            if purity[nid as usize] == my_comp {
                continue; // whole subtree is in q's component
            }
            let node = self.nodes[nid as usize];
            if node.is_leaf() {
                for &p in &self.perm[node.start as usize..node.end as usize] {
                    if comp[p as usize] == my_comp {
                        continue;
                    }
                    let d2 = metric.dist2(points, q, p);
                    if d2 < best_d2 || (d2 == best_d2 && p < best_p) {
                        best_d2 = d2;
                        best_p = p;
                    }
                }
            } else {
                let bl = node_bound(node.left as usize);
                let br = node_bound(node.right as usize);
                if bl <= br {
                    stack.push((node.right, br));
                    stack.push((node.left, bl));
                } else {
                    stack.push((node.left, bl));
                    stack.push((node.right, br));
                }
            }
        }
        (best_p != INVALID).then_some((best_d2, best_p))
    }

    #[inline(always)]
    fn node_box_dist2(&self, nid: usize, qp: &[f32]) -> f32 {
        point_box_dist2(
            qp,
            &self.bbox_min[nid * self.dim..(nid + 1) * self.dim],
            &self.bbox_max[nid * self.dim..(nid + 1) * self.dim],
        )
    }
}

/// Fixed-capacity max-heap keeping the `k` smallest `(d2, index)` pairs.
struct BoundedMaxHeap {
    k: usize,
    items: Vec<(f32, u32)>,
}

impl BoundedMaxHeap {
    fn new(k: usize) -> Self {
        Self {
            k,
            items: Vec::with_capacity(k),
        }
    }

    #[inline(always)]
    fn worst(&self) -> f32 {
        if self.items.len() < self.k {
            f32::INFINITY
        } else {
            self.items[0].0
        }
    }

    fn push(&mut self, d2: f32, p: u32) {
        if self.items.len() < self.k {
            self.items.push((d2, p));
            // Sift up.
            let mut i = self.items.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if self.items[parent].0 < self.items[i].0 {
                    self.items.swap(parent, i);
                    i = parent;
                } else {
                    break;
                }
            }
        } else if d2 < self.items[0].0 {
            self.items[0] = (d2, p);
            // Sift down.
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut largest = i;
                if l < self.items.len() && self.items[l].0 > self.items[largest].0 {
                    largest = l;
                }
                if r < self.items.len() && self.items[r].0 > self.items[largest].0 {
                    largest = r;
                }
                if largest == i {
                    break;
                }
                self.items.swap(i, largest);
                i = largest;
            }
        }
    }

    fn into_sorted(mut self) -> Vec<(f32, u32)> {
        self.items
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;
    use rand::prelude::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            (0..n * dim)
                .map(|_| rng.gen_range(-10.0..10.0f32))
                .collect(),
            dim,
        )
    }

    fn brute_knn(points: &PointSet, q: usize, k: usize) -> Vec<(f32, u32)> {
        let mut all: Vec<(f32, u32)> = (0..points.len())
            .filter(|&p| p != q)
            .map(|p| (points.dist2(q, p), p as u32))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force() {
        let ctx = ExecCtx::serial();
        for dim in [2usize, 3, 5] {
            let points = random_points(500, dim, 42 + dim as u64);
            let tree = KdTree::build(&ctx, &points);
            for q in [0u32, 17, 250, 499] {
                for k in [1usize, 4, 16] {
                    let got = tree.knn(&points, q, k);
                    let expect = brute_knn(&points, q as usize, k);
                    let got_d: Vec<f32> = got.iter().map(|x| x.0).collect();
                    let exp_d: Vec<f32> = expect.iter().map(|x| x.0).collect();
                    assert_eq!(got_d, exp_d, "dim={dim} q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn knn_k_larger_than_n() {
        let ctx = ExecCtx::serial();
        let points = random_points(5, 2, 1);
        let tree = KdTree::build(&ctx, &points);
        let got = tree.knn(&points, 0, 10);
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn parallel_build_same_knn_results() {
        let points = random_points(2000, 3, 7);
        let serial = KdTree::build(&ExecCtx::serial(), &points);
        let parallel = KdTree::build(&ExecCtx::threads(), &points);
        for q in [0u32, 999, 1999] {
            let a: Vec<f32> = serial.knn(&points, q, 8).iter().map(|x| x.0).collect();
            let b: Vec<f32> = parallel.knn(&points, q, 8).iter().map(|x| x.0).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn nearest_foreign_respects_components() {
        let ctx = ExecCtx::serial();
        let points = random_points(300, 2, 3);
        let tree = KdTree::build(&ctx, &points);
        // Components: evens vs odds.
        let comp: Vec<u32> = (0..300u32).map(|i| i % 2).collect();
        let purity = tree.component_purity(&comp);
        for q in [0u32, 7, 150] {
            let (d2, p) = tree
                .nearest_foreign(&points, &Euclidean, q, &comp, &purity)
                .unwrap();
            assert_ne!(comp[p as usize], comp[q as usize]);
            // Brute force check.
            let expect = (0..300usize)
                .filter(|&x| comp[x] % 2 != comp[q as usize] % 2)
                .map(|x| (points.dist2(q as usize, x), x as u32))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .unwrap();
            assert_eq!((d2, p), expect, "q={q}");
        }
    }

    #[test]
    fn purity_detects_uniform_subtrees() {
        let ctx = ExecCtx::serial();
        let points = random_points(100, 2, 9);
        let tree = KdTree::build(&ctx, &points);
        let comp_all_same = vec![3u32; 100];
        let purity = tree.component_purity(&comp_all_same);
        assert!(purity.iter().all(|&p| p == 3));
    }

    #[test]
    fn empty_and_single_point() {
        let ctx = ExecCtx::serial();
        let empty = PointSet::new(vec![], 2);
        let tree = KdTree::build(&ctx, &empty);
        assert!(tree.is_empty());
        let single = PointSet::new(vec![1.0, 2.0], 2);
        let tree = KdTree::build(&ctx, &single);
        assert_eq!(tree.knn(&single, 0, 3), vec![]);
    }
}
