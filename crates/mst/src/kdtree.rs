//! A bounding-box kd-tree over a [`PointSet`].
//!
//! This plays the role ArborX's BVH plays in the paper's EMST pipeline
//! (\[39\]): it answers k-nearest-neighbour queries (core distances) and
//! component-aware nearest-foreign-point queries (Borůvka rounds).
//!
//! Construction is subtree-parallel: the top levels are split
//! level-synchronously (median split along the widest box dimension, node
//! ids allocated sequentially, per-node partitioning and boxes in
//! parallel) until enough independent subtrees exist to saturate the
//! pool, then each subtree is built entirely within one pool lane using
//! lane-local node storage, and the local node blocks are spliced after
//! the top nodes with child-id fixup. Subtree
//! point ranges stay contiguous in the permutation array, so per-node
//! metadata (bounding boxes, min core distance, component purity) can be
//! maintained with leaf-up sweeps, and the node id order keeps every child
//! id larger than its parent's.
//!
//! # Hot-path design
//!
//! Node metadata is stored **structure-of-arrays** (`left` / `start` /
//! `end` / `split_dim` / `split_val` / flat bounding boxes) so traversal
//! touches only the arrays it needs, and the split dimension and median
//! value chosen at build time are cached per node rather than re-derived.
//! Queries are **allocation-free in the steady state**: traversal uses a
//! fixed-capacity stack (median splits bound the depth by ⌈log₂ n⌉ ≤ 32
//! for `u32` indices), [`KdTree::knn_into`] writes into a caller-owned
//! reusable [`KnnHeap`], and [`KdTree::nearest_foreign`] needs no scratch
//! at all. Borůvka warm-starts searches by seeding the best-so-far bound
//! from the previous round ([`KdTree::nearest_foreign_from`]) and prunes
//! subtrees whose mutual-reachability bound (box distance, query core
//! distance, subtree minimum core distance) cannot beat it.

use pandora_exec::trace::KernelKind;
use pandora_exec::{ExecCtx, UnsafeSlice, DEFAULT_GRAIN};

use crate::metric::{euclid_block_dist2, point_box_dist2, Metric, LEAF_BLOCK};
use crate::point::PointSet;

const INVALID: u32 = u32::MAX;

/// Default leaf capacity.
pub const DEFAULT_LEAF_SIZE: usize = 32;

/// Number of independent subtrees the sequential top phase of the build
/// carves out before handing them to pool lanes.
///
/// A constant (rather than a multiple of the lane count) keeps the node
/// layout identical across execution contexts — serial and threaded builds
/// produce byte-identical trees — while still giving up to ~16 lanes a 4×
/// oversubscription for load balancing.
const BUILD_SPLIT_TARGET: usize = 64;

/// Fixed traversal stack capacity. Median splits halve subtree sizes, so
/// the tree depth is at most ⌈log₂ n⌉ ≤ 32 for `u32`-indexed points, and a
/// traversal pushes at most one (far-child) entry per level; 64 leaves a
/// 2× margin. Enforced at build time.
const MAX_STACK: usize = 64;

/// Outcome of a bounded nearest-foreign search
/// ([`KdTree::nearest_foreign_bounded`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ForeignSearch {
    /// Nearest foreign point: `(exact squared metric distance, index)`.
    Found(f32, u32),
    /// Nothing foreign at or below the seed bound. The payload is a proven
    /// lower bound on the nearest-foreign squared distance (minimum over
    /// pruned subtree bounds and scanned-but-losing foreign distances).
    Empty(f32),
}

/// A static kd-tree with structure-of-arrays node metadata.
#[derive(Debug)]
pub struct KdTree {
    dim: usize,
    /// Left child id per node; `INVALID` marks a leaf. The right child is
    /// always `left + 1` (children are allocated in pairs).
    left: Vec<u32>,
    /// Subtree range start in `perm`, per node.
    start: Vec<u32>,
    /// Subtree range end in `perm`, per node.
    end: Vec<u32>,
    /// Split dimension chosen at build time (widest box side); 0 for leaves.
    split_dim: Vec<u32>,
    /// Median coordinate along `split_dim` at build time; 0 for leaves.
    split_val: Vec<f32>,
    /// Per-node bounding boxes, flat `[node][dim]`.
    bbox_min: Vec<f32>,
    bbox_max: Vec<f32>,
    /// Point indices, grouped so each subtree is a contiguous range.
    perm: Vec<u32>,
    /// Coordinates gathered into `perm` order and regrouped AoSoA: blocks
    /// of [`LEAF_BLOCK`] consecutive perm positions, dimension-major within
    /// each block (`block[d * LEAF_BLOCK + j]`), zero-padded to a whole
    /// final block. Leaf scans stream these blocks through the 8-wide
    /// [`euclid_block_dist2`] kernel with no strided loads.
    leaf_coords: Vec<f32>,
    /// Tree depth (root = 0 counts as depth 1 when any node exists).
    depth: usize,
}

impl KdTree {
    /// Builds a tree with the default leaf size.
    pub fn build(ctx: &ExecCtx, points: &PointSet) -> Self {
        Self::build_with_leaf_size(ctx, points, DEFAULT_LEAF_SIZE)
    }

    /// Builds a tree with a caller-chosen leaf capacity.
    ///
    /// The top `BUILD_SPLIT_TARGET` (64) subtrees are split off
    /// level-synchronously (ids allocated sequentially, per-node work in
    /// parallel); each subtree is then built wholly inside one pool lane with
    /// lane-local node storage (per-lane scratch, no synchronization), and
    /// the finished node blocks are spliced after the top nodes. Serial and
    /// threaded contexts produce **identical** trees: the split target is a
    /// constant and the splice order is the (deterministic) frontier order.
    pub fn build_with_leaf_size(ctx: &ExecCtx, points: &PointSet, leaf_size: usize) -> Self {
        let n = points.len();
        let dim = points.dim();
        let leaf_size = leaf_size.max(1);
        ctx.record(KernelKind::TreeBuild, n as u64, (n * dim * 4) as u64);

        let mut tree = Self {
            dim,
            left: vec![INVALID],
            start: vec![0],
            end: vec![n as u32],
            split_dim: vec![0],
            split_val: vec![0.0],
            bbox_min: vec![f32::INFINITY; dim],
            bbox_max: vec![f32::NEG_INFINITY; dim],
            perm: (0..n as u32).collect(),
            leaf_coords: Vec::new(),
            depth: usize::from(n > 0),
        };
        if n == 0 {
            return tree;
        }
        scan_bbox(
            points,
            &tree.perm,
            &mut tree.bbox_min[..dim],
            &mut tree.bbox_max[..dim],
        );

        // Phase 1: split the top levels until enough independent subtrees
        // exist to keep every lane busy. All frontier nodes sit at the same
        // depth (level-synchronous). Node ids are allocated sequentially in
        // frontier order — so the layout never depends on the lane count —
        // but the O(n)-per-level work (partitioning, child bounding boxes)
        // runs in parallel across the level's nodes; otherwise these ~6
        // levels would serialize ~2n of work each and cap the build-phase
        // speedup on many-core hosts (Amdahl).
        let mut frontier: Vec<u32> = vec![0];
        let mut frontier_depth = 1usize;
        while frontier.len() < BUILD_SPLIT_TARGET
            && frontier.iter().any(|&nid| {
                (tree.end[nid as usize] - tree.start[nid as usize]) as usize > leaf_size
            })
        {
            // Sequential: allocate children for the nodes that will split
            // (placeholder splits/boxes; filled in parallel below).
            let mut splitting: Vec<u32> = Vec::new();
            let mut next = Vec::with_capacity(frontier.len() * 2);
            for &nid in &frontier {
                let (s, e) = (tree.start[nid as usize], tree.end[nid as usize]);
                if (e - s) as usize <= leaf_size {
                    // Finished leaf above the subtree frontier; its depth
                    // (< the final frontier depth) can never be the maximum.
                    continue;
                }
                let mid = s + (e - s) / 2;
                let left = tree.left.len() as u32;
                tree.left[nid as usize] = left;
                tree.push_node(s, mid);
                tree.push_node(mid, e);
                splitting.push(nid);
                next.push(left);
                next.push(left + 1);
            }
            let n_nodes = tree.left.len();
            tree.bbox_min.resize(n_nodes * dim, f32::INFINITY);
            tree.bbox_max.resize(n_nodes * dim, f32::NEG_INFINITY);
            // Parallel: partition each splitting node around the median of
            // its widest box dimension, cache the split, and compute both
            // children's bounding boxes. Writes are disjoint per node.
            {
                let perm_view = UnsafeSlice::new(&mut tree.perm);
                let sdim_view = UnsafeSlice::new(&mut tree.split_dim);
                let sval_view = UnsafeSlice::new(&mut tree.split_val);
                let bmin_view = UnsafeSlice::new(&mut tree.bbox_min);
                let bmax_view = UnsafeSlice::new(&mut tree.bbox_max);
                let (start_ref, end_ref, left_ref, splitting_ref) =
                    (&tree.start, &tree.end, &tree.left, &splitting);
                ctx.for_each(splitting.len(), 1, |si| {
                    let nid = splitting_ref[si] as usize;
                    let (s, e) = (start_ref[nid] as usize, end_ref[nid] as usize);
                    // SAFETY: a splitting node's bbox row was fully written
                    // before this region started (by the previous level's
                    // child scans, or the initial root scan) and no task in
                    // this region writes it — child rows written below all
                    // belong to nodes allocated this level.
                    let (pmin, pmax) = unsafe {
                        (
                            &*bmin_view.slice_mut(nid * dim..(nid + 1) * dim),
                            &*bmax_view.slice_mut(nid * dim..(nid + 1) * dim),
                        )
                    };
                    let split_dim = widest_dim(pmin, pmax);
                    let mid = (e - s) / 2;
                    // SAFETY: subtree ranges of distinct frontier nodes are
                    // disjoint; each node's split/box slots are owned by the
                    // task splitting that node.
                    let range = unsafe { perm_view.slice_mut(s..e) };
                    range.select_nth_unstable_by(mid, |&a, &b| {
                        let ca = points.point(a as usize)[split_dim];
                        let cb = points.point(b as usize)[split_dim];
                        ca.total_cmp(&cb).then(a.cmp(&b))
                    });
                    let median = points.point(range[mid] as usize)[split_dim];
                    // SAFETY: node `nid` appears once in the frontier, so its
                    // split-dim/value slots are written by this task alone.
                    unsafe {
                        sdim_view.write(nid, split_dim as u32);
                        sval_view.write(nid, median);
                    }
                    let left = left_ref[nid] as usize;
                    for (child, (cs, ce)) in [(left, (s, s + mid)), (left + 1, (s + mid, e))] {
                        // SAFETY: both children were allocated this level for
                        // `nid` alone, so their bbox rows and disjoint halves
                        // of the perm range are owned by this task.
                        unsafe {
                            scan_bbox(
                                points,
                                &*perm_view.slice_mut(cs..ce),
                                bmin_view.slice_mut(child * dim..(child + 1) * dim),
                                bmax_view.slice_mut(child * dim..(child + 1) * dim),
                            );
                        }
                    }
                });
            }
            frontier = next;
            frontier_depth += 1;
        }

        // Phase 2 (parallel): every frontier subtree is built independently
        // into lane-local storage. Writes are disjoint: each task owns its
        // subtree's `perm` range and its own `subtrees[fi]` slot.
        let n_top = tree.left.len();
        let mut subtrees: Vec<Option<SubtreeNodes>> = (0..frontier.len()).map(|_| None).collect();
        {
            let sub_view = UnsafeSlice::new(&mut subtrees);
            let perm_view = UnsafeSlice::new(&mut tree.perm);
            let (start_ref, end_ref, frontier_ref) = (&tree.start, &tree.end, &frontier);
            let (bmin, bmax) = (&tree.bbox_min, &tree.bbox_max);
            ctx.for_each_chunk(frontier.len(), 1, |range| {
                for fi in range {
                    let nid = frontier_ref[fi] as usize;
                    let (s, e) = (start_ref[nid] as usize, end_ref[nid] as usize);
                    // SAFETY: subtree ranges of distinct frontier nodes are
                    // disjoint, and slot `fi` is owned by this task.
                    let perm_sub = unsafe { perm_view.slice_mut(s..e) };
                    let built = build_subtree(
                        points,
                        perm_sub,
                        s as u32,
                        leaf_size,
                        (
                            &bmin[nid * dim..(nid + 1) * dim],
                            &bmax[nid * dim..(nid + 1) * dim],
                        ),
                    );
                    // SAFETY: slot `fi` of `subtrees` is owned by this task.
                    unsafe { sub_view.write(fi, Some(built)) };
                }
            });
        }

        // Phase 3 (sequential, O(#nodes)): splice the lane-local node blocks
        // after the top nodes, offsetting child ids. Local id 0 is the
        // frontier node itself (already in the global arrays); descendants
        // map to `offset + local_id - 1`, which keeps every child id larger
        // than its parent's (the leaf-up sweeps rely on that order).
        let mut depth = frontier_depth;
        let mut offset = n_top as u32;
        for (fi, slot) in subtrees.iter_mut().enumerate() {
            let sub = slot.take().expect("subtree built by phase 2");
            let nid = frontier[fi] as usize;
            if sub.left[0] != INVALID {
                tree.left[nid] = offset + sub.left[0] - 1;
                tree.split_dim[nid] = sub.split_dim[0];
                tree.split_val[nid] = sub.split_val[0];
            }
            for lid in 1..sub.left.len() {
                let l = sub.left[lid];
                tree.left.push(if l == INVALID {
                    INVALID
                } else {
                    offset + l - 1
                });
                tree.start.push(sub.start[lid]);
                tree.end.push(sub.end[lid]);
                tree.split_dim.push(sub.split_dim[lid]);
                tree.split_val.push(sub.split_val[lid]);
            }
            tree.bbox_min.extend_from_slice(&sub.bbox_min[dim..]);
            tree.bbox_max.extend_from_slice(&sub.bbox_max[dim..]);
            offset += (sub.left.len() - 1) as u32;
            depth = depth.max(frontier_depth + sub.depth - 1);
        }
        tree.depth = depth;
        assert!(
            depth + 1 < MAX_STACK,
            "kd-tree depth {depth} exceeds the fixed traversal stack"
        );

        // Phase 4 (parallel): gather coordinates into perm order, AoSoA
        // blocks of LEAF_BLOCK points, so leaf scans stream whole blocks
        // through the 8-wide distance kernel.
        let n_blocks = n.div_ceil(LEAF_BLOCK);
        tree.leaf_coords = vec![0.0f32; n_blocks * LEAF_BLOCK * dim];
        {
            let lc = UnsafeSlice::new(&mut tree.leaf_coords);
            let perm_ref = &tree.perm;
            ctx.for_each_chunk(n_blocks, (DEFAULT_GRAIN / LEAF_BLOCK).max(1), |range| {
                for b in range {
                    let base = b * LEAF_BLOCK * dim;
                    let lo = b * LEAF_BLOCK;
                    let hi = (lo + LEAF_BLOCK).min(n);
                    for (j, &p) in perm_ref[lo..hi].iter().enumerate() {
                        let pt = points.point(p as usize);
                        for (d, &c) in pt.iter().enumerate() {
                            // SAFETY: block b is owned by this iteration.
                            unsafe { lc.write(base + d * LEAF_BLOCK + j, c) };
                        }
                    }
                }
            });
        }
        tree
    }

    #[inline]
    fn push_node(&mut self, start: u32, end: u32) {
        self.left.push(INVALID);
        self.start.push(start);
        self.end.push(end);
        self.split_dim.push(0);
        self.split_val.push(0.0);
    }

    /// Number of points indexed.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// The point permutation: position → point index, each subtree a
    /// contiguous range. Iterating queries in this order visits points in
    /// spatially coherent (leaf) order, which the Borůvka and core-distance
    /// batches exploit for cache reuse and same-component run detection.
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Number of tree nodes.
    pub fn n_nodes(&self) -> usize {
        self.left.len()
    }

    /// Tree depth in levels (1 for a single-leaf tree).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Computes per-node minimum squared core distances (leaf-up sweep)
    /// into a caller-owned buffer, for mutual-reachability pruning bounds.
    ///
    /// The tree itself stays untouched — core distances are a property of
    /// the *request* (`minPts`), not of the index, so a tree shared by
    /// concurrent sessions stays immutable while each session passes its
    /// own bounds to [`KdTree::nearest_foreign_bounded`]. The buffer is
    /// cleared and resized (capacity retained), so steady-state reuse
    /// allocates nothing.
    pub fn min_core2_into(&self, core2: &[f32], out: &mut Vec<f32>) {
        assert_eq!(core2.len(), self.perm.len());
        out.clear();
        out.resize(self.n_nodes(), f32::INFINITY);
        // Children have larger ids than parents: reverse order is leaf-up.
        for nid in (0..self.n_nodes()).rev() {
            let left = self.left[nid];
            out[nid] = if left == INVALID {
                let mut m = f32::INFINITY;
                for &p in &self.perm[self.start[nid] as usize..self.end[nid] as usize] {
                    m = m.min(core2[p as usize]);
                }
                m
            } else {
                out[left as usize].min(out[left as usize + 1])
            };
        }
    }

    /// Per-node component purity: the component id shared by every point in
    /// the subtree, or `u32::MAX` if mixed. O(n).
    pub fn component_purity(&self, comp: &[u32]) -> Vec<u32> {
        let mut purity = Vec::new();
        self.component_purity_into(&ExecCtx::serial(), comp, &mut purity);
        purity
    }

    /// [`KdTree::component_purity`] into a reusable buffer (resized as
    /// needed) — Borůvka calls this every round, so the allocation is paid
    /// once, not per round.
    ///
    /// The O(n) leaf scans (the dominant cost) run in parallel; the
    /// internal combine is a serial leaf-up sweep over the O(n / leaf_size)
    /// nodes, which is noise by comparison.
    pub fn component_purity_into(&self, ctx: &ExecCtx, comp: &[u32], purity: &mut Vec<u32>) {
        purity.clear();
        purity.resize(self.n_nodes(), INVALID);
        {
            let purity_view = UnsafeSlice::new(purity.as_mut_slice());
            let (left_ref, start_ref, end_ref, perm_ref) =
                (&self.left, &self.start, &self.end, &self.perm);
            ctx.for_each_chunk(self.n_nodes(), 64, |range| {
                for nid in range {
                    if left_ref[nid] != INVALID {
                        continue;
                    }
                    let range = &perm_ref[start_ref[nid] as usize..end_ref[nid] as usize];
                    let value = match range.first() {
                        None => INVALID,
                        Some(&first_point) => {
                            let first = comp[first_point as usize];
                            if range.iter().all(|&p| comp[p as usize] == first) {
                                first
                            } else {
                                INVALID
                            }
                        }
                    };
                    // SAFETY: node nid is owned by this iteration.
                    unsafe { purity_view.write(nid, value) };
                }
            });
        }
        // Children always have larger ids than their parent, so the reverse
        // sweep sees both children before every internal parent.
        for nid in (0..self.n_nodes()).rev() {
            let left = self.left[nid];
            if left != INVALID {
                let l = purity[left as usize];
                let r = purity[left as usize + 1];
                purity[nid] = if l == r { l } else { INVALID };
            }
        }
    }

    /// The `k` nearest neighbours of point `q` (excluding `q` itself),
    /// returned as `(squared distance, index)` sorted ascending.
    ///
    /// Convenience wrapper over [`KdTree::knn_into`]; allocates the result.
    /// Hot paths should hold a [`KnnHeap`] and call `knn_into` instead.
    pub fn knn(&self, points: &PointSet, q: u32, k: usize) -> Vec<(f32, u32)> {
        let mut heap = KnnHeap::new(k);
        self.knn_into(points, q, k, &mut heap);
        heap.sorted().to_vec()
    }

    /// Fills `heap` with the `k` nearest neighbours of `q` (excluding `q`),
    /// allocation-free once the heap has capacity `k`.
    ///
    /// The heap is reset first, so it can be reused across queries. Read
    /// the result via [`KnnHeap::sorted`] (ascending) or
    /// [`KnnHeap::max_d2`] (the k-th squared distance, e.g. core distances).
    pub fn knn_into(&self, points: &PointSet, q: u32, k: usize, heap: &mut KnnHeap) {
        heap.reset(k);
        if self.perm.is_empty() || k == 0 {
            return;
        }
        let qp = points.point(q as usize);
        let mut stack = [(0u32, 0.0f32); MAX_STACK];
        let mut sp = 0usize;
        let mut nid = 0u32;
        let mut bound = self.node_box_dist2(0, qp);
        let mut d2buf = [0.0f32; LEAF_BLOCK];
        loop {
            if bound <= heap.worst() {
                // Descend along near children, pushing far children that
                // can still contain a closer point.
                loop {
                    let left = self.left[nid as usize];
                    if left == INVALID {
                        break;
                    }
                    // Cached split: pick the near side in O(1); box
                    // distances are only computed for pruning bounds.
                    let near_is_left =
                        qp[self.split_dim[nid as usize] as usize] <= self.split_val[nid as usize];
                    let (near, far) = if near_is_left {
                        (left, left + 1)
                    } else {
                        (left + 1, left)
                    };
                    let dfar = self.node_box_dist2(far as usize, qp);
                    let worst = heap.worst();
                    if dfar <= worst {
                        stack[sp] = (far, dfar);
                        sp += 1;
                    }
                    let dnear = self.node_box_dist2(near as usize, qp);
                    if dnear > worst {
                        nid = INVALID;
                        break;
                    }
                    nid = near;
                }
                if nid != INVALID {
                    // Chunked leaf scan: each AoSoA block yields 8 Euclidean
                    // distances at once, then a scalar filter over the
                    // block's overlap with the leaf range.
                    let (s, e) = (
                        self.start[nid as usize] as usize,
                        self.end[nid as usize] as usize,
                    );
                    let bw = LEAF_BLOCK * self.dim;
                    for b in s / LEAF_BLOCK..e.div_ceil(LEAF_BLOCK) {
                        euclid_block_dist2(qp, &self.leaf_coords[b * bw..(b + 1) * bw], &mut d2buf);
                        for i in s.max(b * LEAF_BLOCK)..e.min((b + 1) * LEAF_BLOCK) {
                            let p = self.perm[i];
                            if p != q {
                                heap.push(d2buf[i - b * LEAF_BLOCK], p);
                            }
                        }
                    }
                }
            }
            if sp == 0 {
                break;
            }
            sp -= 1;
            (nid, bound) = stack[sp];
        }
    }

    /// Nearest point to `q` in a *different component*, under `metric`.
    ///
    /// `purity` comes from [`KdTree::component_purity`] for the current
    /// Borůvka round. `node_core2` is either empty (no pruning bounds —
    /// always valid, just less pruning for mutual reachability) or the
    /// per-node subtree core minima from [`KdTree::min_core2_into`] for
    /// the request's `minPts`. Returns `(squared distance, index)`; ties
    /// broken by smaller index for determinism.
    pub fn nearest_foreign<M: Metric>(
        &self,
        points: &PointSet,
        metric: &M,
        q: u32,
        comp: &[u32],
        purity: &[u32],
        node_core2: &[f32],
    ) -> Option<(f32, u32)> {
        self.nearest_foreign_from(points, metric, q, comp, purity, node_core2, None)
    }

    /// [`KdTree::nearest_foreign`] warm-started with a known candidate.
    ///
    /// `seed` is either a valid candidate — a point in a different
    /// component than `q` with its exact squared metric distance, typically
    /// the previous Borůvka round's winner when the two endpoints were not
    /// merged — or a **bound-only** seed `(d2, u32::MAX)`: an upper bound
    /// the caller no longer needs beaten (e.g. the component's current
    /// best outgoing edge). Seeding tightens the pruning bound from the
    /// first node visited. With a candidate seed the result is identical
    /// to the unseeded query; with a bound-only seed the query returns
    /// `None` unless it finds a point at distance ≤ the bound (equal-bound
    /// subtrees are still visited, so smaller-index ties win regardless).
    #[allow(clippy::too_many_arguments)] // mirrors nearest_foreign_bounded
    pub fn nearest_foreign_from<M: Metric>(
        &self,
        points: &PointSet,
        metric: &M,
        q: u32,
        comp: &[u32],
        purity: &[u32],
        node_core2: &[f32],
        seed: Option<(f32, u32)>,
    ) -> Option<(f32, u32)> {
        match self.nearest_foreign_bounded(points, metric, q, comp, purity, node_core2, seed) {
            ForeignSearch::Found(d2, p) => Some((d2, p)),
            ForeignSearch::Empty(_) => None,
        }
    }

    /// [`KdTree::nearest_foreign_from`] that additionally reports *how far
    /// away* every foreign point provably is when the search comes up
    /// empty.
    ///
    /// [`ForeignSearch::Empty`] carries the minimum over all pruned subtree
    /// bounds and all scanned-but-losing foreign distances — a valid lower
    /// bound on `q`'s nearest-foreign distance that is usually far tighter
    /// than the seed bound. Borůvka stores it so interior points stay
    /// filtered for many rounds instead of re-searching every round.
    #[allow(clippy::too_many_arguments)] // the innermost configurable query
    pub fn nearest_foreign_bounded<M: Metric>(
        &self,
        points: &PointSet,
        metric: &M,
        q: u32,
        comp: &[u32],
        purity: &[u32],
        node_core2: &[f32],
        seed: Option<(f32, u32)>,
    ) -> ForeignSearch {
        if self.perm.is_empty() {
            return ForeignSearch::Empty(f32::INFINITY);
        }
        let (mut best_d2, mut best_p) = seed.unwrap_or((f32::INFINITY, INVALID));
        debug_assert!(best_p == INVALID || comp[best_p as usize] != comp[q as usize]);
        debug_assert!(
            node_core2.is_empty() || node_core2.len() == self.n_nodes(),
            "node_core2 must be empty or hold one bound per tree node"
        );
        // Lower bound on everything foreign this search pruned or rejected;
        // only meaningful when no candidate is found.
        let mut margin = f32::INFINITY;
        let qp = points.point(q as usize);
        let my_comp = comp[q as usize];
        let min_core2: &[f32] = node_core2;
        let node_bound = |nid: usize| -> f32 {
            let box_d2 = self.node_box_dist2(nid, qp);
            let mc = if min_core2.is_empty() {
                0.0
            } else {
                min_core2[nid]
            };
            metric.box_bound2(points, q, box_d2, mc)
        };
        let mut stack = [(0u32, 0.0f32); MAX_STACK];
        let mut sp = 0usize;
        let mut nid = 0u32;
        let mut bound = node_bound(0);
        let mut d2buf = [0.0f32; LEAF_BLOCK];
        loop {
            // Strict comparison: an equal-bound subtree may still hold an
            // equal-distance point with a smaller index (deterministic
            // ties). Pure subtrees of q's own component are skipped (they
            // hold nothing foreign, so they never affect the margin).
            if bound <= best_d2 && purity[nid as usize] != my_comp {
                loop {
                    let left = self.left[nid as usize];
                    if left == INVALID {
                        break;
                    }
                    let near_is_left =
                        qp[self.split_dim[nid as usize] as usize] <= self.split_val[nid as usize];
                    let (near, far) = if near_is_left {
                        (left, left + 1)
                    } else {
                        (left + 1, left)
                    };
                    let bfar = node_bound(far as usize);
                    if purity[far as usize] != my_comp {
                        if bfar <= best_d2 {
                            stack[sp] = (far, bfar);
                            sp += 1;
                        } else {
                            margin = margin.min(bfar);
                        }
                    }
                    let bnear = node_bound(near as usize);
                    if bnear > best_d2 || purity[near as usize] == my_comp {
                        if purity[near as usize] != my_comp {
                            margin = margin.min(bnear);
                        }
                        nid = INVALID;
                        break;
                    }
                    nid = near;
                }
                if nid != INVALID {
                    // Chunked leaf scan: the Euclidean part is computed for
                    // a whole AoSoA block at once; the scalar pass gathers
                    // component labels and finalizes the metric
                    // (`refine_euclid2` agrees exactly with `dist2`).
                    let (s, e) = (
                        self.start[nid as usize] as usize,
                        self.end[nid as usize] as usize,
                    );
                    let bw = LEAF_BLOCK * self.dim;
                    for b in s / LEAF_BLOCK..e.div_ceil(LEAF_BLOCK) {
                        euclid_block_dist2(qp, &self.leaf_coords[b * bw..(b + 1) * bw], &mut d2buf);
                        for i in s.max(b * LEAF_BLOCK)..e.min((b + 1) * LEAF_BLOCK) {
                            let p = self.perm[i];
                            if comp[p as usize] == my_comp {
                                continue;
                            }
                            let d2 = metric.refine_euclid2(d2buf[i - b * LEAF_BLOCK], q, p);
                            if d2 < best_d2 || (d2 == best_d2 && p < best_p) {
                                best_d2 = d2;
                                best_p = p;
                            } else {
                                margin = margin.min(d2);
                            }
                        }
                    }
                }
            } else if purity[nid as usize] != my_comp {
                // Pruned by the bound (stacked before the bound tightened,
                // or the root itself): its foreign points all sit at least
                // `bound` away.
                margin = margin.min(bound);
            }
            if sp == 0 {
                break;
            }
            sp -= 1;
            (nid, bound) = stack[sp];
        }
        if best_p != INVALID {
            ForeignSearch::Found(best_d2, best_p)
        } else {
            ForeignSearch::Empty(margin)
        }
    }

    /// Verifies the structural invariants of the tree: `perm` is a
    /// permutation, subtree ranges are contiguous (children exactly
    /// partition their parent), cached splits separate the children, and
    /// every node's bounding box contains its points. Used by the property
    /// tests; `Err` carries a description of the first violation.
    pub fn check_invariants(&self, points: &PointSet) -> Result<(), String> {
        let n = self.perm.len();
        if points.len() != n {
            return Err(format!("tree indexes {n} points, set has {}", points.len()));
        }
        let mut seen = vec![false; n];
        for &p in &self.perm {
            let slot = seen
                .get_mut(p as usize)
                .ok_or_else(|| format!("perm entry {p} out of range"))?;
            if std::mem::replace(slot, true) {
                return Err(format!("perm entry {p} duplicated"));
            }
        }
        if self.start[0] != 0 || self.end[0] != n as u32 {
            return Err("root range does not cover all points".into());
        }
        let expect_lc = n.div_ceil(LEAF_BLOCK) * LEAF_BLOCK * self.dim;
        if self.leaf_coords.len() != expect_lc {
            return Err(format!(
                "leaf_coords holds {} values, expected {expect_lc}",
                self.leaf_coords.len(),
            ));
        }
        for (i, &p) in self.perm.iter().enumerate() {
            let base = (i / LEAF_BLOCK) * LEAF_BLOCK * self.dim + i % LEAF_BLOCK;
            for (d, &c) in points.point(p as usize).iter().enumerate() {
                if self.leaf_coords[base + d * LEAF_BLOCK] != c {
                    return Err(format!("leaf_coords slot {i} does not match point {p}"));
                }
            }
        }
        for nid in 0..self.n_nodes() {
            let (s, e) = (self.start[nid], self.end[nid]);
            if s > e || e > n as u32 {
                return Err(format!("node {nid} has invalid range {s}..{e}"));
            }
            // Bounding box contains every point of the subtree.
            for &p in &self.perm[s as usize..e as usize] {
                let pt = points.point(p as usize);
                for (d, &c) in pt.iter().enumerate() {
                    if c < self.bbox_min[nid * self.dim + d]
                        || c > self.bbox_max[nid * self.dim + d]
                    {
                        return Err(format!("node {nid} box does not contain point {p}"));
                    }
                }
            }
            let left = self.left[nid];
            if left == INVALID {
                continue;
            }
            let (l, r) = (left as usize, left as usize + 1);
            if r >= self.n_nodes() {
                return Err(format!("node {nid} children out of range"));
            }
            if self.start[l] != s || self.end[r] != e || self.end[l] != self.start[r] {
                return Err(format!(
                    "node {nid} children do not partition {s}..{e}: \
                     left {}..{}, right {}..{}",
                    self.start[l], self.end[l], self.start[r], self.end[r]
                ));
            }
            if self.start[l] == self.end[l] || self.start[r] == self.end[r] {
                return Err(format!("node {nid} has an empty child"));
            }
            let (sd, sv) = (self.split_dim[nid] as usize, self.split_val[nid]);
            if sd >= self.dim {
                return Err(format!("node {nid} split dim {sd} out of range"));
            }
            for &p in &self.perm[self.start[l] as usize..self.end[l] as usize] {
                if points.point(p as usize)[sd] > sv {
                    return Err(format!("node {nid} left child violates split"));
                }
            }
            for &p in &self.perm[self.start[r] as usize..self.end[r] as usize] {
                if points.point(p as usize)[sd] < sv {
                    return Err(format!("node {nid} right child violates split"));
                }
            }
        }
        Ok(())
    }

    #[inline(always)]
    fn node_box_dist2(&self, nid: usize, qp: &[f32]) -> f32 {
        point_box_dist2(
            qp,
            &self.bbox_min[nid * self.dim..(nid + 1) * self.dim],
            &self.bbox_max[nid * self.dim..(nid + 1) * self.dim],
        )
    }
}

/// Lane-local nodes of one independently built subtree.
///
/// Local id 0 mirrors the subtree's frontier root (whose global slots
/// already exist); descendants occupy ids 1.. in an order where every child
/// id is larger than its parent's, so the global splice preserves the
/// leaf-up sweep invariant.
struct SubtreeNodes {
    left: Vec<u32>,
    start: Vec<u32>,
    end: Vec<u32>,
    split_dim: Vec<u32>,
    split_val: Vec<f32>,
    /// Flat `[local_node][dim]` boxes; row 0 copies the root's known box.
    bbox_min: Vec<f32>,
    bbox_max: Vec<f32>,
    /// Levels in this subtree (1 = the root is already a leaf).
    depth: usize,
}

/// Index of the widest box side.
#[inline]
fn widest_dim(bbox_min: &[f32], bbox_max: &[f32]) -> usize {
    let mut split_dim = 0;
    let mut widest = f32::NEG_INFINITY;
    for (d, (&hi, &lo)) in bbox_max.iter().zip(bbox_min.iter()).enumerate() {
        let w = hi - lo;
        if w > widest {
            widest = w;
            split_dim = d;
        }
    }
    split_dim
}

/// Bounding box of the points listed in `perm`, written into `lo`/`hi`.
fn scan_bbox(points: &PointSet, perm: &[u32], lo: &mut [f32], hi: &mut [f32]) {
    lo.fill(f32::INFINITY);
    hi.fill(f32::NEG_INFINITY);
    for &p in perm {
        for (d, &c) in points.point(p as usize).iter().enumerate() {
            lo[d] = lo[d].min(c);
            hi[d] = hi[d].max(c);
        }
    }
}

/// Builds one subtree entirely within the calling lane.
///
/// `perm_sub` is the subtree's slice of the global permutation (positions
/// `gstart..gstart + perm_sub.len()`); `root_bbox` is the frontier node's
/// already-computed box. Node `start`/`end` values are **global** perm
/// positions. Deterministic: splits depend only on the point set, never on
/// lane scheduling.
fn build_subtree(
    points: &PointSet,
    perm_sub: &mut [u32],
    gstart: u32,
    leaf_size: usize,
    root_bbox: (&[f32], &[f32]),
) -> SubtreeNodes {
    let dim = points.dim();
    let mut nodes = SubtreeNodes {
        left: vec![INVALID],
        start: vec![gstart],
        end: vec![gstart + perm_sub.len() as u32],
        split_dim: vec![0],
        split_val: vec![0.0],
        bbox_min: root_bbox.0.to_vec(),
        bbox_max: root_bbox.1.to_vec(),
        depth: 1,
    };
    // Explicit DFS stack of (local id, depth); ids are assigned when the
    // children are appended, so processing order never changes the layout.
    let mut stack: Vec<(u32, usize)> = vec![(0, 1)];
    while let Some((lid, d)) = stack.pop() {
        nodes.depth = nodes.depth.max(d);
        let lid = lid as usize;
        let (s, e) = (nodes.start[lid] as usize, nodes.end[lid] as usize);
        if e - s <= leaf_size {
            continue;
        }
        let split_dim = widest_dim(
            &nodes.bbox_min[lid * dim..(lid + 1) * dim],
            &nodes.bbox_max[lid * dim..(lid + 1) * dim],
        );
        let mid = (e - s) / 2;
        let range = &mut perm_sub[s - gstart as usize..e - gstart as usize];
        range.select_nth_unstable_by(mid, |&a, &b| {
            let ca = points.point(a as usize)[split_dim];
            let cb = points.point(b as usize)[split_dim];
            ca.total_cmp(&cb).then(a.cmp(&b))
        });
        let median = points.point(range[mid] as usize)[split_dim];
        nodes.split_dim[lid] = split_dim as u32;
        nodes.split_val[lid] = median;
        let left = nodes.left.len() as u32;
        nodes.left[lid] = left;
        for (cs, ce) in [(s, s + mid), (s + mid, e)] {
            nodes.left.push(INVALID);
            nodes.start.push(cs as u32);
            nodes.end.push(ce as u32);
            nodes.split_dim.push(0);
            nodes.split_val.push(0.0);
            let row = nodes.bbox_min.len();
            nodes
                .bbox_min
                .extend(std::iter::repeat_n(f32::INFINITY, dim));
            nodes
                .bbox_max
                .extend(std::iter::repeat_n(f32::NEG_INFINITY, dim));
            scan_bbox(
                points,
                &perm_sub[cs - gstart as usize..ce - gstart as usize],
                &mut nodes.bbox_min[row..row + dim],
                &mut nodes.bbox_max[row..row + dim],
            );
        }
        stack.push((left, d + 1));
        stack.push((left + 1, d + 1));
    }
    nodes
}

/// Reusable bounded max-heap keeping the `k` smallest `(d2, index)` pairs.
///
/// Allocates its storage once (grown to the largest `k` seen); every
/// [`KdTree::knn_into`] call resets it in place, so batched query loops
/// perform zero heap allocations per query in the steady state.
pub struct KnnHeap {
    k: usize,
    items: Vec<(f32, u32)>,
}

impl KnnHeap {
    /// Creates a heap with capacity for `k` neighbours.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            items: Vec::with_capacity(k),
        }
    }

    /// Clears the heap and sets the neighbour budget (reserving only when
    /// `k` grows past any previously seen value).
    pub fn reset(&mut self, k: usize) {
        self.items.clear();
        self.items.reserve(k);
        self.k = k;
    }

    /// Number of neighbours currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no neighbour has been recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The current pruning bound: the k-th smallest distance seen so far,
    /// or `+∞` while fewer than `k` neighbours are held.
    #[inline(always)]
    pub fn worst(&self) -> f32 {
        if self.items.len() < self.k {
            f32::INFINITY
        } else {
            self.items[0].0
        }
    }

    /// The largest held distance — the k-th-nearest-neighbour squared
    /// distance once the heap is full (0.0 when empty).
    pub fn max_d2(&self) -> f32 {
        self.items.first().map_or(0.0, |x| x.0)
    }

    #[inline]
    fn push(&mut self, d2: f32, p: u32) {
        if self.items.len() < self.k {
            self.items.push((d2, p));
            // Sift up.
            let mut i = self.items.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if self.items[parent].0 < self.items[i].0 {
                    self.items.swap(parent, i);
                    i = parent;
                } else {
                    break;
                }
            }
        } else if d2 < self.items[0].0 {
            self.items[0] = (d2, p);
            // Sift down.
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut largest = i;
                if l < self.items.len() && self.items[l].0 > self.items[largest].0 {
                    largest = l;
                }
                if r < self.items.len() && self.items[r].0 > self.items[largest].0 {
                    largest = r;
                }
                if largest == i {
                    break;
                }
                self.items.swap(i, largest);
                i = largest;
            }
        }
    }

    /// The held neighbours in **heap order** (no particular order) —
    /// cheaper than [`KnnHeap::sorted`] when the caller only needs the
    /// membership, e.g. the Borůvka seed capture.
    pub fn items(&self) -> &[(f32, u32)] {
        &self.items
    }

    /// Sorts the held neighbours ascending by `(distance, index)` in place
    /// and returns them. The heap stays usable (the next `reset` clears it).
    pub fn sorted(&mut self) -> &[(f32, u32)] {
        self.items
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;
    use rand::prelude::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            (0..n * dim)
                .map(|_| rng.gen_range(-10.0..10.0f32))
                .collect(),
            dim,
        )
    }

    fn brute_knn(points: &PointSet, q: usize, k: usize) -> Vec<(f32, u32)> {
        let mut all: Vec<(f32, u32)> = (0..points.len())
            .filter(|&p| p != q)
            .map(|p| (points.dist2(q, p), p as u32))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force() {
        let ctx = ExecCtx::serial();
        for dim in [2usize, 3, 5] {
            let points = random_points(500, dim, 42 + dim as u64);
            let tree = KdTree::build(&ctx, &points);
            tree.check_invariants(&points).unwrap();
            for q in [0u32, 17, 250, 499] {
                for k in [1usize, 4, 16] {
                    let got = tree.knn(&points, q, k);
                    let expect = brute_knn(&points, q as usize, k);
                    let got_d: Vec<f32> = got.iter().map(|x| x.0).collect();
                    let exp_d: Vec<f32> = expect.iter().map(|x| x.0).collect();
                    assert_eq!(got_d, exp_d, "dim={dim} q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn knn_into_reuses_heap_across_queries_and_ks() {
        let ctx = ExecCtx::serial();
        let points = random_points(400, 3, 11);
        let tree = KdTree::build(&ctx, &points);
        let mut heap = KnnHeap::new(16);
        for (q, k) in [(0u32, 16usize), (7, 1), (399, 8), (100, 16)] {
            tree.knn_into(&points, q, k, &mut heap);
            assert_eq!(heap.len(), k);
            let expect = brute_knn(&points, q as usize, k);
            assert_eq!(heap.max_d2(), expect.last().unwrap().0, "q={q} k={k}");
            let got: Vec<f32> = heap.sorted().iter().map(|x| x.0).collect();
            let exp: Vec<f32> = expect.iter().map(|x| x.0).collect();
            assert_eq!(got, exp, "q={q} k={k}");
        }
    }

    #[test]
    fn knn_k_larger_than_n() {
        let ctx = ExecCtx::serial();
        let points = random_points(5, 2, 1);
        let tree = KdTree::build(&ctx, &points);
        let got = tree.knn(&points, 0, 10);
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn parallel_build_same_knn_results() {
        let points = random_points(2000, 3, 7);
        let serial = KdTree::build(&ExecCtx::serial(), &points);
        let parallel = KdTree::build(&ExecCtx::threads(), &points);
        serial.check_invariants(&points).unwrap();
        parallel.check_invariants(&points).unwrap();
        for q in [0u32, 999, 1999] {
            let a: Vec<f32> = serial.knn(&points, q, 8).iter().map(|x| x.0).collect();
            let b: Vec<f32> = parallel.knn(&points, q, 8).iter().map(|x| x.0).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn nearest_foreign_respects_components() {
        let ctx = ExecCtx::serial();
        let points = random_points(300, 2, 3);
        let tree = KdTree::build(&ctx, &points);
        // Components: evens vs odds.
        let comp: Vec<u32> = (0..300u32).map(|i| i % 2).collect();
        let purity = tree.component_purity(&comp);
        for q in [0u32, 7, 150] {
            let (d2, p) = tree
                .nearest_foreign(&points, &Euclidean, q, &comp, &purity, &[])
                .unwrap();
            assert_ne!(comp[p as usize], comp[q as usize]);
            // Brute force check.
            let expect = (0..300usize)
                .filter(|&x| comp[x] % 2 != comp[q as usize] % 2)
                .map(|x| (points.dist2(q as usize, x), x as u32))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .unwrap();
            assert_eq!((d2, p), expect, "q={q}");
        }
    }

    #[test]
    fn seeded_nearest_foreign_matches_unseeded() {
        let ctx = ExecCtx::serial();
        let points = random_points(500, 3, 13);
        let tree = KdTree::build(&ctx, &points);
        let comp: Vec<u32> = (0..500u32).map(|i| i % 3).collect();
        let purity = tree.component_purity(&comp);
        for q in 0..50u32 {
            let plain = tree.nearest_foreign(&points, &Euclidean, q, &comp, &purity, &[]);
            // Seed with an arbitrary valid foreign candidate (worse than
            // the optimum) and with the optimum itself.
            let any_foreign = (0..500u32)
                .find(|&p| comp[p as usize] != comp[q as usize])
                .unwrap();
            let weak_seed = Some((points.dist2(q as usize, any_foreign as usize), any_foreign));
            let seeded =
                tree.nearest_foreign_from(&points, &Euclidean, q, &comp, &purity, &[], weak_seed);
            assert_eq!(plain, seeded, "weak seed, q={q}");
            let tight =
                tree.nearest_foreign_from(&points, &Euclidean, q, &comp, &purity, &[], plain);
            assert_eq!(plain, tight, "tight seed, q={q}");
        }
    }

    #[test]
    fn purity_detects_uniform_subtrees() {
        let ctx = ExecCtx::serial();
        let points = random_points(100, 2, 9);
        let tree = KdTree::build(&ctx, &points);
        let comp_all_same = vec![3u32; 100];
        let mut purity = Vec::new();
        tree.component_purity_into(&ctx, &comp_all_same, &mut purity);
        assert!(purity.iter().all(|&p| p == 3));
        // Reuse the same buffer with a different labelling.
        let comp_mixed: Vec<u32> = (0..100u32).collect();
        tree.component_purity_into(&ctx, &comp_mixed, &mut purity);
        assert_eq!(purity[0], INVALID);
    }

    #[test]
    fn empty_and_single_point() {
        let ctx = ExecCtx::serial();
        let empty = PointSet::new(vec![], 2);
        let tree = KdTree::build(&ctx, &empty);
        assert!(tree.is_empty());
        tree.check_invariants(&empty).unwrap();
        let single = PointSet::new(vec![1.0, 2.0], 2);
        let tree = KdTree::build(&ctx, &single);
        assert_eq!(tree.knn(&single, 0, 3), vec![]);
        tree.check_invariants(&single).unwrap();
    }

    #[test]
    fn duplicate_points_build_bounded_depth() {
        // All-identical coordinates: the index tie-break must still produce
        // balanced median splits (depth stays logarithmic, not linear).
        let ctx = ExecCtx::serial();
        let points = PointSet::new(vec![1.0; 4096 * 2], 2);
        let tree = KdTree::build(&ctx, &points);
        tree.check_invariants(&points).unwrap();
        assert!(tree.depth() <= 9, "depth {}", tree.depth());
        let nn = tree.knn(&points, 0, 3);
        assert_eq!(nn.len(), 3);
        assert!(nn.iter().all(|&(d2, _)| d2 == 0.0));
    }
}
