//! Parallel Borůvka Euclidean MST (the paper's EMST substrate, \[39\]).
//!
//! Each round, every point finds its nearest neighbour in a *different*
//! component via the kd-tree ([`KdTree::nearest_foreign`]); every component
//! then keeps its minimum outgoing edge (atomic min on a packed
//! `(distance, point)` key — deterministic tie-break), the chosen edges are
//! added and the components merged. Components at least halve per round, so
//! there are ≤ ⌈log₂ n⌉ rounds.
//!
//! Works for any [`Metric`]; with [`crate::metric::MutualReachability`] it produces exactly
//! the MST HDBSCAN\* needs. Component purity of kd-subtrees prunes
//! intra-component traversal, the standard trick that keeps Borůvka rounds
//! near-linear. Further cuSLINK-style optimizations keep the rounds
//! allocation-free and tightly bounded:
//!
//! * the purity / candidate / root buffers are reused across rounds, and
//!   each query is **warm-started** with the previous round's winner
//!   (nearest-foreign distances only grow as components merge, so a
//!   still-foreign previous winner is a valid upper bound that prunes most
//!   of the traversal immediately);
//! * queries run in **kd-tree (spatial) order**, so consecutive queries in
//!   a lane's chunk usually belong to the same component — the component's
//!   best-edge bound is loaded once per same-component run and the run's
//!   winner is merged back with a single lock-free atomic-min, instead of
//!   one atomic RMW per point;
//! * **boundary-point filtering**: every point carries a monotone lower
//!   bound on its nearest-foreign distance (any earlier round's result —
//!   foreign sets only shrink, so the bound stays valid). An interior
//!   point whose bound lies strictly above its component's current best
//!   edge can neither win nor tie and skips its traversal entirely; later
//!   rounds therefore query mostly the points near component boundaries.

use std::sync::atomic::Ordering;

use pandora_exec::atomic::{as_atomic_u64, f32_to_ordered_u32, ordered_u32_to_f32};
use pandora_exec::trace::KernelKind;
use pandora_exec::{ExecCtx, ScratchPool, UnsafeSlice, DEFAULT_GRAIN};

use pandora_core::Edge;

use crate::kdtree::{ForeignSearch, KdTree};
use crate::knn::KnnRows;
use crate::metric::Metric;
use crate::point::PointSet;

/// Packs `(squared distance, point)` so numeric `min` picks the smallest
/// distance, ties broken by smaller point index.
#[inline(always)]
fn pack_candidate(d2: f32, p: u32) -> u64 {
    ((f32_to_ordered_u32(d2) as u64) << 32) | p as u64
}

/// A round enters the "endgame" once this few components remain — the
/// regime where components are huge, every stale per-point bound fails,
/// and nearly all `n` points re-search the tree to certify a handful of
/// inter-component edges.
const ENDGAME_SNAPSHOT_MAX: usize = 64;

/// Cross-run endgame cache: transfers late-round nearest-foreign lower
/// bounds between Borůvka runs **over the same point set**.
///
/// The transfer is exact, resting on two monotonicities:
///
/// 1. the mutual-reachability metric is pointwise non-decreasing in
///    `minPts` (core distances only grow), so a distance bound proved
///    under `minPts = m` holds under any `m' ≥ m`;
/// 2. for any point `q` whose snapshot component is **contained in** its
///    current component, everything currently foreign to `q` was foreign
///    at the snapshot too, so `q`'s nearest-foreign minimum can only have
///    grown since the bound was proved.
///
/// Containment is checked per snapshot component in one O(n) pass (all
/// members must share a current component); different runs' intermediate
/// partitions rarely nest globally, but component-wise most of them do.
/// Applicable points' bounds flow into the boundary filter and retire the
/// component-interior points that dominate endgame rounds, so a
/// multi-`minPts` sweep (ascending) pays the endgame search volume once,
/// not once per member. Purely an optimization: skips are strictly
/// conservative, so results stay bit-identical.
#[derive(Debug, Default)]
struct EndgameSnapshot {
    /// `minPts` rank the bounds were proved under.
    min_pts: usize,
    /// Component label per point at the snapshot round.
    comp: Vec<u32>,
    /// Per-point nearest-foreign squared-distance lower bounds, valid for
    /// (`min_pts`, `comp`).
    lower: Vec<f32>,
}

/// See the type-level docs above. A run captures one snapshot per endgame
/// round (components at least halve each round, so at most ~log₂ of the
/// 64-component endgame threshold of them) into a staging set, promoted
/// wholesale at run end — double-buffered so the snapshots a run *applies*
/// always come from an earlier run. Keeping every granularity matters:
/// coarse snapshots carry the largest bounds but their components conflict
/// most often, so each of the next run's endgame rounds is usually served
/// by a different member of the set.
#[derive(Debug, Default)]
pub struct EndgameCache {
    /// Applied by the current run: the previous run's snapshots.
    active: Vec<EndgameSnapshot>,
    active_len: usize,
    /// Captured by the current run; promoted to `active` at run end.
    staging: Vec<EndgameSnapshot>,
    staging_len: usize,
    /// Scratch for the containment check (snapshot root → current root).
    map: Vec<u32>,
}

impl EndgameCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all stored snapshots (e.g. when the point set changes).
    pub fn clear(&mut self) {
        self.active_len = 0;
        self.staging_len = 0;
    }

    /// Whether a previous run's snapshots are available to apply.
    pub fn is_warm(&self) -> bool {
        self.active_len > 0
    }

    /// Captures the entering state of a round: `lower` entries are valid
    /// bounds for partition `comp` under metric rank `min_pts`. Snapshot
    /// storage is recycled across runs.
    fn capture(&mut self, min_pts: usize, comp: &[u32], lower: &[f32]) {
        if self.staging.len() == self.staging_len {
            self.staging.push(EndgameSnapshot::default());
        }
        let snap = &mut self.staging[self.staging_len];
        self.staging_len += 1;
        snap.comp.clear();
        snap.comp.extend_from_slice(comp);
        snap.lower.clear();
        snap.lower.extend_from_slice(lower);
        snap.min_pts = min_pts;
    }

    /// Makes this run's captured snapshots the set the next run applies.
    fn promote(&mut self) {
        if self.staging_len > 0 {
            std::mem::swap(&mut self.active, &mut self.staging);
            self.active_len = self.staging_len;
            self.staging_len = 0;
        }
    }

    /// Merges the previous run's snapshot bounds into `lower` for every
    /// point whose transfer provably applies: same point set, `min_pts` at
    /// least the snapshot's, and the point's snapshot component contained
    /// in its current component. Returns whether any snapshot was
    /// considered.
    fn apply(&mut self, min_pts: usize, comp: &[u32], lower: &mut [f32]) -> bool {
        const UNSEEN: u32 = u32::MAX;
        const CONFLICT: u32 = u32::MAX - 1;
        let n = comp.len();
        let mut any = false;
        for snap in &self.active[..self.active_len] {
            if snap.min_pts > min_pts || snap.comp.len() != n {
                continue;
            }
            any = true;
            // Pass 1: map every snapshot component to the single current
            // component holding it, or CONFLICT if its members split
            // across several (those points keep their own bounds).
            self.map.resize(n, UNSEEN);
            self.map.fill(UNSEEN);
            for (&snap_root, &cur) in snap.comp.iter().zip(comp) {
                let slot = &mut self.map[snap_root as usize];
                match *slot {
                    UNSEEN => *slot = cur,
                    CONFLICT => {}
                    held if held != cur => *slot = CONFLICT,
                    _ => {}
                }
            }
            // Pass 2: transfer bounds for the contained components.
            for ((dst, &src), &snap_root) in lower.iter_mut().zip(&snap.lower).zip(&snap.comp) {
                if self.map[snap_root as usize] != CONFLICT && src > *dst {
                    *dst = src;
                }
            }
        }
        any
    }
}

/// Optional configuration of a [`boruvka_mst_with`] run, bundled so the
/// entry point reads as *what extras are engaged* rather than a positional
/// argument soup. [`Default`] is the bare run: no seeds, no rows, no
/// pruning bounds, no cross-run cache.
///
/// Every extra is strictly conservative — engaging any subset changes the
/// work performed, never the returned MST.
#[derive(Debug, Default)]
pub struct BoruvkaExtras<'a> {
    /// Exact per-point first-round candidates (`(_, u32::MAX)` = none);
    /// see [`boruvka_mst_seeded`].
    pub seeds: Option<&'a [(f32, u32)]>,
    /// Sorted k-NN rows driving the first-round row screen and the
    /// boundary filter (see [`KnnRows`]).
    pub rows: Option<KnnRows<'a>>,
    /// Per-tree-node minimum squared core distances for mutual-reachability
    /// subtree pruning ([`KdTree::min_core2_into`]); empty = no bounds.
    /// Per-request data: the tree itself stays immutable and shareable.
    pub node_core2: &'a [f32],
    /// Cross-run endgame cache plus the metric's `minPts` rank (1 for
    /// plain Euclidean); see [`EndgameCache`].
    pub cache: Option<(&'a mut EndgameCache, usize)>,
}

/// Computes the MST of `points` under `metric` using parallel Borůvka.
///
/// The `tree` must index the same point set. Pass per-node core minima for
/// mutual-reachability subtree pruning via [`BoruvkaExtras::node_core2`]
/// on the [`boruvka_mst_with`] entry point — this bare convenience runs
/// without pruning bounds (identical edges, more traversal). Returns the
/// `n-1` edges with weights = `sqrt` of the metric's squared distance.
///
/// # Panics
///
/// Panics if a round adds no edge, which cannot happen for finite metric
/// distances ([`PointSet::new`] rejects non-finite coordinates) — the check
/// is unconditional so corrupt distances fail loudly instead of spinning.
pub fn boruvka_mst<M: Metric>(
    ctx: &ExecCtx,
    points: &PointSet,
    tree: &KdTree,
    metric: &M,
) -> Vec<Edge> {
    let scratch = ScratchPool::new();
    boruvka_mst_with(
        ctx,
        points,
        tree,
        metric,
        BoruvkaExtras::default(),
        &scratch,
    )
}

/// [`boruvka_mst`] with optional per-point first-round candidates and
/// per-node core-minimum pruning bounds.
///
/// Each seed is an **exact** metric distance to a specific other point
/// (e.g. the cheapest mutual-reachability neighbour captured by the
/// core-distance k-NN pass) or `(_, u32::MAX)` for "no candidate". Seeds
/// warm-start the first round exactly like later rounds are warm-started
/// by their predecessor, pruning the all-nearest-neighbour round that
/// otherwise dominates; the result is identical with or without seeds.
///
/// # Panics
///
/// As [`boruvka_mst`]; additionally if `seeds.len() != points.len()`.
pub fn boruvka_mst_seeded<M: Metric>(
    ctx: &ExecCtx,
    points: &PointSet,
    tree: &KdTree,
    metric: &M,
    seeds: Option<Vec<(f32, u32)>>,
    node_core2: &[f32],
) -> Vec<Edge> {
    let scratch = ScratchPool::new();
    boruvka_mst_with(
        ctx,
        points,
        tree,
        metric,
        BoruvkaExtras {
            seeds: seeds.as_deref(),
            node_core2,
            ..Default::default()
        },
        &scratch,
    )
}

/// The full-configuration Borůvka entry point: [`BoruvkaExtras`] (seeds,
/// sorted k-NN rows, subtree pruning bounds, endgame cache) plus a
/// caller-owned [`ScratchPool`] all round-persistent buffers are drawn
/// from (and returned to), so a long-lived workspace pays the buffer
/// allocations once per *dataset*, not once per MST.
///
/// The `rows` screen (see [`KnnRows`]) resolves most first-round queries
/// without touching the tree: a point whose cheapest foreign row member
/// sits strictly below its row's k-th distance has provably found its exact
/// nearest foreign neighbour, and a point with no such member gains the
/// k-th distance as a boundary-filter lower bound. The `cache` pair
/// `(endgame cache, minPts rank)` carries late-round bounds across runs
/// (see [`EndgameCache`]); pass the metric's `minPts` (1 for plain
/// Euclidean). Every optimization is strictly conservative, so the result
/// is **bit-identical** to the bare [`boruvka_mst`] run: winners are exact
/// and the tie-breaks are unchanged.
///
/// # Panics
///
/// As [`boruvka_mst`]; additionally if a provided `seeds` or `rows` shape
/// does not match `points.len()`.
pub fn boruvka_mst_with<M: Metric>(
    ctx: &ExecCtx,
    points: &PointSet,
    tree: &KdTree,
    metric: &M,
    extras: BoruvkaExtras<'_>,
    scratch: &ScratchPool,
) -> Vec<Edge> {
    let BoruvkaExtras {
        seeds,
        rows,
        node_core2,
        mut cache,
    } = extras;
    let n = points.len();
    if let Some(seeds) = seeds {
        // Checked even for degenerate inputs: a mis-sized seeds array is a
        // caller bug that should not go unnoticed until n grows past 1.
        assert_eq!(seeds.len(), n, "one seed per point");
    }
    if let Some(rows) = &rows {
        assert_eq!(rows.d2.len(), n * rows.k, "one sorted k-NN row per point");
        assert_eq!(rows.idx.len(), n * rows.k, "one sorted k-NN row per point");
    }
    if n <= 1 {
        return Vec::new();
    }
    let dsu = scratch.take_dsu(n);
    let mut comp = scratch.take_u32();
    comp.extend(0..n as u32);
    let mut n_components = n;
    let mut edges: Vec<Edge> = Vec::with_capacity(n - 1);
    // Round-persistent buffers (drawn from the pool, reused every round).
    let mut purity = scratch.take_u32();
    let mut roots = scratch.take_u32();
    // Per-component best outgoing candidate, indexed by component root.
    let mut candidate = scratch.take_u64();
    candidate.resize(n, u64::MAX);
    // Per-point best known foreign candidate: an exact metric distance to
    // the witness point (`u32::MAX` = none yet). Carried across rounds as
    // the warm-start seed; optionally pre-filled by the caller.
    let mut best_of = scratch.take_pairs();
    match seeds {
        Some(seeds) => best_of.extend_from_slice(seeds),
        None => best_of.resize(n, (f32::INFINITY, u32::MAX)),
    }
    // Per-point monotone **lower** bound on the nearest-foreign squared
    // distance (a candidate is an upper bound, so the two are distinct
    // arrays). Foreign sets only shrink as components merge, so any
    // round's exact result stays a valid lower bound in every later round;
    // this drives the boundary-point filter.
    let mut lower = scratch.take_f32();
    lower.resize(n, 0.0);

    while n_components > 1 {
        tree.component_purity_into(ctx, &comp, &mut purity);

        // Cross-run endgame transfer: once few components remain, try to
        // import the previous run's late-round bounds (exact when the
        // metric rank grew and the partition coarsened — see
        // [`EndgameCache::apply`]). This is what keeps a sweep from paying
        // the endgame search volume once per member.
        if n_components <= ENDGAME_SNAPSHOT_MAX {
            if let Some((cache, rank)) = cache.as_mut() {
                cache.apply(*rank, &comp, &mut lower);
            }
        }

        // Reset candidates (only roots are read, clearing all is simpler).
        {
            let cand_view = UnsafeSlice::new(&mut candidate);
            ctx.for_each_chunk(n, DEFAULT_GRAIN * 4, |range| {
                for i in range {
                    // SAFETY: disjoint writes.
                    unsafe { cand_view.write(i, u64::MAX) };
                }
            });
        }

        // Bound pre-pass: re-propose every still-valid witness from earlier
        // rounds (exact distances to still-foreign points), so component
        // bounds are tight *before* any traversal starts. Without this the
        // first points visited each round see an infinite bound and search
        // even when deep in a component's interior; with it the filter
        // below engages immediately. O(n) scan, no tree work.
        {
            let cand_view = as_atomic_u64(&mut candidate);
            let (best_ref, comp_ref) = (&best_of, &comp);
            let perm = tree.perm();
            ctx.for_each_chunk(n, DEFAULT_GRAIN, |range| {
                let mut run_root = usize::MAX;
                let mut run_best = u64::MAX;
                for i in range {
                    let q = perm[i];
                    let root = comp_ref[q as usize] as usize;
                    if root != run_root {
                        if run_best != u64::MAX {
                            cand_view[run_root].fetch_min(run_best, Ordering::Relaxed);
                        }
                        run_root = root;
                        run_best = u64::MAX;
                    }
                    let (d2, p) = best_ref[q as usize];
                    if p != u32::MAX && comp_ref[p as usize] as usize != root {
                        run_best = run_best.min(pack_candidate(d2, q));
                    }
                }
                if run_best != u64::MAX {
                    cand_view[run_root].fetch_min(run_best, Ordering::Relaxed);
                }
            });
        }

        // Every point proposes its nearest foreign neighbour to its
        // component (paper's "find minimum outgoing edge" step). Lanes walk
        // the points in kd-tree order: spatially coherent, so consecutive
        // queries usually share a component and the per-lane run state
        // below replaces most atomic traffic.
        {
            let cand_view = as_atomic_u64(&mut candidate);
            let best_view = UnsafeSlice::new(best_of.as_mut_slice());
            let lower_view = UnsafeSlice::new(lower.as_mut_slice());
            let comp_ref = &comp;
            let purity_ref = &purity;
            let rows_opt = rows;
            let perm = tree.perm();
            ctx.for_each_chunk_traced(n, 256, KernelKind::TreeTraverse, (n as u64) * 64, |range| {
                // Run state for the current same-component stretch: the best
                // proposal found by this lane (flushed with one atomic min
                // when the run ends) and the tightest known component bound.
                let mut run_root = usize::MAX;
                let mut run_best = u64::MAX;
                let mut run_bound = f32::INFINITY;
                for i in range {
                    let q = perm[i];
                    let root = comp_ref[q as usize] as usize;
                    if root != run_root {
                        if run_best != u64::MAX {
                            cand_view[run_root].fetch_min(run_best, Ordering::Relaxed);
                        }
                        run_root = root;
                        run_best = u64::MAX;
                        let packed = cand_view[root].load(Ordering::Relaxed);
                        run_bound = if packed == u64::MAX {
                            f32::INFINITY
                        } else {
                            ordered_u32_to_f32((packed >> 32) as u32)
                        };
                    }
                    // SAFETY: perm is a permutation, so slots q of both
                    // per-point arrays are read and written by exactly this
                    // task.
                    // Boundary-point filter: `lower[q]` lower-bounds q's
                    // nearest-foreign distance and `run_bound` is an edge
                    // some component member already achieved, so a point
                    // strictly above the bound can neither win nor tie the
                    // component minimum — skip its traversal entirely.
                    // (Ties must still propose: smaller index wins.)
                    if unsafe { lower_view.read(q as usize) } > run_bound {
                        continue;
                    }
                    // Row screen: when sorted k-NN rows are attached, try to
                    // resolve the query from the row alone. A foreign member
                    // strictly below the row's k-th distance is the *exact*
                    // nearest foreign point (non-members all sit at or past
                    // the k-th distance, and the metric dominates the
                    // Euclidean part), so the traversal is skipped entirely;
                    // otherwise the k-th distance joins the boundary filter
                    // as a monotone lower bound.
                    let mut row_seed: Option<(f32, u32)> = None;
                    if let Some(rows) = &rows_opt {
                        let base = q as usize * rows.k;
                        let full = rows.idx[base + rows.k - 1] != u32::MAX;
                        let mut best = (f32::INFINITY, u32::MAX);
                        for j in 0..rows.k {
                            let p = rows.idx[base + j];
                            if p == u32::MAX {
                                break;
                            }
                            let e2 = rows.d2[base + j];
                            if e2 > best.0 {
                                // Ascending rows: every later member's metric
                                // distance is ≥ its Euclidean part > best —
                                // it can neither win nor tie.
                                break;
                            }
                            if comp_ref[p as usize] as usize != root {
                                let d2 = metric.refine_euclid2(e2, q, p);
                                if d2 < best.0 || (d2 == best.0 && p < best.1) {
                                    best = (d2, p);
                                }
                            }
                        }
                        let kth = rows.d2[base + rows.k - 1];
                        if best.1 != u32::MAX && (!full || best.0 < kth) {
                            // Exact winner from the row — same handling as a
                            // Found traversal result.
                            // SAFETY: perm is a permutation; slots q of both
                            // per-point arrays are owned by this task.
                            unsafe {
                                best_view.write(q as usize, best);
                                lower_view.write(q as usize, best.0);
                            }
                            run_best = run_best.min(pack_candidate(best.0, q));
                            run_bound = run_bound.min(best.0);
                            continue;
                        }
                        if full {
                            // No foreign member strictly below the k-th
                            // distance ⇒ the nearest foreign point is at
                            // least that far away, this round and every
                            // later one.
                            // SAFETY: as above.
                            let old = unsafe { lower_view.read(q as usize) };
                            if kth > old {
                                unsafe { lower_view.write(q as usize, kth) };
                            }
                            if old.max(kth) > run_bound {
                                continue;
                            }
                            if best.1 != u32::MAX {
                                row_seed = Some(best);
                            }
                        } else {
                            // The row covers every other point and none is
                            // foreign: no foreign point exists for q at all.
                            // SAFETY: as above.
                            unsafe { lower_view.write(q as usize, f32::INFINITY) };
                            continue;
                        }
                    }
                    let prev = unsafe { best_view.read(q as usize) };
                    // Warm start: the previous round's winner is a valid
                    // candidate iff its component is still foreign.
                    let mut seed = (prev.1 != u32::MAX
                        && comp_ref[prev.1 as usize] != comp_ref[q as usize])
                        .then_some(prev);
                    if let Some(rs) = row_seed {
                        // The row's best foreign member is an exact candidate
                        // too; keep whichever prunes harder.
                        seed = match seed {
                            Some(s) if s.0 < rs.0 || (s.0 == rs.0 && s.1 < rs.1) => Some(s),
                            _ => Some(rs),
                        };
                    }
                    // Component bound: only the minimum outgoing edge per
                    // component survives, so the component's current best
                    // candidate is a valid bound-only seed — members that
                    // cannot beat it prune their whole search and stay
                    // silent. The surviving (distance, proposer) minimum is
                    // unchanged: ties at the bound are still reported, and
                    // anything above it could never win the atomic min.
                    if run_bound.is_finite() && seed.is_none_or(|(d2, _)| run_bound < d2) {
                        seed = Some((run_bound, u32::MAX));
                    }
                    let found = tree.nearest_foreign_bounded(
                        points, metric, q, comp_ref, purity_ref, node_core2, seed,
                    );
                    match found {
                        ForeignSearch::Found(d2, p) => {
                            // The search returned q's exact nearest-foreign
                            // distance, which is both the next candidate and
                            // the tightest possible lower bound.
                            // SAFETY: as above, slots q are owned here.
                            unsafe {
                                best_view.write(q as usize, (d2, p));
                                lower_view.write(q as usize, d2);
                            }
                            run_best = run_best.min(pack_candidate(d2, q));
                            run_bound = run_bound.min(d2);
                        }
                        ForeignSearch::Empty(margin) => {
                            // Only a bound-only-seeded search can come up
                            // empty: everything foreign provably sits at
                            // least `margin` (> the bound) away, so record
                            // it as q's lower bound for later rounds and
                            // keep it monotone (the previous witness, if
                            // any, stays valid).
                            // SAFETY: as above.
                            unsafe {
                                let old = lower_view.read(q as usize);
                                lower_view.write(q as usize, old.max(margin));
                            }
                        }
                    }
                }
                if run_best != u64::MAX {
                    cand_view[run_root].fetch_min(run_best, Ordering::Relaxed);
                }
            });
        }

        // Snapshot the round we just certified (entering partition +
        // refreshed bounds) while components are few; the last qualifying
        // round — the coarsest partition still above one component — wins.
        if n_components <= ENDGAME_SNAPSHOT_MAX {
            if let Some((cache, rank)) = cache.as_mut() {
                cache.capture(*rank, &comp, &lower);
            }
        }

        // Collect winning edges; deduplicate reciprocal pairs with a
        // sequential pass over components (O(#components)).
        let mut added = 0usize;
        {
            roots.clear();
            roots.extend((0..n as u32).filter(|&v| comp[v as usize] == v));
            ctx.record(
                KernelKind::DsuUnion,
                roots.len() as u64,
                (roots.len() as u64) * 24,
            );
            for &root in &roots {
                let packed = candidate[root as usize];
                if packed == u64::MAX {
                    continue;
                }
                let q = packed as u32;
                let (d2, p) = best_of[q as usize];
                debug_assert_ne!(p, u32::MAX);
                // Reciprocal edges (a↔b) must be added once: accept only if
                // the DSU still separates the endpoints.
                let ra = dsu.find(q);
                let rb = dsu.find(p);
                if ra != rb {
                    dsu.union(ra, rb);
                    edges.push(Edge::new(q, p, d2.sqrt()));
                    added += 1;
                }
            }
        }
        // Unconditional liveness check: every round must merge something.
        // With finite coordinates this always holds; a violation means the
        // candidate packing saw NaN/∞ distances, and spinning forever in
        // release builds would be far worse than this panic.
        assert!(
            added > 0,
            "boruvka_mst made no progress with {n_components} components left; \
             the input metric produced non-finite or inconsistent distances"
        );
        n_components -= added;

        // Refresh component labels.
        {
            let comp_view = UnsafeSlice::new(&mut comp);
            let dsu_ref = &dsu;
            ctx.for_each_chunk_traced(
                n,
                DEFAULT_GRAIN,
                KernelKind::DsuFind,
                (n as u64) * 8,
                |range| {
                    for v in range {
                        // SAFETY: disjoint writes.
                        unsafe { comp_view.write(v, dsu_ref.find(v as u32)) };
                    }
                },
            );
        }
    }
    if let Some((cache, _)) = cache.as_mut() {
        cache.promote();
    }
    scratch.put_dsu(dsu);
    scratch.put_u32(comp);
    scratch.put_u32(purity);
    scratch.put_u32(roots);
    scratch.put_u64(candidate);
    scratch.put_pairs(best_of);
    scratch.put_f32(lower);
    debug_assert_eq!(edges.len(), n - 1);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::total_weight;
    use crate::metric::{Euclidean, MutualReachability};
    use crate::prim::prim_mst;
    use rand::prelude::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            (0..n * dim).map(|_| rng.gen_range(-5.0..5.0f32)).collect(),
            dim,
        )
    }

    #[test]
    fn matches_prim_total_weight_euclidean() {
        let ctx = ExecCtx::serial();
        for (n, dim, seed) in [(50usize, 2usize, 1u64), (200, 3, 2), (300, 5, 3)] {
            let points = random_points(n, dim, seed);
            let tree = KdTree::build(&ctx, &points);
            let got = boruvka_mst(&ctx, &points, &tree, &Euclidean);
            assert_eq!(got.len(), n - 1);
            let expect = prim_mst(&points, &Euclidean);
            let wa = total_weight(&got);
            let wb = total_weight(&expect);
            assert!(
                (wa - wb).abs() < 1e-3 * wb.max(1.0),
                "n={n} dim={dim}: {wa} vs {wb}"
            );
        }
    }

    #[test]
    fn matches_prim_with_mutual_reachability() {
        let ctx = ExecCtx::serial();
        let points = random_points(150, 2, 9);
        // Core distances: squared distance to the 4th neighbour.
        let tree0 = KdTree::build(&ctx, &points);
        let core2: Vec<f32> = (0..points.len())
            .map(|q| tree0.knn(&points, q as u32, 4)[3].0)
            .collect();
        let metric = MutualReachability { core2: &core2 };
        let tree = KdTree::build(&ctx, &points);
        let mut node_core2 = Vec::new();
        tree.min_core2_into(&core2, &mut node_core2);
        let scratch = ScratchPool::new();
        let got = boruvka_mst_with(
            &ctx,
            &points,
            &tree,
            &metric,
            BoruvkaExtras {
                node_core2: &node_core2,
                ..Default::default()
            },
            &scratch,
        );
        let expect = prim_mst(&points, &metric);
        let wa = total_weight(&got);
        let wb = total_weight(&expect);
        assert!((wa - wb).abs() < 1e-3 * wb.max(1.0), "{wa} vs {wb}");
    }

    #[test]
    fn parallel_equals_serial() {
        let points = random_points(500, 2, 17);
        let tree_s = KdTree::build(&ExecCtx::serial(), &points);
        let tree_p = KdTree::build(&ExecCtx::threads(), &points);
        let a = boruvka_mst(&ExecCtx::serial(), &points, &tree_s, &Euclidean);
        let b = boruvka_mst(&ExecCtx::threads(), &points, &tree_p, &Euclidean);
        assert!((total_weight(&a) - total_weight(&b)).abs() < 1e-3);
    }

    #[test]
    fn tiny_inputs() {
        let ctx = ExecCtx::serial();
        let one = PointSet::new(vec![0.0, 0.0], 2);
        let tree = KdTree::build(&ctx, &one);
        assert!(boruvka_mst(&ctx, &one, &tree, &Euclidean).is_empty());
        let two = PointSet::new(vec![0.0, 0.0, 1.0, 0.0], 2);
        let tree = KdTree::build(&ctx, &two);
        let edges = boruvka_mst(&ctx, &two, &tree, &Euclidean);
        assert_eq!(edges.len(), 1);
        assert!((edges[0].w - 1.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_points_still_form_tree() {
        let ctx = ExecCtx::serial();
        // 10 identical points: zero-weight tree.
        let points = PointSet::new(vec![1.0; 20], 2);
        let tree = KdTree::build(&ctx, &points);
        let edges = boruvka_mst(&ctx, &points, &tree, &Euclidean);
        assert_eq!(edges.len(), 9);
        assert!(edges.iter().all(|e| e.w == 0.0));
    }
}
