//! Parallel Borůvka Euclidean MST (the paper's EMST substrate, \[39\]).
//!
//! Each round, every point finds its nearest neighbour in a *different*
//! component via the kd-tree ([`KdTree::nearest_foreign`]); every component
//! then keeps its minimum outgoing edge (atomic min on a packed
//! `(distance, point)` key — deterministic tie-break), the chosen edges are
//! added and the components merged. Components at least halve per round, so
//! there are ≤ ⌈log₂ n⌉ rounds.
//!
//! Works for any [`Metric`]; with [`crate::metric::MutualReachability`] it produces exactly
//! the MST HDBSCAN\* needs. Component purity of kd-subtrees prunes
//! intra-component traversal, the standard trick that keeps Borůvka rounds
//! near-linear. Two further cuSLINK-style optimizations keep the rounds
//! allocation-free and tightly bounded: the purity / candidate / root
//! buffers are reused across rounds, and each query is **warm-started**
//! with the previous round's winner (nearest-foreign distances only grow
//! as components merge, so a still-foreign previous winner is a valid
//! upper bound that prunes most of the traversal immediately).

use std::sync::atomic::Ordering;

use pandora_exec::atomic::{as_atomic_u64, f32_to_ordered_u32, ordered_u32_to_f32};
use pandora_exec::dsu::AtomicDsu;
use pandora_exec::trace::KernelKind;
use pandora_exec::{ExecCtx, UnsafeSlice, DEFAULT_GRAIN};

use pandora_core::Edge;

use crate::kdtree::KdTree;
use crate::metric::Metric;
use crate::point::PointSet;

/// Packs `(squared distance, point)` so numeric `min` picks the smallest
/// distance, ties broken by smaller point index.
#[inline(always)]
fn pack_candidate(d2: f32, p: u32) -> u64 {
    ((f32_to_ordered_u32(d2) as u64) << 32) | p as u64
}

/// Computes the MST of `points` under `metric` using parallel Borůvka.
///
/// The `tree` must index the same point set (and must carry core distances
/// via [`KdTree::attach_core2`] when `metric` is mutual reachability).
/// Returns the `n-1` edges with weights = `sqrt` of the metric's squared
/// distance.
///
/// # Panics
///
/// Panics if a round adds no edge, which cannot happen for finite metric
/// distances ([`PointSet::new`] rejects non-finite coordinates) — the check
/// is unconditional so corrupt distances fail loudly instead of spinning.
pub fn boruvka_mst<M: Metric>(
    ctx: &ExecCtx,
    points: &PointSet,
    tree: &KdTree,
    metric: &M,
) -> Vec<Edge> {
    let n = points.len();
    if n <= 1 {
        return Vec::new();
    }
    let dsu = AtomicDsu::new(n);
    let mut comp: Vec<u32> = (0..n as u32).collect();
    let mut n_components = n;
    let mut edges: Vec<Edge> = Vec::with_capacity(n - 1);
    // Round-persistent buffers (allocated once, reused every round).
    let mut purity: Vec<u32> = Vec::new();
    let mut roots: Vec<u32> = Vec::with_capacity(n);
    // Per-component best outgoing candidate, indexed by component root.
    let mut candidate = vec![u64::MAX; n];
    // Nearest foreign point per point; carried across rounds as the next
    // round's warm-start seed.
    let mut best_of = vec![(f32::INFINITY, u32::MAX); n];
    let mut first_round = true;

    while n_components > 1 {
        tree.component_purity_into(&comp, &mut purity);

        // Reset candidates (only roots are read, clearing all is simpler).
        {
            let cand_view = UnsafeSlice::new(&mut candidate);
            ctx.for_each_chunk(n, DEFAULT_GRAIN * 4, |range| {
                for i in range {
                    // SAFETY: disjoint writes.
                    unsafe { cand_view.write(i, u64::MAX) };
                }
            });
        }

        // Every point proposes its nearest foreign neighbour to its
        // component (paper's "find minimum outgoing edge" step).
        {
            let cand_view = as_atomic_u64(&mut candidate);
            let best_view = UnsafeSlice::new(&mut best_of);
            let comp_ref = &comp;
            let purity_ref = &purity;
            let seed_from_last = !first_round;
            ctx.for_each_chunk_traced(n, 256, KernelKind::TreeTraverse, (n as u64) * 64, |range| {
                for q in range {
                    // Warm start: the previous round's winner is a valid
                    // candidate iff its component is still foreign.
                    // SAFETY: slot q is only accessed by this task.
                    let prev = unsafe { best_view.read(q) };
                    let mut seed = (seed_from_last
                        && prev.1 != u32::MAX
                        && comp_ref[prev.1 as usize] != comp_ref[q])
                        .then_some(prev);
                    // Component bound: only the minimum outgoing edge per
                    // component survives, so the component's current best
                    // candidate is a valid bound-only seed — members that
                    // cannot beat it prune their whole search and stay
                    // silent. The surviving (distance, proposer) minimum is
                    // unchanged: ties at the bound are still reported, and
                    // anything above it could never win the atomic min.
                    let root = comp_ref[q] as usize;
                    let packed = cand_view[root].load(Ordering::Relaxed);
                    if packed != u64::MAX {
                        let bound = ordered_u32_to_f32((packed >> 32) as u32);
                        if seed.is_none_or(|(d2, _)| bound < d2) {
                            seed = Some((bound, u32::MAX));
                        }
                    }
                    let found = tree
                        .nearest_foreign_from(points, metric, q as u32, comp_ref, purity_ref, seed);
                    if let Some((d2, p)) = found {
                        // SAFETY: slot q written only by this task.
                        unsafe { best_view.write(q, (d2, p)) };
                        cand_view[root].fetch_min(pack_candidate(d2, q as u32), Ordering::Relaxed);
                    }
                }
            });
        }
        first_round = false;

        // Collect winning edges; deduplicate reciprocal pairs with a
        // sequential pass over components (O(#components)).
        let mut added = 0usize;
        {
            roots.clear();
            roots.extend((0..n as u32).filter(|&v| comp[v as usize] == v));
            ctx.record(
                KernelKind::DsuUnion,
                roots.len() as u64,
                (roots.len() as u64) * 24,
            );
            for &root in &roots {
                let packed = candidate[root as usize];
                if packed == u64::MAX {
                    continue;
                }
                let q = packed as u32;
                let (d2, p) = best_of[q as usize];
                debug_assert_ne!(p, u32::MAX);
                // Reciprocal edges (a↔b) must be added once: accept only if
                // the DSU still separates the endpoints.
                let ra = dsu.find(q);
                let rb = dsu.find(p);
                if ra != rb {
                    dsu.union(ra, rb);
                    edges.push(Edge::new(q, p, d2.sqrt()));
                    added += 1;
                }
            }
        }
        // Unconditional liveness check: every round must merge something.
        // With finite coordinates this always holds; a violation means the
        // candidate packing saw NaN/∞ distances, and spinning forever in
        // release builds would be far worse than this panic.
        assert!(
            added > 0,
            "boruvka_mst made no progress with {n_components} components left; \
             the input metric produced non-finite or inconsistent distances"
        );
        n_components -= added;

        // Refresh component labels.
        {
            let comp_view = UnsafeSlice::new(&mut comp);
            let dsu_ref = &dsu;
            ctx.for_each_chunk_traced(
                n,
                DEFAULT_GRAIN,
                KernelKind::DsuFind,
                (n as u64) * 8,
                |range| {
                    for v in range {
                        // SAFETY: disjoint writes.
                        unsafe { comp_view.write(v, dsu_ref.find(v as u32)) };
                    }
                },
            );
        }
    }
    debug_assert_eq!(edges.len(), n - 1);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::total_weight;
    use crate::metric::{Euclidean, MutualReachability};
    use crate::prim::prim_mst;
    use rand::prelude::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            (0..n * dim).map(|_| rng.gen_range(-5.0..5.0f32)).collect(),
            dim,
        )
    }

    #[test]
    fn matches_prim_total_weight_euclidean() {
        let ctx = ExecCtx::serial();
        for (n, dim, seed) in [(50usize, 2usize, 1u64), (200, 3, 2), (300, 5, 3)] {
            let points = random_points(n, dim, seed);
            let tree = KdTree::build(&ctx, &points);
            let got = boruvka_mst(&ctx, &points, &tree, &Euclidean);
            assert_eq!(got.len(), n - 1);
            let expect = prim_mst(&points, &Euclidean);
            let wa = total_weight(&got);
            let wb = total_weight(&expect);
            assert!(
                (wa - wb).abs() < 1e-3 * wb.max(1.0),
                "n={n} dim={dim}: {wa} vs {wb}"
            );
        }
    }

    #[test]
    fn matches_prim_with_mutual_reachability() {
        let ctx = ExecCtx::serial();
        let points = random_points(150, 2, 9);
        // Core distances: squared distance to the 4th neighbour.
        let tree0 = KdTree::build(&ctx, &points);
        let core2: Vec<f32> = (0..points.len())
            .map(|q| tree0.knn(&points, q as u32, 4)[3].0)
            .collect();
        let metric = MutualReachability { core2: &core2 };
        let mut tree = KdTree::build(&ctx, &points);
        tree.attach_core2(&core2);
        let got = boruvka_mst(&ctx, &points, &tree, &metric);
        let expect = prim_mst(&points, &metric);
        let wa = total_weight(&got);
        let wb = total_weight(&expect);
        assert!((wa - wb).abs() < 1e-3 * wb.max(1.0), "{wa} vs {wb}");
    }

    #[test]
    fn parallel_equals_serial() {
        let points = random_points(500, 2, 17);
        let tree_s = KdTree::build(&ExecCtx::serial(), &points);
        let tree_p = KdTree::build(&ExecCtx::threads(), &points);
        let a = boruvka_mst(&ExecCtx::serial(), &points, &tree_s, &Euclidean);
        let b = boruvka_mst(&ExecCtx::threads(), &points, &tree_p, &Euclidean);
        assert!((total_weight(&a) - total_weight(&b)).abs() < 1e-3);
    }

    #[test]
    fn tiny_inputs() {
        let ctx = ExecCtx::serial();
        let one = PointSet::new(vec![0.0, 0.0], 2);
        let tree = KdTree::build(&ctx, &one);
        assert!(boruvka_mst(&ctx, &one, &tree, &Euclidean).is_empty());
        let two = PointSet::new(vec![0.0, 0.0, 1.0, 0.0], 2);
        let tree = KdTree::build(&ctx, &two);
        let edges = boruvka_mst(&ctx, &two, &tree, &Euclidean);
        assert_eq!(edges.len(), 1);
        assert!((edges[0].w - 1.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_points_still_form_tree() {
        let ctx = ExecCtx::serial();
        // 10 identical points: zero-weight tree.
        let points = PointSet::new(vec![1.0; 20], 2);
        let tree = KdTree::build(&ctx, &points);
        let edges = boruvka_mst(&ctx, &points, &tree, &Euclidean);
        assert_eq!(edges.len(), 9);
        assert!(edges.iter().all(|e| e.w == 0.0));
    }
}
