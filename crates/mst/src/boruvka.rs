//! Parallel Borůvka Euclidean MST (the paper's EMST substrate, \[39\]).
//!
//! Each round, every point finds its nearest neighbour in a *different*
//! component via the kd-tree ([`KdTree::nearest_foreign`]); every component
//! then keeps its minimum outgoing edge (atomic min on a packed
//! `(distance, point)` key — deterministic tie-break), the chosen edges are
//! added and the components merged. Components at least halve per round, so
//! there are ≤ ⌈log₂ n⌉ rounds.
//!
//! Works for any [`Metric`]; with [`crate::metric::MutualReachability`] it produces exactly
//! the MST HDBSCAN\* needs. Component purity of kd-subtrees prunes
//! intra-component traversal, the standard trick that keeps Borůvka rounds
//! near-linear. Further cuSLINK-style optimizations keep the rounds
//! allocation-free and tightly bounded:
//!
//! * the purity / candidate / root buffers are reused across rounds, and
//!   each query is **warm-started** with the previous round's winner
//!   (nearest-foreign distances only grow as components merge, so a
//!   still-foreign previous winner is a valid upper bound that prunes most
//!   of the traversal immediately);
//! * queries run in **kd-tree (spatial) order**, so consecutive queries in
//!   a lane's chunk usually belong to the same component — the component's
//!   best-edge bound is loaded once per same-component run and the run's
//!   winner is merged back with a single lock-free atomic-min, instead of
//!   one atomic RMW per point;
//! * **boundary-point filtering**: every point carries a monotone lower
//!   bound on its nearest-foreign distance (any earlier round's result —
//!   foreign sets only shrink, so the bound stays valid). An interior
//!   point whose bound lies strictly above its component's current best
//!   edge can neither win nor tie and skips its traversal entirely; later
//!   rounds therefore query mostly the points near component boundaries;
//! * **merge-surviving witnesses** (cuSLINK's 2-hop discipline): a point
//!   whose previous winner came from an *exact, canonically tie-broken*
//!   search keeps it as long as it stays foreign — when the point's lower
//!   bound equals the witness distance the witness still *is* the exact
//!   nearest-foreign answer, so the whole re-search (row scan and
//!   traversal) is skipped. Each row screen additionally banks the best
//!   member of a *second* foreign component, so when a merge absorbs the
//!   primary witness the secondary usually survives to warm-start (and
//!   bound) the fallback search instead of a cold traversal.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use pandora_exec::atomic::{as_atomic_u64, f32_to_ordered_u32, ordered_u32_to_f32};
use pandora_exec::counters::RelaxedCounter;
use pandora_exec::trace::KernelKind;
use pandora_exec::{ExecCtx, ScratchPool, UnsafeSlice, DEFAULT_GRAIN};

use pandora_core::Edge;

use crate::kdtree::{ForeignSearch, KdTree};
use crate::knn::KnnRows;
use crate::metric::Metric;
use crate::point::PointSet;

/// Packs `(squared distance, point)` so numeric `min` picks the smallest
/// distance, ties broken by smaller point index.
#[inline(always)]
fn pack_candidate(d2: f32, p: u32) -> u64 {
    ((f32_to_ordered_u32(d2) as u64) << 32) | p as u64
}

/// Cumulative effectiveness counters for the witness machinery, shared by
/// every Borůvka run over one dataset (the owner — an
/// [`crate::index::EmstIndex`] or workspace — hands a reference to each run
/// via [`BoruvkaExtras::stats`]).
///
/// All counters are monotone and relaxed: lanes accumulate locally and
/// flush once per chunk, so the atomics see O(chunks) traffic, not O(n).
#[derive(Debug, Default)]
pub struct BoruvkaStats {
    witness_hits: RelaxedCounter,
    researches: RelaxedCounter,
    snapshot_adopts: RelaxedCounter,
}

impl BoruvkaStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queries answered outright by a merge-surviving witness — no row
    /// scan, no tree traversal.
    pub fn witness_hits(&self) -> u64 {
        self.witness_hits.get()
    }

    /// Full nearest-foreign tree searches (the work the witnesses exist to
    /// avoid).
    pub fn researches(&self) -> u64 {
        self.researches.get()
    }

    /// Cold runs that warmed their endgame cache from a snapshot another
    /// session published to the shared [`EndgameStore`].
    pub fn snapshot_adopts(&self) -> u64 {
        self.snapshot_adopts.get()
    }

    fn add_chunk(&self, hits: u64, searches: u64) {
        if hits > 0 {
            self.witness_hits.add(hits);
        }
        if searches > 0 {
            self.researches.add(searches);
        }
    }

    /// Records one shared-snapshot adoption (called by the index layer).
    pub fn note_adopt(&self) {
        self.snapshot_adopts.incr();
    }
}

/// A round enters the "endgame" once this few components remain — the
/// regime where components are huge, every stale per-point bound fails,
/// and nearly all `n` points re-search the tree to certify a handful of
/// inter-component edges.
const ENDGAME_SNAPSHOT_MAX: usize = 64;

/// Cross-run endgame cache: transfers late-round nearest-foreign lower
/// bounds between Borůvka runs **over the same point set**.
///
/// The transfer is exact, resting on two monotonicities:
///
/// 1. the mutual-reachability metric is pointwise non-decreasing in
///    `minPts` (core distances only grow), so a distance bound proved
///    under `minPts = m` holds under any `m' ≥ m`;
/// 2. for any point `q` whose snapshot component is **contained in** its
///    current component, everything currently foreign to `q` was foreign
///    at the snapshot too, so `q`'s nearest-foreign minimum can only have
///    grown since the bound was proved.
///
/// Containment is checked per snapshot component in one O(n) pass (all
/// members must share a current component); different runs' intermediate
/// partitions rarely nest globally, but component-wise most of them do.
/// Applicable points' bounds flow into the boundary filter and retire the
/// component-interior points that dominate endgame rounds, so a
/// multi-`minPts` sweep (ascending) pays the endgame search volume once,
/// not once per member. Purely an optimization: skips are strictly
/// conservative, so results stay bit-identical.
#[derive(Debug, Default, Clone)]
struct EndgameSnapshot {
    /// `minPts` rank the bounds were proved under.
    min_pts: usize,
    /// Component label per point at the snapshot round.
    comp: Vec<u32>,
    /// Per-point nearest-foreign squared-distance lower bounds, valid for
    /// (`min_pts`, `comp`).
    lower: Vec<f32>,
}

/// One run's worth of published endgame snapshots: an immutable value the
/// [`EndgameStore`] hands out behind an `Arc`, so adopting it is a pointer
/// clone and never blocks the publisher.
#[derive(Debug)]
pub struct SnapshotSet {
    /// `minPts` rank the snapshots were proved under (all snapshots of one
    /// run share it). A set transfers bounds to any run of rank ≥ this.
    rank: usize,
    snaps: Vec<EndgameSnapshot>,
}

/// Concurrency-safe cross-session snapshot store, owned by the frozen
/// per-dataset index (so it is structurally bound to one `instance_id` /
/// point set — sessions can only ever adopt snapshots proved on the points
/// they are serving).
///
/// Publishing is double-buffered in effect: a publisher builds a fresh
/// [`SnapshotSet`] off-lock, then swaps the shared `Arc` under a mutex that
/// is held only for the pointer exchange; readers clone the `Arc` and apply
/// the (immutable) set with no further synchronization. The store keeps the
/// single best set rather than accumulating: lower-rank bounds transfer to
/// strictly more runs (mutual-reachability distances grow with `minPts`),
/// so a set is only replaced when a run of *lower* rank publishes. That
/// policy also bounds publish traffic — steady-state request streams at one
/// rank publish exactly once.
#[derive(Debug, Default)]
pub struct EndgameStore {
    published: Mutex<Option<Arc<SnapshotSet>>>,
    publishes: RelaxedCounter,
}

impl EndgameStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any session has published a snapshot set yet.
    pub fn is_published(&self) -> bool {
        self.load().is_some()
    }

    /// How many snapshot sets have been published (replacements included).
    pub fn publishes(&self) -> u64 {
        self.publishes.get()
    }

    fn load(&self) -> Option<Arc<SnapshotSet>> {
        // A poisoned lock only means a publisher panicked mid-swap; the
        // stored Arc is always a complete set, so recover and read it.
        let slot = self.published.lock().unwrap_or_else(|p| p.into_inner());
        slot.clone()
    }

    /// Publishes `snaps` (proved under `rank`) if they beat the stored set:
    /// the store is empty, or the candidate's rank is strictly lower (its
    /// bounds transfer to strictly more future runs).
    fn offer(&self, rank: usize, snaps: &[EndgameSnapshot]) {
        if snaps.is_empty() {
            return;
        }
        {
            let slot = self.published.lock().unwrap_or_else(|p| p.into_inner());
            if slot.as_ref().is_some_and(|set| set.rank <= rank) {
                return;
            }
        }
        // Build the set off-lock (the copy is O(n·snaps)); re-check under
        // the lock in case a better set landed meanwhile.
        let set = Arc::new(SnapshotSet {
            rank,
            snaps: snaps.to_vec(),
        });
        let mut slot = self.published.lock().unwrap_or_else(|p| p.into_inner());
        if slot.as_ref().is_some_and(|held| held.rank <= rank) {
            return;
        }
        *slot = Some(set);
        self.publishes.incr();
    }
}

/// See the type-level docs above. A run captures one snapshot per endgame
/// round (components at least halve each round, so at most ~log₂ of the
/// 64-component endgame threshold of them) into a staging set, promoted
/// wholesale at run end — double-buffered so the snapshots a run *applies*
/// always come from an earlier run. Keeping every granularity matters:
/// coarse snapshots carry the largest bounds but their components conflict
/// most often, so each of the next run's endgame rounds is usually served
/// by a different member of the set.
#[derive(Debug, Default)]
pub struct EndgameCache {
    /// Applied by the current run: the previous run's snapshots.
    active: Vec<EndgameSnapshot>,
    active_len: usize,
    /// Captured by the current run; promoted to `active` at run end.
    staging: Vec<EndgameSnapshot>,
    staging_len: usize,
    /// Snapshot set adopted from a shared [`EndgameStore`] — another
    /// session's published endgame, applied alongside this cache's own
    /// snapshots under the same containment check.
    adopted: Option<Arc<SnapshotSet>>,
    /// Scratch for the containment check (snapshot root → current root).
    map: Vec<u32>,
}

impl EndgameCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all stored snapshots (e.g. when the point set changes).
    pub fn clear(&mut self) {
        self.active_len = 0;
        self.staging_len = 0;
        self.adopted = None;
    }

    /// Whether previous-run snapshots (own or adopted) are available.
    pub fn is_warm(&self) -> bool {
        self.active_len > 0 || self.adopted.is_some()
    }

    /// Warms a cold cache from the shared store: adopts the published
    /// snapshot set (an `Arc` clone) when this cache has produced nothing
    /// of its own yet. Returns whether an adoption happened. A cache that
    /// already ran keeps its own snapshots — they were proved on the exact
    /// request stream this session serves.
    pub fn adopt_from(&mut self, store: &EndgameStore) -> bool {
        if self.active_len > 0 || self.adopted.is_some() {
            return false;
        }
        match store.load() {
            Some(set) => {
                self.adopted = Some(set);
                true
            }
            None => false,
        }
    }

    /// Offers this cache's last-run snapshots to the shared store, which
    /// publishes them only when they beat the held set (empty store, or a
    /// strictly lower metric rank — those bounds transfer to strictly more
    /// future runs). No-op for a cache that has not completed a run since
    /// the last publish point.
    pub fn publish_to(&self, store: &EndgameStore) {
        if self.active_len > 0 {
            store.offer(
                self.active[..self.active_len]
                    .iter()
                    .map(|s| s.min_pts)
                    .max()
                    .unwrap_or(usize::MAX),
                &self.active[..self.active_len],
            );
        }
    }

    /// Captures the entering state of a round: `lower` entries are valid
    /// bounds for partition `comp` under metric rank `min_pts`. Snapshot
    /// storage is recycled across runs.
    fn capture(&mut self, min_pts: usize, comp: &[u32], lower: &[f32]) {
        if self.staging.len() == self.staging_len {
            self.staging.push(EndgameSnapshot::default());
        }
        let snap = &mut self.staging[self.staging_len];
        self.staging_len += 1;
        snap.comp.clear();
        snap.comp.extend_from_slice(comp);
        snap.lower.clear();
        snap.lower.extend_from_slice(lower);
        snap.min_pts = min_pts;
    }

    /// Makes this run's captured snapshots the set the next run applies.
    fn promote(&mut self) {
        if self.staging_len > 0 {
            std::mem::swap(&mut self.active, &mut self.staging);
            self.active_len = self.staging_len;
            self.staging_len = 0;
        }
    }

    /// Merges the previous run's snapshot bounds into `lower` for every
    /// point whose transfer provably applies: same point set, `min_pts` at
    /// least the snapshot's, and the point's snapshot component contained
    /// in its current component. Returns whether any snapshot was
    /// considered.
    fn apply(&mut self, min_pts: usize, comp: &[u32], lower: &mut [f32]) -> bool {
        let mut any = false;
        for snap in &self.active[..self.active_len] {
            any |= apply_snapshot(&mut self.map, snap, min_pts, comp, lower);
        }
        // Adopted cross-session snapshots transfer under the identical
        // proof: same point set (the store lives on the frozen index), rank
        // monotonicity and component containment checked per snapshot.
        if let Some(set) = &self.adopted {
            for snap in &set.snaps {
                any |= apply_snapshot(&mut self.map, snap, min_pts, comp, lower);
            }
        }
        any
    }
}

/// Transfers one snapshot's bounds into `lower` when it provably applies:
/// metric rank no higher than the run's, same point count, and — per
/// snapshot component — all members still sharing one current component.
fn apply_snapshot(
    map: &mut Vec<u32>,
    snap: &EndgameSnapshot,
    min_pts: usize,
    comp: &[u32],
    lower: &mut [f32],
) -> bool {
    const UNSEEN: u32 = u32::MAX;
    const CONFLICT: u32 = u32::MAX - 1;
    let n = comp.len();
    if snap.min_pts > min_pts || snap.comp.len() != n {
        return false;
    }
    // Pass 1: map every snapshot component to the single current component
    // holding it, or CONFLICT if its members split across several (those
    // points keep their own bounds).
    map.resize(n, UNSEEN);
    map.fill(UNSEEN);
    for (&snap_root, &cur) in snap.comp.iter().zip(comp) {
        let slot = &mut map[snap_root as usize];
        match *slot {
            UNSEEN => *slot = cur,
            CONFLICT => {}
            held if held != cur => *slot = CONFLICT,
            _ => {}
        }
    }
    // Pass 2: transfer bounds for the contained components.
    for ((dst, &src), &snap_root) in lower.iter_mut().zip(&snap.lower).zip(&snap.comp) {
        if map[snap_root as usize] != CONFLICT && src > *dst {
            *dst = src;
        }
    }
    true
}

/// Optional configuration of a [`boruvka_mst_with`] run, bundled so the
/// entry point reads as *what extras are engaged* rather than a positional
/// argument soup. [`Default`] is the bare run: no seeds, no rows, no
/// pruning bounds, no cross-run cache.
///
/// Every extra is strictly conservative — engaging any subset changes the
/// work performed, never the returned MST.
#[derive(Debug, Default)]
pub struct BoruvkaExtras<'a> {
    /// Exact per-point first-round candidates (`(_, u32::MAX)` = none);
    /// see [`boruvka_mst_seeded`].
    pub seeds: Option<&'a [(f32, u32)]>,
    /// Sorted k-NN rows driving the first-round row screen and the
    /// boundary filter (see [`KnnRows`]).
    pub rows: Option<KnnRows<'a>>,
    /// Per-tree-node minimum squared core distances for mutual-reachability
    /// subtree pruning ([`KdTree::min_core2_into`]); empty = no bounds.
    /// Per-request data: the tree itself stays immutable and shareable.
    pub node_core2: &'a [f32],
    /// Cross-run endgame cache plus the metric's `minPts` rank (1 for
    /// plain Euclidean); see [`EndgameCache`].
    pub cache: Option<(&'a mut EndgameCache, usize)>,
    /// Effectiveness counters to accumulate into (witness hits and tree
    /// re-searches); `None` = don't count.
    pub stats: Option<&'a BoruvkaStats>,
}

/// Scans `q`'s sorted k-NN row for its two witnesses: `best`, the exact
/// cheapest foreign member under canonical tie-breaking (smaller metric
/// distance, then smaller index), and `second`, the cheapest member in a
/// component *different from `best`'s* — the 2-hop witness that usually
/// survives the merge that consumes `best`.
///
/// Either slot is `(∞, u32::MAX)` when no qualifying member exists. The
/// scan early-exits once both are pinned: a later member's Euclidean
/// distance already exceeds both held distances, so (the metric dominating
/// its Euclidean part) it can neither win nor tie either slot.
///
/// Invariants (property-tested in `tests/mst_properties.rs`):
/// * `best` equals the brute-force minimum over the row's foreign members;
/// * a found `second` is foreign, in a different component than `best`,
///   at an exact metric distance `≥ best`'s — so it never proposes an edge
///   shorter than the true nearest-foreign distance;
/// * `second` is found whenever the row holds a foreign member outside
///   `best`'s component.
pub fn row_witness_scan<M: Metric>(
    rows: &KnnRows<'_>,
    metric: &M,
    q: u32,
    root: usize,
    comp: &[u32],
) -> ((f32, u32), (f32, u32)) {
    let base = q as usize * rows.k;
    let mut best = (f32::INFINITY, u32::MAX);
    let mut best_comp = usize::MAX;
    let mut second = (f32::INFINITY, u32::MAX);
    for j in 0..rows.k {
        let p = rows.idx[base + j];
        if p == u32::MAX {
            break;
        }
        let e2 = rows.d2[base + j];
        if e2 > best.0 && second.1 != u32::MAX {
            // Ascending rows: every later member's metric distance is ≥ its
            // Euclidean part, which already exceeds both held witnesses.
            break;
        }
        let pc = comp[p as usize] as usize;
        if pc == root {
            continue;
        }
        let d2 = metric.refine_euclid2(e2, q, p);
        if d2 < best.0 || (d2 == best.0 && p < best.1) {
            // The displaced best seeds the second slot when it lives in a
            // different component than the new winner; when it shares the
            // new winner's component it was never a valid second, and any
            // member dropped earlier for sharing the *old* best's
            // component shares the new winner's too (the old best moves
            // down instead) — so no valid candidate is ever lost.
            if best.1 != u32::MAX && best_comp != pc {
                second = best;
            }
            best = (d2, p);
            best_comp = pc;
        } else if pc != best_comp && (d2 < second.0 || (d2 == second.0 && p < second.1)) {
            second = (d2, p);
        }
    }
    (best, second)
}

/// Computes the MST of `points` under `metric` using parallel Borůvka.
///
/// The `tree` must index the same point set. Pass per-node core minima for
/// mutual-reachability subtree pruning via [`BoruvkaExtras::node_core2`]
/// on the [`boruvka_mst_with`] entry point — this bare convenience runs
/// without pruning bounds (identical edges, more traversal). Returns the
/// `n-1` edges with weights = `sqrt` of the metric's squared distance.
///
/// # Panics
///
/// Panics if a round adds no edge, which cannot happen for finite metric
/// distances ([`PointSet::new`] rejects non-finite coordinates) — the check
/// is unconditional so corrupt distances fail loudly instead of spinning.
pub fn boruvka_mst<M: Metric>(
    ctx: &ExecCtx,
    points: &PointSet,
    tree: &KdTree,
    metric: &M,
) -> Vec<Edge> {
    let scratch = ScratchPool::new();
    boruvka_mst_with(
        ctx,
        points,
        tree,
        metric,
        BoruvkaExtras::default(),
        &scratch,
    )
}

/// [`boruvka_mst`] with optional per-point first-round candidates and
/// per-node core-minimum pruning bounds.
///
/// Each seed is an **exact** metric distance to a specific other point
/// (e.g. the cheapest mutual-reachability neighbour captured by the
/// core-distance k-NN pass) or `(_, u32::MAX)` for "no candidate". Seeds
/// warm-start the first round exactly like later rounds are warm-started
/// by their predecessor, pruning the all-nearest-neighbour round that
/// otherwise dominates; the result is identical with or without seeds.
///
/// # Panics
///
/// As [`boruvka_mst`]; additionally if `seeds.len() != points.len()`.
pub fn boruvka_mst_seeded<M: Metric>(
    ctx: &ExecCtx,
    points: &PointSet,
    tree: &KdTree,
    metric: &M,
    seeds: Option<Vec<(f32, u32)>>,
    node_core2: &[f32],
) -> Vec<Edge> {
    let scratch = ScratchPool::new();
    boruvka_mst_with(
        ctx,
        points,
        tree,
        metric,
        BoruvkaExtras {
            seeds: seeds.as_deref(),
            node_core2,
            ..Default::default()
        },
        &scratch,
    )
}

/// The full-configuration Borůvka entry point: [`BoruvkaExtras`] (seeds,
/// sorted k-NN rows, subtree pruning bounds, endgame cache) plus a
/// caller-owned [`ScratchPool`] all round-persistent buffers are drawn
/// from (and returned to), so a long-lived workspace pays the buffer
/// allocations once per *dataset*, not once per MST.
///
/// The `rows` screen (see [`KnnRows`]) resolves most first-round queries
/// without touching the tree: a point whose cheapest foreign row member
/// sits strictly below its row's k-th distance has provably found its exact
/// nearest foreign neighbour, and a point with no such member gains the
/// k-th distance as a boundary-filter lower bound. The `cache` pair
/// `(endgame cache, minPts rank)` carries late-round bounds across runs
/// (see [`EndgameCache`]); pass the metric's `minPts` (1 for plain
/// Euclidean). Every optimization is strictly conservative, so the result
/// is **bit-identical** to the bare [`boruvka_mst`] run: winners are exact
/// and the tie-breaks are unchanged.
///
/// # Panics
///
/// As [`boruvka_mst`]; additionally if a provided `seeds` or `rows` shape
/// does not match `points.len()`.
pub fn boruvka_mst_with<M: Metric>(
    ctx: &ExecCtx,
    points: &PointSet,
    tree: &KdTree,
    metric: &M,
    extras: BoruvkaExtras<'_>,
    scratch: &ScratchPool,
) -> Vec<Edge> {
    let BoruvkaExtras {
        seeds,
        rows,
        node_core2,
        mut cache,
        stats,
    } = extras;
    let n = points.len();
    if let Some(seeds) = seeds {
        // Checked even for degenerate inputs: a mis-sized seeds array is a
        // caller bug that should not go unnoticed until n grows past 1.
        assert_eq!(seeds.len(), n, "one seed per point");
    }
    if let Some(rows) = &rows {
        assert_eq!(rows.d2.len(), n * rows.k, "one sorted k-NN row per point");
        assert_eq!(rows.idx.len(), n * rows.k, "one sorted k-NN row per point");
    }
    if n <= 1 {
        return Vec::new();
    }
    let dsu = scratch.take_dsu(n);
    let mut comp = scratch.take_u32();
    comp.extend(0..n as u32);
    let mut n_components = n;
    let mut edges: Vec<Edge> = Vec::with_capacity(n - 1);
    // Round-persistent buffers (drawn from the pool, reused every round).
    let mut purity = scratch.take_u32();
    let mut roots = scratch.take_u32();
    // Per-component best outgoing candidate, indexed by component root.
    let mut candidate = scratch.take_u64();
    candidate.resize(n, u64::MAX);
    // Per-point best known foreign candidate: an exact metric distance to
    // the witness point (`u32::MAX` = none yet). Carried across rounds as
    // the warm-start seed; optionally pre-filled by the caller.
    let mut best_of = scratch.take_pairs();
    match seeds {
        Some(seeds) => best_of.extend_from_slice(seeds),
        None => best_of.resize(n, (f32::INFINITY, u32::MAX)),
    }
    // 2-hop witness per point: the best known foreign candidate in a
    // component *different* from the primary witness's, refreshed by every
    // row screen. When a merge kills the primary this one usually survives
    // to be promoted in its place (exact distance, so a valid warm seed).
    let mut alt_of = scratch.take_pairs();
    alt_of.resize(n, (f32::INFINITY, u32::MAX));
    // Witness provenance, 1 = canonical: `best_of[q]` was written by an
    // exact canonically-tie-broken search (tree traversal or certifying
    // row screen) *together with* `lower[q] = best_of[q].0`. Only such a
    // witness may answer a query outright — caller seeds and promoted
    // 2-hop witnesses are exact distances but not necessarily the
    // smallest-index winner under duplicate weights, so they only ever
    // serve as upper-bound seeds.
    let mut canon = scratch.take_u32();
    canon.resize(n, 0);
    // Per-point monotone **lower** bound on the nearest-foreign squared
    // distance (a candidate is an upper bound, so the two are distinct
    // arrays). Foreign sets only shrink as components merge, so any
    // round's exact result stays a valid lower bound in every later round;
    // this drives the boundary-point filter.
    let mut lower = scratch.take_f32();
    lower.resize(n, 0.0);

    while n_components > 1 {
        tree.component_purity_into(ctx, &comp, &mut purity);

        // Cross-run endgame transfer: once few components remain, try to
        // import the previous run's late-round bounds (exact when the
        // metric rank grew and the partition coarsened — see
        // [`EndgameCache::apply`]). This is what keeps a sweep from paying
        // the endgame search volume once per member.
        if n_components <= ENDGAME_SNAPSHOT_MAX {
            if let Some((cache, rank)) = cache.as_mut() {
                cache.apply(*rank, &comp, &mut lower);
            }
        }

        // Reset candidates (only roots are read, clearing all is simpler).
        {
            let cand_view = UnsafeSlice::new(&mut candidate);
            ctx.for_each_chunk(n, DEFAULT_GRAIN * 4, |range| {
                for i in range {
                    // SAFETY: disjoint writes.
                    unsafe { cand_view.write(i, u64::MAX) };
                }
            });
        }

        // Bound pre-pass: re-propose every still-valid witness from earlier
        // rounds (exact distances to still-foreign points), so component
        // bounds are tight *before* any traversal starts. Without this the
        // first points visited each round see an infinite bound and search
        // even when deep in a component's interior; with it the filter
        // below engages immediately. This pass also runs the 2-hop witness
        // succession: when a merge consumed the primary witness but the
        // secondary is still foreign, the secondary is promoted to primary
        // (marked non-canonical — it is an exact distance but not a proven
        // canonical winner) and proposed in its place, so the component
        // bound stays tight without any re-search. O(n) scan, no tree work.
        {
            let cand_view = as_atomic_u64(&mut candidate);
            let best_view = UnsafeSlice::new(best_of.as_mut_slice());
            let alt_view = UnsafeSlice::new(alt_of.as_mut_slice());
            let canon_view = UnsafeSlice::new(canon.as_mut_slice());
            let comp_ref = &comp;
            let perm = tree.perm();
            ctx.for_each_chunk(n, DEFAULT_GRAIN, |range| {
                let mut run_root = usize::MAX;
                let mut run_best = u64::MAX;
                for i in range {
                    let q = perm[i];
                    let root = comp_ref[q as usize] as usize;
                    if root != run_root {
                        if run_best != u64::MAX {
                            // pandora-lint: allow(PL004) — commutative min-flush: any flush order yields the same per-root winner; the round join publishes it
                            cand_view[run_root].fetch_min(run_best, Ordering::Relaxed);
                        }
                        run_root = root;
                        run_best = u64::MAX;
                    }
                    // SAFETY: perm is a permutation, so slots q of the
                    // per-point arrays are owned by exactly this task.
                    let (d2, p) = unsafe { best_view.read(q as usize) };
                    if p != u32::MAX && comp_ref[p as usize] as usize != root {
                        run_best = run_best.min(pack_candidate(d2, q));
                        continue;
                    }
                    // SAFETY: as above — slot q is owned by this task.
                    let alt = unsafe { alt_view.read(q as usize) };
                    if alt.1 == u32::MAX {
                        continue;
                    }
                    if comp_ref[alt.1 as usize] as usize != root {
                        // Primary died, secondary survived: promote it.
                        // SAFETY: as above.
                        unsafe {
                            best_view.write(q as usize, alt);
                            canon_view.write(q as usize, 0);
                            alt_view.write(q as usize, (f32::INFINITY, u32::MAX));
                        }
                        run_best = run_best.min(pack_candidate(alt.0, q));
                    } else {
                        // Both hops died in one round; clear the slot so
                        // later rounds skip the component lookup.
                        // SAFETY: as above.
                        unsafe { alt_view.write(q as usize, (f32::INFINITY, u32::MAX)) };
                    }
                }
                if run_best != u64::MAX {
                    // pandora-lint: allow(PL004) — final flush of the chunk's tail run — same commutative-min argument as the per-run flush
                    cand_view[run_root].fetch_min(run_best, Ordering::Relaxed);
                }
            });
        }

        // Every point proposes its nearest foreign neighbour to its
        // component (paper's "find minimum outgoing edge" step). Lanes walk
        // the points in kd-tree order: spatially coherent, so consecutive
        // queries usually share a component and the per-lane run state
        // below replaces most atomic traffic.
        {
            let cand_view = as_atomic_u64(&mut candidate);
            let best_view = UnsafeSlice::new(best_of.as_mut_slice());
            let alt_view = UnsafeSlice::new(alt_of.as_mut_slice());
            let canon_view = UnsafeSlice::new(canon.as_mut_slice());
            let lower_view = UnsafeSlice::new(lower.as_mut_slice());
            let comp_ref = &comp;
            let purity_ref = &purity;
            let rows_opt = rows;
            let perm = tree.perm();
            ctx.for_each_chunk_traced(n, 256, KernelKind::TreeTraverse, (n as u64) * 64, |range| {
                // Run state for the current same-component stretch: the best
                // proposal found by this lane (flushed with one atomic min
                // when the run ends) and the tightest known component bound.
                let mut run_root = usize::MAX;
                let mut run_best = u64::MAX;
                let mut run_bound = f32::INFINITY;
                // Chunk-local effectiveness counters, flushed once at the
                // end so the shared atomics see O(chunks) traffic.
                let mut hits = 0u64;
                let mut searches = 0u64;
                for i in range {
                    let q = perm[i];
                    let root = comp_ref[q as usize] as usize;
                    if root != run_root {
                        if run_best != u64::MAX {
                            // pandora-lint: allow(PL004) — commutative min-flush: any flush order yields the same per-root winner; the round join publishes it
                            cand_view[run_root].fetch_min(run_best, Ordering::Relaxed);
                        }
                        run_root = root;
                        run_best = u64::MAX;
                        // pandora-lint: allow(PL004) — a stale bound only weakens witness pruning; the true min is re-read after the round joins
                        let packed = cand_view[root].load(Ordering::Relaxed);
                        run_bound = if packed == u64::MAX {
                            f32::INFINITY
                        } else {
                            ordered_u32_to_f32((packed >> 32) as u32)
                        };
                    }
                    // SAFETY: perm is a permutation, so slots q of the
                    // per-point arrays are read and written by exactly this
                    // task.
                    // Boundary-point filter: `lower[q]` lower-bounds q's
                    // nearest-foreign distance and `run_bound` is an edge
                    // some component member already achieved, so a point
                    // strictly above the bound can neither win nor tie the
                    // component minimum — skip its traversal entirely.
                    // (Ties must still propose: smaller index wins.)
                    let low = unsafe { lower_view.read(q as usize) };
                    if low > run_bound {
                        continue;
                    }
                    // Merge-surviving witness: if the primary witness came
                    // from an exact canonical search (`canon`), is still
                    // foreign, and `lower` has caught up to its distance,
                    // then it *is* still the exact canonical answer — the
                    // foreign set only shrinks, so nothing closer appeared
                    // and no equal-distance smaller-index point turned
                    // foreign. Propose it and skip the query entirely.
                    // SAFETY: as above — slots q are owned by this task.
                    let prev = unsafe { best_view.read(q as usize) };
                    let prev_alive =
                        prev.1 != u32::MAX && comp_ref[prev.1 as usize] as usize != root;
                    // SAFETY: same slot-q ownership for the canon flag read.
                    if prev_alive && low >= prev.0 && unsafe { canon_view.read(q as usize) } != 0 {
                        run_best = run_best.min(pack_candidate(prev.0, q));
                        run_bound = run_bound.min(prev.0);
                        hits += 1;
                        continue;
                    }
                    // Row screen: when sorted k-NN rows are attached, try to
                    // resolve the query from the row alone. A foreign member
                    // strictly below the row's k-th distance is the *exact*
                    // nearest foreign point (non-members all sit at or past
                    // the k-th distance, and the metric dominates the
                    // Euclidean part), so the traversal is skipped entirely;
                    // otherwise the k-th distance joins the boundary filter
                    // as a monotone lower bound. The same scan refreshes the
                    // 2-hop witness with the best member of a second foreign
                    // component.
                    let mut row_seed: Option<(f32, u32)> = None;
                    if let Some(rows) = &rows_opt {
                        let base = q as usize * rows.k;
                        let full = rows.idx[base + rows.k - 1] != u32::MAX;
                        let (best, second) = row_witness_scan(rows, metric, q, root, comp_ref);
                        if second.1 != u32::MAX {
                            // SAFETY: perm is a permutation; slots q of the
                            // per-point arrays are owned by this task.
                            unsafe { alt_view.write(q as usize, second) };
                        }
                        let kth = rows.d2[base + rows.k - 1];
                        if best.1 != u32::MAX && (!full || best.0 < kth) {
                            // Exact winner from the row — same handling as a
                            // Found traversal result, canonical witness.
                            // SAFETY: as above.
                            unsafe {
                                best_view.write(q as usize, best);
                                lower_view.write(q as usize, best.0);
                                canon_view.write(q as usize, 1);
                            }
                            run_best = run_best.min(pack_candidate(best.0, q));
                            run_bound = run_bound.min(best.0);
                            continue;
                        }
                        if full {
                            // No foreign member strictly below the k-th
                            // distance ⇒ the nearest foreign point is at
                            // least that far away, this round and every
                            // later one.
                            if kth > low {
                                // SAFETY: as above — slot q owned by this task.
                                unsafe { lower_view.write(q as usize, kth) };
                            }
                            if low.max(kth) > run_bound {
                                continue;
                            }
                            if best.1 != u32::MAX {
                                row_seed = Some(best);
                            }
                        } else {
                            // The row covers every other point and none is
                            // foreign: no foreign point exists for q at all.
                            // SAFETY: as above.
                            unsafe { lower_view.write(q as usize, f32::INFINITY) };
                            continue;
                        }
                    }
                    // Warm start: the previous round's winner is a valid
                    // candidate iff its component is still foreign; when it
                    // died this round, the freshly-scanned 2-hop witness
                    // stands in (the pre-pass already promoted last round's
                    // survivor into `prev` itself).
                    let mut seed = prev_alive.then_some(prev);
                    if seed.is_none() {
                        // SAFETY: as above — slot q owned by this task.
                        let alt = unsafe { alt_view.read(q as usize) };
                        if alt.1 != u32::MAX && comp_ref[alt.1 as usize] as usize != root {
                            seed = Some(alt);
                        }
                    }
                    if let Some(rs) = row_seed {
                        // The row's best foreign member is an exact candidate
                        // too; keep whichever prunes harder.
                        seed = match seed {
                            Some(s) if s.0 < rs.0 || (s.0 == rs.0 && s.1 < rs.1) => Some(s),
                            _ => Some(rs),
                        };
                    }
                    // Component bound: only the minimum outgoing edge per
                    // component survives, so the component's current best
                    // candidate is a valid bound-only seed — members that
                    // cannot beat it prune their whole search and stay
                    // silent. The surviving (distance, proposer) minimum is
                    // unchanged: ties at the bound are still reported, and
                    // anything above it could never win the atomic min.
                    if run_bound.is_finite() && seed.is_none_or(|(d2, _)| run_bound < d2) {
                        seed = Some((run_bound, u32::MAX));
                    }
                    searches += 1;
                    let found = tree.nearest_foreign_bounded(
                        points, metric, q, comp_ref, purity_ref, node_core2, seed,
                    );
                    match found {
                        ForeignSearch::Found(d2, p) => {
                            // The search returned q's exact nearest-foreign
                            // distance, which is both the next candidate and
                            // the tightest possible lower bound — and a
                            // canonical witness for later rounds.
                            // SAFETY: as above, slots q are owned here.
                            unsafe {
                                best_view.write(q as usize, (d2, p));
                                lower_view.write(q as usize, d2);
                                canon_view.write(q as usize, 1);
                            }
                            run_best = run_best.min(pack_candidate(d2, q));
                            run_bound = run_bound.min(d2);
                        }
                        ForeignSearch::Empty(margin) => {
                            // Only a bound-only-seeded search can come up
                            // empty: everything foreign provably sits at
                            // least `margin` (> the bound) away, so record
                            // it as q's lower bound for later rounds and
                            // keep it monotone (the previous witness, if
                            // any, stays valid).
                            // SAFETY: as above.
                            unsafe {
                                let old = lower_view.read(q as usize);
                                lower_view.write(q as usize, old.max(margin));
                            }
                        }
                    }
                }
                if run_best != u64::MAX {
                    // pandora-lint: allow(PL004) — tail flush of the last run — commutative min; readers join the chunk barrier first
                    cand_view[run_root].fetch_min(run_best, Ordering::Relaxed);
                }
                if let Some(stats) = stats {
                    stats.add_chunk(hits, searches);
                }
            });
        }

        // Snapshot the round we just certified (entering partition +
        // refreshed bounds) while components are few; the last qualifying
        // round — the coarsest partition still above one component — wins.
        if n_components <= ENDGAME_SNAPSHOT_MAX {
            if let Some((cache, rank)) = cache.as_mut() {
                cache.capture(*rank, &comp, &lower);
            }
        }

        // Collect winning edges; deduplicate reciprocal pairs with a
        // sequential pass over components (O(#components)).
        let mut added = 0usize;
        {
            roots.clear();
            roots.extend((0..n as u32).filter(|&v| comp[v as usize] == v));
            ctx.record(
                KernelKind::DsuUnion,
                roots.len() as u64,
                (roots.len() as u64) * 24,
            );
            for &root in &roots {
                let packed = candidate[root as usize];
                if packed == u64::MAX {
                    continue;
                }
                let q = packed as u32;
                let (d2, p) = best_of[q as usize];
                debug_assert_ne!(p, u32::MAX);
                // Reciprocal edges (a↔b) must be added once: accept only if
                // the DSU still separates the endpoints.
                let ra = dsu.find(q);
                let rb = dsu.find(p);
                if ra != rb {
                    dsu.union(ra, rb);
                    edges.push(Edge::new(q, p, d2.sqrt()));
                    added += 1;
                }
            }
        }
        // Unconditional liveness check: every round must merge something.
        // With finite coordinates this always holds; a violation means the
        // candidate packing saw NaN/∞ distances, and spinning forever in
        // release builds would be far worse than this panic.
        assert!(
            added > 0,
            "boruvka_mst made no progress with {n_components} components left; \
             the input metric produced non-finite or inconsistent distances"
        );
        n_components -= added;

        // Refresh component labels.
        {
            let comp_view = UnsafeSlice::new(&mut comp);
            let dsu_ref = &dsu;
            ctx.for_each_chunk_traced(
                n,
                DEFAULT_GRAIN,
                KernelKind::DsuFind,
                (n as u64) * 8,
                |range| {
                    for v in range {
                        // SAFETY: disjoint writes.
                        unsafe { comp_view.write(v, dsu_ref.find(v as u32)) };
                    }
                },
            );
        }
    }
    if let Some((cache, _)) = cache.as_mut() {
        cache.promote();
    }
    scratch.put_dsu(dsu);
    scratch.put_u32(comp);
    scratch.put_u32(purity);
    scratch.put_u32(roots);
    scratch.put_u64(candidate);
    scratch.put_pairs(best_of);
    scratch.put_pairs(alt_of);
    scratch.put_u32(canon);
    scratch.put_f32(lower);
    debug_assert_eq!(edges.len(), n - 1);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::total_weight;
    use crate::metric::{Euclidean, MutualReachability};
    use crate::prim::prim_mst;
    use rand::prelude::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::new(
            (0..n * dim).map(|_| rng.gen_range(-5.0..5.0f32)).collect(),
            dim,
        )
    }

    #[test]
    fn matches_prim_total_weight_euclidean() {
        let ctx = ExecCtx::serial();
        for (n, dim, seed) in [(50usize, 2usize, 1u64), (200, 3, 2), (300, 5, 3)] {
            let points = random_points(n, dim, seed);
            let tree = KdTree::build(&ctx, &points);
            let got = boruvka_mst(&ctx, &points, &tree, &Euclidean);
            assert_eq!(got.len(), n - 1);
            let expect = prim_mst(&points, &Euclidean);
            let wa = total_weight(&got);
            let wb = total_weight(&expect);
            assert!(
                (wa - wb).abs() < 1e-3 * wb.max(1.0),
                "n={n} dim={dim}: {wa} vs {wb}"
            );
        }
    }

    #[test]
    fn matches_prim_with_mutual_reachability() {
        let ctx = ExecCtx::serial();
        let points = random_points(150, 2, 9);
        // Core distances: squared distance to the 4th neighbour.
        let tree0 = KdTree::build(&ctx, &points);
        let core2: Vec<f32> = (0..points.len())
            .map(|q| tree0.knn(&points, q as u32, 4)[3].0)
            .collect();
        let metric = MutualReachability { core2: &core2 };
        let tree = KdTree::build(&ctx, &points);
        let mut node_core2 = Vec::new();
        tree.min_core2_into(&core2, &mut node_core2);
        let scratch = ScratchPool::new();
        let got = boruvka_mst_with(
            &ctx,
            &points,
            &tree,
            &metric,
            BoruvkaExtras {
                node_core2: &node_core2,
                ..Default::default()
            },
            &scratch,
        );
        let expect = prim_mst(&points, &metric);
        let wa = total_weight(&got);
        let wb = total_weight(&expect);
        assert!((wa - wb).abs() < 1e-3 * wb.max(1.0), "{wa} vs {wb}");
    }

    #[test]
    fn parallel_equals_serial() {
        let points = random_points(500, 2, 17);
        let tree_s = KdTree::build(&ExecCtx::serial(), &points);
        let tree_p = KdTree::build(&ExecCtx::threads(), &points);
        let a = boruvka_mst(&ExecCtx::serial(), &points, &tree_s, &Euclidean);
        let b = boruvka_mst(&ExecCtx::threads(), &points, &tree_p, &Euclidean);
        assert!((total_weight(&a) - total_weight(&b)).abs() < 1e-3);
    }

    #[test]
    fn tiny_inputs() {
        let ctx = ExecCtx::serial();
        let one = PointSet::new(vec![0.0, 0.0], 2);
        let tree = KdTree::build(&ctx, &one);
        assert!(boruvka_mst(&ctx, &one, &tree, &Euclidean).is_empty());
        let two = PointSet::new(vec![0.0, 0.0, 1.0, 0.0], 2);
        let tree = KdTree::build(&ctx, &two);
        let edges = boruvka_mst(&ctx, &two, &tree, &Euclidean);
        assert_eq!(edges.len(), 1);
        assert!((edges[0].w - 1.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_points_still_form_tree() {
        let ctx = ExecCtx::serial();
        // 10 identical points: zero-weight tree.
        let points = PointSet::new(vec![1.0; 20], 2);
        let tree = KdTree::build(&ctx, &points);
        let edges = boruvka_mst(&ctx, &points, &tree, &Euclidean);
        assert_eq!(edges.len(), 9);
        assert!(edges.iter().all(|e| e.w == 0.0));
    }
}
