//! Kruskal's algorithm for explicit edge lists, plus small MST utilities.
//!
//! Used when the input is already a (distance) graph — the paper notes that
//! for network/graph clustering the distance graph is given directly (§2.1)
//! — and as a second oracle in tests.

use pandora_core::Edge;
use pandora_exec::dsu::SeqDsu;
use pandora_exec::sort::par_sort_by_key;
use pandora_exec::ExecCtx;

/// Computes an MST (or minimum spanning forest) of an explicit undirected
/// graph by Kruskal's algorithm with a parallel sort.
///
/// Ties are broken by `(weight, u, v)` for determinism.
pub fn kruskal_mst(ctx: &ExecCtx, n_vertices: usize, edges: &[Edge]) -> Vec<Edge> {
    let mut order: Vec<(u32, u32, u32)> = edges
        .iter()
        .map(|e| {
            let (a, b) = if e.u < e.v { (e.u, e.v) } else { (e.v, e.u) };
            (pandora_exec::atomic::f32_to_ordered_u32(e.w), a, b)
        })
        .collect();
    par_sort_by_key(ctx, &mut order, |&t| t);

    let mut dsu = SeqDsu::new(n_vertices);
    let mut mst = Vec::with_capacity(n_vertices.saturating_sub(1));
    for &(wk, a, b) in &order {
        if dsu.union(a, b).is_some() {
            mst.push(Edge::new(
                a,
                b,
                pandora_exec::atomic::ordered_u32_to_f32(wk),
            ));
            if mst.len() + 1 == n_vertices {
                break;
            }
        }
    }
    mst
}

/// Sum of edge weights (f64 accumulation).
pub fn total_weight(edges: &[Edge]) -> f64 {
    edges.iter().map(|e| e.w as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_graph() {
        let ctx = ExecCtx::serial();
        let edges = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 2.0),
            Edge::new(0, 2, 3.0),
        ];
        let mst = kruskal_mst(&ctx, 3, &edges);
        assert_eq!(mst.len(), 2);
        assert!((total_weight(&mst) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn forest_when_disconnected() {
        let ctx = ExecCtx::serial();
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(2, 3, 2.0)];
        let mst = kruskal_mst(&ctx, 4, &edges);
        assert_eq!(mst.len(), 2);
    }

    #[test]
    fn prefers_lighter_parallel_edges() {
        let ctx = ExecCtx::serial();
        let edges = vec![
            Edge::new(0, 1, 5.0),
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 1.0),
        ];
        let mst = kruskal_mst(&ctx, 3, &edges);
        assert!((total_weight(&mst) - 2.0).abs() < 1e-9);
    }
}
