//! The stack-wide error type for fallible public entry points.
//!
//! The original reproduction surfaced every contract violation as a panic —
//! fine for a figure binary, fatal for a serving process where one bad
//! request must come back as an error response, not a crashed worker. Every
//! constructor and entry point of the serving API (`PointSet::try_new`,
//! `EmstIndex::freeze`, `DatasetIndex`/`Session` in `pandora-hdbscan`)
//! returns a [`PandoraError`] instead; the legacy panicking names remain as
//! thin wrappers that document the panic.

/// Why a dataset or clustering request was rejected.
///
/// Carried by every `Result`-returning entry point of the serving API.
/// Variants are structured (not stringly-typed) so a serving layer can map
/// them to error codes without parsing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PandoraError {
    /// A coordinate was NaN or infinite. A single non-finite coordinate
    /// poisons every distance comparison downstream (kd-tree splits,
    /// Borůvka candidate packing) and can turn release builds into
    /// infinite loops, so datasets are validated on construction.
    NonFinite {
        /// Index of the offending point.
        point: usize,
        /// Dimension within that point.
        dim: usize,
    },
    /// The flat coordinate buffer cannot be interpreted as points: its
    /// length is not a multiple of the dimensionality, or `dim` is zero.
    BadShape {
        /// Buffer length supplied.
        len: usize,
        /// Dimensionality supplied.
        dim: usize,
    },
    /// A request parameter is outside its valid range for this dataset
    /// (e.g. `min_pts == 0`, `min_pts > n`, `min_cluster_size == 0`, or a
    /// `min_pts` above what a frozen index captured).
    BadParams {
        /// Which parameter was rejected.
        param: &'static str,
        /// The supplied value.
        value: usize,
        /// Human-readable constraint that was violated.
        reason: &'static str,
    },
    /// The dataset holds no points, so there is nothing to index or serve.
    EmptyDataset,
}

impl std::fmt::Display for PandoraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PandoraError::NonFinite { point, dim } => {
                write!(f, "non-finite coordinate at point {point} dim {dim}")
            }
            PandoraError::BadShape { len, dim } => {
                if *dim == 0 {
                    write!(f, "dimension must be positive (got 0)")
                } else {
                    write!(
                        f,
                        "coordinate buffer of length {len} is not a multiple of dim {dim}"
                    )
                }
            }
            PandoraError::BadParams {
                param,
                value,
                reason,
            } => {
                write!(f, "invalid {param} = {value}: {reason}")
            }
            PandoraError::EmptyDataset => write!(f, "the dataset holds no points"),
        }
    }
}

impl std::error::Error for PandoraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = PandoraError::NonFinite { point: 3, dim: 1 };
        assert_eq!(e.to_string(), "non-finite coordinate at point 3 dim 1");
        let e = PandoraError::BadShape { len: 5, dim: 2 };
        assert!(e.to_string().contains("not a multiple of dim"));
        let e = PandoraError::BadShape { len: 5, dim: 0 };
        assert!(e.to_string().contains("dimension must be positive"));
        let e = PandoraError::BadParams {
            param: "min_pts",
            value: 0,
            reason: "must be at least 1",
        };
        assert!(e.to_string().contains("min_pts = 0"));
        assert_eq!(
            PandoraError::EmptyDataset.to_string(),
            "the dataset holds no points"
        );
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&PandoraError::EmptyDataset);
    }
}
