//! The Gan–Tao "seed spreader" generator (\[14\] in the paper), used for the
//! `VisualVar*` / `VisualSim*` dataset rows.
//!
//! A spreader performs a random walk in `[0, 10^5]^dim`, emitting a cluster
//! of points around its position at every step; occasionally it teleports
//! ("restarts") to a fresh random location, starting a new cluster. The
//! *variable-density* variant shrinks the emission radius after each
//! restart, producing clusters of very different densities — the harder
//! case for density-based clustering and the skew driver the paper uses.

use pandora_mst::PointSet;
use rand::prelude::*;

/// Density profile of the generated clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Density {
    /// All clusters have similar local density (`VisualSim*`).
    Similar,
    /// Restart shrinks the radius: densities vary by orders of magnitude
    /// (`VisualVar*`).
    Variable,
}

/// Configuration for the seed spreader.
#[derive(Debug, Clone)]
pub struct SeedSpreader {
    /// Dimensionality.
    pub dim: usize,
    /// Number of points to emit.
    pub n: usize,
    /// Probability of restarting at each step.
    pub restart_prob: f64,
    /// Points emitted per step.
    pub points_per_step: usize,
    /// Base emission radius.
    pub radius: f32,
    /// Step length of the random walk, as a fraction of the radius.
    pub step_frac: f32,
    /// Density profile.
    pub density: Density,
    /// Fraction of uniform background noise points.
    pub noise_frac: f64,
}

impl SeedSpreader {
    /// Defaults mirroring the reference generator's shape.
    pub fn new(n: usize, dim: usize, density: Density) -> Self {
        Self {
            dim,
            n,
            restart_prob: 10.0 / n as f64,
            points_per_step: 20,
            radius: 500.0,
            step_frac: 0.5,
            density,
            noise_frac: 1.0 / 10_000.0,
        }
    }

    /// Runs the generator.
    pub fn generate(&self, seed: u64) -> PointSet {
        const DOMAIN: f32 = 1.0e5;
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = self.dim;
        let mut coords = Vec::with_capacity(self.n * dim);
        let mut pos: Vec<f32> = (0..dim).map(|_| rng.gen_range(0.0..DOMAIN)).collect();
        let mut radius = self.radius;
        let mut emitted = 0usize;
        let n_noise = (self.n as f64 * self.noise_frac) as usize;
        let n_clustered = self.n - n_noise;

        while emitted < n_clustered {
            // Restart?
            if rng.gen_bool(self.restart_prob) {
                for p in pos.iter_mut() {
                    *p = rng.gen_range(0.0..DOMAIN);
                }
                if self.density == Density::Variable {
                    // Each new cluster is denser than the last (radius
                    // decays geometrically, floored).
                    radius = (radius * 0.7).max(self.radius * 0.01);
                }
            }
            // Emit a burst around the current position.
            let burst = self.points_per_step.min(n_clustered - emitted);
            for _ in 0..burst {
                for &p in pos.iter().take(dim) {
                    let offset = rng.gen_range(-radius..=radius);
                    coords.push((p + offset).clamp(0.0, DOMAIN));
                }
            }
            emitted += burst;
            // Step the walk.
            for p in pos.iter_mut() {
                *p = (*p + rng.gen_range(-1.0f32..=1.0) * radius * self.step_frac)
                    .clamp(0.0, DOMAIN);
            }
        }
        // Uniform background noise.
        for _ in 0..n_noise {
            for _ in 0..dim {
                coords.push(rng.gen_range(0.0..DOMAIN));
            }
        }
        PointSet::new(coords, dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_exactly_n_points() {
        for density in [Density::Similar, Density::Variable] {
            let ps = SeedSpreader::new(5000, 3, density).generate(1);
            assert_eq!(ps.len(), 5000);
            assert_eq!(ps.dim(), 3);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SeedSpreader::new(1000, 2, Density::Variable).generate(9);
        let b = SeedSpreader::new(1000, 2, Density::Variable).generate(9);
        assert_eq!(a.coords(), b.coords());
        let c = SeedSpreader::new(1000, 2, Density::Variable).generate(10);
        assert_ne!(a.coords(), c.coords());
    }

    #[test]
    fn clustered_points_are_locally_dense() {
        // Mean nearest-neighbour distance must be far below the domain scale.
        let ps = SeedSpreader::new(2000, 2, Density::Similar).generate(4);
        let mut total = 0.0f64;
        for i in 0..200 {
            let mut best = f32::INFINITY;
            for j in 0..ps.len() {
                if i != j {
                    best = best.min(ps.dist2(i, j));
                }
            }
            total += (best as f64).sqrt();
        }
        let mean_nn = total / 200.0;
        assert!(mean_nn < 1000.0, "mean NN distance {mean_nn} too large");
    }
}
