//! Sensor/feature-vector proxies for the paper's mid-dimensional datasets:
//! `Pamap2` (4-D activity monitoring), `Farm` (5-D VZ texture features) and
//! `Household` (7-D electric power).
//!
//! What matters to the evaluation is their dimensionality (4/5/7) and their
//! regime structure: long dwells in a handful of states with drift and
//! bursts, yielding strongly non-uniform density and dendrogram skew in the
//! 10³–10⁵ range (Table 2).

use pandora_mst::PointSet;
use rand::prelude::*;

use crate::synthetic::normal_sample;

/// Activity-monitoring proxy (4-D): a Markov chain over activity regimes,
/// each a drifting anisotropic Gaussian (heart rate, 3-axis acceleration).
pub fn activity(n: usize, seed: u64) -> PointSet {
    const DIM: usize = 4;
    const N_REGIMES: usize = 8;
    let mut rng = StdRng::seed_from_u64(seed);
    // Regime means and per-channel scales.
    let means: Vec<[f32; DIM]> = (0..N_REGIMES)
        .map(|_| std::array::from_fn(|_| rng.gen_range(-50.0..50.0f32)))
        .collect();
    let scales: Vec<[f32; DIM]> = (0..N_REGIMES)
        .map(|_| std::array::from_fn(|_| rng.gen_range(0.1..4.0f32)))
        .collect();
    let mut coords = Vec::with_capacity(n * DIM);
    let mut regime = 0usize;
    let mut drift = [0.0f32; DIM];
    for _ in 0..n {
        if rng.gen_bool(0.001) {
            regime = rng.gen_range(0..N_REGIMES);
            drift = [0.0; DIM];
        }
        for d in 0..DIM {
            drift[d] += 0.01 * normal_sample(&mut rng);
            coords.push(means[regime][d] + drift[d] + scales[regime][d] * normal_sample(&mut rng));
        }
    }
    PointSet::new(coords, DIM)
}

/// VZ-texture-feature proxy (5-D): a mixture of strongly *correlated*
/// Gaussians — filter-bank responses of textured image patches are highly
/// correlated across channels, giving elongated clusters.
pub fn texture_features(n: usize, seed: u64) -> PointSet {
    const DIM: usize = 5;
    const N_TEXTURES: usize = 24;
    let mut rng = StdRng::seed_from_u64(seed);
    let means: Vec<[f32; DIM]> = (0..N_TEXTURES)
        .map(|_| std::array::from_fn(|_| rng.gen_range(-10.0..10.0f32)))
        .collect();
    // One dominant direction per texture (rank-1 + isotropic covariance).
    let directions: Vec<[f32; DIM]> = (0..N_TEXTURES)
        .map(|_| {
            let mut v: [f32; DIM] = std::array::from_fn(|_| normal_sample(&mut rng));
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            v.iter_mut().for_each(|x| *x /= norm);
            v
        })
        .collect();
    let mut coords = Vec::with_capacity(n * DIM);
    for _ in 0..n {
        let t = rng.gen_range(0..N_TEXTURES);
        let along = 3.0 * normal_sample(&mut rng);
        for d in 0..DIM {
            coords.push(means[t][d] + along * directions[t][d] + 0.15 * normal_sample(&mut rng));
        }
    }
    PointSet::new(coords, DIM)
}

/// Household-power proxy (7-D): daily-cycle base load plus appliance
/// bursts — a few dense operating points with long low-density excursions.
pub fn power(n: usize, seed: u64) -> PointSet {
    const DIM: usize = 7;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::with_capacity(n * DIM);
    for i in 0..n {
        // Time-of-day phase drives the base load sinusoid.
        let phase = (i % 1440) as f32 / 1440.0 * std::f32::consts::TAU;
        let base = 1.0 + 0.6 * phase.sin();
        // Appliance states: three binary-ish loads with occasional bursts.
        let burst = if rng.gen_bool(0.03) {
            rng.gen_range(2.0..8.0f32)
        } else {
            0.0
        };
        let sub1 = if rng.gen_bool(0.2) { 1.2 } else { 0.05 };
        let sub2 = if rng.gen_bool(0.1) { 2.0 } else { 0.1 };
        let sub3 = base * 0.4;
        let voltage = 240.0 + 2.0 * normal_sample(&mut rng);
        let intensity = (base + burst) * 4.3 + 0.2 * normal_sample(&mut rng);
        coords.extend_from_slice(&[
            base + burst + 0.05 * normal_sample(&mut rng),
            0.1 * base + 0.02 * normal_sample(&mut rng),
            voltage,
            intensity,
            sub1 + 0.03 * normal_sample(&mut rng),
            sub2 + 0.03 * normal_sample(&mut rng),
            sub3 + 0.03 * normal_sample(&mut rng),
        ]);
    }
    PointSet::new(coords, DIM)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        for (ps, dim) in [
            (activity(2000, 1), 4usize),
            (texture_features(2000, 1), 5),
            (power(2000, 1), 7),
        ] {
            assert_eq!(ps.len(), 2000);
            assert_eq!(ps.dim(), dim);
        }
        assert_eq!(activity(500, 2).coords(), activity(500, 2).coords());
    }

    #[test]
    fn activity_has_multiple_regimes() {
        // Variance across the dataset far exceeds within-window variance.
        let ps = activity(20_000, 3);
        let col = |i: usize| ps.point(i)[0] as f64;
        let all_mean = (0..ps.len()).map(col).sum::<f64>() / ps.len() as f64;
        let all_var = (0..ps.len())
            .map(|i| (col(i) - all_mean).powi(2))
            .sum::<f64>()
            / ps.len() as f64;
        let win_mean = (0..100).map(col).sum::<f64>() / 100.0;
        let win_var = (0..100).map(|i| (col(i) - win_mean).powi(2)).sum::<f64>() / 100.0;
        assert!(all_var > 4.0 * win_var, "{all_var} vs {win_var}");
    }

    #[test]
    fn texture_clusters_are_anisotropic() {
        let ps = texture_features(5000, 4);
        assert_eq!(ps.len(), 5000);
        // Sanity: coordinates are finite and bounded.
        assert!(ps.coords().iter().all(|c| c.abs() < 1e4));
    }
}
