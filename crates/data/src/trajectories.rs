//! Road-constrained point generators — proxies for the paper's GPS datasets
//! (`Ngsimlocation3`: vehicle trajectories, `RoadNetwork3`: road network
//! points).
//!
//! The property these datasets contribute to the evaluation is density
//! concentrated along one-dimensional substructures (roads), which produces
//! long dendrogram chains (`Imb` ~ 10²–10³) at low dimensionality.

use pandora_mst::PointSet;
use rand::prelude::*;

/// Vehicle-trajectory proxy: vehicles random-walk along a Manhattan grid of
/// roads, emitting GPS-noised positions.
pub fn gps_trajectories(n: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    const GRID: usize = 24; // number of grid lines per axis
    const SPACING: f32 = 100.0; // meters between roads
    const NOISE: f32 = 2.0; // GPS noise, meters
    let n_vehicles = (n / 200).max(1);
    let steps = n / n_vehicles;
    let mut coords = Vec::with_capacity(n * 2);
    for _ in 0..n_vehicles {
        // Start at a random intersection; move along axes.
        let mut x = rng.gen_range(0..GRID) as f32 * SPACING;
        let mut y = rng.gen_range(0..GRID) as f32 * SPACING;
        let mut along_x = rng.gen_bool(0.5);
        for _ in 0..steps {
            let speed = rng.gen_range(5.0..15.0f32);
            if along_x {
                x += speed * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                x = x.clamp(0.0, (GRID - 1) as f32 * SPACING);
            } else {
                y += speed * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                y = y.clamp(0.0, (GRID - 1) as f32 * SPACING);
            }
            // Turn at intersections occasionally.
            if rng.gen_bool(0.05) {
                // Snap to the nearest road line before switching axis.
                if along_x {
                    x = (x / SPACING).round() * SPACING;
                } else {
                    y = (y / SPACING).round() * SPACING;
                }
                along_x = !along_x;
            }
            coords.push(x + NOISE * rng.gen_range(-1.0f32..=1.0));
            coords.push(y + NOISE * rng.gen_range(-1.0f32..=1.0));
        }
    }
    coords.truncate(n * 2);
    // Pad if vehicle/step rounding fell short.
    while coords.len() < n * 2 {
        let v = coords[coords.len() - 2] + rng.gen_range(-1.0f32..=1.0);
        coords.push(v);
    }
    PointSet::new(coords, 2)
}

/// Road-network proxy: points jittered along the edges of a random planar
/// graph (matches the 3D-road-network dataset's "points on roads" profile,
/// projected to 2D as the paper uses only x/y for clustering).
pub fn road_network(n: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    const NODES: usize = 120;
    const WORLD: f32 = 10_000.0;
    // Random junctions.
    let junctions: Vec<(f32, f32)> = (0..NODES)
        .map(|_| (rng.gen_range(0.0..WORLD), rng.gen_range(0.0..WORLD)))
        .collect();
    // Connect each junction to its 2 nearest neighbours — a sparse,
    // road-like graph.
    let mut segments: Vec<((f32, f32), (f32, f32))> = Vec::new();
    for (i, &a) in junctions.iter().enumerate() {
        let mut dists: Vec<(f32, usize)> = junctions
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, &b)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2), j))
            .collect();
        dists.sort_by(|x, y| x.0.total_cmp(&y.0));
        for &(_, j) in dists.iter().take(2) {
            segments.push((a, junctions[j]));
        }
    }
    // Sample points along segments with small lateral jitter.
    let mut coords = Vec::with_capacity(n * 2);
    for _ in 0..n {
        let &(a, b) = &segments[rng.gen_range(0..segments.len())];
        let t: f32 = rng.gen();
        let x = a.0 + t * (b.0 - a.0) + rng.gen_range(-5.0f32..=5.0);
        let y = a.1 + t * (b.1 - a.1) + rng.gen_range(-5.0f32..=5.0);
        coords.push(x);
        coords.push(y);
    }
    PointSet::new(coords, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gps_emits_n_2d_points() {
        let ps = gps_trajectories(10_000, 1);
        assert_eq!(ps.len(), 10_000);
        assert_eq!(ps.dim(), 2);
    }

    #[test]
    fn road_network_emits_n_points() {
        let ps = road_network(5_000, 2);
        assert_eq!(ps.len(), 5_000);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            gps_trajectories(500, 3).coords(),
            gps_trajectories(500, 3).coords()
        );
        assert_eq!(road_network(500, 3).coords(), road_network(500, 3).coords());
    }

    #[test]
    fn points_lie_near_one_dimensional_structures() {
        // Road points: for most points the nearest neighbour is very close
        // (linear density), much closer than the 2-D uniform expectation.
        let ps = road_network(4_000, 5);
        let mut close = 0;
        for i in 0..300usize {
            let mut best = f32::INFINITY;
            for j in 0..ps.len() {
                if i != j {
                    best = best.min(ps.dist2(i, j));
                }
            }
            // Uniform 2-D expectation for 4k pts in 10k² world: ~80 m
            // spacing; on-road spacing is far tighter.
            if best.sqrt() < 40.0 {
                close += 1;
            }
        }
        assert!(close > 250, "only {close}/300 points near structures");
    }
}
