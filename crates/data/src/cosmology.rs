//! Soneira–Peebles hierarchical clustering model — the proxy for the
//! paper's HACC cosmology datasets (`Hacc37M`, `Hacc497M`).
//!
//! HACC snapshots are N-body particle distributions whose defining property
//! for this paper is extreme hierarchical clustering: dendrogram skew
//! `Imb ≈ 10⁵` (Table 2). The Soneira–Peebles construction (ApJ 1978) was
//! designed to replicate exactly that: starting from a sphere of radius
//! `r0`, place `eta` child spheres of radius `r0/lambda` at random positions
//! inside, recurse `levels` deep, and emit one point per leaf sphere. The
//! result has a power-law correlation function like the cosmic matter
//! distribution — giving the same "halos within halos" skew profile that
//! makes dendrogram construction hard.

use pandora_mst::PointSet;
use rand::prelude::*;

/// Soneira–Peebles generator parameters.
#[derive(Debug, Clone)]
pub struct SoneiraPeebles {
    /// Dimensionality (3 for the HACC proxy).
    pub dim: usize,
    /// Children per sphere.
    pub eta: usize,
    /// Radius shrink factor per level (> 1).
    pub lambda: f32,
    /// Recursion depth.
    pub levels: usize,
    /// Number of independent top-level spheres ("halos").
    pub n_halos: usize,
}

impl SoneiraPeebles {
    /// Chooses parameters producing approximately `n` points in `dim`-D.
    pub fn with_target_size(n: usize, dim: usize) -> Self {
        // eta^levels points per halo; keep eta moderate and solve for depth.
        let eta = 4usize;
        let n_halos = 32.max(n / 500_000);
        let per_halo = (n / n_halos).max(1);
        let levels = ((per_halo as f64).ln() / (eta as f64).ln())
            .round()
            .max(1.0) as usize;
        Self {
            dim,
            eta,
            lambda: 1.9,
            levels,
            n_halos,
        }
    }

    /// Number of points this configuration emits.
    pub fn n_points(&self) -> usize {
        self.n_halos * self.eta.pow(self.levels as u32)
    }

    /// Runs the generator.
    pub fn generate(&self, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = self.dim;
        let mut coords = Vec::with_capacity(self.n_points() * dim);
        // Halos uniform in a unit box; initial sphere radius chosen so halos
        // overlap rarely.
        let r0 = 0.5 / (self.n_halos as f32).powf(1.0 / dim as f32);
        let mut center = vec![0.0f32; dim];
        for _ in 0..self.n_halos {
            for c in center.iter_mut() {
                *c = rng.gen::<f32>();
            }
            self.recurse(&mut rng, &mut coords, &center, r0, self.levels);
        }
        PointSet::new(coords, dim)
    }

    fn recurse(
        &self,
        rng: &mut StdRng,
        coords: &mut Vec<f32>,
        center: &[f32],
        radius: f32,
        level: usize,
    ) {
        if level == 0 {
            coords.extend_from_slice(center);
            return;
        }
        let child_r = radius / self.lambda;
        let mut child = vec![0.0f32; self.dim];
        for _ in 0..self.eta {
            // Random offset inside the sphere (rejection-free: sample a
            // direction and a radius with the right density).
            loop {
                let mut norm2 = 0.0f32;
                for c in child.iter_mut() {
                    *c = rng.gen_range(-1.0..=1.0);
                    norm2 += *c * *c;
                }
                if norm2 <= 1.0 {
                    break;
                }
            }
            for (d, c) in child.iter_mut().enumerate() {
                *c = center[d] + *c * (radius - child_r).max(0.0);
            }
            let child_center = child.clone();
            self.recurse(rng, coords, &child_center, child_r, level - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_expected_count() {
        let sp = SoneiraPeebles {
            dim: 3,
            eta: 3,
            lambda: 2.0,
            levels: 4,
            n_halos: 5,
        };
        let ps = sp.generate(11);
        assert_eq!(ps.len(), 5 * 81);
        assert_eq!(ps.dim(), 3);
    }

    #[test]
    fn target_size_close() {
        let sp = SoneiraPeebles::with_target_size(100_000, 3);
        let n = sp.n_points();
        assert!(
            (20_000..=500_000).contains(&n),
            "target 100k produced {n} points"
        );
    }

    #[test]
    fn hierarchical_structure_is_clustered() {
        // Pair distances within a halo are far below the box scale.
        let sp = SoneiraPeebles {
            dim: 3,
            eta: 4,
            lambda: 2.0,
            levels: 3,
            n_halos: 4,
        };
        let ps = sp.generate(3);
        let per_halo = 64usize;
        // First halo's points.
        let mut intra_max: f32 = 0.0;
        for i in 0..per_halo {
            for j in (i + 1)..per_halo {
                intra_max = intra_max.max(ps.dist2(i, j));
            }
        }
        // Halo radius r0 ≈ 0.5/4^(1/3) ≈ 0.315 ⇒ intra diameter² ≲ 0.4.
        assert!(intra_max < 0.5, "intra-halo spread {intra_max}");
    }

    #[test]
    fn deterministic() {
        let sp = SoneiraPeebles::with_target_size(5000, 3);
        assert_eq!(sp.generate(1).coords(), sp.generate(1).coords());
    }
}
