//! Point-set persistence: a compact binary format and CSV.
//!
//! The binary layout is `magic(4) | dim(u32 LE) | n(u64 LE) | coords(f32 LE…)`,
//! written/parsed with the `bytes` crate.

use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};
use pandora_mst::PointSet;

const MAGIC: &[u8; 4] = b"PNDR";

/// Serializes a point set to the binary format.
pub fn to_bytes(points: &PointSet) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(16 + points.coords().len() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(points.dim() as u32);
    buf.put_u64_le(points.len() as u64);
    for &c in points.coords() {
        buf.put_f32_le(c);
    }
    buf.to_vec()
}

/// Parses the binary format.
pub fn from_bytes(mut data: &[u8]) -> Result<PointSet, String> {
    if data.len() < 16 || &data[..4] != MAGIC {
        return Err("not a PNDR point file".into());
    }
    data.advance(4);
    let dim = data.get_u32_le() as usize;
    let n = data.get_u64_le() as usize;
    let expected = n
        .checked_mul(dim)
        .and_then(|c| c.checked_mul(4))
        .ok_or("size overflow")?;
    if data.remaining() != expected {
        return Err(format!(
            "truncated point file: expected {expected} coord bytes, found {}",
            data.remaining()
        ));
    }
    let mut coords = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        coords.push(data.get_f32_le());
    }
    Ok(PointSet::new(coords, dim))
}

/// Writes the binary format to a file.
pub fn save(points: &PointSet, path: &Path) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&to_bytes(points))?;
    f.flush()
}

/// Reads the binary format from a file.
pub fn load(path: &Path) -> std::io::Result<PointSet> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    from_bytes(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Writes points as CSV (no header), one point per line.
pub fn save_csv(points: &PointSet, path: &Path) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for i in 0..points.len() {
        let p = points.point(i);
        for (d, c) in p.iter().enumerate() {
            if d > 0 {
                write!(out, ",")?;
            }
            write!(out, "{c}")?;
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Reads headerless CSV points.
pub fn load_csv(path: &Path) -> std::io::Result<PointSet> {
    let text = std::fs::read_to_string(path)?;
    let mut coords = Vec::new();
    let mut dim = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row: Result<Vec<f32>, _> = line.split(',').map(|t| t.trim().parse()).collect();
        let row = row.map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        if dim == 0 {
            dim = row.len();
        } else if row.len() != dim {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: inconsistent dimension", lineno + 1),
            ));
        }
        coords.extend_from_slice(&row);
    }
    if dim == 0 {
        return Ok(PointSet::new(Vec::new(), 1));
    }
    Ok(PointSet::new(coords, dim))
}

const DENDRO_MAGIC: &[u8; 4] = b"PNDD";

/// Serializes a dendrogram (parent arrays + weights) to bytes.
///
/// Layout: `magic(4) | n_edges(u64) | n_vertices(u64) | edge_parent(u32…) |
/// vertex_parent(u32…) | edge_weight(f32…)`, all little-endian.
pub fn dendrogram_to_bytes(d: &pandora_core::Dendrogram) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(20 + d.n_edges() * 8 + d.n_vertices() * 4);
    buf.put_slice(DENDRO_MAGIC);
    buf.put_u64_le(d.n_edges() as u64);
    buf.put_u64_le(d.n_vertices() as u64);
    for &p in &d.edge_parent {
        buf.put_u32_le(p);
    }
    for &p in &d.vertex_parent {
        buf.put_u32_le(p);
    }
    for &w in &d.edge_weight {
        buf.put_f32_le(w);
    }
    buf.to_vec()
}

/// Parses [`dendrogram_to_bytes`]' format, re-validating the structure.
pub fn dendrogram_from_bytes(mut data: &[u8]) -> Result<pandora_core::Dendrogram, String> {
    if data.len() < 20 || &data[..4] != DENDRO_MAGIC {
        return Err("not a PNDD dendrogram file".into());
    }
    data.advance(4);
    let n_edges = data.get_u64_le() as usize;
    let n_vertices = data.get_u64_le() as usize;
    let expected = n_edges
        .checked_mul(8)
        .and_then(|b| n_vertices.checked_mul(4).map(|v| b + v))
        .ok_or("size overflow")?;
    if data.remaining() != expected {
        return Err(format!(
            "truncated dendrogram file: expected {expected} bytes, found {}",
            data.remaining()
        ));
    }
    let mut edge_parent = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        edge_parent.push(data.get_u32_le());
    }
    let mut vertex_parent = Vec::with_capacity(n_vertices);
    for _ in 0..n_vertices {
        vertex_parent.push(data.get_u32_le());
    }
    let mut edge_weight = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        edge_weight.push(data.get_f32_le());
    }
    let d = pandora_core::Dendrogram {
        edge_parent,
        vertex_parent,
        edge_weight,
    };
    d.validate()?;
    Ok(d)
}

/// Writes a dendrogram to a file.
pub fn save_dendrogram(d: &pandora_core::Dendrogram, path: &Path) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&dendrogram_to_bytes(d))?;
    f.flush()
}

/// Reads a dendrogram from a file (validating it).
pub fn load_dendrogram(path: &Path) -> std::io::Result<pandora_core::Dendrogram> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    dendrogram_from_bytes(&data)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::uniform;

    #[test]
    fn binary_roundtrip() {
        let ps = uniform(123, 3, 1);
        let rt = from_bytes(&to_bytes(&ps)).unwrap();
        assert_eq!(rt.dim(), 3);
        assert_eq!(rt.coords(), ps.coords());
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(from_bytes(b"nope").is_err());
        let mut good = to_bytes(&uniform(10, 2, 2));
        good.truncate(good.len() - 1);
        assert!(from_bytes(&good).is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("pandora_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pts.csv");
        let ps = uniform(50, 4, 3);
        save_csv(&ps, &path).unwrap();
        let rt = load_csv(&path).unwrap();
        assert_eq!(rt.len(), 50);
        assert_eq!(rt.dim(), 4);
        for i in 0..ps.coords().len() {
            assert!((rt.coords()[i] - ps.coords()[i]).abs() < 1e-4);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pandora_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pts.bin");
        let ps = uniform(64, 2, 9);
        save(&ps, &path).unwrap();
        let rt = load(&path).unwrap();
        assert_eq!(rt.coords(), ps.coords());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dendrogram_roundtrip() {
        use pandora_core::{pandora, Edge};
        let ctx = pandora_exec::ExecCtx::serial();
        let edges: Vec<Edge> = (1..50u32)
            .map(|v| Edge::new(v / 2, v, (v * 37 % 13) as f32))
            .collect();
        let d = pandora::dendrogram(&ctx, 50, &edges);
        let rt = dendrogram_from_bytes(&dendrogram_to_bytes(&d)).unwrap();
        assert_eq!(rt, d);
    }

    #[test]
    fn dendrogram_rejects_corruption() {
        use pandora_core::{pandora, Edge};
        let ctx = pandora_exec::ExecCtx::serial();
        let d = pandora::dendrogram(&ctx, 3, &[Edge::new(0, 1, 2.0), Edge::new(1, 2, 1.0)]);
        let mut bytes = dendrogram_to_bytes(&d);
        // Truncation.
        bytes.pop();
        assert!(dendrogram_from_bytes(&bytes).is_err());
        // Structural corruption: make edge 1 its own parent.
        let mut bytes = dendrogram_to_bytes(&d);
        bytes[20 + 4] = 1;
        bytes[20 + 5] = 0;
        bytes[20 + 6] = 0;
        bytes[20 + 7] = 0;
        assert!(dendrogram_from_bytes(&bytes).is_err());
    }
}
