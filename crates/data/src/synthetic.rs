//! Elementary synthetic distributions (the paper's `Normal*` / `Uniform*`
//! dataset rows) and Gaussian blob mixtures for tests.

use pandora_mst::PointSet;
use rand::prelude::*;

/// `n` points uniform in the unit cube `[0,1]^dim`.
pub fn uniform(n: usize, dim: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    PointSet::new((0..n * dim).map(|_| rng.gen::<f32>()).collect(), dim)
}

/// One standard normal sample via Box–Muller.
pub fn normal_sample(rng: &mut StdRng) -> f32 {
    // Avoid log(0).
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// `n` points from an isotropic standard normal in `dim` dimensions.
pub fn normal(n: usize, dim: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    PointSet::new((0..n * dim).map(|_| normal_sample(&mut rng)).collect(), dim)
}

/// `k` well-separated Gaussian blobs with `n` points total.
///
/// Centers sit on a coarse grid with spacing `separation`; each blob has
/// standard deviation `sigma`. Returns the points and the ground-truth blob
/// label per point (used by clustering tests).
pub fn gaussian_blobs(
    n: usize,
    dim: usize,
    k: usize,
    separation: f32,
    sigma: f32,
    seed: u64,
) -> (PointSet, Vec<u32>) {
    assert!(k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Blob centers: lattice positions scaled by `separation`.
    let side = (k as f64).powf(1.0 / dim as f64).ceil() as usize;
    let centers: Vec<Vec<f32>> = (0..k)
        .map(|c| {
            let mut pos = Vec::with_capacity(dim);
            let mut rem = c;
            for _ in 0..dim {
                pos.push((rem % side) as f32 * separation);
                rem /= side;
            }
            pos
        })
        .collect();
    let mut coords = Vec::with_capacity(n * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        labels.push(c as u32);
        for &center in centers[c].iter().take(dim) {
            coords.push(center + sigma * normal_sample(&mut rng));
        }
    }
    (PointSet::new(coords, dim), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_bounds_and_deterministic() {
        let a = uniform(1000, 3, 7);
        let b = uniform(1000, 3, 7);
        assert_eq!(a.coords(), b.coords());
        assert!(a.coords().iter().all(|&c| (0.0..1.0).contains(&c)));
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let ps = normal(20_000, 1, 3);
        let mean: f64 = ps.coords().iter().map(|&x| x as f64).sum::<f64>() / 20_000.0;
        let var: f64 = ps
            .coords()
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / 20_000.0;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn blobs_are_separated() {
        let (ps, labels) = gaussian_blobs(300, 2, 3, 100.0, 0.5, 1);
        assert_eq!(ps.len(), 300);
        assert_eq!(labels.len(), 300);
        // Points with the same label are much closer than different labels.
        let same = ps.dist2(0, 3); // labels 0 and 0
        let diff = ps.dist2(0, 1); // labels 0 and 1
        assert!(same < diff);
    }
}
