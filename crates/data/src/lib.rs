//! # pandora-data
//!
//! Synthetic dataset generators reproducing the *property profile* of the
//! PANDORA paper's evaluation datasets (Table 2): dimensionality and
//! dendrogram skew (`Imb` = height / log₂ n). Real HACC / NGSIM / PAMAP2 /
//! UCI data cannot ship with this reproduction; DESIGN.md §3 documents the
//! substitution argument per dataset.
//!
//! * [`synthetic`] — uniform, normal, Gaussian blobs;
//! * [`seed_spreader`] — Gan–Tao generator (`VisualVar*` / `VisualSim*`);
//! * [`cosmology`] — Soneira–Peebles hierarchical model (`Hacc*`);
//! * [`trajectories`] — GPS / road-network proxies;
//! * [`sensor`] — activity / texture / power proxies (4/5/7-D);
//! * [`registry`] — Table 2 as data: every row with paper metadata and a
//!   scaled generator;
//! * [`io`] — binary and CSV persistence.

pub mod cosmology;
pub mod io;
pub mod registry;
pub mod seed_spreader;
pub mod sensor;
pub mod synthetic;
pub mod trajectories;

pub use registry::{all_datasets, by_name, DatasetKind, DatasetSpec};
