//! The dataset registry mirroring the paper's Table 2.
//!
//! Every row of Table 2 maps to a generator in this crate (see DESIGN.md §3
//! for the substitution argument per dataset). Generators are scaled by a
//! caller-chosen point count so experiments fit the host machine; paper
//! metadata (original size, measured dendrogram skew `Imb`) is carried along
//! so harnesses can print paper-vs-reproduction columns.

use pandora_mst::PointSet;

use crate::cosmology::SoneiraPeebles;
use crate::seed_spreader::{Density, SeedSpreader};
use crate::sensor::{activity, power, texture_features};
use crate::synthetic::{normal, uniform};
use crate::trajectories::{gps_trajectories, road_network};

/// The datasets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// NGSIM vehicle GPS locations (2-D, 6M, Imb 1e3).
    Ngsimlocation3,
    /// 3D road network, x/y (2-D, 400K, Imb 150).
    RoadNetwork3,
    /// PAMAP2 activity monitoring (4-D, 3.8M, Imb 6e3).
    Pamap2,
    /// IKONOS farm VZ-features (5-D, 3.6M, Imb 5e4).
    Farm,
    /// Household power (7-D, 2.0M, Imb 1e3).
    Household,
    /// HACC cosmology, small run (3-D, 37M, Imb 1e5).
    Hacc37M,
    /// HACC cosmology, large run (3-D, 497M, Imb 6e5).
    Hacc497M,
    /// Gan–Tao variable-density (2-D, 10M, Imb 3e3).
    VisualVar10M2D,
    /// Gan–Tao variable-density (3-D, 10M, Imb 1e4).
    VisualVar10M3D,
    /// Gan–Tao similar-density (5-D, 10M, Imb 43).
    VisualSim10M5D,
    /// Random normal (2-D, 100M, Imb 1e5).
    Normal100M2D,
    /// Random normal (2-D, 300M, Imb 4e5).
    Normal300M2D,
    /// Random normal (3-D, 100M, Imb 4e5).
    Normal100M3D,
    /// Random uniform (2-D, 100M, Imb 1e5).
    Uniform100M2D,
    /// Random uniform (3-D, 100M, Imb 4e5).
    Uniform100M3D,
}

/// Static description of one Table 2 row.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Which dataset.
    pub kind: DatasetKind,
    /// Table 2 name.
    pub name: &'static str,
    /// Dimensionality.
    pub dim: usize,
    /// Point count used in the paper.
    pub paper_npts: u64,
    /// Dendrogram skew reported in the paper (`Imb` column).
    pub paper_imb: f64,
    /// Table 2 description.
    pub desc: &'static str,
}

/// All Table 2 rows, in the paper's order.
pub fn all_datasets() -> Vec<DatasetSpec> {
    use DatasetKind::*;
    vec![
        DatasetSpec {
            kind: Ngsimlocation3,
            name: "Ngsimlocation3",
            dim: 2,
            paper_npts: 6_000_000,
            paper_imb: 1e3,
            desc: "GPS loc",
        },
        DatasetSpec {
            kind: RoadNetwork3,
            name: "RoadNetwork3",
            dim: 2,
            paper_npts: 400_000,
            paper_imb: 150.0,
            desc: "Road network",
        },
        DatasetSpec {
            kind: Pamap2,
            name: "Pamap2",
            dim: 4,
            paper_npts: 3_800_000,
            paper_imb: 6e3,
            desc: "Activity monitoring",
        },
        DatasetSpec {
            kind: Farm,
            name: "Farm",
            dim: 5,
            paper_npts: 3_600_000,
            paper_imb: 5e4,
            desc: "VZ-features",
        },
        DatasetSpec {
            kind: Household,
            name: "Household",
            dim: 7,
            paper_npts: 2_000_000,
            paper_imb: 1e3,
            desc: "Household power",
        },
        DatasetSpec {
            kind: Hacc37M,
            name: "Hacc37M",
            dim: 3,
            paper_npts: 37_000_000,
            paper_imb: 1e5,
            desc: "Cosmology",
        },
        DatasetSpec {
            kind: Hacc497M,
            name: "Hacc497M",
            dim: 3,
            paper_npts: 497_000_000,
            paper_imb: 6e5,
            desc: "Cosmology",
        },
        DatasetSpec {
            kind: VisualVar10M2D,
            name: "VisualVar10M2D",
            dim: 2,
            paper_npts: 10_000_000,
            paper_imb: 3e3,
            desc: "GAN (var. density)",
        },
        DatasetSpec {
            kind: VisualVar10M3D,
            name: "VisualVar10M3D",
            dim: 3,
            paper_npts: 10_000_000,
            paper_imb: 1e4,
            desc: "GAN (var. density)",
        },
        DatasetSpec {
            kind: VisualSim10M5D,
            name: "VisualSim10M5D",
            dim: 5,
            paper_npts: 10_000_000,
            paper_imb: 43.0,
            desc: "GAN (sim. density)",
        },
        DatasetSpec {
            kind: Normal100M2D,
            name: "Normal100M2D",
            dim: 2,
            paper_npts: 100_000_000,
            paper_imb: 1e5,
            desc: "Random (normal)",
        },
        DatasetSpec {
            kind: Normal300M2D,
            name: "Normal300M2D",
            dim: 2,
            paper_npts: 300_000_000,
            paper_imb: 4e5,
            desc: "Random (normal)",
        },
        DatasetSpec {
            kind: Normal100M3D,
            name: "Normal100M3D",
            dim: 3,
            paper_npts: 100_000_000,
            paper_imb: 4e5,
            desc: "Random (normal)",
        },
        DatasetSpec {
            kind: Uniform100M2D,
            name: "Uniform100M2D",
            dim: 2,
            paper_npts: 100_000_000,
            paper_imb: 1e5,
            desc: "Random (uniform)",
        },
        DatasetSpec {
            kind: Uniform100M3D,
            name: "Uniform100M3D",
            dim: 3,
            paper_npts: 100_000_000,
            paper_imb: 4e5,
            desc: "Random (uniform)",
        },
    ]
}

/// Looks a dataset up by its Table 2 name.
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    all_datasets().into_iter().find(|d| d.name == name)
}

impl DatasetSpec {
    /// Generates a scaled instance with approximately `n` points.
    ///
    /// The exact count may differ slightly for generators with structural
    /// constraints (e.g. the cosmology model emits `halos × ηᴸ` points).
    pub fn generate(&self, n: usize, seed: u64) -> PointSet {
        use DatasetKind::*;
        match self.kind {
            Ngsimlocation3 => gps_trajectories(n, seed),
            RoadNetwork3 => road_network(n, seed),
            Pamap2 => activity(n, seed),
            Farm => texture_features(n, seed),
            Household => power(n, seed),
            Hacc37M | Hacc497M => SoneiraPeebles::with_target_size(n, 3).generate(seed),
            VisualVar10M2D => SeedSpreader::new(n, 2, Density::Variable).generate(seed),
            VisualVar10M3D => SeedSpreader::new(n, 3, Density::Variable).generate(seed),
            VisualSim10M5D => SeedSpreader::new(n, 5, Density::Similar).generate(seed),
            Normal100M2D | Normal300M2D => normal(n, 2, seed),
            Normal100M3D => normal(n, 3, seed),
            Uniform100M2D => uniform(n, 2, seed),
            Uniform100M3D => uniform(n, 3, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table2_shape() {
        let all = all_datasets();
        assert_eq!(all.len(), 15);
        for spec in &all {
            let ps = spec.generate(2000, 42);
            assert_eq!(ps.dim(), spec.dim, "{}", spec.name);
            assert!(
                ps.len() >= 500 && ps.len() <= 8000,
                "{}: scaled size {} far from target",
                spec.name,
                ps.len()
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("Hacc37M").unwrap().dim, 3);
        assert!(by_name("nope").is_none());
    }
}
