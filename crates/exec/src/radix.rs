//! Parallel LSD radix sort for unsigned keys.
//!
//! Sorting dominates PANDORA's runtime (the paper's Fig. 13 measures 67–85%
//! of CPU time in sorting) and is its most scalable phase (Fig. 12), so the
//! substrate provides a histogram/scan/scatter radix sort — the same
//! construction GPU sorting libraries use — in addition to the comparison
//! merge sort.
//!
//! The sort processes 8-bit digits LSD-first. Each pass computes per-chunk
//! histograms in parallel, turns them into per-(digit, chunk) offsets with
//! one sequential scan over `256 × n_chunks` counters (digit-major so the
//! sort stays stable), and scatters in parallel. Passes whose digit column
//! is constant are skipped — important for PANDORA's chain keys, whose high
//! bytes are mostly empty.

use crate::trace::KernelKind;
use crate::{ExecCtx, UnsafeSlice};

const RADIX_BITS: usize = 8;
const RADIX_SIZE: usize = 1 << RADIX_BITS; // 256
const SEQ_THRESHOLD: usize = 16 * 1024;

/// Sorts `keys` ascending (stable, not that it matters for bare keys).
pub fn par_radix_sort_u64(ctx: &ExecCtx, keys: &mut [u64]) {
    let n = keys.len();
    if ctx.is_serial() || n < SEQ_THRESHOLD {
        ctx.record(KernelKind::RadixPass, (n * 4) as u64, (n * 8 * 4) as u64);
        keys.sort_unstable();
        return;
    }
    let mut aux = vec![0u64; n];
    let mut src_is_keys = true;
    for pass in 0..(64 / RADIX_BITS) {
        let shift = pass * RADIX_BITS;
        let reordered = if src_is_keys {
            radix_pass(ctx, keys, &mut aux, shift, |_, _| {})
        } else {
            radix_pass(ctx, &aux, keys, shift, |_, _| {})
        };
        if reordered {
            src_is_keys = !src_is_keys;
        }
    }
    if !src_is_keys {
        keys.copy_from_slice(&aux);
    }
}

/// Sorts `(keys, values)` pairs ascending by key, stably.
pub fn par_radix_sort_pairs(ctx: &ExecCtx, keys: &mut Vec<u64>, values: &mut Vec<u32>) {
    assert_eq!(keys.len(), values.len());
    let n = keys.len();
    if ctx.is_serial() || n < SEQ_THRESHOLD {
        ctx.record(KernelKind::RadixPass, (n * 4) as u64, (n * 12 * 4) as u64);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_by_key(|&i| keys[i as usize]);
        let old_keys = std::mem::take(keys);
        let old_vals = std::mem::take(values);
        *keys = perm.iter().map(|&i| old_keys[i as usize]).collect();
        *values = perm.iter().map(|&i| old_vals[i as usize]).collect();
        return;
    }
    let mut key_aux = vec![0u64; n];
    let mut val_aux = vec![0u32; n];
    let mut src_is_primary = true;
    for pass in 0..(64 / RADIX_BITS) {
        let shift = pass * RADIX_BITS;
        let reordered = if src_is_primary {
            let vals_view = UnsafeSlice::new(values);
            let val_aux_view = UnsafeSlice::new(&mut val_aux);
            radix_pass(
                ctx,
                keys,
                &mut key_aux,
                shift,
                // SAFETY (both closures): the destination index is unique per
                // element within a pass, and source reads are read-only.
                |i, out| unsafe { val_aux_view.write(out, vals_view.read(i)) },
            )
        } else {
            let vals_view = UnsafeSlice::new(values);
            let val_aux_view = UnsafeSlice::new(&mut val_aux);
            radix_pass(ctx, &key_aux, keys, shift, |i, out| {
                // SAFETY: `out` is the scatter destination computed from the
                // exclusive per-digit prefix sums, so it is unique per element
                // within the pass; reads from the source side are read-only.
                unsafe { vals_view.write(out, val_aux_view.read(i)) }
            })
        };
        if reordered {
            src_is_primary = !src_is_primary;
        }
    }
    if !src_is_primary {
        keys.copy_from_slice(&key_aux);
        values.copy_from_slice(&val_aux);
    }
}

/// One radix pass: distributes `src` into `dst` by the digit at `shift`.
///
/// Returns `false` (and leaves `dst` untouched) when the digit column is
/// constant, i.e. the pass would be the identity permutation.
///
/// `move_payload(src_index, dst_index)` is invoked for every scattered
/// element so callers can carry a payload array along.
fn radix_pass<FPayload>(
    ctx: &ExecCtx,
    src: &[u64],
    dst: &mut [u64],
    shift: usize,
    move_payload: FPayload,
) -> bool
where
    FPayload: Fn(usize, usize) + Sync,
{
    let n = src.len();
    let lanes = ctx.lanes();
    let n_chunks = (lanes * 4).min(n.div_ceil(1024)).max(1);
    let chunk = n.div_ceil(n_chunks);
    ctx.record(KernelKind::RadixPass, n as u64, (n * 8 * 3) as u64);

    // Per-chunk histograms.
    let mut hist = vec![0u32; n_chunks * RADIX_SIZE];
    {
        let hist_view = UnsafeSlice::new(&mut hist);
        let src_ref = src;
        ctx.for_each(n_chunks, 1, |c| {
            let start = c * chunk;
            let end = (start + chunk).min(n);
            let mut local = [0u32; RADIX_SIZE];
            for &k in &src_ref[start..end] {
                local[((k >> shift) & (RADIX_SIZE as u64 - 1)) as usize] += 1;
            }
            for (d, &count) in local.iter().enumerate() {
                // SAFETY: slot (c, d) is owned by chunk c.
                unsafe { hist_view.write(c * RADIX_SIZE + d, count) };
            }
        });
    }

    // Skip identity passes (all keys share the digit).
    let nonzero_digits = (0..RADIX_SIZE)
        .filter(|&d| (0..n_chunks).any(|c| hist[c * RADIX_SIZE + d] > 0))
        .count();
    if nonzero_digits <= 1 {
        return false;
    }

    // Digit-major exclusive scan over (digit, chunk) counters → offsets.
    let mut running = 0u32;
    for d in 0..RADIX_SIZE {
        for c in 0..n_chunks {
            let idx = c * RADIX_SIZE + d;
            let count = hist[idx];
            hist[idx] = running;
            running += count;
        }
    }

    // Scatter.
    {
        let dst_view = UnsafeSlice::new(dst);
        let src_ref = src;
        let hist_ref = &hist;
        let payload_ref = &move_payload;
        ctx.for_each(n_chunks, 1, |c| {
            let start = c * chunk;
            let end = (start + chunk).min(n);
            let mut offsets = [0u32; RADIX_SIZE];
            offsets.copy_from_slice(&hist_ref[c * RADIX_SIZE..(c + 1) * RADIX_SIZE]);
            for (i, &k) in src_ref.iter().enumerate().take(end).skip(start) {
                let d = ((k >> shift) & (RADIX_SIZE as u64 - 1)) as usize;
                let out = offsets[d] as usize;
                offsets[d] += 1;
                // SAFETY: the offset scheme assigns each destination slot to
                // exactly one source element across all chunks.
                unsafe { dst_view.write(out, k) };
                payload_ref(i, out);
            }
        });
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::Arc;

    fn ctxs() -> Vec<ExecCtx> {
        vec![
            ExecCtx::serial(),
            ExecCtx::on_pool(Arc::new(ThreadPool::new(4))),
        ]
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn radix_sorts_like_std() {
        for ctx in ctxs() {
            for n in [0usize, 1, 100, 16 * 1024, 100_000] {
                let mut state = 7u64 + n as u64;
                let mut keys: Vec<u64> = (0..n).map(|_| xorshift(&mut state)).collect();
                let mut expect = keys.clone();
                expect.sort_unstable();
                par_radix_sort_u64(&ctx, &mut keys);
                assert_eq!(keys, expect, "n={n}");
            }
        }
    }

    #[test]
    fn radix_small_key_range_uses_skip_passes() {
        for ctx in ctxs() {
            let n = 80_000usize;
            let mut state = 99u64;
            // Keys only occupy the low 10 bits: 6 of 8 passes are identity.
            let mut keys: Vec<u64> = (0..n).map(|_| xorshift(&mut state) & 0x3FF).collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            par_radix_sort_u64(&ctx, &mut keys);
            assert_eq!(keys, expect);
        }
    }

    #[test]
    fn radix_pairs_stable_and_consistent() {
        for ctx in ctxs() {
            let n = 70_000usize;
            let mut state = 1234u64;
            let mut keys: Vec<u64> = (0..n).map(|_| xorshift(&mut state) % 257).collect();
            let mut values: Vec<u32> = (0..n as u32).collect();
            let expect: Vec<(u64, u32)> = {
                let mut pairs: Vec<(u64, u32)> =
                    keys.iter().copied().zip(values.iter().copied()).collect();
                pairs.sort_by_key(|&(k, v)| (k, v)); // stable ⇒ value order = index order
                pairs
            };
            par_radix_sort_pairs(&ctx, &mut keys, &mut values);
            let got: Vec<(u64, u32)> = keys.into_iter().zip(values).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn radix_all_equal_keys() {
        for ctx in ctxs() {
            let mut keys = vec![42u64; 50_000];
            par_radix_sort_u64(&ctx, &mut keys);
            assert!(keys.iter().all(|&k| k == 42));
        }
    }
}
