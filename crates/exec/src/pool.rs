//! A persistent fork–join thread pool.
//!
//! The pool keeps `n_workers` parked threads alive for the lifetime of the
//! process and broadcasts *one job to every worker* per parallel region
//! ([`ThreadPool::broadcast`]). The calling thread participates as an extra
//! worker, so a pool built with [`ThreadPool::with_default_parallelism`] uses
//! exactly `available_parallelism` lanes. Work distribution *within* a region
//! is done by the parallel primitives in `crate::par` via shared atomic
//! cursors, so the pool itself stays tiny and allocation-free per call.
//!
//! # Panic safety
//!
//! A panic inside a worker's share of a job is caught on that worker: a
//! drop guard poisons and counts down the region's latch first (so the
//! caller never deadlocks and `broadcast` re-raises the panic once all
//! lanes have finished), then the worker returns to its queue — the thread
//! survives and the pool keeps its full lane count. Should a worker thread
//! ever die anyway (e.g. a panic payload whose `Drop` panics), the next
//! `broadcast` detects it and **respawns** that lane before sending work.
//! The worker may not simply let panics unwind its thread: a concurrent
//! `broadcast` could already have queued a job on the dying worker's
//! channel, and that job's latch would never be counted. Catching keeps
//! every queued job owned by a live consumer; a panicking job degrades one
//! region, not the process (north-star requirement for service use).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;

use crate::latch::Latch;

/// A job sent to every worker of the pool for one parallel region.
struct Job {
    /// Lifetime-erased closure; see SAFETY in [`ThreadPool::broadcast`].
    func: &'static (dyn Fn(usize) + Sync),
    latch: Arc<Latch>,
}

/// One background worker: its job channel and thread handle.
struct Worker {
    tx: Sender<Job>,
    handle: JoinHandle<()>,
}

fn spawn_worker(worker_idx: usize) -> Worker {
    let (tx, rx) = bounded::<Job>(1);
    let handle = std::thread::Builder::new()
        .name(format!("pandora-worker-{worker_idx}"))
        .spawn(move || {
            for job in rx.iter() {
                let result = catch_unwind(AssertUnwindSafe(|| (job.func)(worker_idx)));
                if result.is_err() {
                    job.latch.poison();
                }
                // Count down strictly after the poison so the waiter
                // observes it; the worker then loops for the next job.
                job.latch.count_down();
            }
        })
        .expect("failed to spawn pool worker");
    Worker { tx, handle }
}

/// A fixed-size fork–join worker pool.
pub struct ThreadPool {
    n_workers: usize,
    /// Locked only for the send phase of a broadcast (and respawns); the
    /// caller's own work and the latch wait happen outside the lock.
    workers: Mutex<Vec<Worker>>,
}

impl ThreadPool {
    /// Creates a pool with `lanes` total execution lanes (including the
    /// calling thread), i.e. `lanes - 1` background workers.
    pub fn new(lanes: usize) -> Self {
        let n_workers = lanes.max(1) - 1;
        Self {
            n_workers,
            workers: Mutex::new((0..n_workers).map(spawn_worker).collect()),
        }
    }

    /// Creates a pool sized to `std::thread::available_parallelism`,
    /// overridable via the `PANDORA_THREADS` environment variable.
    ///
    /// `PANDORA_THREADS` (a positive integer) pins the lane count exactly —
    /// `PANDORA_THREADS=1` really is a one-lane pool where `broadcast` runs
    /// inline, which the CI thread matrix uses to exercise both extremes.
    ///
    /// When auto-detecting, the lane count is **clamped to at least 2**:
    /// on a single-CPU machine (small CI runners, constrained containers) a
    /// 1-lane pool would run every "parallel" region inline on the caller,
    /// so tests comparing serial against threaded execution would silently
    /// never cross a thread boundary and data races could never surface.
    /// Two lanes keep one real worker thread alive at the cost of some
    /// time-slicing; callers that truly want inline execution ask for it
    /// explicitly (`ThreadPool::new(1)` or `PANDORA_THREADS=1`).
    pub fn with_default_parallelism() -> Self {
        let detected = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let env = std::env::var("PANDORA_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok());
        Self::new(default_lanes(env, detected))
    }

    /// The number of execution lanes (workers + the calling thread).
    pub fn lanes(&self) -> usize {
        self.n_workers + 1
    }

    /// Runs `f(lane_index)` once on every lane (workers and the caller),
    /// returning when all lanes have finished.
    ///
    /// Workers that died in an earlier panicking region are respawned
    /// before the job is sent, so every broadcast runs on the full lane
    /// count.
    ///
    /// # Panics
    ///
    /// Re-raises a panic on the calling thread if any lane panicked.
    pub fn broadcast<F: Fn(usize) + Sync>(&self, f: &F) {
        if self.n_workers == 0 {
            f(0);
            return;
        }
        let latch = Arc::new(Latch::new(self.n_workers));
        let erased: &(dyn Fn(usize) + Sync) = f;
        // SAFETY: the job borrows `f` only until `latch.wait()` returns below,
        // and `broadcast` does not return before that, so the reference never
        // outlives the closure. The latch is counted down even on panic (the
        // worker-side JobGuard runs during unwinds).
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(erased) };
        {
            let mut workers = self.workers.lock();
            for (idx, worker) in workers.iter_mut().enumerate() {
                // A worker that panicked in a previous region is gone; give
                // its lane a fresh thread before handing out the job.
                if worker.handle.is_finished() {
                    *worker = spawn_worker(idx);
                }
                let job = Job {
                    func: erased,
                    latch: Arc::clone(&latch),
                };
                if let Err(failed) = worker.tx.send(job) {
                    // The worker died between the liveness check and the
                    // send (it can only exit by panicking mid-job, and jobs
                    // are not in flight here — but stay defensive).
                    *worker = spawn_worker(idx);
                    worker
                        .tx
                        .send(failed.0)
                        .expect("freshly spawned pool worker rejected its job");
                }
            }
        }
        // The caller participates as the last lane.
        let caller_result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self.n_workers)));
        let poisoned = latch.wait();
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        if poisoned {
            panic!("a pandora-exec pool worker panicked during a parallel region");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        let workers = std::mem::take(&mut *self.workers.lock());
        // Dropping the senders closes the channels; workers exit their loops.
        let handles: Vec<JoinHandle<()>> = workers.into_iter().map(|w| w.handle).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Resolves the default lane count from an explicit override (the parsed
/// `PANDORA_THREADS` value) and the detected CPU count.
///
/// An override of at least 1 wins verbatim; `0` is ignored as nonsensical.
/// Without an override, the detected count is clamped to at least 2 (see
/// [`ThreadPool::with_default_parallelism`] for why single-CPU hosts must
/// not degenerate to an inline pool).
fn default_lanes(override_lanes: Option<usize>, detected: usize) -> usize {
    match override_lanes {
        Some(lanes) if lanes >= 1 => lanes,
        _ => detected.max(2),
    }
}

/// Returns the process-wide shared pool, created on first use.
pub fn global_pool() -> &'static Arc<ThreadPool> {
    static POOL: OnceLock<Arc<ThreadPool>> = OnceLock::new();
    POOL.get_or_init(|| Arc::new(ThreadPool::with_default_parallelism()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn default_lanes_honours_override_and_clamps_single_cpu() {
        // Explicit override wins exactly, including the 1-lane inline pool.
        assert_eq!(default_lanes(Some(1), 64), 1);
        assert_eq!(default_lanes(Some(4), 1), 4);
        // A zero override is nonsense and falls back to detection.
        assert_eq!(default_lanes(Some(0), 8), 8);
        // Auto-detection clamps single-CPU hosts to 2 lanes so a parallel
        // pool always has at least one real worker thread.
        assert_eq!(default_lanes(None, 1), 2);
        assert_eq!(default_lanes(None, 2), 2);
        assert_eq!(default_lanes(None, 16), 16);
    }

    #[test]
    fn broadcast_runs_on_every_lane() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        pool.broadcast(&|_lane| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn lane_indices_are_distinct() {
        let pool = ThreadPool::new(3);
        let seen = [
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ];
        pool.broadcast(&|lane| {
            seen[lane].fetch_add(1, Ordering::Relaxed);
        });
        for s in &seen {
            assert_eq!(s.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.broadcast(&|lane| {
            assert_eq!(lane, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_survives_many_regions() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.broadcast(&|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 400);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(2);
        pool.broadcast(&|lane| {
            if lane == 0 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn pool_keeps_full_lane_count_across_worker_panics() {
        // Regression for the ROADMAP liveness item: broadcast across a
        // panicking job, then broadcast again — the second region must run
        // on ALL lanes (the dead worker is respawned), not silently fewer,
        // and must not deadlock.
        let pool = ThreadPool::new(4);
        for round in 0..3 {
            let panicking = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.broadcast(&|lane| {
                    if lane < 2 {
                        panic!("boom in lane {lane} round {round}");
                    }
                });
            }));
            assert!(panicking.is_err(), "worker panic must propagate");

            let hits = AtomicUsize::new(0);
            let lanes_seen = [
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ];
            pool.broadcast(&|lane| {
                hits.fetch_add(1, Ordering::Relaxed);
                lanes_seen[lane].fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 4, "round {round}");
            for (lane, seen) in lanes_seen.iter().enumerate() {
                assert_eq!(
                    seen.load(Ordering::Relaxed),
                    1,
                    "lane {lane} missing in round {round}"
                );
            }
        }
    }

    #[test]
    fn caller_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(&|lane| {
                if lane == pool.lanes() - 1 {
                    panic!("caller lane boom");
                }
            });
        }));
        assert!(result.is_err());
        let hits = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }
}
