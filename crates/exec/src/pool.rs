//! A persistent fork–join thread pool.
//!
//! The pool keeps `n_workers` parked threads alive for the lifetime of the
//! process and broadcasts *one job to every worker* per parallel region
//! ([`ThreadPool::broadcast`]). The calling thread participates as an extra
//! worker, so a pool built with [`ThreadPool::with_default_parallelism`] uses
//! exactly `available_parallelism` lanes. Work distribution *within* a region
//! is done by the parallel primitives in `crate::par` via shared atomic
//! cursors, so the pool itself stays tiny and allocation-free per call.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};

use crate::latch::Latch;

/// A job sent to every worker of the pool for one parallel region.
struct Job {
    /// Lifetime-erased closure; see SAFETY in [`ThreadPool::broadcast`].
    func: &'static (dyn Fn(usize) + Sync),
    latch: Arc<Latch>,
}

/// A fixed-size fork–join worker pool.
pub struct ThreadPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `lanes` total execution lanes (including the
    /// calling thread), i.e. `lanes - 1` background workers.
    pub fn new(lanes: usize) -> Self {
        let n_workers = lanes.max(1) - 1;
        let mut senders = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for worker_idx in 0..n_workers {
            let (tx, rx) = bounded::<Job>(1);
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pandora-worker-{worker_idx}"))
                    .spawn(move || {
                        for job in rx.iter() {
                            let result = catch_unwind(AssertUnwindSafe(|| (job.func)(worker_idx)));
                            if result.is_err() {
                                job.latch.poison();
                            }
                            job.latch.count_down();
                        }
                    })
                    .expect("failed to spawn pool worker"),
            );
        }
        Self { senders, handles }
    }

    /// Creates a pool sized to `std::thread::available_parallelism`.
    pub fn with_default_parallelism() -> Self {
        let lanes = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(lanes)
    }

    /// The number of execution lanes (workers + the calling thread).
    pub fn lanes(&self) -> usize {
        self.senders.len() + 1
    }

    /// Runs `f(lane_index)` once on every lane (workers and the caller),
    /// returning when all lanes have finished.
    ///
    /// # Panics
    ///
    /// Re-raises a panic on the calling thread if any worker panicked.
    pub fn broadcast<F: Fn(usize) + Sync>(&self, f: &F) {
        let n_workers = self.senders.len();
        if n_workers == 0 {
            f(0);
            return;
        }
        let latch = Arc::new(Latch::new(n_workers));
        let erased: &(dyn Fn(usize) + Sync) = f;
        // SAFETY: the job borrows `f` only until `latch.wait()` returns below,
        // and `broadcast` does not return before that, so the reference never
        // outlives the closure. The latch is counted down even on panic.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(erased) };
        for tx in &self.senders {
            tx.send(Job {
                func: erased,
                latch: Arc::clone(&latch),
            })
            .expect("pool worker exited prematurely");
        }
        // The caller participates as the last lane.
        let caller_result = catch_unwind(AssertUnwindSafe(|| f(n_workers)));
        let poisoned = latch.wait();
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        if poisoned {
            panic!("a pandora-exec pool worker panicked during a parallel region");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.senders.clear(); // closes channels; workers exit their loops
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Returns the process-wide shared pool, created on first use.
pub fn global_pool() -> &'static Arc<ThreadPool> {
    static POOL: OnceLock<Arc<ThreadPool>> = OnceLock::new();
    POOL.get_or_init(|| Arc::new(ThreadPool::with_default_parallelism()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_on_every_lane() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        pool.broadcast(&|_lane| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn lane_indices_are_distinct() {
        let pool = ThreadPool::new(3);
        let seen = [
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ];
        pool.broadcast(&|lane| {
            seen[lane].fetch_add(1, Ordering::Relaxed);
        });
        for s in &seen {
            assert_eq!(s.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.broadcast(&|lane| {
            assert_eq!(lane, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_survives_many_regions() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.broadcast(&|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 400);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(2);
        pool.broadcast(&|lane| {
            if lane == 0 {
                panic!("boom");
            }
        });
    }
}
