//! Shared-mutable slice views for disjoint parallel writes.
//!
//! Scatter-style kernels (radix sort, compaction, per-block scans) write to
//! provably disjoint indices from multiple threads. Rust's borrow checker
//! cannot see the disjointness through our `Fn(Range<usize>)` task closures,
//! so this module provides a minimal unsafe escape hatch with the safety
//! contract concentrated in one place.

use std::cell::UnsafeCell;

/// A slice that may be written concurrently at **disjoint** indices.
pub struct UnsafeSlice<'a, T> {
    slice: &'a [UnsafeCell<T>],
}

// SAFETY: all access goes through `unsafe` methods whose contract requires
// the caller to guarantee disjointness; the wrapper itself adds no aliasing.
unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}
// SAFETY: shared references only hand out data through the same
// caller-guaranteed-disjoint methods, so cross-thread sharing adds no
// access the Send impl above did not already justify.
unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        let ptr = slice as *mut [T] as *const [UnsafeCell<T>];
        // SAFETY: `UnsafeCell<T>` is `repr(transparent)` over `T`, so the
        // slice layouts match, and the exclusive borrow we hold makes the
        // reinterpreted shared view the only live path to the data.
        let cells = unsafe { &*ptr };
        Self { slice: cells }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.slice.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    ///
    /// No other thread may read or write `index` concurrently.
    #[inline(always)]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.slice.len());
        // SAFETY: the debug-checked bound plus the caller's exclusive claim
        // on `index` make the unchecked access and the write race-free.
        unsafe { *self.slice.get_unchecked(index).get() = value };
    }

    /// Reads the value at `index`.
    ///
    /// # Safety
    ///
    /// No other thread may write `index` concurrently.
    #[inline(always)]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.slice.len());
        // SAFETY: in-bounds per the debug-checked assert; no concurrent
        // writer per the caller's contract.
        unsafe { *self.slice.get_unchecked(index).get() }
    }

    /// Returns a mutable reference to element `index`.
    ///
    /// # Safety
    ///
    /// No other thread may access `index` while the reference lives.
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn get_mut(&self, index: usize) -> &mut T {
        debug_assert!(index < self.slice.len());
        // SAFETY: in-bounds per the debug-checked assert; the caller
        // guarantees the reference is the only live access to `index`.
        unsafe { &mut *self.slice.get_unchecked(index).get() }
    }

    /// Returns a mutable sub-slice for `range`.
    ///
    /// # Safety
    ///
    /// No other thread may access any index in `range` while the slice lives.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.slice.len());
        let base = self.slice.as_ptr() as *mut T;
        // SAFETY: `range` is in bounds of the backing slice, so the offset
        // pointer and length describe live memory; the caller guarantees no
        // other access overlaps the range while the reborrow lives.
        unsafe { std::slice::from_raw_parts_mut(base.add(range.start), range.end - range.start) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn disjoint_parallel_writes_land() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 1000];
        {
            let view = UnsafeSlice::new(&mut data);
            let cursor = AtomicUsize::new(0);
            pool.broadcast(&|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= 1000 {
                    break;
                }
                // SAFETY: the atomic cursor hands out each index exactly once.
                unsafe { view.write(i, i * 3) };
            });
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i * 3);
        }
    }
}
