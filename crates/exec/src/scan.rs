//! Parallel prefix sums (scans) and stream compaction.
//!
//! The paper's tree-contraction step is "equivalent to a prefix sum on an
//! array with 2n entries" (§4.2); every compaction in the pipeline (α-edge
//! filtering, supervertex renumbering, chain segmentation) is built on the
//! two-pass blocked exclusive scan implemented here.

use crate::trace::KernelKind;
use crate::{ExecCtx, UnsafeSlice};

/// Element types that can be scanned.
pub trait ScanNum: Copy + Send + Sync {
    /// Additive identity.
    const ZERO: Self;
    /// Associative addition.
    fn add(self, other: Self) -> Self;
}

macro_rules! impl_scan_num {
    ($($t:ty),*) => {$(
        impl ScanNum for $t {
            const ZERO: Self = 0 as $t;
            #[inline(always)]
            fn add(self, other: Self) -> Self { self + other }
        }
    )*};
}
impl_scan_num!(u32, u64, usize, i64, f32, f64);

/// Minimum block size for the parallel scan; below `4 * BLOCK_MIN` total
/// elements the sequential scan is used directly.
const BLOCK_MIN: usize = 4096;

/// Exclusive prefix sum of `xs` in place; returns the total.
pub fn exclusive_scan_in_place<T: ScanNum>(ctx: &ExecCtx, xs: &mut [T]) -> T {
    let n = xs.len();
    ctx.record(
        KernelKind::Scan,
        n as u64,
        (2 * n * std::mem::size_of::<T>()) as u64,
    );
    if ctx.is_serial() || n < 4 * BLOCK_MIN {
        return seq_exclusive_scan(xs);
    }
    let lanes = ctx.lanes();
    let block = (n.div_ceil(lanes * 4)).max(BLOCK_MIN);
    let nb = n.div_ceil(block);

    // Pass 1: per-block sums.
    let mut sums = vec![T::ZERO; nb];
    {
        let xs_view = UnsafeSlice::new(xs);
        let sums_view = UnsafeSlice::new(&mut sums);
        ctx.for_each(nb, 1, |b| {
            let mut acc = T::ZERO;
            let start = b * block;
            let end = (start + block).min(n);
            for i in start..end {
                // SAFETY: read-only access within this block; no concurrent
                // writer exists during pass 1.
                acc = acc.add(unsafe { xs_view.read(i) });
            }
            // SAFETY: block ids are distinct per task.
            unsafe { sums_view.write(b, acc) };
        });
    }

    // Pass 2: sequential scan of the (small) block sums.
    let total = seq_exclusive_scan(&mut sums);

    // Pass 3: per-block exclusive scan with the block offset.
    {
        let xs_view = UnsafeSlice::new(xs);
        let sums_ref = &sums;
        ctx.for_each(nb, 1, |b| {
            let mut running = sums_ref[b];
            let start = b * block;
            let end = (start + block).min(n);
            for i in start..end {
                // SAFETY: blocks are disjoint index ranges.
                unsafe {
                    let x = xs_view.read(i);
                    xs_view.write(i, running);
                    running = running.add(x);
                }
            }
        });
    }
    total
}

/// Sequential exclusive scan; returns the total.
pub fn seq_exclusive_scan<T: ScanNum>(xs: &mut [T]) -> T {
    let mut running = T::ZERO;
    for x in xs.iter_mut() {
        let v = *x;
        *x = running;
        running = running.add(v);
    }
    running
}

/// Inclusive prefix sum of `xs` in place; returns the total.
pub fn inclusive_scan_in_place<T: ScanNum>(ctx: &ExecCtx, xs: &mut [T]) -> T {
    let n = xs.len();
    ctx.record(
        KernelKind::Scan,
        n as u64,
        (2 * n * std::mem::size_of::<T>()) as u64,
    );
    if ctx.is_serial() || n < 4 * BLOCK_MIN {
        let mut running = T::ZERO;
        for x in xs.iter_mut() {
            running = running.add(*x);
            *x = running;
        }
        return running;
    }
    let lanes = ctx.lanes();
    let block = (n.div_ceil(lanes * 4)).max(BLOCK_MIN);
    let nb = n.div_ceil(block);

    let mut sums = vec![T::ZERO; nb];
    {
        let xs_view = UnsafeSlice::new(xs);
        let sums_view = UnsafeSlice::new(&mut sums);
        ctx.for_each(nb, 1, |b| {
            let mut acc = T::ZERO;
            let start = b * block;
            let end = (start + block).min(n);
            for i in start..end {
                // SAFETY: read-only in pass 1.
                acc = acc.add(unsafe { xs_view.read(i) });
            }
            // SAFETY: distinct block ids.
            unsafe { sums_view.write(b, acc) };
        });
    }
    let total = seq_exclusive_scan(&mut sums);
    {
        let xs_view = UnsafeSlice::new(xs);
        let sums_ref = &sums;
        ctx.for_each(nb, 1, |b| {
            let mut running = sums_ref[b];
            let start = b * block;
            let end = (start + block).min(n);
            for i in start..end {
                // SAFETY: blocks are disjoint index ranges.
                unsafe {
                    running = running.add(xs_view.read(i));
                    xs_view.write(i, running);
                }
            }
        });
    }
    total
}

/// Collects the indices `i` in `0..n` where `pred(i)` holds, in order.
///
/// This is the standard flag–scan–scatter stream compaction.
pub fn compact_indices<F: Fn(usize) -> bool + Sync>(ctx: &ExecCtx, n: usize, pred: F) -> Vec<u32> {
    if ctx.is_serial() || n < 4 * BLOCK_MIN {
        let mut out = Vec::new();
        for i in 0..n {
            if pred(i) {
                out.push(i as u32);
            }
        }
        ctx.record(KernelKind::Scan, n as u64, (n + 4 * out.len()) as u64);
        return out;
    }
    let lanes = ctx.lanes();
    let block = (n.div_ceil(lanes * 4)).max(BLOCK_MIN);
    let nb = n.div_ceil(block);

    let mut counts = vec![0u32; nb];
    {
        let counts_view = UnsafeSlice::new(&mut counts);
        let pred_ref = &pred;
        ctx.for_each(nb, 1, |b| {
            let start = b * block;
            let end = (start + block).min(n);
            let mut c = 0u32;
            for i in start..end {
                c += pred_ref(i) as u32;
            }
            // SAFETY: distinct block ids.
            unsafe { counts_view.write(b, c) };
        });
    }
    let total = exclusive_scan_in_place(ctx, &mut counts);
    let mut out = vec![0u32; total as usize];
    {
        let out_view = UnsafeSlice::new(&mut out);
        let counts_ref = &counts;
        let pred_ref = &pred;
        ctx.for_each_chunk_traced(
            nb,
            1,
            KernelKind::Scan,
            (n + 4 * total as usize) as u64,
            |range| {
                for b in range {
                    let start = b * block;
                    let end = (start + block).min(n);
                    let mut cursor = counts_ref[b] as usize;
                    for i in start..end {
                        if pred_ref(i) {
                            // SAFETY: each output slot is written exactly once:
                            // cursors of different blocks cover disjoint ranges.
                            unsafe { out_view.write(cursor, i as u32) };
                            cursor += 1;
                        }
                    }
                }
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::Arc;

    fn ctxs() -> Vec<ExecCtx> {
        vec![
            ExecCtx::serial(),
            ExecCtx::on_pool(Arc::new(ThreadPool::new(4))),
        ]
    }

    #[test]
    fn exclusive_scan_matches_oracle() {
        for ctx in ctxs() {
            for n in [0usize, 1, 7, 4095, 4096, 50_000] {
                let xs: Vec<u64> = (0..n).map(|i| (i % 13) as u64).collect();
                let mut got = xs.clone();
                let total = exclusive_scan_in_place(&ctx, &mut got);
                let mut expect = xs.clone();
                let expect_total = seq_exclusive_scan(&mut expect);
                assert_eq!(total, expect_total, "n={n}");
                assert_eq!(got, expect, "n={n}");
            }
        }
    }

    #[test]
    fn exclusive_scan_f32() {
        let ctx = ExecCtx::serial();
        let mut xs = vec![0.5f32, 1.5, 2.0];
        let total = exclusive_scan_in_place(&ctx, &mut xs);
        assert_eq!(xs, vec![0.0, 0.5, 2.0]);
        assert_eq!(total, 4.0);
    }

    #[test]
    fn compact_matches_filter() {
        for ctx in ctxs() {
            for n in [0usize, 10, 4095, 65_536] {
                let got = compact_indices(&ctx, n, |i| i % 3 == 0);
                let expect: Vec<u32> = (0..n as u32).filter(|i| i % 3 == 0).collect();
                assert_eq!(got, expect, "n={n}");
            }
        }
    }

    #[test]
    fn compact_all_and_none() {
        for ctx in ctxs() {
            let all = compact_indices(&ctx, 20_000, |_| true);
            assert_eq!(all.len(), 20_000);
            assert_eq!(all[19_999], 19_999);
            let none = compact_indices(&ctx, 20_000, |_| false);
            assert!(none.is_empty());
        }
    }
}
