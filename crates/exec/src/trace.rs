//! Kernel tracing.
//!
//! Every parallel primitive invoked through an [`crate::ExecCtx`] with
//! tracing enabled appends a [`KernelEvent`] describing *what the hardware
//! would have to do*: the kernel kind, the number of elements processed and
//! an estimate of the bytes moved. A trace of a real algorithm run can then
//! be replayed through a [`crate::device::DeviceModel`] to project the run
//! onto hardware that is not present (the paper's MI250X / A100 / 64-core
//! EPYC), preserving the exact kernel sequence and data volumes.

use parking_lot::Mutex;
use std::sync::Arc;

/// The kind of parallel kernel an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Embarrassingly parallel loop over `n` elements.
    For,
    /// Parallel reduction over `n` elements.
    Reduce,
    /// Parallel prefix sum over `n` elements.
    Scan,
    /// One pass of a parallel radix sort (histogram + scatter).
    RadixPass,
    /// Comparison-based parallel merge sort over `n` elements.
    MergeSort,
    /// Irregular gather/scatter of `n` elements (random access dominated).
    Gather,
    /// Lock-free union–find unions over `n` edges (pointer jumping).
    DsuUnion,
    /// Union–find find/compress over `n` elements.
    DsuFind,
    /// Spatial-tree traversal work: `n` query–node visits.
    TreeTraverse,
    /// Spatial-tree construction over `n` points.
    TreeBuild,
    /// Inherently sequential loop over `n` elements (single lane).
    SeqLoop,
}

impl KernelKind {
    /// All kinds, for iteration in the device model tables.
    pub const ALL: [KernelKind; 11] = [
        KernelKind::For,
        KernelKind::Reduce,
        KernelKind::Scan,
        KernelKind::RadixPass,
        KernelKind::MergeSort,
        KernelKind::Gather,
        KernelKind::DsuUnion,
        KernelKind::DsuFind,
        KernelKind::TreeTraverse,
        KernelKind::TreeBuild,
        KernelKind::SeqLoop,
    ];
}

/// One recorded kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct KernelEvent {
    /// What the kernel does.
    pub kind: KernelKind,
    /// Elements processed.
    pub n: u64,
    /// Estimated bytes of memory traffic (reads + writes).
    pub bytes: u64,
    /// Phase label active when the kernel was recorded.
    pub phase: &'static str,
}

/// Default phase label for events recorded outside any explicit phase.
pub const UNPHASED: &str = "other";

/// A thread-safe collector of kernel events.
#[derive(Debug)]
pub struct Tracer {
    inner: Mutex<TracerInner>,
}

#[derive(Debug)]
struct TracerInner {
    events: Vec<KernelEvent>,
    phase: &'static str,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(TracerInner {
                events: Vec::new(),
                phase: UNPHASED,
            }),
        })
    }

    /// Sets the phase label attached to subsequently recorded events.
    pub fn set_phase(&self, phase: &'static str) {
        self.inner.lock().phase = phase;
    }

    /// Records one kernel event.
    pub fn record(&self, kind: KernelKind, n: u64, bytes: u64) {
        let mut inner = self.inner.lock();
        let phase = inner.phase;
        inner.events.push(KernelEvent {
            kind,
            n,
            bytes,
            phase,
        });
    }

    /// Takes a snapshot of all recorded events.
    pub fn snapshot(&self) -> Trace {
        Trace {
            events: self.inner.lock().events.clone(),
        }
    }

    /// Clears all recorded events and resets the phase.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.events.clear();
        inner.phase = UNPHASED;
    }
}

/// An immutable snapshot of recorded kernel events.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The events, in recording order.
    pub events: Vec<KernelEvent>,
}

impl Trace {
    /// Number of recorded kernel launches.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total elements processed across all events of a kind.
    pub fn total_n(&self, kind: KernelKind) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.n)
            .sum()
    }

    /// The distinct phase labels, in first-appearance order.
    pub fn phases(&self) -> Vec<&'static str> {
        let mut phases = Vec::new();
        for e in &self.events {
            if !phases.contains(&e.phase) {
                phases.push(e.phase);
            }
        }
        phases
    }

    /// Restricts the trace to events from one phase.
    pub fn phase(&self, phase: &str) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| e.phase == phase)
                .collect(),
        }
    }

    /// Scales every event's element count and byte volume by `factor`,
    /// keeping the kernel sequence fixed.
    ///
    /// Used to project a feasible-scale run onto the paper's dataset sizes
    /// (e.g. 40 k → 37 M points). The kernel *count* is held constant, which
    /// slightly underestimates large-n work (a few extra contraction levels,
    /// ~log₂ of the factor) — noted in EXPERIMENTS.md.
    pub fn scaled(&self, factor: f64) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .map(|e| KernelEvent {
                    kind: e.kind,
                    n: (e.n as f64 * factor).round() as u64,
                    bytes: (e.bytes as f64 * factor).round() as u64,
                    phase: e.phase,
                })
                .collect(),
        }
    }

    /// Per-kind totals of elements processed, for calibration.
    pub fn kind_totals(&self) -> Vec<(KernelKind, u64, usize)> {
        KernelKind::ALL
            .iter()
            .map(|&k| {
                let total: u64 = self
                    .events
                    .iter()
                    .filter(|e| e.kind == k)
                    .map(|e| e.n)
                    .sum();
                let count = self.events.iter().filter(|e| e.kind == k).count();
                (k, total, count)
            })
            .filter(|&(_, total, count)| total > 0 || count > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_events_with_phases() {
        let tracer = Tracer::new();
        tracer.record(KernelKind::For, 100, 800);
        tracer.set_phase("sort");
        tracer.record(KernelKind::RadixPass, 100, 1600);
        let trace = tracer.snapshot();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events[0].phase, UNPHASED);
        assert_eq!(trace.events[1].phase, "sort");
        assert_eq!(trace.total_n(KernelKind::RadixPass), 100);
        assert_eq!(trace.phases(), vec![UNPHASED, "sort"]);
        assert_eq!(trace.phase("sort").len(), 1);
    }

    #[test]
    fn reset_clears_events() {
        let tracer = Tracer::new();
        tracer.record(KernelKind::Scan, 10, 80);
        tracer.reset();
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn scaled_multiplies_counts_not_launches() {
        let tracer = Tracer::new();
        tracer.record(KernelKind::For, 1_000, 8_000);
        tracer.record(KernelKind::Scan, 500, 4_000);
        let scaled = tracer.snapshot().scaled(10.0);
        assert_eq!(scaled.len(), 2);
        assert_eq!(scaled.events[0].n, 10_000);
        assert_eq!(scaled.events[0].bytes, 80_000);
        assert_eq!(scaled.events[1].n, 5_000);
    }

    #[test]
    fn kind_totals_aggregate() {
        let tracer = Tracer::new();
        tracer.record(KernelKind::For, 10, 80);
        tracer.record(KernelKind::For, 20, 160);
        tracer.record(KernelKind::Scan, 5, 40);
        let totals = tracer.snapshot().kind_totals();
        let for_entry = totals
            .iter()
            .find(|(k, _, _)| *k == KernelKind::For)
            .unwrap();
        assert_eq!((for_entry.1, for_entry.2), (30, 2));
    }
}
