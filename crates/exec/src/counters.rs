//! The workspace's designated home for relaxed-ordering statistics
//! counters.
//!
//! # Why this module exists
//!
//! `Ordering::Relaxed` is the right ordering for exactly one job: counters
//! whose *value* matters but whose *visibility relative to other data*
//! does not. Everything else — flags, handoffs, anything a reader uses to
//! infer that some other memory is initialised — needs stronger ordering,
//! and a stray `Relaxed` in such a site is a heisenbug. The repo's static
//! analyzer (`pandora-lint`, rule PL004) therefore bans `Ordering::Relaxed`
//! everywhere *except* this module; algorithmic uses (the union–find, the
//! Borůvka min-edge flush, work-stealing cursors) carry individual audited
//! waivers at the call site instead.
//!
//! # The audit contract
//!
//! Every counter built from [`RelaxedCounter`] satisfies all of:
//!
//! 1. **Exact-by-RMW.** The only writes are atomic read-modify-write ops
//!    (`fetch_add`/`fetch_sub`), so no increment is ever lost, regardless
//!    of ordering. Relaxed weakens *when* a value becomes visible, never
//!    *whether* the arithmetic is applied.
//! 2. **Reporting-only reads.** Readers use the value itself (a stats
//!    snapshot, a leak check at a quiescent point, a trace record) and
//!    never infer the state of *other* memory from it. No happens-before
//!    edge is derived from a counter.
//! 3. **Quiescent exactness where needed.** Counters that must read exact
//!    (the scratch pool's `outstanding` leak check) are only asserted at
//!    points where all writers have already joined through a barrier with
//!    its own synchronisation (pool `broadcast` join, `Mutex` unlock),
//!    which supplies the happens-before the counter itself does not.
//!
//! A counter that stops satisfying these — e.g. one a reader spins on to
//! detect completion — must move out of this module and take explicit
//! `Acquire`/`Release` orderings.

use std::sync::atomic::{AtomicU64, Ordering};

/// A statistics counter with relaxed memory ordering.
///
/// See the module docs for the audit contract every use must satisfy.
/// The ordering is deliberately not configurable: a counter that needs
/// anything stronger than `Relaxed` is not a statistics counter and does
/// not belong here.
#[derive(Debug, Default)]
pub struct RelaxedCounter(AtomicU64);

impl RelaxedCounter {
    /// A counter starting at zero (usable in `static` position).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n`. The RMW is atomic, so concurrent adds never lose counts.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Subtracts `n`, returning the previous value (wrapping below zero,
    /// like the underlying atomic — callers pairing adds and subs can
    /// `debug_assert!` on the returned value to catch imbalance).
    #[inline]
    pub fn sub(&self, n: u64) -> u64 {
        self.0.fetch_sub(n, Ordering::Relaxed)
    }

    /// Current value. Exact with respect to every write that has already
    /// been synchronised-with (see module docs); approximate while writers
    /// are still running, which is all a stats read needs.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Exclusive read: `&mut self` proves no writer is running, so the
    /// value is exact without any atomic ordering at all.
    #[inline]
    pub fn get_mut(&mut self) -> u64 {
        *self.0.get_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_exactly_across_threads() {
        let c = RelaxedCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        // The thread joins supply the happens-before; the RMWs supply the
        // arithmetic exactness.
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn sub_returns_previous_value() {
        let c = RelaxedCounter::new();
        c.add(3);
        assert_eq!(c.sub(1), 3);
        assert_eq!(c.get(), 2);
    }
}
