//! Atomic views over plain slices and order-preserving float↔int keys.
//!
//! The dendrogram algorithms compute `maxIncident(v)` with parallel atomic
//! `fetch_max` into an ordinary `Vec<u32>`; [`as_atomic_u32`] provides the
//! in-place atomic view. Radix sorting of `f32` edge weights uses the
//! classic monotone bit transforms in [`f32_to_ordered_u32`].

use std::sync::atomic::{AtomicU32, AtomicU64};

/// Reinterprets a mutable `u32` slice as atomics for the duration of a
/// parallel region.
///
/// Safe because `AtomicU32` has the same layout as `u32` and the exclusive
/// borrow guarantees no non-atomic access can overlap the returned view.
pub fn as_atomic_u32(slice: &mut [u32]) -> &[AtomicU32] {
    // SAFETY: AtomicU32 is #[repr(C, align(4))] with the same size as u32,
    // and the &mut borrow makes the aliasing exclusive.
    unsafe { &*(slice as *mut [u32] as *const [AtomicU32]) }
}

/// Reinterprets a mutable `u64` slice as atomics (see [`as_atomic_u32`]).
pub fn as_atomic_u64(slice: &mut [u64]) -> &[AtomicU64] {
    // SAFETY: as above, for u64/AtomicU64.
    unsafe { &*(slice as *mut [u64] as *const [AtomicU64]) }
}

/// Maps `f32` to `u32` such that the unsigned order of the keys equals the
/// total order of the floats (ascending; `-0.0 < +0.0`, NaN sorts last).
#[inline(always)]
pub fn f32_to_ordered_u32(x: f32) -> u32 {
    let bits = x.to_bits();
    // Flip all bits for negatives, just the sign for non-negatives.
    if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    }
}

/// Inverse of [`f32_to_ordered_u32`].
#[inline(always)]
pub fn ordered_u32_to_f32(key: u32) -> f32 {
    let bits = if key & 0x8000_0000 != 0 {
        key & 0x7FFF_FFFF
    } else {
        !key
    };
    f32::from_bits(bits)
}

/// Descending variant: larger floats get smaller keys.
#[inline(always)]
pub fn f32_to_ordered_u32_desc(x: f32) -> u32 {
    !f32_to_ordered_u32(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn atomic_view_fetch_max() {
        let mut xs = vec![0u32; 8];
        {
            let view = as_atomic_u32(&mut xs);
            view[3].fetch_max(7, Ordering::Relaxed);
            view[3].fetch_max(4, Ordering::Relaxed);
        }
        assert_eq!(xs[3], 7);
    }

    #[test]
    fn float_key_order_matches_float_order() {
        let mut vals = vec![-1.0e30f32, -3.5, -0.0, 0.0, 1e-20, 1.0, 7.25, 3.4e38];
        let mut by_key = vals.clone();
        by_key.sort_by_key(|&x| f32_to_ordered_u32(x));
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // -0.0 and 0.0 compare equal as floats; compare bit keys positionally
        // via total order instead.
        for (a, b) in by_key.iter().zip(vals.iter()) {
            assert!(a.total_cmp(b).is_eq() || (a == b));
        }
    }

    #[test]
    fn float_key_roundtrip() {
        for x in [-123.5f32, -0.0, 0.0, 1.5, 9e9] {
            let rt = ordered_u32_to_f32(f32_to_ordered_u32(x));
            assert_eq!(rt.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn desc_key_reverses_order() {
        assert!(f32_to_ordered_u32_desc(2.0) < f32_to_ordered_u32_desc(1.0));
        assert!(f32_to_ordered_u32_desc(-1.0) > f32_to_ordered_u32_desc(1.0));
    }
}
