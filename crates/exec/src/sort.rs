//! Stable parallel merge sort.
//!
//! Used for the initial edge sort (weight-descending with a deterministic
//! tie-break — the paper's §3.1.1 requires a *consistent* total order for
//! equal weights so the dendrogram is unique). Chunks are sorted in parallel
//! with the standard library's stable sort, then merged pairwise in rounds;
//! each merge is performed by a single task, pairs run in parallel.

use crate::trace::KernelKind;
use crate::{ExecCtx, UnsafeSlice};

/// Sorts `data` stably by the key function, in parallel.
///
/// ```
/// use pandora_exec::{sort::par_sort_by_key, ExecCtx};
///
/// let ctx = ExecCtx::threads();
/// let mut data = vec![(3, 'c'), (1, 'a'), (2, 'b')];
/// par_sort_by_key(&ctx, &mut data, |&(k, _)| k);
/// assert_eq!(data, vec![(1, 'a'), (2, 'b'), (3, 'c')]);
/// ```
pub fn par_sort_by_key<T, K, F>(ctx: &ExecCtx, data: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    ctx.record(
        KernelKind::MergeSort,
        n as u64,
        (2 * n * std::mem::size_of::<T>()) as u64,
    );
    if ctx.is_serial() || n < 8192 {
        data.sort_by_key(|a| key(a));
        return;
    }

    let lanes = ctx.lanes();
    let n_runs = (lanes * 4).next_power_of_two();
    let run_len = n.div_ceil(n_runs);

    // Sort the runs in parallel (disjoint sub-slices).
    {
        let view = UnsafeSlice::new(data);
        let key_ref = &key;
        ctx.for_each(n_runs, 1, |r| {
            let start = r * run_len;
            if start >= n {
                return;
            }
            let end = (start + run_len).min(n);
            // SAFETY: runs are disjoint index ranges.
            let run = unsafe { view.slice_mut(start..end) };
            run.sort_by_key(|a| key_ref(a));
        });
    }

    // Merge rounds, ping-ponging between `data` and an aux buffer.
    let mut aux: Vec<T> = data.to_vec();
    let mut width = run_len;
    let mut src_is_data = true;
    while width < n {
        let n_pairs = n.div_ceil(2 * width);
        {
            let data_view = UnsafeSlice::new(data);
            let aux_view = UnsafeSlice::new(&mut aux);
            let key_ref = &key;
            ctx.for_each(n_pairs, 1, |p| {
                let lo = p * 2 * width;
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                // SAFETY: pair `p` owns [lo, hi) in both buffers.
                unsafe {
                    let (src, dst) = if src_is_data {
                        (&data_view, &aux_view)
                    } else {
                        (&aux_view, &data_view)
                    };
                    merge_into(src, dst, lo, mid, hi, key_ref);
                }
            });
        }
        src_is_data = !src_is_data;
        width *= 2;
    }

    if !src_is_data {
        // Result currently lives in `aux`; copy back in parallel.
        let data_view = UnsafeSlice::new(data);
        let aux_ref = &aux;
        ctx.for_each_chunk(n, 16 * 1024, |range| {
            for i in range {
                // SAFETY: chunks are disjoint.
                unsafe { data_view.write(i, aux_ref[i]) };
            }
        });
    }
}

/// Merges `src[lo..mid]` and `src[mid..hi]` (each sorted) into `dst[lo..hi]`.
///
/// # Safety
///
/// The caller must own `[lo, hi)` of both views exclusively.
unsafe fn merge_into<T, K, F>(
    src: &UnsafeSlice<'_, T>,
    dst: &UnsafeSlice<'_, T>,
    lo: usize,
    mid: usize,
    hi: usize,
    key: &F,
) where
    T: Copy,
    K: Ord,
    F: Fn(&T) -> K,
{
    let mut i = lo;
    let mut j = mid;
    let mut out = lo;
    while i < mid && j < hi {
        // SAFETY: `i < mid <= hi` and `j < hi`, both inside the
        // caller-owned `[lo, hi)` of `src`.
        let (a, b) = unsafe { (src.read(i), src.read(j)) };
        // `<=` keeps the merge stable.
        if key(&a) <= key(&b) {
            // SAFETY: `out` advances once per consumed element, so it stays
            // inside the caller-owned `[lo, hi)` of `dst`.
            unsafe { dst.write(out, a) };
            i += 1;
        } else {
            // SAFETY: as above — `out < hi` while elements remain.
            unsafe { dst.write(out, b) };
            j += 1;
        }
        out += 1;
    }
    while i < mid {
        // SAFETY: `i` and `out` remain inside the caller-owned `[lo, hi)`.
        unsafe { dst.write(out, src.read(i)) };
        i += 1;
        out += 1;
    }
    while j < hi {
        // SAFETY: `j` and `out` remain inside the caller-owned `[lo, hi)`.
        unsafe { dst.write(out, src.read(j)) };
        j += 1;
        out += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::Arc;

    fn ctxs() -> Vec<ExecCtx> {
        vec![
            ExecCtx::serial(),
            ExecCtx::on_pool(Arc::new(ThreadPool::new(4))),
        ]
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn sorts_like_std() {
        for ctx in ctxs() {
            for n in [0usize, 1, 2, 1000, 8192, 100_003] {
                let mut state = 0x9E3779B97F4A7C15u64 ^ n as u64;
                let mut data: Vec<u64> = (0..n).map(|_| xorshift(&mut state) % 1000).collect();
                let mut expect = data.clone();
                expect.sort();
                par_sort_by_key(&ctx, &mut data, |&x| x);
                assert_eq!(data, expect, "n={n}");
            }
        }
    }

    #[test]
    fn stability_preserved() {
        // Sort (key, original_index) pairs by key only; equal keys must keep
        // their input order.
        for ctx in ctxs() {
            let n = 50_000usize;
            let mut state = 42u64;
            let mut data: Vec<(u32, u32)> = (0..n)
                .map(|i| ((xorshift(&mut state) % 16) as u32, i as u32))
                .collect();
            par_sort_by_key(&ctx, &mut data, |&(k, _)| k);
            for w in data.windows(2) {
                assert!(w[0].0 <= w[1].0);
                if w[0].0 == w[1].0 {
                    assert!(w[0].1 < w[1].1, "stability violated");
                }
            }
        }
    }

    #[test]
    fn already_sorted_and_reversed() {
        for ctx in ctxs() {
            let mut asc: Vec<u32> = (0..30_000).collect();
            par_sort_by_key(&ctx, &mut asc, |&x| x);
            assert!(asc.windows(2).all(|w| w[0] <= w[1]));
            let mut desc: Vec<u32> = (0..30_000).rev().collect();
            par_sort_by_key(&ctx, &mut desc, |&x| x);
            assert!(desc.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
