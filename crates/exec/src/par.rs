//! Shared constants for the parallel primitives.

/// Default minimum number of elements per parallel chunk.
///
/// Below this, the cost of dispatching to the pool exceeds the work itself
/// for the cheap per-element kernels used throughout pandora.
pub const DEFAULT_GRAIN: usize = 2048;
