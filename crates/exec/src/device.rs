//! Analytic device cost models.
//!
//! This environment has a 2-core CPU and no GPU, while the paper evaluates
//! on a 64-core AMD EPYC 7A53, an AMD MI250X GCD and an NVIDIA A100 (§6.3).
//! Per DESIGN.md §2, the GPU/64-core series of the paper's figures are
//! produced by replaying the *kernel traces of real algorithm runs* through
//! the models below.
//!
//! Each kernel's cost is
//!
//! ```text
//! t = launch_overhead
//!   + max( n / (rate_kind · n/(n + n_half)),   // throughput w/ saturation
//!          bytes / mem_bw )                    // bandwidth bound
//! ```
//!
//! The saturation term `n/(n + n_half)` gives the classic latency–throughput
//! curve: devices with many lanes (GPUs) need ~10⁶ elements to reach peak
//! (paper Fig. 14), CPUs saturate almost immediately. `SeqLoop` kernels run
//! on a single lane at `seq_rate`, which is what makes the UnionFind-MT
//! baseline CPU-bound and GPUs hopeless at it — matching the paper's Table 1
//! observation that prior GPU pipelines kept dendrogram construction on the
//! host.
//!
//! Rates are calibrated (EXPERIMENTS.md §calibration) so that the modelled
//! dendrogram throughput lands in the paper's measured bands: ~15–30
//! MPoints/s for 64-core PANDORA, ~6–18 for UnionFind-MT, ~150–300 for
//! MI250X and ~280–420 for A100 (paper Fig. 11).

use crate::trace::{KernelKind, Trace};

/// Throughput table entry: saturated element rate in Melems/s.
#[derive(Debug, Clone, Copy)]
pub struct KernelRates {
    /// Embarrassingly parallel loops.
    pub for_each: f64,
    /// Reductions.
    pub reduce: f64,
    /// Prefix sums.
    pub scan: f64,
    /// One radix pass (histogram + scatter).
    pub radix_pass: f64,
    /// Full comparison sort (elements sorted per second).
    pub merge_sort: f64,
    /// Irregular gather/scatter.
    pub gather: f64,
    /// Lock-free DSU unions.
    pub dsu_union: f64,
    /// DSU finds.
    pub dsu_find: f64,
    /// Spatial tree traversal (visits/s).
    pub tree_traverse: f64,
    /// Spatial tree build.
    pub tree_build: f64,
}

impl KernelRates {
    fn rate(&self, kind: KernelKind) -> f64 {
        match kind {
            KernelKind::For => self.for_each,
            KernelKind::Reduce => self.reduce,
            KernelKind::Scan => self.scan,
            KernelKind::RadixPass => self.radix_pass,
            KernelKind::MergeSort => self.merge_sort,
            KernelKind::Gather => self.gather,
            KernelKind::DsuUnion => self.dsu_union,
            KernelKind::DsuFind => self.dsu_find,
            KernelKind::TreeTraverse => self.tree_traverse,
            KernelKind::TreeBuild => self.tree_build,
            KernelKind::SeqLoop => f64::NAN, // handled separately
        }
    }
}

/// An analytic model of one device.
#[derive(Debug, Clone)]
pub struct DeviceModel {
    /// Human-readable device name (matches the paper's hardware table).
    pub name: &'static str,
    /// Fixed cost per kernel launch, seconds.
    pub launch_overhead_s: f64,
    /// Element count at which a kernel reaches half its saturated rate.
    pub half_saturation_n: f64,
    /// Saturated per-kind throughput, Melems/s.
    pub rates: KernelRates,
    /// Single-lane rate for inherently sequential loops, Melems/s.
    pub seq_rate: f64,
    /// Memory bandwidth, GB/s.
    pub mem_bw_gbps: f64,
}

impl DeviceModel {
    /// 64-core AMD EPYC 7A53 (the paper's multithreaded CPU platform).
    ///
    /// Calibrated so a replayed PANDORA trace reproduces the paper's CPU
    /// profile: ~70–80% of dendrogram time in sorting (Fig. 13), overall
    /// throughput in the 14–30 MPoints/s band (Fig. 11), and UnionFind-MT
    /// in the 6–18 MPoints/s band.
    pub fn epyc_7a53_64c() -> Self {
        Self {
            name: "AMD EPYC 7A53 (64c)",
            launch_overhead_s: 4e-6,
            half_saturation_n: 6_000.0,
            rates: KernelRates {
                for_each: 9_000.0,
                reduce: 8_000.0,
                scan: 3_500.0,
                radix_pass: 1_400.0,
                merge_sort: 50.0,
                gather: 2_500.0,
                dsu_union: 1_200.0,
                dsu_find: 2_500.0,
                tree_traverse: 45.0,
                tree_build: 220.0,
            },
            seq_rate: 25.0,
            mem_bw_gbps: 205.0,
        }
    }

    /// 64-core AMD EPYC 7763 (the paper's Fig. 14/15 CPU baseline).
    ///
    /// Same calibration as the 7A53 except for spatial traversal: the
    /// Fig. 15 baseline is MemoGFK, whose CPU EMST is considerably faster
    /// than the ArborX CPU path behind Fig. 1 — reflected as a higher
    /// traversal rate so the end-to-end speedups land in both figures'
    /// bands (EXPERIMENTS.md §calibration).
    pub fn epyc_7763_64c() -> Self {
        let mut model = Self::epyc_7a53_64c();
        model.name = "AMD EPYC 7763 (64c)";
        model.rates.tree_traverse = 120.0;
        model
    }

    /// One GCD of an AMD MI250X.
    ///
    /// Calibrated against the EPYC model so per-phase speedups land in the
    /// paper's Fig. 12 bands: sort 9–16×, contraction 3–5×, expansion 5–12×,
    /// and overall PANDORA throughput in the 62–302 MPoints/s band.
    pub fn mi250x_gcd() -> Self {
        Self {
            name: "AMD MI250X (1 GCD)",
            launch_overhead_s: 9e-6,
            half_saturation_n: 120_000.0,
            rates: KernelRates {
                for_each: 110_000.0,
                reduce: 70_000.0,
                scan: 28_000.0,
                radix_pass: 16_000.0,
                merge_sort: 600.0,
                gather: 12_000.0,
                dsu_union: 4_500.0,
                dsu_find: 9_000.0,
                tree_traverse: 750.0,
                tree_build: 2_200.0,
            },
            seq_rate: 2.0,
            mem_bw_gbps: 1_600.0,
        }
    }

    /// NVIDIA A100 (SXM), ≈1.3–1.5× the MI250X GCD per kernel (paper
    /// Fig. 11: A100 PANDORA reaches 62–419 MPoints/s, 10–37× the CPU).
    pub fn a100() -> Self {
        Self {
            name: "NVIDIA A100",
            launch_overhead_s: 5e-6,
            half_saturation_n: 100_000.0,
            rates: KernelRates {
                for_each: 160_000.0,
                reduce: 110_000.0,
                scan: 45_000.0,
                radix_pass: 24_000.0,
                merge_sort: 850.0,
                gather: 16_000.0,
                dsu_union: 6_000.0,
                dsu_find: 12_000.0,
                tree_traverse: 900.0,
                tree_build: 3_400.0,
            },
            seq_rate: 2.5,
            mem_bw_gbps: 2_000.0,
        }
    }

    /// Simulated wall-clock seconds for a single kernel event.
    pub fn kernel_time(&self, kind: KernelKind, n: u64, bytes: u64) -> f64 {
        if n == 0 {
            return self.launch_overhead_s;
        }
        let n_f = n as f64;
        if kind == KernelKind::SeqLoop {
            // A sequential loop pays no launch overhead per element and
            // cannot use the device's parallel lanes.
            return n_f / (self.seq_rate * 1e6);
        }
        let saturation = n_f / (n_f + self.half_saturation_n);
        let rate = self.rates.rate(kind) * 1e6 * saturation;
        let compute = n_f / rate;
        let memory = bytes as f64 / (self.mem_bw_gbps * 1e9);
        self.launch_overhead_s + compute.max(memory)
    }

    /// Replays a trace through the model, returning total and per-phase times.
    pub fn simulate(&self, trace: &Trace) -> SimReport {
        let mut total = 0.0;
        let mut phases: Vec<(&'static str, f64)> = Vec::new();
        for e in &trace.events {
            let t = self.kernel_time(e.kind, e.n, e.bytes);
            total += t;
            match phases.iter_mut().find(|(p, _)| *p == e.phase) {
                Some((_, acc)) => *acc += t,
                None => phases.push((e.phase, t)),
            }
        }
        SimReport {
            device: self.name,
            total_s: total,
            phases,
        }
    }
}

/// Result of replaying one trace through one device model.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The device name.
    pub device: &'static str,
    /// Total simulated seconds.
    pub total_s: f64,
    /// Per-phase simulated seconds, in first-appearance order.
    pub phases: Vec<(&'static str, f64)>,
}

impl SimReport {
    /// Simulated seconds spent in `phase` (0 if absent).
    pub fn phase_s(&self, phase: &str) -> f64 {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, t)| *t)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    #[test]
    fn gpu_beats_cpu_only_at_scale() {
        let cpu = DeviceModel::epyc_7a53_64c();
        let gpu = DeviceModel::a100();
        // Tiny kernel: launch-latency dominated, CPU wins.
        let small = cpu.kernel_time(KernelKind::For, 1_000, 8_000);
        let small_gpu = gpu.kernel_time(KernelKind::For, 1_000, 8_000);
        assert!(small < small_gpu, "{small} vs {small_gpu}");
        // Huge kernel: GPU wins by a large factor.
        let big = cpu.kernel_time(KernelKind::RadixPass, 100_000_000, 2_400_000_000);
        let big_gpu = gpu.kernel_time(KernelKind::RadixPass, 100_000_000, 2_400_000_000);
        assert!(big_gpu * 5.0 < big, "{big} vs {big_gpu}");
    }

    #[test]
    fn sequential_loops_are_terrible_on_gpus() {
        let cpu = DeviceModel::epyc_7a53_64c();
        let gpu = DeviceModel::mi250x_gcd();
        let n = 10_000_000;
        assert!(
            gpu.kernel_time(KernelKind::SeqLoop, n, 0)
                > 10.0 * cpu.kernel_time(KernelKind::SeqLoop, n, 0)
        );
    }

    #[test]
    fn simulate_aggregates_phases() {
        let tracer = Tracer::new();
        tracer.set_phase("sort");
        tracer.record(KernelKind::RadixPass, 1_000_000, 24_000_000);
        tracer.record(KernelKind::RadixPass, 1_000_000, 24_000_000);
        tracer.set_phase("contraction");
        tracer.record(KernelKind::DsuUnion, 500_000, 8_000_000);
        let report = DeviceModel::a100().simulate(&tracer.snapshot());
        assert_eq!(report.phases.len(), 2);
        let sum: f64 = report.phases.iter().map(|(_, t)| t).sum();
        assert!((sum - report.total_s).abs() < 1e-12);
        assert!(report.phase_s("sort") > report.phase_s("contraction") * 0.1);
    }

    #[test]
    fn saturation_curve_monotone_throughput() {
        let gpu = DeviceModel::a100();
        let tp = |n: u64| n as f64 / gpu.kernel_time(KernelKind::For, n, n * 8);
        assert!(tp(10_000) < tp(100_000));
        assert!(tp(100_000) < tp(10_000_000));
    }
}
