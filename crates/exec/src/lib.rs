//! # pandora-exec
//!
//! The performance-portable execution substrate underneath the PANDORA
//! reproduction — the role Kokkos plays in the paper's implementation.
//!
//! Everything the algorithms need is expressed through a small set of
//! primitives, exactly as the paper requires ("parallel loops, reductions
//! and prefix sums", §1):
//!
//! * [`ExecCtx::for_each`] / [`ExecCtx::for_each_chunk`] — parallel loops;
//! * [`ExecCtx::reduce`] — parallel reductions;
//! * [`scan`] — parallel exclusive/inclusive prefix sums and stream
//!   compaction;
//! * [`sort::par_sort_by_key`] and [`radix`] — parallel sorts;
//! * [`dsu::AtomicDsu`] — the synchronization-free pointer-jumping
//!   union–find of Jaiganesh & Burtscher used by the paper for tree
//!   contraction;
//! * [`trace`] / [`device`] — kernel tracing and analytic device models used
//!   to project traced runs onto the paper's hardware (see DESIGN.md §2).
//!
//! An [`ExecCtx`] bundles an execution space (`Serial` or a shared
//! [`pool::ThreadPool`]) with an optional [`trace::Tracer`].

pub mod atomic;
pub mod counters;
pub mod device;
pub mod dsu;
pub mod histogram;
pub mod latch;
pub mod partition;
pub mod pool;
pub mod radix;
pub mod scan;
pub mod scratch;
pub mod sort;
pub mod trace;
pub mod unsafe_slice;

mod par;

pub use par::DEFAULT_GRAIN;
pub use scratch::ScratchPool;
pub use unsafe_slice::UnsafeSlice;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pool::ThreadPool;
use trace::{KernelKind, Tracer};

/// Where kernels execute.
#[derive(Clone)]
pub enum ExecSpace {
    /// Single-threaded execution on the calling thread.
    Serial,
    /// Fork–join execution on a shared thread pool.
    Threads(Arc<ThreadPool>),
}

/// An execution context: an execution space plus optional kernel tracing.
///
/// Cheap to clone; clones share the pool and the tracer.
#[derive(Clone)]
pub struct ExecCtx {
    space: ExecSpace,
    tracer: Option<Arc<Tracer>>,
}

impl ExecCtx {
    /// A serial context (useful for oracles and tests).
    pub fn serial() -> Self {
        Self {
            space: ExecSpace::Serial,
            tracer: None,
        }
    }

    /// A parallel context on the process-global pool.
    pub fn threads() -> Self {
        Self {
            space: ExecSpace::Threads(Arc::clone(pool::global_pool())),
            tracer: None,
        }
    }

    /// A parallel context on a caller-provided pool.
    pub fn on_pool(pool: Arc<ThreadPool>) -> Self {
        Self {
            space: ExecSpace::Threads(pool),
            tracer: None,
        }
    }

    /// Returns a copy of this context with tracing enabled, plus the tracer.
    pub fn with_tracing(&self) -> (Self, Arc<Tracer>) {
        let tracer = Tracer::new();
        (
            Self {
                space: self.space.clone(),
                tracer: Some(Arc::clone(&tracer)),
            },
            tracer,
        )
    }

    /// The tracer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Sets the phase label for subsequently traced kernels (no-op when
    /// tracing is disabled).
    pub fn set_phase(&self, phase: &'static str) {
        if let Some(t) = &self.tracer {
            t.set_phase(phase);
        }
    }

    /// Records a kernel event (no-op when tracing is disabled).
    #[inline]
    pub fn record(&self, kind: KernelKind, n: u64, bytes: u64) {
        if let Some(t) = &self.tracer {
            t.record(kind, n, bytes);
        }
    }

    /// Number of execution lanes (1 for serial contexts).
    pub fn lanes(&self) -> usize {
        match &self.space {
            ExecSpace::Serial => 1,
            ExecSpace::Threads(pool) => pool.lanes(),
        }
    }

    /// Whether this context runs serially.
    pub fn is_serial(&self) -> bool {
        matches!(self.space, ExecSpace::Serial)
    }

    /// Runs `f(chunk_range)` over `0..n` in parallel chunks of at least
    /// `grain` elements, distributed dynamically over the lanes.
    pub fn for_each_chunk<F: Fn(std::ops::Range<usize>) + Sync>(
        &self,
        n: usize,
        grain: usize,
        f: F,
    ) {
        self.for_each_chunk_traced(n, grain, KernelKind::For, (n * 8) as u64, f);
    }

    /// [`ExecCtx::for_each_chunk`] with an explicit trace classification.
    pub fn for_each_chunk_traced<F: Fn(std::ops::Range<usize>) + Sync>(
        &self,
        n: usize,
        grain: usize,
        kind: KernelKind,
        bytes: u64,
        f: F,
    ) {
        self.record(kind, n as u64, bytes);
        match &self.space {
            ExecSpace::Serial => {
                if n > 0 {
                    f(0..n)
                }
            }
            ExecSpace::Threads(pool) => {
                if n == 0 {
                    return;
                }
                let grain = grain.max(1);
                if n <= grain {
                    f(0..n);
                    return;
                }
                // Dynamic chunking: ~8 chunks per lane bounds scheduling
                // overhead while still load-balancing irregular work.
                let chunk = grain.max(n / (pool.lanes() * 8)).max(1);
                let cursor = AtomicUsize::new(0);
                pool.broadcast(&|_lane| loop {
                    // pandora-lint: allow(PL004) — work-stealing cursor: the RMW dispenses disjoint chunks; task data is published by the broadcast join, not the cursor
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    f(start..(start + chunk).min(n));
                });
            }
        }
    }

    /// Runs `f(i)` for every `i` in `0..n` in parallel.
    #[inline]
    pub fn for_each<F: Fn(usize) + Sync>(&self, n: usize, grain: usize, f: F) {
        self.for_each_chunk(n, grain, |range| {
            for i in range {
                f(i);
            }
        });
    }

    /// Parallel reduction: folds `0..n` into per-lane accumulators with
    /// `fold`, then combines them with `combine`.
    pub fn reduce<T, FoldF, CombineF>(
        &self,
        n: usize,
        grain: usize,
        identity: T,
        fold: FoldF,
        combine: CombineF,
    ) -> T
    where
        T: Send + Sync + Clone,
        FoldF: Fn(T, std::ops::Range<usize>) -> T + Sync,
        CombineF: Fn(T, T) -> T,
    {
        self.record(KernelKind::Reduce, n as u64, (n * 8) as u64);
        if n == 0 {
            return identity;
        }
        match &self.space {
            ExecSpace::Serial => fold(identity, 0..n),
            ExecSpace::Threads(pool) => {
                let grain = grain.max(1);
                if n <= grain {
                    return fold(identity, 0..n);
                }
                let chunk = grain.max(n / (pool.lanes() * 8)).max(1);
                let cursor = AtomicUsize::new(0);
                let partials = parking_lot::Mutex::new(Vec::with_capacity(pool.lanes()));
                pool.broadcast(&|_lane| {
                    let mut local = identity.clone();
                    let mut touched = false;
                    loop {
                        // pandora-lint: allow(PL004) — work-stealing cursor: the RMW dispenses disjoint chunks; fold results travel through the mutex, not the cursor
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        local = fold(local, start..(start + chunk).min(n));
                        touched = true;
                    }
                    if touched {
                        partials.lock().push(local);
                    }
                });
                partials.into_inner().into_iter().fold(identity, combine)
            }
        }
    }
}

impl Default for ExecCtx {
    fn default() -> Self {
        Self::threads()
    }
}

impl std::fmt::Debug for ExecCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The pool and tracer internals are not informative; report the
        // execution shape (what debugging a serving structure needs).
        f.debug_struct("ExecCtx")
            .field("lanes", &self.lanes())
            .field("serial", &self.is_serial())
            .field("tracing", &self.tracer.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn ctxs() -> Vec<ExecCtx> {
        vec![
            ExecCtx::serial(),
            ExecCtx::on_pool(Arc::new(ThreadPool::new(4))),
        ]
    }

    #[test]
    fn for_each_covers_all_indices_once() {
        for ctx in ctxs() {
            let n = 10_000;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            ctx.for_each(n, 16, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn for_each_zero_and_one() {
        for ctx in ctxs() {
            ctx.for_each(0, 1, |_| panic!("must not run"));
            let hit = AtomicU64::new(0);
            ctx.for_each(1, 1024, |i| {
                assert_eq!(i, 0);
                hit.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hit.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn reduce_matches_closed_form() {
        for ctx in ctxs() {
            let n = 100_001usize;
            let sum = ctx.reduce(
                n,
                64,
                0u64,
                |acc, range| acc + range.map(|i| i as u64).sum::<u64>(),
                |a, b| a + b,
            );
            assert_eq!(sum, (n as u64 - 1) * n as u64 / 2);
        }
    }

    #[test]
    fn reduce_empty_returns_identity() {
        for ctx in ctxs() {
            let v = ctx.reduce(0, 64, 42u64, |acc, _| acc + 1, |a, b| a + b);
            assert_eq!(v, 42);
        }
    }

    #[test]
    fn tracing_records_kernels() {
        let (ctx, tracer) = ExecCtx::serial().with_tracing();
        ctx.set_phase("sort");
        ctx.for_each(10, 1, |_| {});
        let _ = ctx.reduce(10, 1, 0u32, |a, _| a, |a, _| a);
        let trace = tracer.snapshot();
        assert_eq!(trace.len(), 2);
        assert!(trace.events.iter().all(|e| e.phase == "sort"));
    }
}
