//! Disjoint-set (union–find) structures.
//!
//! [`AtomicDsu`] is the synchronization-free pointer-jumping union–find the
//! paper adopts from Jaiganesh & Burtscher's GPU connected-components work
//! (\[22\] in the paper): unions attach the **larger** root under the smaller
//! one with a CAS, so parent links only ever decrease and lock-free path
//! halving stays correct under races. Union-by-min also makes the final
//! component representative the minimum vertex id — deterministic regardless
//! of scheduling, which the reproduction relies on for exact-equality tests.
//!
//! [`SeqDsu`] is a classical sequential union–find with path halving, used
//! by the bottom-up baseline (paper Algorithm 2) and as a test oracle.

use std::sync::atomic::{AtomicU32, Ordering};

/// Lock-free union–find over `0..n` with union-by-min.
///
/// ```
/// use pandora_exec::dsu::AtomicDsu;
///
/// let dsu = AtomicDsu::new(4);
/// dsu.union(0, 2);
/// dsu.union(2, 3);
/// assert_eq!(dsu.find(3), 0); // union-by-min ⇒ deterministic roots
/// assert_ne!(dsu.find(1), dsu.find(3));
/// ```
#[derive(Debug)]
pub struct AtomicDsu {
    parent: Vec<AtomicU32>,
}

impl AtomicDsu {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Resets the structure to `n` singleton sets, reusing the existing
    /// allocation whenever `n` fits its capacity.
    ///
    /// Exclusive access (`&mut self`) guarantees no find/union is racing,
    /// so plain stores suffice. This is what lets long-lived workspaces
    /// (Borůvka rounds, contraction levels) run union–find allocation-free
    /// in the steady state.
    pub fn reset(&mut self, n: usize) {
        self.parent.truncate(n);
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = AtomicU32::new(i as u32);
        }
        let have = self.parent.len() as u32;
        self.parent.extend((have..n as u32).map(AtomicU32::new));
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the current root of `x`, halving the path along the way.
    ///
    /// Safe to call concurrently with other `find`/`union` operations.
    #[inline]
    pub fn find(&self, x: u32) -> u32 {
        let mut cur = x;
        loop {
            // pandora-lint: allow(PL004) — find tolerates stale parents: a stale read costs extra hops, never a wrong root
            let p = self.parent[cur as usize].load(Ordering::Relaxed);
            if p == cur {
                return cur;
            }
            // pandora-lint: allow(PL004) — a stale grandparent is still a valid ancestor — see the path-halving note below
            let gp = self.parent[p as usize].load(Ordering::Relaxed);
            if gp == p {
                return p;
            }
            // Path halving. Parent values only decrease (union-by-min), so a
            // racy store can only re-point `cur` at another valid ancestor.
            // pandora-lint: allow(PL004) — parents only decrease (union-by-min), so a racy store re-points at another valid ancestor
            self.parent[cur as usize].store(gp, Ordering::Relaxed);
            cur = gp;
        }
    }

    /// Unions the sets containing `a` and `b`.
    pub fn union(&self, a: u32, b: u32) {
        let mut a = self.find(a);
        let mut b = self.find(b);
        while a != b {
            // Attach the larger root under the smaller (union-by-min).
            if a < b {
                std::mem::swap(&mut a, &mut b);
            }
            match self.parent[a as usize].compare_exchange(
                a,
                b,
                Ordering::Relaxed, // pandora-lint: allow(PL004) — CAS atomicity alone links the roots; nothing else is published through the parent
                Ordering::Relaxed, // pandora-lint: allow(PL004) — failure value is re-derived via find; no ordering needed
            ) {
                Ok(_) => return,
                Err(_) => {
                    // Someone re-parented `a` concurrently; retry from the
                    // new roots.
                    a = self.find(a);
                    b = self.find(b);
                }
            }
        }
    }

    /// Fully compresses every element to point directly at its root.
    ///
    /// Must not race with concurrent unions.
    pub fn flatten(&self) {
        for i in 0..self.parent.len() as u32 {
            let root = self.find(i);
            // pandora-lint: allow(PL004) — flatten is documented as not racing unions; the atomic store is for the element type, not for ordering
            self.parent[i as usize].store(root, Ordering::Relaxed);
        }
    }

    /// Consumes the structure, returning the parent array (call after all
    /// unions have completed; roots satisfy `parent[i] == i`).
    pub fn into_parents(self) -> Vec<u32> {
        self.flatten();
        self.parent.into_iter().map(|a| a.into_inner()).collect()
    }
}

/// Sequential union–find with path halving and union-by-min.
pub struct SeqDsu {
    parent: Vec<u32>,
}

impl SeqDsu {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    /// Finds the root of `x` with path halving.
    #[inline]
    pub fn find(&mut self, x: u32) -> u32 {
        let mut cur = x;
        loop {
            let p = self.parent[cur as usize];
            if p == cur {
                return cur;
            }
            let gp = self.parent[p as usize];
            if gp == p {
                return p;
            }
            self.parent[cur as usize] = gp;
            cur = gp;
        }
    }

    /// Unions the sets containing `a` and `b`; returns the surviving root,
    /// or `None` if they were already joined.
    pub fn union(&mut self, a: u32, b: u32) -> Option<u32> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return None;
        }
        let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
        Some(lo)
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use crate::ExecCtx;
    use std::sync::Arc;

    #[test]
    fn seq_union_find_basics() {
        let mut dsu = SeqDsu::new(6);
        assert!(!dsu.same(0, 5));
        dsu.union(0, 1);
        dsu.union(2, 3);
        dsu.union(1, 3);
        assert!(dsu.same(0, 2));
        assert!(!dsu.same(0, 4));
        assert_eq!(dsu.find(3), 0); // union-by-min → root is min id
        assert_eq!(dsu.union(0, 3), None);
    }

    #[test]
    fn atomic_matches_sequential_on_random_edges() {
        let n = 10_000u32;
        let mut state = 0xDEADBEEFu64;
        let mut edges = Vec::new();
        for _ in 0..8_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let a = (state % n as u64) as u32;
            let b = ((state >> 32) % n as u64) as u32;
            edges.push((a, b));
        }
        let mut seq = SeqDsu::new(n as usize);
        for &(a, b) in &edges {
            seq.union(a, b);
        }

        let atomic = AtomicDsu::new(n as usize);
        let ctx = ExecCtx::on_pool(Arc::new(ThreadPool::new(4)));
        let edges_ref = &edges;
        let atomic_ref = &atomic;
        ctx.for_each(edges.len(), 64, |i| {
            let (a, b) = edges_ref[i];
            atomic_ref.union(a, b);
        });
        // Union-by-min makes roots deterministic: compare directly.
        for i in 0..n {
            assert_eq!(atomic.find(i), seq.find(i), "element {i}");
        }
    }

    #[test]
    fn into_parents_is_flat() {
        let dsu = AtomicDsu::new(100);
        for i in 0..99 {
            dsu.union(i, i + 1);
        }
        let parents = dsu.into_parents();
        assert!(parents.iter().all(|&p| p == 0));
    }

    #[test]
    fn chain_unions_compress() {
        let dsu = AtomicDsu::new(1000);
        for i in (1..1000).rev() {
            dsu.union(i - 1, i);
        }
        assert_eq!(dsu.find(999), 0);
    }
}
