//! Recyclable scratch buffers for stage workspaces.
//!
//! Every stage of the PANDORA pipeline (kd-tree queries, Borůvka rounds,
//! tree contraction, chain expansion) needs transient `Vec`s whose size is
//! proportional to the input. Allocating them per call is what makes a
//! "one-shot" pipeline: the cost is invisible for a single run but
//! dominates steady-state serving, where the same stages execute thousands
//! of times over long-lived datasets (multi-`minPts` sweeps, repeated
//! clustering requests). A [`ScratchPool`] turns those allocations into
//! checkouts: a stage *takes* a cleared, capacity-retaining buffer, uses
//! it, and *puts* it back, so the steady state performs no heap traffic
//! beyond first-use growth.
//!
//! # Thread safety
//!
//! The pool is **concurrency-safe**: every method takes `&self` (free
//! lists live behind per-lane mutexes, the accounting in atomics), so a
//! pool can sit inside a shared, `Sync` serving structure — e.g. the
//! per-session scratch sets that `pandora-hdbscan`'s `DatasetIndex` hands
//! to concurrent requests — and `take`/`put` may race freely. Lane locks
//! are held only for the O(1) pop/push, never while a buffer is in use;
//! single-owner workspaces pay one uncontended lock per checkout, which is
//! noise next to the allocation the checkout replaces.
//!
//! # Accounting
//!
//! Every take/put is counted. [`ScratchPool::outstanding`] is the number of
//! leased buffers not yet returned — a steady-state workspace must read 0
//! between runs, and debug builds assert exactly that when the pool is
//! dropped, so a stage that forgets to return a buffer (a slow leak that
//! silently regrows allocations) fails loudly in tests instead of shipping.
//! The counters are atomics, so the books stay exact under concurrent
//! take/put races (two threads returning at once must never lose a
//! decrement — a plain field would, and the debug leak check would then
//! fire on innocent code or miss real leaks). Buffers that are
//! intentionally converted into caller-owned outputs must be checked out
//! with the `detach_*` variants, which keep the books balanced.
//! [`ScratchPool::pooled_bytes`] and [`ScratchPool::reuse_hits`] quantify
//! how much memory the pool retains and how often a take was served
//! without allocating.

use parking_lot::Mutex;

use crate::counters::RelaxedCounter;
use crate::dsu::AtomicDsu;

/// One typed free-list lane of the pool.
#[derive(Debug, Default)]
struct Lane<T> {
    free: Mutex<Vec<Vec<T>>>,
}

impl<T> Lane<T> {
    fn take(&self) -> (Vec<T>, bool) {
        match self.free.lock().pop() {
            Some(mut v) => {
                v.clear();
                (v, true)
            }
            None => (Vec::new(), false),
        }
    }

    fn put(&self, v: Vec<T>) {
        self.free.lock().push(v);
    }

    fn bytes(&self) -> usize {
        self.free
            .lock()
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<T>())
            .sum()
    }
}

/// A recyclable, concurrency-safe pool of typed scratch buffers (see the
/// module docs).
#[derive(Debug, Default)]
pub struct ScratchPool {
    u32s: Lane<u32>,
    u64s: Lane<u64>,
    f32s: Lane<f32>,
    /// `(distance², index)` pairs — the Borůvka candidate shape.
    pairs: Lane<(f32, u32)>,
    /// `(key, a, b)` triples — the canonical MST sort shape.
    triples: Lane<(u32, u32, u32)>,
    /// Reusable union–find structures.
    dsus: Mutex<Vec<AtomicDsu>>,
    outstanding: RelaxedCounter,
    takes: RelaxedCounter,
    hits: RelaxedCounter,
}

macro_rules! lane_methods {
    ($take:ident, $detach:ident, $put:ident, $give:ident, $lane:ident, $t:ty) => {
        /// Checks out a cleared buffer (capacity retained from earlier use).
        /// Must be balanced by the matching `put_*` (or have been taken via
        /// the `detach_*` variant).
        pub fn $take(&self) -> Vec<$t> {
            self.outstanding.incr();
            self.takes.incr();
            let (v, hit) = self.$lane.take();
            self.hits.add(hit as u64);
            v
        }

        /// Checks out a buffer that will be handed to the caller as an
        /// output instead of returned — counted as immediately balanced.
        pub fn $detach(&self) -> Vec<$t> {
            let v = self.$take();
            self.outstanding.sub(1);
            v
        }

        /// Returns a buffer to the pool for reuse.
        pub fn $put(&self, v: Vec<$t>) {
            let prev = self.outstanding.sub(1);
            debug_assert!(prev > 0, "put without a matching take");
            self.$lane.put(v);
        }

        /// Donates a buffer that was never leased from this pool (or left
        /// it via a `detach_*`) — e.g. recycling a dismantled result
        /// structure. No accounting: the books stay balanced.
        pub fn $give(&self, v: Vec<$t>) {
            self.$lane.put(v);
        }
    };
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    lane_methods!(take_u32, detach_u32, put_u32, give_u32, u32s, u32);
    lane_methods!(take_u64, detach_u64, put_u64, give_u64, u64s, u64);
    lane_methods!(take_f32, detach_f32, put_f32, give_f32, f32s, f32);
    lane_methods!(
        take_pairs,
        detach_pairs,
        put_pairs,
        give_pairs,
        pairs,
        (f32, u32)
    );
    lane_methods!(
        take_triples,
        detach_triples,
        put_triples,
        give_triples,
        triples,
        (u32, u32, u32)
    );

    /// Checks out a union–find over `0..n` singletons (reusing a previous
    /// structure's storage when one is pooled).
    pub fn take_dsu(&self, n: usize) -> AtomicDsu {
        self.outstanding.incr();
        self.takes.incr();
        let pooled = self.dsus.lock().pop();
        match pooled {
            Some(mut d) => {
                self.hits.incr();
                d.reset(n);
                d
            }
            None => AtomicDsu::new(n),
        }
    }

    /// Returns a union–find to the pool.
    pub fn put_dsu(&self, d: AtomicDsu) {
        let prev = self.outstanding.sub(1);
        debug_assert!(prev > 0, "put without a matching take");
        self.dsus.lock().push(d);
    }

    /// Number of checked-out buffers not yet returned (0 between runs for a
    /// leak-free workspace).
    pub fn outstanding(&self) -> usize {
        self.outstanding.get() as usize
    }

    /// Total takes served so far.
    pub fn takes(&self) -> usize {
        self.takes.get() as usize
    }

    /// Takes served from the free lists (no allocation).
    pub fn reuse_hits(&self) -> usize {
        self.hits.get() as usize
    }

    /// Bytes currently retained by pooled (idle) buffers.
    pub fn pooled_bytes(&self) -> usize {
        self.u32s.bytes()
            + self.u64s.bytes()
            + self.f32s.bytes()
            + self.pairs.bytes()
            + self.triples.bytes()
            + self
                .dsus
                .lock()
                .iter()
                .map(|d| d.len() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }
}

impl Drop for ScratchPool {
    fn drop(&mut self) {
        // Leak check (debug builds only): every take must have been matched
        // by a put or have used a detach variant. Skipped mid-panic so an
        // unwinding test reports its own failure, not this one.
        if cfg!(debug_assertions) && !std::thread::panicking() {
            let outstanding = self.outstanding.get_mut();
            assert_eq!(
                outstanding, 0,
                "ScratchPool dropped with {outstanding} leased buffer(s) unreturned"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_reuses_capacity() {
        let pool = ScratchPool::new();
        let mut v = pool.take_u32();
        v.extend(0..1000);
        let cap = v.capacity();
        pool.put_u32(v);
        let v2 = pool.take_u32();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap, "capacity must be retained");
        assert_eq!(pool.reuse_hits(), 1);
        assert_eq!(pool.outstanding(), 1);
        pool.put_u32(v2);
        assert_eq!(pool.outstanding(), 0);
        assert!(pool.pooled_bytes() >= 1000 * 4);
    }

    #[test]
    fn detach_balances_books() {
        let pool = ScratchPool::new();
        let out = pool.detach_f32();
        assert_eq!(pool.outstanding(), 0);
        drop(out); // caller-owned; never returns to the pool
    }

    #[test]
    fn dsu_checkout_resets_state() {
        let pool = ScratchPool::new();
        let d = pool.take_dsu(8);
        d.union(0, 5);
        pool.put_dsu(d);
        let d = pool.take_dsu(4);
        assert_eq!(d.len(), 4);
        for v in 0..4 {
            assert_eq!(d.find(v), v, "reset must restore singletons");
        }
        pool.put_dsu(d);
    }

    #[test]
    fn concurrent_take_put_keeps_exact_books() {
        // Regression for the serving redesign: the leak accounting must be
        // race-free when many threads take/put against ONE shared pool.
        // With the old plain-field counters, concurrent increments lose
        // updates and this test's final assertions flake; atomics make the
        // books exact. Repeated spawns shake out interleavings without a
        // model checker (no loom in the offline vendor set).
        let pool = std::sync::Arc::new(ScratchPool::new());
        const THREADS: usize = 8;
        const ROUNDS: usize = 200;
        for _ in 0..5 {
            let taken_before = pool.takes();
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let pool = std::sync::Arc::clone(&pool);
                    std::thread::spawn(move || {
                        for i in 0..ROUNDS {
                            let mut a = pool.take_u32();
                            let mut b = pool.take_f32();
                            let d = pool.take_dsu(16 + t);
                            a.push(i as u32);
                            b.push(i as f32);
                            d.union(0, 1);
                            pool.put_dsu(d);
                            pool.put_f32(b);
                            pool.put_u32(a);
                            // Detached buffers leave the books balanced too.
                            let out = pool.detach_u64();
                            drop(out);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker thread");
            }
            assert_eq!(
                pool.outstanding(),
                0,
                "books must balance after a spawn wave"
            );
            assert_eq!(
                pool.takes() - taken_before,
                THREADS * ROUNDS * 4,
                "every take must be counted exactly once"
            );
        }
        assert!(pool.reuse_hits() > 0, "free lists must actually be shared");
    }

    #[test]
    #[should_panic(expected = "unreturned")]
    #[cfg(debug_assertions)]
    fn leak_is_caught_on_drop() {
        let pool = ScratchPool::new();
        let _leaked = pool.take_u64();
        drop(pool); // leased buffer never returned
    }
}
