//! A counting latch used to join fork–join parallel regions.
//!
//! The pool's caller thread blocks on [`Latch::wait`] until every worker has
//! called [`Latch::count_down`]. Workers that panic poison the latch so the
//! panic is re-raised on the calling thread instead of deadlocking the pool.

use parking_lot::{Condvar, Mutex};

/// A one-shot countdown latch.
pub struct Latch {
    state: Mutex<LatchState>,
    cond: Condvar,
}

struct LatchState {
    remaining: usize,
    poisoned: bool,
}

impl Latch {
    /// Creates a latch that waits for `count` calls to [`Latch::count_down`].
    pub fn new(count: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining: count,
                poisoned: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Records one completed worker; wakes the waiter when it is the last.
    pub fn count_down(&self) {
        let mut state = self.state.lock();
        debug_assert!(state.remaining > 0, "latch counted down too many times");
        state.remaining -= 1;
        if state.remaining == 0 {
            self.cond.notify_all();
        }
    }

    /// Marks the latch as poisoned (a worker panicked).
    pub fn poison(&self) {
        self.state.lock().poisoned = true;
    }

    /// Blocks until all workers have counted down.
    ///
    /// Returns `true` if any worker poisoned the latch.
    pub fn wait(&self) -> bool {
        let mut state = self.state.lock();
        while state.remaining > 0 {
            self.cond.wait(&mut state);
        }
        state.poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_down_to_zero() {
        let latch = Arc::new(Latch::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let latch = Arc::clone(&latch);
                std::thread::spawn(move || latch.count_down())
            })
            .collect();
        assert!(!latch.wait());
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn zero_count_returns_immediately() {
        let latch = Latch::new(0);
        assert!(!latch.wait());
    }

    #[test]
    fn poison_is_reported() {
        let latch = Latch::new(1);
        latch.poison();
        latch.count_down();
        assert!(latch.wait());
    }
}
