//! Parallel stable two-way partition.
//!
//! Splits `0..n` into the indices where a predicate holds and those where it
//! does not, both in ascending order, with one pass of per-block counting,
//! one scan and one scatter — half the work of running two stream
//! compactions (used by the α / non-α split every contraction level).

use crate::scan::seq_exclusive_scan;
use crate::trace::KernelKind;
use crate::{ExecCtx, UnsafeSlice};

const BLOCK_MIN: usize = 4096;

/// Returns `(matching, rest)` index vectors, both ascending.
pub fn partition_indices<F: Fn(usize) -> bool + Sync>(
    ctx: &ExecCtx,
    n: usize,
    pred: F,
) -> (Vec<u32>, Vec<u32>) {
    let mut yes = Vec::new();
    let mut no = Vec::new();
    partition_indices_into(ctx, n, pred, &mut yes, &mut no);
    (yes, no)
}

/// [`partition_indices`] into caller-owned buffers (cleared first, capacity
/// retained) — the contraction loop runs one partition per level, so the
/// reuse removes two `O(n)` allocations per level from the steady state.
pub fn partition_indices_into<F: Fn(usize) -> bool + Sync>(
    ctx: &ExecCtx,
    n: usize,
    pred: F,
    yes: &mut Vec<u32>,
    no: &mut Vec<u32>,
) {
    yes.clear();
    no.clear();
    ctx.record(KernelKind::Scan, n as u64, (n * 12) as u64);
    if ctx.is_serial() || n < 4 * BLOCK_MIN {
        for i in 0..n {
            if pred(i) {
                yes.push(i as u32);
            } else {
                no.push(i as u32);
            }
        }
        return;
    }
    let lanes = ctx.lanes();
    let block = (n.div_ceil(lanes * 4)).max(BLOCK_MIN);
    let nb = n.div_ceil(block);

    // Per-block match counts.
    let mut yes_counts = vec![0u32; nb];
    {
        let counts_view = UnsafeSlice::new(&mut yes_counts);
        let pred_ref = &pred;
        ctx.for_each(nb, 1, |b| {
            let start = b * block;
            let end = (start + block).min(n);
            let mut c = 0u32;
            for i in start..end {
                c += pred_ref(i) as u32;
            }
            // SAFETY: distinct block slots.
            unsafe { counts_view.write(b, c) };
        });
    }
    // Offsets for both sides: yes side is a scan of yes_counts; no side is
    // block_start - yes_offset (total positions before the block minus the
    // matching ones).
    let mut yes_offsets = yes_counts;
    let total_yes = seq_exclusive_scan(&mut yes_offsets) as usize;

    yes.resize(total_yes, 0);
    no.resize(n - total_yes, 0);
    {
        let yes_view = UnsafeSlice::new(yes.as_mut_slice());
        let no_view = UnsafeSlice::new(no.as_mut_slice());
        let offsets_ref = &yes_offsets;
        let pred_ref = &pred;
        ctx.for_each(nb, 1, |b| {
            let start = b * block;
            let end = (start + block).min(n);
            let mut yes_cursor = offsets_ref[b] as usize;
            let mut no_cursor = start - yes_cursor;
            for i in start..end {
                // SAFETY: block cursors cover disjoint output ranges.
                unsafe {
                    if pred_ref(i) {
                        yes_view.write(yes_cursor, i as u32);
                        yes_cursor += 1;
                    } else {
                        no_view.write(no_cursor, i as u32);
                        no_cursor += 1;
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::Arc;

    fn ctxs() -> Vec<ExecCtx> {
        vec![
            ExecCtx::serial(),
            ExecCtx::on_pool(Arc::new(ThreadPool::new(4))),
        ]
    }

    #[test]
    fn partition_matches_filter() {
        for ctx in ctxs() {
            for n in [0usize, 100, 4 * 4096, 100_000] {
                let (yes, no) = partition_indices(&ctx, n, |i| i % 3 == 1);
                let expect_yes: Vec<u32> = (0..n as u32).filter(|i| i % 3 == 1).collect();
                let expect_no: Vec<u32> = (0..n as u32).filter(|i| i % 3 != 1).collect();
                assert_eq!(yes, expect_yes, "n={n}");
                assert_eq!(no, expect_no, "n={n}");
            }
        }
    }

    #[test]
    fn all_and_none() {
        for ctx in ctxs() {
            let n = 50_000;
            let (yes, no) = partition_indices(&ctx, n, |_| true);
            assert_eq!(yes.len(), n);
            assert!(no.is_empty());
            let (yes, no) = partition_indices(&ctx, n, |_| false);
            assert!(yes.is_empty());
            assert_eq!(no.len(), n);
        }
    }
}
