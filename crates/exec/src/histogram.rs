//! Parallel histograms with per-lane privatization.
//!
//! Small-radix histograms (≤ a few thousand bins) are the building block of
//! radix passes, level censuses and dataset statistics. Each task
//! accumulates into a private bin array; privates are reduced at the end —
//! the standard shared-memory pattern that avoids atomic contention.

use parking_lot::Mutex;

use crate::trace::KernelKind;
use crate::ExecCtx;

/// Counts `key(i)` over `0..n` into `n_bins` buckets.
///
/// Keys outside `0..n_bins` are ignored (counted into no bin).
pub fn histogram<F: Fn(usize) -> usize + Sync>(
    ctx: &ExecCtx,
    n: usize,
    n_bins: usize,
    key: F,
) -> Vec<u64> {
    ctx.record(KernelKind::For, n as u64, (n * 8) as u64);
    let partials: Mutex<Vec<Vec<u64>>> = Mutex::new(Vec::new());
    ctx.for_each_chunk(n, 4096, |range| {
        let mut local = vec![0u64; n_bins];
        for i in range {
            let k = key(i);
            if k < n_bins {
                local[k] += 1;
            }
        }
        partials.lock().push(local);
    });
    let mut out = vec![0u64; n_bins];
    for local in partials.into_inner() {
        for (o, l) in out.iter_mut().zip(local) {
            *o += l;
        }
    }
    out
}

/// Weighted histogram: sums `weight(i)` into the bucket `key(i)`.
pub fn weighted_histogram<FK, FW>(
    ctx: &ExecCtx,
    n: usize,
    n_bins: usize,
    key: FK,
    weight: FW,
) -> Vec<f64>
where
    FK: Fn(usize) -> usize + Sync,
    FW: Fn(usize) -> f64 + Sync,
{
    ctx.record(KernelKind::For, n as u64, (n * 12) as u64);
    let partials: Mutex<Vec<Vec<f64>>> = Mutex::new(Vec::new());
    ctx.for_each_chunk(n, 4096, |range| {
        let mut local = vec![0f64; n_bins];
        for i in range {
            let k = key(i);
            if k < n_bins {
                local[k] += weight(i);
            }
        }
        partials.lock().push(local);
    });
    let mut out = vec![0f64; n_bins];
    for local in partials.into_inner() {
        for (o, l) in out.iter_mut().zip(local) {
            *o += l;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::Arc;

    fn ctxs() -> Vec<ExecCtx> {
        vec![
            ExecCtx::serial(),
            ExecCtx::on_pool(Arc::new(ThreadPool::new(4))),
        ]
    }

    #[test]
    fn counts_match_sequential() {
        for ctx in ctxs() {
            let n = 100_000usize;
            let got = histogram(&ctx, n, 7, |i| i % 7);
            let mut expect = vec![0u64; 7];
            for i in 0..n {
                expect[i % 7] += 1;
            }
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn out_of_range_keys_dropped() {
        for ctx in ctxs() {
            let got = histogram(&ctx, 1000, 4, |i| i % 10);
            assert_eq!(got.iter().sum::<u64>(), 400);
        }
    }

    #[test]
    fn weighted_sums() {
        for ctx in ctxs() {
            let got = weighted_histogram(&ctx, 10_000, 2, |i| i % 2, |i| i as f64);
            let evens: f64 = (0..10_000).step_by(2).map(|i| i as f64).sum();
            let odds: f64 = (1..10_000).step_by(2).map(|i| i as f64).sum();
            assert!((got[0] - evens).abs() < 1e-6);
            assert!((got[1] - odds).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_input() {
        let got = histogram(&ExecCtx::serial(), 0, 3, |_| 0);
        assert_eq!(got, vec![0, 0, 0]);
    }
}
