//! The PANDORA driver: sort → recursive contraction → expansion
//! (paper Algorithm 3), with per-phase timings matching the paper's
//! instrumentation (Figs. 12–13: `sort`, `contraction`, `expansion`).

use std::time::Instant;

use pandora_exec::{ExecCtx, ScratchPool};

use crate::dendrogram::Dendrogram;
use crate::edge::{Edge, SortedMst};
use crate::expansion::{assign_chain_keys_into, sort_chain_keys, stitch_chains, vertex_parents};
use crate::levels::build_hierarchy_into;

/// Wall-clock seconds per PANDORA phase.
///
/// Following the paper (§6.4.3), "sort" includes both the initial edge sort
/// and the final chain sort; "contraction" is the multilevel tree
/// contraction; "expansion" is chain assignment and stitching.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Initial + final sorting time.
    pub sort_s: f64,
    /// Multilevel tree contraction time.
    pub contraction_s: f64,
    /// Dendrogram expansion (chain mapping + stitching) time.
    pub expansion_s: f64,
}

impl PhaseTimings {
    /// Total dendrogram-construction time.
    pub fn total(&self) -> f64 {
        self.sort_s + self.contraction_s + self.expansion_s
    }
}

/// Run statistics: level structure and timings.
#[derive(Debug, Clone, Default)]
pub struct PandoraStats {
    /// Number of contraction levels (trees built), ≥ 1.
    pub n_levels: usize,
    /// Edge count at each level (level 0 = input).
    pub level_edge_counts: Vec<usize>,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
}

/// Builds the single-linkage dendrogram of an MST given as an unsorted edge
/// list. Convenience wrapper over [`dendrogram_with_stats`].
pub fn dendrogram(ctx: &ExecCtx, n_vertices: usize, edges: &[Edge]) -> Dendrogram {
    dendrogram_with_stats(ctx, n_vertices, edges).0
}

/// Builds the dendrogram and reports level/timing statistics.
pub fn dendrogram_with_stats(
    ctx: &ExecCtx,
    n_vertices: usize,
    edges: &[Edge],
) -> (Dendrogram, PandoraStats) {
    let t0 = Instant::now();
    ctx.set_phase("sort");
    let mst = SortedMst::from_edges(ctx, n_vertices, edges);
    let initial_sort_s = t0.elapsed().as_secs_f64();
    let (dendro, mut stats) = dendrogram_from_sorted(ctx, &mst);
    stats.timings.sort_s += initial_sort_s;
    (dendro, stats)
}

/// Builds the dendrogram of an already canonically sorted MST.
///
/// The reported `sort_s` covers only the final (chain) sort; callers that
/// sorted the input themselves should add that cost (as
/// [`dendrogram_with_stats`] does).
pub fn dendrogram_from_sorted(ctx: &ExecCtx, mst: &SortedMst) -> (Dendrogram, PandoraStats) {
    let mut ws = DendrogramWorkspace::new();
    dendrogram_from_sorted_with(ctx, mst, &mut ws)
}

/// Reusable buffers for repeated dendrogram construction.
///
/// One workspace serves any number of [`dendrogram_from_sorted_with`] calls
/// (over the same or different MSTs — unlike the EMST workspace, nothing
/// here is bound to a dataset): the contraction hierarchy's level trees,
/// `maxIncident` tables, vertex maps, α splits, union–find and the packed
/// chain-key array are all recycled through an internal
/// [`ScratchPool`], so the steady state stops reallocating the hierarchy.
/// Only the returned [`Dendrogram`] arrays are freshly allocated (the
/// caller owns them).
#[derive(Debug, Default)]
pub struct DendrogramWorkspace {
    scratch: ScratchPool,
    keys: Vec<u64>,
}

impl DendrogramWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The backing pool (for allocation accounting).
    pub fn scratch(&self) -> &ScratchPool {
        &self.scratch
    }
}

/// [`dendrogram_from_sorted`] reusing a [`DendrogramWorkspace`].
pub fn dendrogram_from_sorted_with(
    ctx: &ExecCtx,
    mst: &SortedMst,
    ws: &mut DendrogramWorkspace,
) -> (Dendrogram, PandoraStats) {
    let n_edges = mst.n_edges();

    // Phase: multilevel tree contraction (§3.2).
    let t_contraction = Instant::now();
    ctx.set_phase("contraction");
    let hierarchy = build_hierarchy_into(ctx, mst, &mut ws.scratch);
    let contraction_s = t_contraction.elapsed().as_secs_f64();

    // Phase: expansion — chain assignment (§3.3.2).
    let t_assign = Instant::now();
    ctx.set_phase("expansion");
    let keys = &mut ws.keys;
    assign_chain_keys_into(ctx, &hierarchy, keys);
    let assign_s = t_assign.elapsed().as_secs_f64();

    // Phase: final sort (§3.3.3, counted as "sort" per §6.4.3).
    let t_final_sort = Instant::now();
    ctx.set_phase("sort");
    sort_chain_keys(ctx, keys);
    let final_sort_s = t_final_sort.elapsed().as_secs_f64();

    // Phase: stitching (expansion).
    let t_stitch = Instant::now();
    ctx.set_phase("expansion");
    let edge_parent = stitch_chains(ctx, n_edges, keys);
    let vertex_parent = vertex_parents(ctx, &hierarchy);
    let stitch_s = t_stitch.elapsed().as_secs_f64();

    let stats = PandoraStats {
        n_levels: hierarchy.n_levels(),
        level_edge_counts: hierarchy.trees.iter().map(|t| t.n_edges()).collect(),
        timings: PhaseTimings {
            sort_s: final_sort_s,
            contraction_s,
            expansion_s: assign_s + stitch_s,
        },
    };
    hierarchy.recycle(&mut ws.scratch);
    (
        Dendrogram {
            edge_parent,
            vertex_parent,
            edge_weight: mst.weight.clone(),
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::union_find::dendrogram_union_find;

    #[test]
    fn matches_union_find_and_validates() {
        use rand::prelude::*;
        let ctx = ExecCtx::serial();
        let mut rng = StdRng::seed_from_u64(99);
        for n_vertices in [2usize, 3, 5, 64, 513, 2000] {
            let edges: Vec<Edge> = (1..n_vertices)
                .map(|v| {
                    Edge::new(
                        rng.gen_range(0..v) as u32,
                        v as u32,
                        rng.gen_range(0.0..4.0f32),
                    )
                })
                .collect();
            let (d, stats) = dendrogram_with_stats(&ctx, n_vertices, &edges);
            d.validate().unwrap();
            let mst = SortedMst::from_edges(&ctx, n_vertices, &edges);
            assert_eq!(d, dendrogram_union_find(&mst));
            assert_eq!(stats.level_edge_counts[0], n_vertices - 1);
            assert!(stats.n_levels >= 1);
        }
    }

    #[test]
    fn parallel_context_same_result() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        let n_vertices = 5000;
        let edges: Vec<Edge> = (1..n_vertices)
            .map(|v| {
                Edge::new(
                    rng.gen_range(0..v) as u32,
                    v as u32,
                    rng.gen_range(0.0..1.0f32),
                )
            })
            .collect();
        let d_serial = dendrogram(&ExecCtx::serial(), n_vertices, &edges);
        let d_parallel = dendrogram(&ExecCtx::threads(), n_vertices, &edges);
        assert_eq!(d_serial, d_parallel);
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        use rand::prelude::*;
        let ctx = ExecCtx::serial();
        let mut rng = StdRng::seed_from_u64(41);
        let mut ws = DendrogramWorkspace::new();
        // Different tree shapes through ONE workspace, including shrinking
        // inputs (buffers must resize correctly, not just grow).
        for n_vertices in [800usize, 64, 2, 301, 800] {
            let edges: Vec<Edge> = (1..n_vertices)
                .map(|v| {
                    Edge::new(
                        rng.gen_range(0..v) as u32,
                        v as u32,
                        rng.gen_range(0..40) as f32 * 0.5,
                    )
                })
                .collect();
            let mst = SortedMst::from_edges(&ctx, n_vertices, &edges);
            let (warm, warm_stats) = dendrogram_from_sorted_with(&ctx, &mst, &mut ws);
            let (fresh, fresh_stats) = dendrogram_from_sorted(&ctx, &mst);
            assert_eq!(warm, fresh, "n={n_vertices}");
            assert_eq!(warm_stats.n_levels, fresh_stats.n_levels);
            // Every leased buffer must be back in the pool between runs.
            assert_eq!(ws.scratch().outstanding(), 0);
        }
        // The second run onward is served from the pool, not the allocator.
        assert!(ws.scratch().reuse_hits() > 0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let ctx = ExecCtx::serial();
        let (d, stats) = dendrogram_with_stats(&ctx, 1, &[]);
        assert_eq!(d.n_edges(), 0);
        assert_eq!(stats.n_levels, 1);
        let (d, _) = dendrogram_with_stats(&ctx, 2, &[Edge::new(0, 1, 1.0)]);
        d.validate().unwrap();
    }

    #[test]
    fn tracing_produces_phased_kernels() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        let n_vertices = 300;
        let edges: Vec<Edge> = (1..n_vertices)
            .map(|v| {
                Edge::new(
                    rng.gen_range(0..v) as u32,
                    v as u32,
                    rng.gen_range(0.0..1.0f32),
                )
            })
            .collect();
        let (ctx, tracer) = ExecCtx::serial().with_tracing();
        let _ = dendrogram_with_stats(&ctx, n_vertices, &edges);
        let trace = tracer.snapshot();
        let phases = trace.phases();
        for expected in ["sort", "contraction", "expansion"] {
            assert!(phases.contains(&expected), "missing phase {expected}");
        }
    }
}
