//! Level trees and the recursive tree-contraction hierarchy (paper §3.2).
//!
//! Level 0 is the input MST. Each contraction step classifies every edge of
//! the current tree as α or non-α (paper Eq. 2), contracts the non-α forest
//! with the lock-free union–find, and produces the next level's tree whose
//! vertices are the contraction components ("supervertices") and whose edges
//! are the α edges. Recursion stops when a level has no α edges; that
//! level's dendrogram is a single sorted chain.
//!
//! Edges keep their **global** index (position in the canonical
//! weight-descending order) at every level, so index comparisons are
//! meaningful across levels — the property the expansion step relies on.

use pandora_exec::atomic::as_atomic_u64;
use pandora_exec::partition::partition_indices_into;
use pandora_exec::scan::exclusive_scan_in_place;
use pandora_exec::trace::KernelKind;
use pandora_exec::{ExecCtx, ScratchPool, UnsafeSlice, DEFAULT_GRAIN};

use crate::edge::{SortedMst, INVALID};

/// A tree at one contraction level.
#[derive(Debug, Clone)]
pub struct LevelTree {
    /// Number of (super)vertices at this level.
    pub n_vertices: usize,
    /// Level-local first endpoint per edge.
    pub src: Vec<u32>,
    /// Level-local second endpoint per edge.
    pub dst: Vec<u32>,
    /// Global edge index per edge, strictly ascending.
    pub ids: Vec<u32>,
}

impl LevelTree {
    /// Number of edges at this level.
    pub fn n_edges(&self) -> usize {
        self.ids.len()
    }

    /// Level 0: the input MST with implicit global ids `0..n`.
    pub fn from_mst(mst: &SortedMst) -> Self {
        Self {
            n_vertices: mst.n_vertices(),
            src: mst.src.clone(),
            dst: mst.dst.clone(),
            ids: (0..mst.n_edges() as u32).collect(),
        }
    }
}

/// Packed `maxIncident` entry: global edge id and level-local position.
///
/// Zero means "no incident edge"; otherwise the high 32 bits hold
/// `global_id + 1` and the low 32 bits the edge's position in the level's
/// arrays. Because positions are ascending in global id, `fetch_max` on the
/// packed value selects the maximum global id.
#[inline(always)]
pub fn pack_incident(global_id: u32, pos: u32) -> u64 {
    ((global_id as u64 + 1) << 32) | pos as u64
}

/// Global edge id of a packed entry ([`INVALID`] if empty).
#[inline(always)]
pub fn packed_id(packed: u64) -> u32 {
    if packed == 0 {
        INVALID
    } else {
        ((packed >> 32) - 1) as u32
    }
}

/// Level-local position of a packed entry (unspecified if empty).
#[inline(always)]
pub fn packed_pos(packed: u64) -> u32 {
    packed as u32
}

/// Computes `maxIncident(v)` for every vertex of `tree` (paper §3.1.1):
/// the incident edge with the largest global index, i.e. the lightest.
pub fn max_incident(ctx: &ExecCtx, tree: &LevelTree) -> Vec<u64> {
    let mut packed = Vec::new();
    max_incident_into(ctx, tree, &mut packed);
    packed
}

/// [`max_incident`] into a reusable buffer (cleared first, capacity
/// retained) — one table per contraction level, reused across runs by the
/// dendrogram workspace.
pub fn max_incident_into(ctx: &ExecCtx, tree: &LevelTree, packed: &mut Vec<u64>) {
    let n = tree.n_edges();
    packed.clear();
    packed.resize(tree.n_vertices, 0);
    {
        let view = as_atomic_u64(packed.as_mut_slice());
        let (src, dst, ids) = (&tree.src, &tree.dst, &tree.ids);
        ctx.record(KernelKind::Gather, n as u64, (n as u64) * 24);
        ctx.for_each_chunk_traced(
            n,
            DEFAULT_GRAIN,
            KernelKind::For,
            (n as u64) * 12,
            |range| {
                for i in range {
                    let key = pack_incident(ids[i], i as u32);
                    // pandora-lint: allow(PL004) — packed incident-edge max is commutative; readers run only after the dispatch joins
                    view[src[i] as usize].fetch_max(key, std::sync::atomic::Ordering::Relaxed);
                    // pandora-lint: allow(PL004) — as above — the same commutative fetch_max on the other endpoint
                    view[dst[i] as usize].fetch_max(key, std::sync::atomic::Ordering::Relaxed);
                }
            },
        );
    }
}

/// How an edge-node relates to vertex-nodes in the dendrogram (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeNodeKind {
    /// Two vertex children — terminates a leaf chain.
    Leaf,
    /// One vertex child — an interior chain link.
    Chain,
    /// No vertex children — both children are edge-nodes (branching point).
    Alpha,
}

/// Classifies edge `pos` of `tree` given the level's `maxIncident` table.
#[inline]
pub fn edge_node_kind(tree: &LevelTree, max_inc: &[u64], pos: usize) -> EdgeNodeKind {
    let id = tree.ids[pos];
    let vertex_children = (packed_id(max_inc[tree.src[pos] as usize]) == id) as u8
        + (packed_id(max_inc[tree.dst[pos] as usize]) == id) as u8;
    match vertex_children {
        2 => EdgeNodeKind::Leaf,
        1 => EdgeNodeKind::Chain,
        _ => EdgeNodeKind::Alpha,
    }
}

/// The α / non-α split of one level's edges (positions, ascending).
#[derive(Debug)]
pub struct AlphaSplit {
    /// Positions of α edges (paper Eq. 2).
    pub alpha: Vec<u32>,
    /// Positions of non-α (leaf and chain) edges.
    pub non_alpha: Vec<u32>,
}

/// Applies the α test (paper Eq. 2) to every edge of the level.
pub fn split_alpha(ctx: &ExecCtx, tree: &LevelTree, max_inc: &[u64]) -> AlphaSplit {
    let mut split = AlphaSplit {
        alpha: Vec::new(),
        non_alpha: Vec::new(),
    };
    split_alpha_into(ctx, tree, max_inc, &mut split);
    split
}

/// [`split_alpha`] into a reusable split (both index vectors cleared
/// first, capacity retained).
pub fn split_alpha_into(ctx: &ExecCtx, tree: &LevelTree, max_inc: &[u64], split: &mut AlphaSplit) {
    let n = tree.n_edges();
    let (src, dst, ids) = (&tree.src, &tree.dst, &tree.ids);
    let is_alpha = |i: usize| {
        let id = ids[i];
        packed_id(max_inc[src[i] as usize]) != id && packed_id(max_inc[dst[i] as usize]) != id
    };
    partition_indices_into(ctx, n, is_alpha, &mut split.alpha, &mut split.non_alpha);
}

/// Output of contracting one level.
#[derive(Debug)]
pub struct ContractionStep {
    /// The next level's tree (vertices = components of the non-α forest).
    pub next: LevelTree,
    /// Maps each vertex of the contracted level to its supervertex.
    pub vertex_map: Vec<u32>,
    /// For each non-α edge (parallel to `split.non_alpha`), the supervertex
    /// it was contracted into.
    pub home: Vec<u32>,
}

/// Contracts all non-α edges of `tree` (paper §3.1.1 "Edge contraction").
pub fn contract_level(ctx: &ExecCtx, tree: &LevelTree, split: &AlphaSplit) -> ContractionStep {
    let mut scratch = ScratchPool::new();
    contract_level_into(ctx, tree, split, &mut scratch)
}

/// [`contract_level`] drawing every buffer from a [`ScratchPool`].
///
/// Transient buffers (the union–find, component labels, renumbering marks)
/// are leased and returned within this call; the vectors that escape inside
/// the returned [`ContractionStep`] are detached checkouts — callers that
/// hold the pool long-term (the dendrogram workspace) donate them back once
/// the hierarchy is dismantled, so repeat runs reuse them too.
pub fn contract_level_into(
    ctx: &ExecCtx,
    tree: &LevelTree,
    split: &AlphaSplit,
    scratch: &mut ScratchPool,
) -> ContractionStep {
    let nv = tree.n_vertices;
    let dsu = scratch.take_dsu(nv);
    {
        let (src, dst) = (&tree.src, &tree.dst);
        let non_alpha = &split.non_alpha;
        let dsu_ref = &dsu;
        ctx.for_each_chunk_traced(
            non_alpha.len(),
            DEFAULT_GRAIN / 4,
            KernelKind::DsuUnion,
            (non_alpha.len() as u64) * 16,
            |range| {
                for k in range {
                    let pos = non_alpha[k] as usize;
                    dsu_ref.union(src[pos], dst[pos]);
                }
            },
        );
    }

    // Component labels for every vertex.
    let mut labels = scratch.take_u32();
    labels.resize(nv, 0);
    {
        let labels_view = UnsafeSlice::new(labels.as_mut_slice());
        let dsu_ref = &dsu;
        ctx.for_each_chunk_traced(
            nv,
            DEFAULT_GRAIN,
            KernelKind::DsuFind,
            (nv as u64) * 8,
            |range| {
                for v in range {
                    // SAFETY: each vertex slot written exactly once.
                    unsafe { labels_view.write(v, dsu_ref.find(v as u32)) };
                }
            },
        );
    }

    // Renumber roots densely: mark → exclusive scan → gather.
    let mut mark = scratch.take_u32();
    mark.resize(nv, 0);
    {
        let mark_view = UnsafeSlice::new(mark.as_mut_slice());
        let labels_ref = &labels;
        ctx.for_each(nv, DEFAULT_GRAIN, |v| {
            // SAFETY: disjoint writes.
            unsafe { mark_view.write(v, (labels_ref[v] == v as u32) as u32) };
        });
    }
    let n_super = exclusive_scan_in_place(ctx, &mut mark) as usize;
    let mut vertex_map = scratch.detach_u32();
    vertex_map.resize(nv, 0);
    {
        let map_view = UnsafeSlice::new(vertex_map.as_mut_slice());
        let (labels_ref, mark_ref) = (&labels, &mark);
        ctx.for_each_chunk_traced(
            nv,
            DEFAULT_GRAIN,
            KernelKind::Gather,
            (nv as u64) * 12,
            |range| {
                for v in range {
                    // SAFETY: disjoint writes.
                    unsafe { map_view.write(v, mark_ref[labels_ref[v] as usize]) };
                }
            },
        );
    }

    // Build the α-MST: remap α-edge endpoints into supervertex ids.
    let na = split.alpha.len();
    let mut next_src = scratch.detach_u32();
    next_src.resize(na, 0);
    let mut next_dst = scratch.detach_u32();
    next_dst.resize(na, 0);
    let mut next_ids = scratch.detach_u32();
    next_ids.resize(na, 0);
    {
        let sv = UnsafeSlice::new(next_src.as_mut_slice());
        let dv = UnsafeSlice::new(next_dst.as_mut_slice());
        let iv = UnsafeSlice::new(next_ids.as_mut_slice());
        let (src, dst, ids) = (&tree.src, &tree.dst, &tree.ids);
        let (alpha, map) = (&split.alpha, &vertex_map);
        ctx.for_each_chunk_traced(
            na,
            DEFAULT_GRAIN,
            KernelKind::Gather,
            (na as u64) * 24,
            |range| {
                for k in range {
                    let pos = alpha[k] as usize;
                    // SAFETY: slot k is owned by iteration k.
                    unsafe {
                        sv.write(k, map[src[pos] as usize]);
                        dv.write(k, map[dst[pos] as usize]);
                        iv.write(k, ids[pos]);
                    }
                }
            },
        );
    }

    // Home supervertex of every contracted (non-α) edge.
    let nn = split.non_alpha.len();
    let mut home = scratch.detach_u32();
    home.resize(nn, 0);
    {
        let hv = UnsafeSlice::new(home.as_mut_slice());
        let (src, non_alpha, map) = (&tree.src, &split.non_alpha, &vertex_map);
        ctx.for_each_chunk_traced(
            nn,
            DEFAULT_GRAIN,
            KernelKind::Gather,
            (nn as u64) * 12,
            |range| {
                for k in range {
                    let pos = non_alpha[k] as usize;
                    // SAFETY: slot k is owned by iteration k.
                    unsafe { hv.write(k, map[src[pos] as usize]) };
                }
            },
        );
    }

    scratch.put_u32(labels);
    scratch.put_u32(mark);
    scratch.put_dsu(dsu);
    ContractionStep {
        next: LevelTree {
            n_vertices: n_super,
            src: next_src,
            dst: next_dst,
            ids: next_ids,
        },
        vertex_map,
        home,
    }
}

/// The full recursive contraction hierarchy (paper §3.2 "Multilevel tree
/// contraction") plus the per-edge bookkeeping the expansion step needs.
#[derive(Debug)]
pub struct ContractionHierarchy {
    /// `trees[ℓ]` is the tree at level ℓ; `trees.last()` has no α edges.
    pub trees: Vec<LevelTree>,
    /// `vertex_maps[ℓ]` maps level-ℓ vertices to level-(ℓ+1) supervertices
    /// (one entry per contraction, i.e. `trees.len() - 1`).
    pub vertex_maps: Vec<Vec<u32>>,
    /// `max_inc[ℓ]` is the packed `maxIncident` table of level ℓ.
    pub max_inc: Vec<Vec<u64>>,
    /// Per global edge: the level at which it was contracted
    /// (`trees.len() - 1` for edges surviving to the final level).
    pub edge_level: Vec<u32>,
    /// Per global edge: its supervertex at `edge_level + 1`
    /// ([`INVALID`] for final-level edges).
    pub edge_home: Vec<u32>,
}

impl ContractionHierarchy {
    /// Number of contraction levels (`L + 1` trees ⇒ `L` contractions).
    pub fn n_levels(&self) -> usize {
        self.trees.len()
    }

    /// α-edge count per level (edges of level ℓ+1 are the α edges of ℓ).
    pub fn alpha_counts(&self) -> Vec<usize> {
        self.trees[1..].iter().map(|t| t.n_edges()).collect()
    }

    /// Dismantles the hierarchy, donating every per-level buffer to
    /// `scratch` so the next [`build_hierarchy_into`] run over the same
    /// pool allocates nothing.
    pub fn recycle(self, scratch: &mut ScratchPool) {
        for tree in self.trees {
            scratch.give_u32(tree.src);
            scratch.give_u32(tree.dst);
            scratch.give_u32(tree.ids);
        }
        for map in self.vertex_maps {
            scratch.give_u32(map);
        }
        for mi in self.max_inc {
            scratch.give_u64(mi);
        }
        scratch.give_u32(self.edge_level);
        scratch.give_u32(self.edge_home);
    }
}

/// Builds the full hierarchy by repeated contraction.
pub fn build_hierarchy(ctx: &ExecCtx, mst: &SortedMst) -> ContractionHierarchy {
    let mut scratch = ScratchPool::new();
    build_hierarchy_into(ctx, mst, &mut scratch)
}

/// [`build_hierarchy`] drawing every level buffer from a [`ScratchPool`].
///
/// Combined with [`ContractionHierarchy::recycle`], a long-lived workspace
/// runs the whole contraction allocation-free in the steady state: level
/// trees, `maxIncident` tables, vertex maps, the α splits, the union–find
/// and the per-level scratch all come back from earlier runs.
pub fn build_hierarchy_into(
    ctx: &ExecCtx,
    mst: &SortedMst,
    scratch: &mut ScratchPool,
) -> ContractionHierarchy {
    let n_edges = mst.n_edges();
    let mut level0_src = scratch.detach_u32();
    level0_src.extend_from_slice(&mst.src);
    let mut level0_dst = scratch.detach_u32();
    level0_dst.extend_from_slice(&mst.dst);
    let mut level0_ids = scratch.detach_u32();
    level0_ids.extend(0..n_edges as u32);
    let mut trees = vec![LevelTree {
        n_vertices: mst.n_vertices(),
        src: level0_src,
        dst: level0_dst,
        ids: level0_ids,
    }];
    let mut vertex_maps = Vec::new();
    let mut max_inc = Vec::new();
    let mut edge_level = scratch.detach_u32();
    edge_level.resize(n_edges, 0);
    let mut edge_home = scratch.detach_u32();
    edge_home.resize(n_edges, INVALID);
    let mut split = AlphaSplit {
        alpha: scratch.take_u32(),
        non_alpha: scratch.take_u32(),
    };

    loop {
        let level = trees.len() - 1;
        let tree = trees.last().expect("at least one level");
        let mut mi = scratch.detach_u64();
        max_incident_into(ctx, tree, &mut mi);
        split_alpha_into(ctx, tree, &mi, &mut split);
        debug_assert!(
            tree.n_edges() == 0 || split.alpha.len() <= (tree.n_edges() - 1) / 2,
            "α-count bound n_α ≤ (n-1)/2 violated (paper §4.2)"
        );
        if split.alpha.is_empty() {
            // Final level: all remaining edges form the root chain.
            for &id in &tree.ids {
                edge_level[id as usize] = level as u32;
            }
            max_inc.push(mi);
            break;
        }
        let step = contract_level_into(ctx, tree, &split, scratch);
        {
            let el_view = UnsafeSlice::new(&mut edge_level);
            let eh_view = UnsafeSlice::new(&mut edge_home);
            let (ids, non_alpha, home) = (&tree.ids, &split.non_alpha, &step.home);
            ctx.for_each_chunk_traced(
                non_alpha.len(),
                DEFAULT_GRAIN,
                KernelKind::Gather,
                (non_alpha.len() as u64) * 16,
                |range| {
                    for k in range {
                        let id = ids[non_alpha[k] as usize] as usize;
                        // SAFETY: each global edge is contracted at exactly
                        // one level, so slot `id` is written once overall.
                        unsafe {
                            el_view.write(id, level as u32);
                            eh_view.write(id, home[k]);
                        }
                    }
                },
            );
        }
        max_inc.push(mi);
        vertex_maps.push(step.vertex_map);
        scratch.give_u32(step.home);
        trees.push(step.next);
        debug_assert!(
            trees.len() <= (n_edges + 2).ilog2() as usize + 2,
            "level count bound ⌈log2(n+1)⌉ violated (paper §4.2)"
        );
    }
    scratch.put_u32(split.alpha);
    scratch.put_u32(split.non_alpha);

    ContractionHierarchy {
        trees,
        vertex_maps,
        max_inc,
        edge_level,
        edge_home,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::edge::Edge;

    /// A 24-vertex "caterpillar of stars" exercising several contraction
    /// levels: three hubs carrying leaf fans, bridged by heavy edges, plus a
    /// tail chain — qualitatively the shape of the paper's Fig. 6a example.
    pub(crate) fn caterpillar_example() -> SortedMst {
        let mut edges = Vec::new();
        let mut w = 100.0f32;
        let mut push = |edges: &mut Vec<Edge>, u: u32, v: u32| {
            edges.push(Edge::new(u, v, w));
            w -= 1.0;
        };
        // Hub bridges (heavy → α candidates).
        push(&mut edges, 0, 1);
        push(&mut edges, 1, 2);
        // Leaf fans on each hub (lighter).
        for (hub, base) in [(0u32, 3u32), (1, 8), (2, 13)] {
            for k in 0..5u32 {
                push(&mut edges, hub, base + k);
            }
        }
        // Tail chain off the last fan leaf.
        for (a, b) in [
            (17u32, 18u32),
            (18, 19),
            (19, 20),
            (20, 21),
            (21, 22),
            (22, 23),
        ] {
            push(&mut edges, a, b);
        }
        SortedMst::from_edges(&ExecCtx::serial(), 24, &edges)
    }

    /// Path graph 0-1-2-...-k with descending weights from vertex 0.
    fn path_mst(k: usize) -> SortedMst {
        let edges: Vec<Edge> = (0..k)
            .map(|i| Edge::new(i as u32, i as u32 + 1, (k - i) as f32))
            .collect();
        SortedMst::from_edges(&ExecCtx::serial(), k + 1, &edges)
    }

    /// Star graph: vertex 0 connected to 1..=k, weights descending.
    fn star_mst(k: usize) -> SortedMst {
        let edges: Vec<Edge> = (1..=k)
            .map(|i| Edge::new(0, i as u32, (k + 1 - i) as f32))
            .collect();
        SortedMst::from_edges(&ExecCtx::serial(), k + 1, &edges)
    }

    #[test]
    fn path_has_no_alpha_edges() {
        // A path's dendrogram is one chain: every edge is maxIncident of the
        // endpoint further from the heavy end, so no edge passes the α test.
        let ctx = ExecCtx::serial();
        let mst = path_mst(10);
        let tree = LevelTree::from_mst(&mst);
        let mi = max_incident(&ctx, &tree);
        let split = split_alpha(&ctx, &tree, &mi);
        assert!(split.alpha.is_empty());
        assert_eq!(split.non_alpha.len(), 10);
    }

    #[test]
    fn star_has_no_alpha_edges() {
        // In a star every edge is maxIncident of its leaf endpoint.
        let ctx = ExecCtx::serial();
        let mst = star_mst(10);
        let tree = LevelTree::from_mst(&mst);
        let mi = max_incident(&ctx, &tree);
        let split = split_alpha(&ctx, &tree, &mi);
        assert!(split.alpha.is_empty());
    }

    #[test]
    fn max_incident_picks_lightest_edge() {
        let ctx = ExecCtx::serial();
        let mst = star_mst(5);
        let tree = LevelTree::from_mst(&mst);
        let mi = max_incident(&ctx, &tree);
        // Center vertex 0: the lightest edge has the largest index (4).
        assert_eq!(packed_id(mi[0]), 4);
        // Leaf attached by the heaviest edge (index 0) → its only edge.
        let heavy_leaf = mst.dst[0] as usize;
        assert_eq!(packed_id(mi[heavy_leaf]), 0);
    }

    #[test]
    fn double_star_has_one_alpha_edge() {
        // Two stars joined by a middle edge: the middle edge is α iff it is
        // the lightest nowhere. Build: centers 0 and 1 joined heavy, leaves
        // lighter.
        let ctx = ExecCtx::serial();
        let edges = vec![
            Edge::new(0, 1, 10.0), // joins the stars: heaviest
            Edge::new(0, 2, 5.0),
            Edge::new(0, 3, 4.0),
            Edge::new(1, 4, 3.0),
            Edge::new(1, 5, 2.0),
        ];
        let mst = SortedMst::from_edges(&ctx, 6, &edges);
        let tree = LevelTree::from_mst(&mst);
        let mi = max_incident(&ctx, &tree);
        let split = split_alpha(&ctx, &tree, &mi);
        // Edge 0 (the bridge) is not maxIncident of either center.
        assert_eq!(split.alpha, vec![0]);
        assert_eq!(edge_node_kind(&tree, &mi, 0), EdgeNodeKind::Alpha);
        // Lightest star edges are leaf/chain.
        assert_ne!(edge_node_kind(&tree, &mi, 4), EdgeNodeKind::Alpha);
    }

    #[test]
    fn contraction_merges_non_alpha_components() {
        let ctx = ExecCtx::serial();
        let edges = vec![
            Edge::new(0, 1, 10.0),
            Edge::new(0, 2, 5.0),
            Edge::new(0, 3, 4.0),
            Edge::new(1, 4, 3.0),
            Edge::new(1, 5, 2.0),
        ];
        let mst = SortedMst::from_edges(&ctx, 6, &edges);
        let tree = LevelTree::from_mst(&mst);
        let mi = max_incident(&ctx, &tree);
        let split = split_alpha(&ctx, &tree, &mi);
        let step = contract_level(&ctx, &tree, &split);
        // Two supervertices: {0,2,3} and {1,4,5}, bridged by edge 0.
        assert_eq!(step.next.n_vertices, 2);
        assert_eq!(step.next.n_edges(), 1);
        assert_eq!(step.next.ids, vec![0]);
        assert_ne!(
            step.vertex_map[0], step.vertex_map[1],
            "star centers must be in different components"
        );
        assert_eq!(step.vertex_map[0], step.vertex_map[2]);
        assert_eq!(step.vertex_map[1], step.vertex_map[4]);
    }

    #[test]
    fn hierarchy_bounds_hold_on_random_trees() {
        use rand::prelude::*;
        let ctx = ExecCtx::serial();
        let mut rng = StdRng::seed_from_u64(7);
        for n_vertices in [2usize, 3, 17, 100, 1000] {
            // Random tree: attach vertex v to a random earlier vertex.
            let edges: Vec<Edge> = (1..n_vertices)
                .map(|v| {
                    Edge::new(
                        rng.gen_range(0..v) as u32,
                        v as u32,
                        rng.gen_range(0.0..100.0f32),
                    )
                })
                .collect();
            let mst = SortedMst::from_edges(&ctx, n_vertices, &edges);
            let h = build_hierarchy(&ctx, &mst);
            let n = mst.n_edges();
            assert!(h.n_levels() <= (n + 2).ilog2() as usize + 2);
            for (l, count) in h.alpha_counts().iter().enumerate() {
                let level_edges = h.trees[l].n_edges();
                assert!(
                    level_edges == 0 || *count <= (level_edges - 1) / 2,
                    "α bound violated at level {l}"
                );
            }
            // Every edge got a level and non-final edges got homes.
            let last = h.n_levels() - 1;
            for e in 0..n {
                assert!(h.edge_level[e] as usize <= last);
                if (h.edge_level[e] as usize) < last {
                    assert_ne!(h.edge_home[e], INVALID);
                }
            }
        }
    }

    #[test]
    fn caterpillar_example_tree_is_valid() {
        caterpillar_example().validate_tree().unwrap();
    }

    #[test]
    fn caterpillar_contracts_to_multiple_levels() {
        let ctx = ExecCtx::serial();
        let mst = caterpillar_example();
        let h = build_hierarchy(&ctx, &mst);
        assert!(h.n_levels() >= 2, "expected at least one contraction");
        // Level sizes strictly decrease.
        for w in h.trees.windows(2) {
            assert!(w[1].n_edges() < w[0].n_edges());
        }
    }
}
