//! Dendrogram expansion from the multilevel contraction (paper §3.3.2–3.3.3).
//!
//! Every edge is assigned a **chain key** identifying the dendrogram chain it
//! belongs to. For an edge `e` contracted at level ℓ we walk levels
//! m = ℓ+1, ℓ+2, …: let `sv` be the supervertex containing `e` at level m and
//! `p = maxIncident_m(sv)` the level-m dendrogram parent of the vertex-node
//! `sv`. If `index(p) < index(e)`, `e` lies in the leaf chain hanging off `p`
//! on the side of `sv` (paper: "If the α parent's index is lower, e is part
//! of an α leaf chain") — assign and stop; otherwise ascend one level. Edges
//! never assigned, and the final level's edges, form the **root chain**.
//!
//! Chains are then sorted by edge index (one radix sort over packed
//! `(chain_key, edge)` u64 keys) and stitched: within a chain the
//! predecessor is the parent; the first edge's parent is the chain's anchor
//! edge `p`; the root chain's first edge is edge 0, the dendrogram root.

use pandora_exec::counters::RelaxedCounter;
use pandora_exec::radix::par_radix_sort_u64;
use pandora_exec::trace::KernelKind;
use pandora_exec::{ExecCtx, UnsafeSlice, DEFAULT_GRAIN};

use crate::edge::INVALID;
use crate::levels::{packed_id, packed_pos, ContractionHierarchy};

/// Chain key of the root chain; sorts before every anchored chain.
const ROOT_CHAIN: u32 = 0;

/// Builds the chain key of the chain anchored at edge `p` on `side` (0 = the
/// `src` endpoint of `p`, 1 = the `dst` endpoint).
#[inline(always)]
fn chain_key(p: u32, side: u32) -> u32 {
    ((p + 1) << 1) | side
}

/// Assigns every global edge its chain key (paper §3.3.2).
///
/// Returns packed sort keys `chain_key << 32 | edge`.
pub fn assign_chain_keys(ctx: &ExecCtx, hierarchy: &ContractionHierarchy) -> Vec<u64> {
    let mut keys = Vec::new();
    assign_chain_keys_into(ctx, hierarchy, &mut keys);
    keys
}

/// [`assign_chain_keys`] into a reusable key buffer (cleared first,
/// capacity retained across runs by the dendrogram workspace).
pub fn assign_chain_keys_into(
    ctx: &ExecCtx,
    hierarchy: &ContractionHierarchy,
    keys: &mut Vec<u64>,
) {
    let n = hierarchy.edge_level.len();
    let last_level = hierarchy.n_levels() - 1;
    keys.clear();
    keys.resize(n, 0);
    let total_checks = RelaxedCounter::new();
    {
        let keys_view = UnsafeSlice::new(keys.as_mut_slice());
        let h = hierarchy;
        let checks_ref = &total_checks;
        ctx.for_each_chunk(n, DEFAULT_GRAIN / 2, |range| {
            let mut local_checks = 0u64;
            for e in range {
                let lvl = h.edge_level[e] as usize;
                let mut key = ROOT_CHAIN;
                if lvl < last_level {
                    let mut sv = h.edge_home[e];
                    for m in (lvl + 1)..=last_level {
                        local_checks += 1;
                        let packed = h.max_inc[m][sv as usize];
                        let p = packed_id(packed);
                        debug_assert_ne!(p, INVALID, "supervertex with no incident edge");
                        if (p as usize) < e {
                            let pos = packed_pos(packed) as usize;
                            // `sv` is one of p's endpoints at level m;
                            // endpoint orientation is propagated through
                            // contraction, so the side bit is stable.
                            let side = (h.trees[m].dst[pos] == sv) as u32;
                            debug_assert!(
                                side == 1 || h.trees[m].src[pos] == sv,
                                "maxIncident edge not incident to its vertex"
                            );
                            key = chain_key(p, side);
                            break;
                        }
                        if m < last_level {
                            sv = h.vertex_maps[m][sv as usize];
                        }
                    }
                }
                // SAFETY: slot e written exactly once.
                unsafe { keys_view.write(e, ((key as u64) << 32) | e as u64) };
            }
            checks_ref.add(local_checks);
        });
    }
    // The walk is gather-dominated: one random read per (edge, level) check.
    let checks = total_checks.get();
    ctx.record(KernelKind::Gather, checks, checks * 16);
}

/// The final sort of the algorithm: orders `(chain_key, edge)` pairs so each
/// chain becomes a contiguous ascending run. Counted in the paper's "sort"
/// phase (§6.4.3: sorting "includes both initial and final sort").
pub fn sort_chain_keys(ctx: &ExecCtx, keys: &mut [u64]) {
    par_radix_sort_u64(ctx, keys);
}

/// Stitches **sorted** chains into the final parent array (paper §3.3.3).
pub fn stitch_chains(ctx: &ExecCtx, n_edges: usize, keys: &[u64]) -> Vec<u32> {
    debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
    let mut edge_parent = vec![INVALID; n_edges];
    {
        let parent_view = UnsafeSlice::new(&mut edge_parent);
        let keys_ref = keys;
        ctx.for_each_chunk_traced(
            n_edges,
            DEFAULT_GRAIN,
            KernelKind::Gather,
            (n_edges as u64) * 16,
            |range| {
                for i in range {
                    let packed = keys_ref[i];
                    let e = packed as u32;
                    let key = (packed >> 32) as u32;
                    let parent = if i > 0 && (keys_ref[i - 1] >> 32) as u32 == key {
                        // Predecessor in the same chain.
                        keys_ref[i - 1] as u32
                    } else if key == ROOT_CHAIN {
                        // First edge of the root chain = the global root.
                        debug_assert_eq!(e, 0, "root chain must start at edge 0");
                        INVALID
                    } else {
                        // First edge of an anchored chain: parent is the
                        // anchor edge.
                        (key >> 1) - 1
                    };
                    // SAFETY: each sorted slot i maps to a distinct edge e.
                    unsafe { parent_view.write(e as usize, parent) };
                }
            },
        );
    }
    edge_parent
}

/// Vertex-node parents: `P(v) = maxIncident(v)` on the original tree
/// (paper Eq. 1).
pub fn vertex_parents(ctx: &ExecCtx, hierarchy: &ContractionHierarchy) -> Vec<u32> {
    let mi0 = &hierarchy.max_inc[0];
    let nv = mi0.len();
    let mut vertex_parent = vec![INVALID; nv];
    {
        let view = UnsafeSlice::new(&mut vertex_parent);
        ctx.for_each_chunk_traced(
            nv,
            DEFAULT_GRAIN,
            KernelKind::For,
            (nv as u64) * 12,
            |range| {
                for v in range {
                    // SAFETY: disjoint writes.
                    unsafe { view.write(v, packed_id(mi0[v])) };
                }
            },
        );
    }
    vertex_parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::union_find::dendrogram_union_find;
    use crate::edge::{Edge, SortedMst};
    use crate::levels::build_hierarchy;
    use pandora_exec::ExecCtx;

    fn expand_all(ctx: &ExecCtx, mst: &SortedMst) -> (Vec<u32>, Vec<u32>) {
        let h = build_hierarchy(ctx, mst);
        let mut keys = assign_chain_keys(ctx, &h);
        sort_chain_keys(ctx, &mut keys);
        let edge_parent = stitch_chains(ctx, mst.n_edges(), &keys);
        let vertex_parent = vertex_parents(ctx, &h);
        (edge_parent, vertex_parent)
    }

    #[test]
    fn path_graph_expands_to_single_chain() {
        let ctx = ExecCtx::serial();
        let edges: Vec<Edge> = (0..9)
            .map(|i| Edge::new(i, i + 1, (9 - i) as f32))
            .collect();
        let mst = SortedMst::from_edges(&ctx, 10, &edges);
        let (edge_parent, vertex_parent) = expand_all(&ctx, &mst);
        assert_eq!(edge_parent[0], INVALID);
        for (e, &parent) in edge_parent.iter().enumerate().take(9).skip(1) {
            assert_eq!(parent, e as u32 - 1, "chain parent");
        }
        // Vertex 9 hangs off the lightest edge (index 8); vertex 0 off the
        // heaviest (index 0).
        assert_eq!(vertex_parent[0], 0);
        assert_eq!(vertex_parent[9], 8);
    }

    #[test]
    fn double_star_matches_union_find() {
        let ctx = ExecCtx::serial();
        let edges = vec![
            Edge::new(0, 1, 10.0),
            Edge::new(0, 2, 5.0),
            Edge::new(0, 3, 4.0),
            Edge::new(1, 4, 3.0),
            Edge::new(1, 5, 2.0),
        ];
        let mst = SortedMst::from_edges(&ctx, 6, &edges);
        let (edge_parent, vertex_parent) = expand_all(&ctx, &mst);
        let expect = dendrogram_union_find(&mst);
        assert_eq!(edge_parent, expect.edge_parent);
        assert_eq!(vertex_parent, expect.vertex_parent);
    }

    #[test]
    fn caterpillar_matches_union_find() {
        let ctx = ExecCtx::serial();
        let mst = crate::levels::tests::caterpillar_example();
        let (edge_parent, vertex_parent) = expand_all(&ctx, &mst);
        let expect = dendrogram_union_find(&mst);
        assert_eq!(edge_parent, expect.edge_parent);
        assert_eq!(vertex_parent, expect.vertex_parent);
    }

    #[test]
    fn random_trees_match_union_find() {
        use rand::prelude::*;
        let ctx = ExecCtx::serial();
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..40 {
            let n_vertices = rng.gen_range(2..200);
            let edges: Vec<Edge> = (1..n_vertices)
                .map(|v| {
                    Edge::new(
                        rng.gen_range(0..v) as u32,
                        v as u32,
                        // Duplicate weights on purpose: ties must be handled
                        // by the canonical order.
                        rng.gen_range(0..50) as f32 * 0.5,
                    )
                })
                .collect();
            let mst = SortedMst::from_edges(&ctx, n_vertices, &edges);
            let (edge_parent, vertex_parent) = expand_all(&ctx, &mst);
            let expect = dendrogram_union_find(&mst);
            assert_eq!(edge_parent, expect.edge_parent, "trial {trial}");
            assert_eq!(vertex_parent, expect.vertex_parent, "trial {trial}");
        }
    }
}
