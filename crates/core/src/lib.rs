//! # pandora-core
//!
//! A from-scratch implementation of **PANDORA** (Sao, Prokopenko,
//! Lebrun-Grandié, ICPP 2024): work-optimal parallel construction of
//! single-linkage dendrograms from minimum spanning trees by recursive tree
//! contraction.
//!
//! ## Algorithm (paper Algorithm 3)
//!
//! 1. **Sort** the MST edges by weight descending with a deterministic
//!    tie-break ([`SortedMst`]); edge 0 is the dendrogram root.
//! 2. **Contract** recursively ([`levels`]): classify edges as α / non-α
//!    from local incidence only (Eq. 2), contract the non-α forest with a
//!    lock-free union–find, recurse on the α-MST until no α edges remain
//!    (≤ ⌈log₂(n+1)⌉ levels, with `n_α ≤ (n−1)/2` per level).
//! 3. **Expand** ([`expansion`]): map every edge to its dendrogram chain in
//!    O(log n) level checks, sort the chains, stitch the parents.
//!
//! The result is a [`Dendrogram`]: parent pointers for every MST edge
//! (cluster) and vertex (point), total work `O(n log n)` — the lower bound
//! (paper Theorem 4) — independent of dendrogram skew.
//!
//! ## Entry points
//!
//! * [`pandora::dendrogram`] / [`pandora::dendrogram_with_stats`] — the
//!   parallel algorithm.
//! * [`baseline::dendrogram_union_find`] (+ `_mt`) — bottom-up baseline
//!   (paper Algorithm 2 / the `UnionFind-MT` comparison target).
//! * [`baseline::dendrogram_top_down`] — divide-and-conquer baseline
//!   (paper Algorithm 1).
//! * [`work_optimal::dendrogram_work_optimal`] — the Dhulipala et al.
//!   rank divide-and-conquer backend; [`algo::DendrogramBackend`] selects
//!   between it and α-contraction (request > `PANDORA_DENDROGRAM` env >
//!   default), with both proven bit-identical by the differential suite.
//!
//! ```
//! use pandora_core::{Edge, pandora};
//! use pandora_exec::ExecCtx;
//!
//! let ctx = ExecCtx::threads();
//! // A tiny MST: 0-1 heavy, 1-2 light.
//! let edges = vec![Edge::new(0, 1, 2.0), Edge::new(1, 2, 1.0)];
//! let dendro = pandora::dendrogram(&ctx, 3, &edges);
//! assert_eq!(dendro.root(), Some(0));
//! dendro.validate().unwrap();
//! ```

pub mod algo;
pub mod baseline;
pub mod census;
pub mod dendrogram;
pub mod edge;
pub mod expansion;
pub mod levels;
pub mod pandora;
pub mod single_level;
pub mod validate;
pub mod work_optimal;

pub use algo::{DendrogramAlgo, DendrogramBackend, AUTO_CUTOFF_EDGES, DENDROGRAM_ENV};
pub use dendrogram::Dendrogram;
pub use edge::{Edge, SortedMst, INVALID};
pub use pandora::{
    dendrogram_from_sorted_with, dendrogram_with_stats, DendrogramWorkspace, PandoraStats,
    PhaseTimings,
};
pub use work_optimal::{dendrogram_work_optimal, dendrogram_work_optimal_with};
