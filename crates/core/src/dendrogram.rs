//! The dendrogram data structure and queries over it.
//!
//! Following the paper's §2.2/§3.1.2: a single-linkage dendrogram over an
//! MST with `n` edges is a rooted binary tree whose *internal nodes are the
//! MST edges* (heavier = closer to the root) and whose *leaves are the MST
//! vertices* (the data points). It is fully described by two parent arrays:
//!
//! * `edge_parent[e]` — the parent **edge** of edge-node `e`
//!   ([`INVALID`] for the root, which is always edge 0 in canonical order);
//! * `vertex_parent[v]` — the parent edge of vertex-node `v`
//!   (= `maxIncident(v)`, the lightest edge incident to `v`).

use crate::edge::INVALID;

/// A single-linkage dendrogram (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    /// Parent edge of each edge-node; `INVALID` for the root (edge 0).
    pub edge_parent: Vec<u32>,
    /// Parent edge of each vertex-node.
    pub vertex_parent: Vec<u32>,
    /// Weight of each edge-node (non-increasing in the index).
    pub edge_weight: Vec<f32>,
}

impl Dendrogram {
    /// Number of edge-nodes (internal nodes).
    pub fn n_edges(&self) -> usize {
        self.edge_parent.len()
    }

    /// Number of vertex-nodes (leaves / data points).
    pub fn n_vertices(&self) -> usize {
        self.vertex_parent.len()
    }

    /// The root edge-node (`None` for a dendrogram of a single vertex).
    pub fn root(&self) -> Option<u32> {
        if self.n_edges() == 0 {
            None
        } else {
            debug_assert_eq!(self.edge_parent[0], INVALID);
            Some(0)
        }
    }

    /// Height of the edge-node tree: the number of edge-nodes on the longest
    /// root-to-deepest-edge path. 0 for an empty dendrogram.
    ///
    /// Computable in one pass because a parent always has a smaller index
    /// than its children (it is heavier).
    pub fn height(&self) -> usize {
        let n = self.n_edges();
        if n == 0 {
            return 0;
        }
        let mut depth = vec![0u32; n];
        let mut max_depth = 1u32;
        depth[0] = 1;
        for e in 1..n {
            let p = self.edge_parent[e];
            debug_assert!(p < e as u32, "parent must be heavier (smaller index)");
            depth[e] = depth[p as usize] + 1;
            max_depth = max_depth.max(depth[e]);
        }
        max_depth as usize
    }

    /// The paper's skew measure (`Imb` in Table 2): height divided by the
    /// ideal (balanced) height `log2 n`.
    pub fn skewness(&self) -> f64 {
        let n = self.n_edges();
        if n <= 1 {
            return 1.0;
        }
        self.height() as f64 / (n as f64).log2()
    }

    /// Number of leaf data points under each edge-node.
    ///
    /// `sizes[e]` is the size of the cluster that splits when `e` is removed.
    pub fn cluster_sizes(&self) -> Vec<u32> {
        let n = self.n_edges();
        let mut sizes = vec![0u32; n];
        for &p in &self.vertex_parent {
            if p != INVALID {
                sizes[p as usize] += 1;
            }
        }
        // Children have larger indices than parents: one reverse sweep.
        for e in (1..n).rev() {
            let p = self.edge_parent[e] as usize;
            sizes[p] += sizes[e];
        }
        sizes
    }

    /// For each edge-node, its (up to two) child edge-nodes.
    ///
    /// In a valid single-linkage dendrogram every edge-node has exactly two
    /// children counting vertex-nodes and edge-nodes together.
    pub fn edge_children(&self) -> Vec<[u32; 2]> {
        let n = self.n_edges();
        let mut children = vec![[INVALID; 2]; n];
        for e in 1..n as u32 {
            let p = self.edge_parent[e as usize] as usize;
            if children[p][0] == INVALID {
                children[p][0] = e;
            } else {
                debug_assert_eq!(children[p][1], INVALID, "ternary node {p}");
                children[p][1] = e;
            }
        }
        children
    }

    /// Flat cluster labels obtained by *cutting* the dendrogram at
    /// `threshold`: edges with weight > `threshold` are removed, and each
    /// remaining connected component becomes a cluster.
    ///
    /// Returns `labels[v] ∈ 0..k` with components numbered by their minimum
    /// vertex id (deterministic).
    pub fn cut(&self, threshold: f32, src: &[u32], dst: &[u32]) -> Vec<u32> {
        let nv = self.n_vertices();
        let mut dsu = pandora_exec::dsu::SeqDsu::new(nv);
        for e in 0..self.n_edges() {
            if self.edge_weight[e] <= threshold {
                dsu.union(src[e], dst[e]);
            }
        }
        let mut label_of_root = vec![INVALID; nv];
        let mut next = 0u32;
        let mut labels = vec![0u32; nv];
        for v in 0..nv as u32 {
            let r = dsu.find(v) as usize;
            if label_of_root[r] == INVALID {
                label_of_root[r] = next;
                next += 1;
            }
            labels[v as usize] = label_of_root[r];
        }
        labels
    }

    /// Flat cluster labels for exactly `k` clusters: removes the `k − 1`
    /// heaviest edges (a dendrogram cut between merge levels).
    ///
    /// Labels are dense `0..k`, numbered by minimum vertex id.
    pub fn cut_k(&self, k: usize, src: &[u32], dst: &[u32]) -> Vec<u32> {
        let nv = self.n_vertices();
        let k = k.clamp(1, nv);
        let mut dsu = pandora_exec::dsu::SeqDsu::new(nv);
        for e in (k - 1)..self.n_edges() {
            dsu.union(src[e], dst[e]);
        }
        let mut label_of_root = vec![INVALID; nv];
        let mut next = 0u32;
        let mut labels = vec![0u32; nv];
        for v in 0..nv as u32 {
            let r = dsu.find(v) as usize;
            if label_of_root[r] == INVALID {
                label_of_root[r] = next;
                next += 1;
            }
            labels[v as usize] = label_of_root[r];
        }
        labels
    }

    /// SciPy-style linkage matrix: one `(id_a, id_b, distance, size)` row
    /// per merge, lightest first; leaves are `0..n_points`, the cluster
    /// created by row `j` has id `n_points + j`.
    ///
    /// Compatible with `scipy.cluster.hierarchy` consumers (row order is by
    /// non-decreasing distance thanks to the canonical edge order).
    pub fn to_linkage(&self) -> Vec<(u32, u32, f32, u32)> {
        let n = self.n_edges();
        let n_points = self.n_vertices() as u32;
        let sizes = self.cluster_sizes();
        let children = self.edge_children();
        let mut vertex_children: Vec<[u32; 2]> = vec![[INVALID; 2]; n];
        for (v, &p) in self.vertex_parent.iter().enumerate() {
            let slot = &mut vertex_children[p as usize];
            if slot[0] == INVALID {
                slot[0] = v as u32;
            } else {
                slot[1] = v as u32;
            }
        }
        // Edge e is merge number n-1-e (lightest first); its cluster id is
        // n_points + (n-1-e).
        let scipy_id = |e: u32| n_points + (n as u32 - 1 - e);
        let mut rows = Vec::with_capacity(n);
        for e in (0..n).rev() {
            let mut ids = [INVALID; 2];
            let mut slot = 0;
            for v in vertex_children[e] {
                if v != INVALID {
                    ids[slot] = v;
                    slot += 1;
                }
            }
            for c in children[e] {
                if c != INVALID {
                    ids[slot] = scipy_id(c);
                    slot += 1;
                }
            }
            debug_assert_eq!(slot, 2, "edge node {e} is not binary");
            let (a, b) = (ids[0].min(ids[1]), ids[0].max(ids[1]));
            rows.push((a, b, self.edge_weight[e], sizes[e]));
        }
        rows
    }

    /// Structural validation: single root at edge 0, parents heavier than
    /// children, every edge-node binary, every vertex attached.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_edges();
        let nv = self.n_vertices();
        if n == 0 {
            return if nv <= 1 {
                Ok(())
            } else {
                Err("no edges but multiple vertices".into())
            };
        }
        if nv != n + 1 {
            return Err(format!("expected {} vertices, got {nv}", n + 1));
        }
        if self.edge_parent[0] != INVALID {
            return Err("edge 0 (heaviest) must be the root".into());
        }
        let mut child_count = vec![0u32; n];
        for e in 1..n {
            let p = self.edge_parent[e];
            if p == INVALID {
                return Err(format!("edge {e} has no parent but is not edge 0"));
            }
            if p >= e as u32 {
                return Err(format!(
                    "edge {e} has parent {p}, but parents must have smaller index"
                ));
            }
            child_count[p as usize] += 1;
        }
        for (v, &p) in self.vertex_parent.iter().enumerate() {
            if p == INVALID || p as usize >= n {
                return Err(format!("vertex {v} has invalid parent {p}"));
            }
            child_count[p as usize] += 1;
        }
        for (e, &c) in child_count.iter().enumerate() {
            if c != 2 {
                return Err(format!("edge-node {e} has {c} children, expected 2"));
            }
        }
        Ok(())
    }

    /// The set of ancestors of edge `e`, starting with `e` itself and ending
    /// at the root (paper Definition 2).
    pub fn ancestors(&self, e: u32) -> Vec<u32> {
        let mut out = vec![e];
        let mut cur = e;
        while self.edge_parent[cur as usize] != INVALID {
            cur = self.edge_parent[cur as usize];
            out.push(cur);
        }
        out
    }

    /// Lowest common dendrogram ancestor of two edges (paper Definition 3).
    ///
    /// O(depth) walk; fine for validation and tests.
    pub fn lcda(&self, a: u32, b: u32) -> u32 {
        // Ancestor indices strictly decrease towards the root, so walk the
        // deeper (larger-index) node up until the two meet.
        let (mut a, mut b) = (a, b);
        while a != b {
            if a > b {
                a = self.edge_parent[a as usize];
            } else {
                b = self.edge_parent[b as usize];
            }
            debug_assert!(a != INVALID && b != INVALID);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The inverted-Y dendrogram of Fig. 5: a root chain 0→1, splitting at 1
    /// into chains (2,4) and (3,5); 7 vertices.
    fn inverted_y() -> Dendrogram {
        Dendrogram {
            edge_parent: vec![INVALID, 0, 1, 1, 2, 3],
            vertex_parent: vec![0, 4, 4, 2, 5, 5, 3],
            edge_weight: vec![6.0, 5.0, 4.0, 3.0, 2.0, 1.0],
        }
    }

    #[test]
    fn inverted_y_is_valid() {
        inverted_y().validate().unwrap();
    }

    #[test]
    fn height_of_chains() {
        let d = inverted_y();
        // Root chain (0,1) + either branch chain of length 2 → height 4.
        assert_eq!(d.height(), 4);
    }

    #[test]
    fn cluster_sizes_sum_up() {
        let d = inverted_y();
        let sizes = d.cluster_sizes();
        assert_eq!(sizes[0] as usize, d.n_vertices());
        assert_eq!(sizes[4], 2); // leaf edge with two vertex children
        assert_eq!(sizes[2], 3); // vertex 3 + edge 4's pair
    }

    #[test]
    fn lcda_and_ancestors() {
        let d = inverted_y();
        assert_eq!(d.ancestors(4), vec![4, 2, 1, 0]);
        assert_eq!(d.lcda(4, 5), 1);
        assert_eq!(d.lcda(4, 2), 2); // ancestor of itself
        assert_eq!(d.lcda(0, 5), 0);
    }

    #[test]
    fn validation_catches_ternary_nodes() {
        let mut d = inverted_y();
        d.edge_parent[5] = 1; // edge 1 now has 3 children
        assert!(d.validate().is_err());
    }

    #[test]
    fn validation_catches_parent_order() {
        let mut d = inverted_y();
        d.edge_parent[2] = 4;
        assert!(d.validate().is_err());
    }

    #[test]
    fn cut_labels_components() {
        // `cut` only uses weights + endpoints; use a 7-vertex chain with
        // weights 6..1 (matching inverted_y's weight array).
        let d = inverted_y();
        let src = vec![0, 1, 2, 3, 4, 5];
        let dst = vec![1, 2, 3, 4, 5, 6];
        // Threshold below everything: all singletons.
        let labels = d.cut(0.5, &src, &dst);
        assert_eq!(labels, vec![0, 1, 2, 3, 4, 5, 6]);
        // Threshold above everything: one cluster.
        let labels = d.cut(10.0, &src, &dst);
        assert!(labels.iter().all(|&l| l == 0));
        // Keep edges with weight ≤ 3.5 (the three lightest chain links):
        // components {0}, {1}, {2}, {3,4,5,6}.
        let labels = d.cut(3.5, &src, &dst);
        assert_eq!(labels, vec![0, 1, 2, 3, 3, 3, 3]);
    }

    #[test]
    fn cut_k_produces_exactly_k_clusters() {
        let d = inverted_y();
        let src = vec![0, 1, 2, 3, 4, 5];
        let dst = vec![1, 2, 3, 4, 5, 6];
        for k in 1..=7 {
            let labels = d.cut_k(k, &src, &dst);
            let got_k = labels.iter().copied().max().unwrap() as usize + 1;
            assert_eq!(got_k, k, "k={k}");
        }
        // k=2 removes only the heaviest edge (0-1): components {0}, {1..6}.
        let labels = d.cut_k(2, &src, &dst);
        assert_eq!(labels[0], 0);
        assert!(labels[1..].iter().all(|&l| l == 1));
    }

    #[test]
    fn linkage_matrix_shape_and_monotonicity() {
        let d = inverted_y();
        let z = d.to_linkage();
        assert_eq!(z.len(), 6);
        // Distances non-decreasing (lightest merge first).
        for w in z.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
        // Final row merges everything.
        assert_eq!(z.last().unwrap().3 as usize, d.n_vertices());
        // Ids are either leaves (< 7) or previously created clusters.
        let n_points = d.n_vertices() as u32;
        for (j, &(a, b, _, _)) in z.iter().enumerate() {
            for id in [a, b] {
                assert!(
                    id < n_points || (id - n_points) < j as u32,
                    "row {j} references not-yet-created cluster {id}"
                );
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let d = Dendrogram {
            edge_parent: vec![],
            vertex_parent: vec![INVALID],
            edge_weight: vec![],
        };
        assert_eq!(d.height(), 0);
        assert_eq!(d.root(), None);
        // A single vertex with no edges validates only when vertex count ≤ 1
        // — but vertex_parent[0] is INVALID, so n=0 path accepts it.
        assert!(d.validate().is_ok());
    }
}
