//! Pluggable dendrogram-construction backends behind one trait.
//!
//! Two backends build the same canonical dendrogram from a [`SortedMst`]:
//!
//! * [`DendrogramBackend::AlphaContraction`] — PANDORA's recursive
//!   α-contraction ([`crate::pandora`]), the paper's algorithm and the
//!   default.
//! * [`DendrogramBackend::WorkOptimal`] — rank-space divide and conquer
//!   ([`crate::work_optimal`], Dhulipala et al., arXiv 2404.19019).
//!
//! Both are bit-identical to each other and to the union–find oracle for
//! every input and execution context; the differential suite in
//! `tests/dendrogram_differential.rs` enforces this, which is what makes
//! racing them (fig12/fig13) and swapping them per request safe.
//!
//! Selection precedence is **request > environment > default**: an explicit
//! `ClusterRequest::dendrogram` wins; otherwise the [`DENDROGRAM_ENV`]
//! variable (`PANDORA_DENDROGRAM=alpha|work-optimal`) applies; otherwise
//! α-contraction runs. An unparseable environment value is ignored rather
//! than escalated — the serving tier never panics on configuration.

use pandora_exec::ExecCtx;

use crate::dendrogram::Dendrogram;
use crate::edge::SortedMst;
use crate::pandora::{dendrogram_from_sorted_with, DendrogramWorkspace, PandoraStats};
use crate::work_optimal::dendrogram_work_optimal;

/// Environment variable overriding the default dendrogram backend.
pub const DENDROGRAM_ENV: &str = "PANDORA_DENDROGRAM";

/// A dendrogram-construction algorithm over a canonically sorted MST.
///
/// Implementations must produce output bit-identical to
/// [`crate::baseline::dendrogram_union_find`] for every tree and every
/// execution context (serial and threaded) — the differential suite holds
/// them to it.
pub trait DendrogramAlgo {
    /// Stable human-readable backend name (also the env/CLI spelling).
    fn name(&self) -> &'static str;

    /// Builds the dendrogram and per-phase statistics.
    ///
    /// `ws` is a reuse hint: backends with steady-state buffer recycling
    /// draw from it; backends without simply leave it untouched.
    fn build(
        &self,
        ctx: &ExecCtx,
        mst: &SortedMst,
        ws: &mut DendrogramWorkspace,
    ) -> (Dendrogram, PandoraStats);
}

/// PANDORA's recursive α-contraction ([`crate::pandora`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlphaContractionAlgo;

impl DendrogramAlgo for AlphaContractionAlgo {
    fn name(&self) -> &'static str {
        "alpha-contraction"
    }

    fn build(
        &self,
        ctx: &ExecCtx,
        mst: &SortedMst,
        ws: &mut DendrogramWorkspace,
    ) -> (Dendrogram, PandoraStats) {
        dendrogram_from_sorted_with(ctx, mst, ws)
    }
}

/// Rank divide-and-conquer ([`crate::work_optimal`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkOptimalAlgo;

impl DendrogramAlgo for WorkOptimalAlgo {
    fn name(&self) -> &'static str {
        "work-optimal"
    }

    fn build(
        &self,
        ctx: &ExecCtx,
        mst: &SortedMst,
        _ws: &mut DendrogramWorkspace,
    ) -> (Dendrogram, PandoraStats) {
        // This backend's buffers are subproblem-shaped (sizes vary per
        // level), so it allocates per call instead of leasing from `ws`.
        dendrogram_work_optimal(ctx, mst)
    }
}

/// The selectable dendrogram backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DendrogramBackend {
    /// PANDORA recursive α-contraction (the default).
    #[default]
    AlphaContraction,
    /// Dhulipala et al. rank divide-and-conquer.
    WorkOptimal,
}

impl DendrogramBackend {
    /// Every backend, in default-first order (for differential sweeps).
    pub const ALL: [Self; 2] = [Self::AlphaContraction, Self::WorkOptimal];

    /// The canonical spelling ([`DendrogramAlgo::name`]).
    pub fn name(self) -> &'static str {
        self.algo().name()
    }

    /// Parses a backend name (case-insensitive; accepts the canonical
    /// spellings plus common aliases). Returns `None` on anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "alpha-contraction" | "alpha_contraction" | "alpha" | "pandora" | "contraction" => {
                Some(Self::AlphaContraction)
            }
            "work-optimal" | "work_optimal" | "workoptimal" | "rank" | "dhulipala" => {
                Some(Self::WorkOptimal)
            }
            _ => None,
        }
    }

    /// Reads [`DENDROGRAM_ENV`]; `None` if unset or unparseable (an invalid
    /// override is ignored, never a panic — serving-tier contract).
    pub fn from_env() -> Option<Self> {
        std::env::var(DENDROGRAM_ENV)
            .ok()
            .and_then(|v| Self::parse(&v))
    }

    /// Applies the selection precedence: `requested` > env > default.
    pub fn resolve(requested: Option<Self>) -> Self {
        requested.or_else(Self::from_env).unwrap_or_default()
    }

    /// The backend's implementation object.
    pub fn algo(self) -> &'static dyn DendrogramAlgo {
        match self {
            Self::AlphaContraction => &AlphaContractionAlgo,
            Self::WorkOptimal => &WorkOptimalAlgo,
        }
    }

    /// Builds the dendrogram with this backend
    /// (shorthand for `self.algo().build(..)`).
    pub fn build(
        self,
        ctx: &ExecCtx,
        mst: &SortedMst,
        ws: &mut DendrogramWorkspace,
    ) -> (Dendrogram, PandoraStats) {
        self.algo().build(ctx, mst, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_canonical_names_and_aliases() {
        for b in DendrogramBackend::ALL {
            assert_eq!(DendrogramBackend::parse(b.name()), Some(b));
        }
        assert_eq!(
            DendrogramBackend::parse(" PANDORA "),
            Some(DendrogramBackend::AlphaContraction)
        );
        assert_eq!(
            DendrogramBackend::parse("Work_Optimal"),
            Some(DendrogramBackend::WorkOptimal)
        );
        assert_eq!(DendrogramBackend::parse("gpu"), None);
        assert_eq!(DendrogramBackend::parse(""), None);
    }

    #[test]
    fn resolve_prefers_request_over_default() {
        // Env interaction is exercised in the integration suite (env vars
        // are process-global; unit tests here stay mutation-free).
        assert_eq!(
            DendrogramBackend::resolve(Some(DendrogramBackend::WorkOptimal)),
            DendrogramBackend::WorkOptimal
        );
    }

    #[test]
    fn backends_build_identical_tiny_dendrograms() {
        use crate::edge::Edge;
        let ctx = ExecCtx::serial();
        let edges = [Edge::new(0, 1, 2.0), Edge::new(1, 2, 1.0)];
        let mst = SortedMst::from_edges(&ctx, 3, &edges);
        let mut ws = DendrogramWorkspace::new();
        let (a, _) = DendrogramBackend::AlphaContraction.build(&ctx, &mst, &mut ws);
        let (w, _) = DendrogramBackend::WorkOptimal.build(&ctx, &mst, &mut ws);
        assert_eq!(a, w);
        assert_eq!(a.root(), Some(0));
    }
}
