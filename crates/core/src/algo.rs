//! Pluggable dendrogram-construction backends behind one trait.
//!
//! Two backends build the same canonical dendrogram from a [`SortedMst`]:
//!
//! * [`DendrogramBackend::AlphaContraction`] — PANDORA's recursive
//!   α-contraction ([`crate::pandora`]), the paper's algorithm and the
//!   default.
//! * [`DendrogramBackend::WorkOptimal`] — rank-space divide and conquer
//!   ([`crate::work_optimal`], Dhulipala et al., arXiv 2404.19019).
//!
//! Both are bit-identical to each other and to the union–find oracle for
//! every input and execution context; the differential suite in
//! `tests/dendrogram_differential.rs` enforces this, which is what makes
//! racing them (fig12/fig13) and swapping them per request safe.
//!
//! A third selection, [`DendrogramBackend::Auto`], commits per input: MSTs
//! at or below [`AUTO_CUTOFF_EDGES`] edges fit in a single work-optimal
//! sequential base case (no hierarchy to build), larger ones amortize the
//! α-contraction machinery better.
//!
//! Selection precedence is **request > environment > default**: an explicit
//! `ClusterRequest::dendrogram` wins; otherwise the [`DENDROGRAM_ENV`]
//! variable (`PANDORA_DENDROGRAM=alpha|work-optimal|auto`) applies;
//! otherwise α-contraction runs. An unparseable environment value is
//! ignored rather than escalated — the serving tier never panics on
//! configuration.

use pandora_exec::ExecCtx;

use crate::dendrogram::Dendrogram;
use crate::edge::SortedMst;
use crate::pandora::{dendrogram_from_sorted_with, DendrogramWorkspace, PandoraStats};
use crate::work_optimal::{dendrogram_work_optimal_with, BASE_CUTOFF};

/// Environment variable overriding the default dendrogram backend.
pub const DENDROGRAM_ENV: &str = "PANDORA_DENDROGRAM";

/// A dendrogram-construction algorithm over a canonically sorted MST.
///
/// Implementations must produce output bit-identical to
/// [`crate::baseline::dendrogram_union_find`] for every tree and every
/// execution context (serial and threaded) — the differential suite holds
/// them to it.
pub trait DendrogramAlgo {
    /// Stable human-readable backend name (also the env/CLI spelling).
    fn name(&self) -> &'static str;

    /// Builds the dendrogram and per-phase statistics.
    ///
    /// `ws` is a reuse hint: backends with steady-state buffer recycling
    /// draw from it; backends without simply leave it untouched.
    fn build(
        &self,
        ctx: &ExecCtx,
        mst: &SortedMst,
        ws: &mut DendrogramWorkspace,
    ) -> (Dendrogram, PandoraStats);
}

/// PANDORA's recursive α-contraction ([`crate::pandora`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlphaContractionAlgo;

impl DendrogramAlgo for AlphaContractionAlgo {
    fn name(&self) -> &'static str {
        "alpha-contraction"
    }

    fn build(
        &self,
        ctx: &ExecCtx,
        mst: &SortedMst,
        ws: &mut DendrogramWorkspace,
    ) -> (Dendrogram, PandoraStats) {
        dendrogram_from_sorted_with(ctx, mst, ws)
    }
}

/// Rank divide-and-conquer ([`crate::work_optimal`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkOptimalAlgo;

impl DendrogramAlgo for WorkOptimalAlgo {
    fn name(&self) -> &'static str {
        "work-optimal"
    }

    fn build(
        &self,
        ctx: &ExecCtx,
        mst: &SortedMst,
        ws: &mut DendrogramWorkspace,
    ) -> (Dendrogram, PandoraStats) {
        dendrogram_work_optimal_with(ctx, mst, ws)
    }
}

/// The selectable dendrogram backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DendrogramBackend {
    /// PANDORA recursive α-contraction (the default).
    #[default]
    AlphaContraction,
    /// Dhulipala et al. rank divide-and-conquer.
    WorkOptimal,
    /// Size-based selection: commits to a concrete backend per MST via
    /// [`Self::concrete_for`] — the work-optimal backend at or below its
    /// sequential base-case cutoff ([`AUTO_CUTOFF_EDGES`], where its single
    /// union–find pass wins outright), α-contraction above it.
    Auto,
}

/// Edge count at which [`DendrogramBackend::Auto`] switches from the
/// work-optimal backend to α-contraction (the work-optimal sequential
/// base-case size, [`crate::work_optimal::BASE_CUTOFF`]).
pub const AUTO_CUTOFF_EDGES: usize = BASE_CUTOFF;

impl DendrogramBackend {
    /// Every **concrete** backend, in default-first order (for differential
    /// sweeps; `Auto` always resolves to one of these, so sweeping them
    /// covers it).
    pub const ALL: [Self; 2] = [Self::AlphaContraction, Self::WorkOptimal];

    /// The canonical spelling ([`DendrogramAlgo::name`], or `"auto"`).
    pub fn name(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            _ => self.algo().name(),
        }
    }

    /// Parses a backend name (case-insensitive; accepts the canonical
    /// spellings plus common aliases). Returns `None` on anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "alpha-contraction" | "alpha_contraction" | "alpha" | "pandora" | "contraction" => {
                Some(Self::AlphaContraction)
            }
            "work-optimal" | "work_optimal" | "workoptimal" | "rank" | "dhulipala" => {
                Some(Self::WorkOptimal)
            }
            "auto" | "adaptive" => Some(Self::Auto),
            _ => None,
        }
    }

    /// The concrete backend this selection commits to for an MST with
    /// `n_edges` edges. Concrete backends return themselves; `Auto` picks
    /// work-optimal at or below [`AUTO_CUTOFF_EDGES`] (one sequential
    /// base case, no hierarchy to build) and α-contraction above it.
    pub fn concrete_for(self, n_edges: usize) -> Self {
        match self {
            Self::Auto => {
                if n_edges <= AUTO_CUTOFF_EDGES {
                    Self::WorkOptimal
                } else {
                    Self::AlphaContraction
                }
            }
            concrete => concrete,
        }
    }

    /// Reads [`DENDROGRAM_ENV`]; `None` if unset or unparseable (an invalid
    /// override is ignored, never a panic — serving-tier contract).
    pub fn from_env() -> Option<Self> {
        std::env::var(DENDROGRAM_ENV)
            .ok()
            .and_then(|v| Self::parse(&v))
    }

    /// Applies the selection precedence: `requested` > env > default.
    pub fn resolve(requested: Option<Self>) -> Self {
        requested.or_else(Self::from_env).unwrap_or_default()
    }

    /// The backend's implementation object.
    ///
    /// `Auto` carries no implementation of its own — resolve it with
    /// [`Self::concrete_for`] first (as [`Self::build`] does).
    ///
    /// # Panics
    ///
    /// Panics if called on an unresolved [`Self::Auto`].
    pub fn algo(self) -> &'static dyn DendrogramAlgo {
        match self {
            Self::AlphaContraction => &AlphaContractionAlgo,
            Self::WorkOptimal => &WorkOptimalAlgo,
            Self::Auto => panic!("resolve Auto with concrete_for(n_edges) before algo()"),
        }
    }

    /// Builds the dendrogram with this backend (resolving `Auto` against
    /// the input size first).
    pub fn build(
        self,
        ctx: &ExecCtx,
        mst: &SortedMst,
        ws: &mut DendrogramWorkspace,
    ) -> (Dendrogram, PandoraStats) {
        self.concrete_for(mst.n_edges()).algo().build(ctx, mst, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_canonical_names_and_aliases() {
        for b in DendrogramBackend::ALL {
            assert_eq!(DendrogramBackend::parse(b.name()), Some(b));
        }
        assert_eq!(
            DendrogramBackend::parse(" PANDORA "),
            Some(DendrogramBackend::AlphaContraction)
        );
        assert_eq!(
            DendrogramBackend::parse("Work_Optimal"),
            Some(DendrogramBackend::WorkOptimal)
        );
        assert_eq!(
            DendrogramBackend::parse("auto"),
            Some(DendrogramBackend::Auto)
        );
        assert_eq!(
            DendrogramBackend::parse(" Adaptive "),
            Some(DendrogramBackend::Auto)
        );
        assert_eq!(DendrogramBackend::parse("gpu"), None);
        assert_eq!(DendrogramBackend::parse(""), None);
    }

    #[test]
    fn auto_crossover_is_pinned_at_the_base_cutoff() {
        use DendrogramBackend::*;
        assert_eq!(AUTO_CUTOFF_EDGES, 2048);
        assert_eq!(Auto.concrete_for(0), WorkOptimal);
        assert_eq!(Auto.concrete_for(AUTO_CUTOFF_EDGES), WorkOptimal);
        assert_eq!(Auto.concrete_for(AUTO_CUTOFF_EDGES + 1), AlphaContraction);
        // Concrete selections never move.
        for b in DendrogramBackend::ALL {
            assert_eq!(b.concrete_for(0), b);
            assert_eq!(b.concrete_for(1 << 20), b);
        }
        assert_eq!(Auto.name(), "auto");
    }

    #[test]
    fn auto_builds_match_the_backend_it_resolves_to() {
        use crate::edge::Edge;
        let ctx = ExecCtx::serial();
        let edges: Vec<Edge> = (1..64).map(|v| Edge::new(0, v, v as f32)).collect();
        let mst = SortedMst::from_edges(&ctx, 64, &edges);
        let mut ws = DendrogramWorkspace::new();
        let (auto, _) = DendrogramBackend::Auto.build(&ctx, &mst, &mut ws);
        let (concrete, _) = DendrogramBackend::WorkOptimal.build(&ctx, &mst, &mut ws);
        assert_eq!(auto, concrete);
    }

    #[test]
    fn resolve_prefers_request_over_default() {
        // Env interaction is exercised in the integration suite (env vars
        // are process-global; unit tests here stay mutation-free).
        assert_eq!(
            DendrogramBackend::resolve(Some(DendrogramBackend::WorkOptimal)),
            DendrogramBackend::WorkOptimal
        );
    }

    #[test]
    fn backends_build_identical_tiny_dendrograms() {
        use crate::edge::Edge;
        let ctx = ExecCtx::serial();
        let edges = [Edge::new(0, 1, 2.0), Edge::new(1, 2, 1.0)];
        let mst = SortedMst::from_edges(&ctx, 3, &edges);
        let mut ws = DendrogramWorkspace::new();
        let (a, _) = DendrogramBackend::AlphaContraction.build(&ctx, &mst, &mut ws);
        let (w, _) = DendrogramBackend::WorkOptimal.build(&ctx, &mst, &mut ws);
        assert_eq!(a, w);
        assert_eq!(a.root(), Some(0));
    }
}
