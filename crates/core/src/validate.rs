//! Validation oracles used by tests and benches.
//!
//! Beyond [`crate::Dendrogram::validate`] (structural invariants), this
//! module checks the paper's Theorem 1 directly against the tree: the
//! lowest common dendrogram ancestor of two edges must be the heaviest
//! (smallest-index) edge on the tree path connecting them.

use crate::dendrogram::Dendrogram;
use crate::edge::SortedMst;

/// Computes the smallest edge index on the tree path between edges `a` and
/// `b` by breadth-first search — the right-hand side of Theorem 1.
///
/// O(n) per query; strictly an oracle for tests.
pub fn min_index_on_path(mst: &SortedMst, a: u32, b: u32) -> u32 {
    let n = mst.n_edges();
    let nv = mst.n_vertices();
    // Adjacency.
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nv]; // (neighbor, edge)
    for e in 0..n as u32 {
        let (u, v) = (mst.src[e as usize], mst.dst[e as usize]);
        adj[u as usize].push((v, e));
        adj[v as usize].push((u, e));
    }
    // Path between edge a and edge b: from a's endpoints to b. Root a BFS at
    // one endpoint of `a`, tracking the edge used to reach each vertex.
    let start = mst.src[a as usize];
    let mut parent_edge = vec![u32::MAX; nv];
    let mut parent_vertex = vec![u32::MAX; nv];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    parent_edge[start as usize] = a; // sentinel marking visited
    parent_vertex[start as usize] = start;
    while let Some(v) = queue.pop_front() {
        for &(w, e) in &adj[v as usize] {
            if parent_edge[w as usize] == u32::MAX {
                parent_edge[w as usize] = e;
                parent_vertex[w as usize] = v;
                queue.push_back(w);
            }
        }
    }
    // Walk back from each endpoint of b to `start`, collecting path edges;
    // the tree path between the two edges is the union of walks minus the
    // common suffix. Simpler: path(edges a..b) = edges on walk from either
    // endpoint of b back to start, plus `a` itself, minus edges beyond the
    // meeting point — for an oracle we take the min over the walk from the
    // endpoint of b that yields the path containing both edges.
    let walk_min = |mut v: u32| -> u32 {
        let mut min_idx = u32::MAX;
        while v != start {
            let e = parent_edge[v as usize];
            min_idx = min_idx.min(e);
            v = parent_vertex[v as usize];
        }
        min_idx
    };
    // Both endpoints of b: the path from b to a is through the endpoint with
    // the shorter walk; the min over {a, b, walk}. Use the endpoint whose
    // walk does NOT pass through b itself when possible; taking the min of
    // the two walks unioned with {a,b} is equivalent for the minimal path:
    let m1 = walk_min(mst.src[b as usize]);
    let m2 = walk_min(mst.dst[b as usize]);
    // The true path min is min(a, b, max-path variant); since one walk is a
    // sub-walk of the other (they differ by edge b), min over both is the
    // min over the longer one, which includes the path. Correct the
    // inclusion of b: b is on the longer walk only.
    m1.min(m2).min(a).min(b)
}

/// Asserts Theorem 1 on `samples` random edge pairs.
pub fn check_lcda_theorem(mst: &SortedMst, dendro: &Dendrogram, samples: usize, seed: u64) {
    let n = mst.n_edges();
    if n < 2 {
        return;
    }
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..samples {
        let a = (next() % n as u64) as u32;
        let b = (next() % n as u64) as u32;
        let lcda = dendro.lcda(a, b);
        let path_min = min_index_on_path(mst, a, b);
        assert_eq!(
            lcda, path_min,
            "Theorem 1 violated for edges {a},{b}: LCDA={lcda}, path min={path_min}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::union_find::dendrogram_union_find;
    use crate::edge::Edge;
    use pandora_exec::ExecCtx;

    #[test]
    fn lcda_theorem_holds_on_random_trees() {
        use rand::prelude::*;
        let ctx = ExecCtx::serial();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let n_vertices = rng.gen_range(3..60);
            let edges: Vec<Edge> = (1..n_vertices)
                .map(|v| {
                    Edge::new(
                        rng.gen_range(0..v) as u32,
                        v as u32,
                        rng.gen_range(0.0..9.0f32),
                    )
                })
                .collect();
            let mst = SortedMst::from_edges(&ctx, n_vertices, &edges);
            let d = dendrogram_union_find(&mst);
            check_lcda_theorem(&mst, &d, 50, 1234);
        }
    }

    #[test]
    fn path_min_on_chain() {
        let ctx = ExecCtx::serial();
        let edges: Vec<Edge> = (0..5)
            .map(|i| Edge::new(i, i + 1, (5 - i) as f32))
            .collect();
        let mst = SortedMst::from_edges(&ctx, 6, &edges);
        // Path between edges 4 and 2 on a chain includes edges 2,3,4.
        assert_eq!(min_index_on_path(&mst, 4, 2), 2);
        assert_eq!(min_index_on_path(&mst, 0, 4), 0);
    }
}
