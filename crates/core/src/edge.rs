//! MST edge lists and the canonical sorted form.
//!
//! All dendrogram algorithms in this crate operate on a [`SortedMst`]: the
//! input tree's edges sorted by weight **descending** with a deterministic
//! tie-break, so that edge index 0 is the heaviest edge (the dendrogram
//! root) and the dendrogram is unique (paper §3.1.1: "ensuring that edges
//! with equal weights are ordered consistently to preserve the dendrogram's
//! uniqueness").
//!
//! ## The determinism contract for duplicate weights
//!
//! A tree with tied edge weights has several valid single-linkage
//! dendrograms; which one you get is decided *entirely* by the edge order,
//! and the canonical sort key
//! `(weight descending, src ascending, dst ascending)` — after
//! canonicalizing each edge to `src < dst` — makes that order a pure
//! function of the edge *set*. Consequences the stack relies on (and the
//! differential suite enforces, including an all-equal-weights tree at
//! n = 1000):
//!
//! * [`SortedMst::from_edges`] yields the same arrays for any permutation
//!   of the same input edges — upstream nondeterminism (e.g. parallel MST
//!   construction emitting edges in lane order) cannot leak into the
//!   dendrogram.
//! * Every backend ([`crate::algo::DendrogramBackend`]), serial or
//!   threaded, consumes only the sorted order — never raw weights for
//!   tie-decisions — so all of them produce one bit-identical dendrogram.
//! * Edge ids *are* sort ranks: the tie-break, not the weights, defines
//!   each edge's dendrogram node id, its chain position, and which of two
//!   equal-weight edges becomes the other's parent (the earlier-sorted one
//!   wins, i.e. the smaller `(src, dst)`).

use pandora_exec::atomic::f32_to_ordered_u32_desc;
use pandora_exec::sort::par_sort_by_key;
use pandora_exec::ExecCtx;

/// Sentinel for "no vertex/edge".
pub const INVALID: u32 = u32::MAX;

/// A weighted undirected edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// First endpoint.
    pub u: u32,
    /// Second endpoint.
    pub v: u32,
    /// Weight (e.g. Euclidean or mutual-reachability distance).
    pub w: f32,
}

impl Edge {
    /// Creates an edge.
    pub fn new(u: u32, v: u32, w: f32) -> Self {
        Self { u, v, w }
    }
}

/// A spanning tree's edges in canonical descending-weight order.
///
/// Structure-of-arrays layout; edge `i` is `(src[i], dst[i], weight[i])`
/// with `src[i] < dst[i]`. Sorted by `(weight desc, src asc, dst asc)`.
#[derive(Debug, Clone)]
pub struct SortedMst {
    n_vertices: usize,
    /// Smaller endpoint per edge.
    pub src: Vec<u32>,
    /// Larger endpoint per edge.
    pub dst: Vec<u32>,
    /// Weight per edge, non-increasing.
    pub weight: Vec<f32>,
}

impl SortedMst {
    /// Sorts `edges` into canonical order.
    ///
    /// The input need not come from an MST solver: any spanning tree with
    /// per-edge heights works, which is how the agglomerative linkage
    /// engine (`pandora-mst`'s NN-chain) feeds both dendrogram backends —
    /// each of its `n - 1` merges is emitted as one edge between
    /// representative original points at the merge height, and a merge
    /// sequence over `n` points always spans them. The rank/parent
    /// machinery downstream only assumes a weighted tree, so no adapter
    /// beyond this constructor is needed.
    ///
    /// # Panics
    ///
    /// Panics if the edge count is not `n_vertices - 1` (for
    /// `n_vertices > 0`), if an endpoint is out of range, if an edge is a
    /// self-loop, or if a weight is NaN.
    pub fn from_edges(ctx: &ExecCtx, n_vertices: usize, edges: &[Edge]) -> Self {
        assert_eq!(
            edges.len(),
            n_vertices.saturating_sub(1),
            "a spanning tree over {n_vertices} vertices must have {} edges",
            n_vertices.saturating_sub(1)
        );
        assert!(n_vertices < u32::MAX as usize, "vertex ids must fit in u32");
        // Canonicalize endpoint order and build sortable triples.
        let mut triples: Vec<(u32, u32, u32)> = edges
            .iter()
            .map(|e| {
                assert!(e.u != e.v, "self-loop edge {} - {}", e.u, e.v);
                assert!(
                    (e.u as usize) < n_vertices && (e.v as usize) < n_vertices,
                    "edge endpoint out of range"
                );
                assert!(!e.w.is_nan(), "NaN edge weight");
                let (a, b) = if e.u < e.v { (e.u, e.v) } else { (e.v, e.u) };
                (f32_to_ordered_u32_desc(e.w), a, b)
            })
            .collect();
        par_sort_by_key(ctx, &mut triples, |&t| t);

        let n = triples.len();
        let mut src = vec![0u32; n];
        let mut dst = vec![0u32; n];
        let mut weight = vec![0f32; n];
        for (i, &(wk, a, b)) in triples.iter().enumerate() {
            src[i] = a;
            dst[i] = b;
            weight[i] = pandora_exec::atomic::ordered_u32_to_f32(!wk);
        }
        Self {
            n_vertices,
            src,
            dst,
            weight,
        }
    }

    /// Builds from already-sorted parallel arrays (no checks beyond lengths).
    ///
    /// `debug_assert`s the canonical order in debug builds.
    pub fn from_sorted_arrays(
        n_vertices: usize,
        src: Vec<u32>,
        dst: Vec<u32>,
        weight: Vec<f32>,
    ) -> Self {
        assert_eq!(src.len(), dst.len());
        assert_eq!(src.len(), weight.len());
        assert_eq!(src.len(), n_vertices.saturating_sub(1));
        debug_assert!(
            weight.windows(2).all(|w| w[0] >= w[1]),
            "weights must be non-increasing"
        );
        debug_assert!(src.iter().zip(&dst).all(|(a, b)| a < b));
        Self {
            n_vertices,
            src,
            dst,
            weight,
        }
    }

    /// Number of vertices of the tree.
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of edges (`n_vertices - 1` for non-empty trees).
    pub fn n_edges(&self) -> usize {
        self.src.len()
    }

    /// The `i`-th edge in canonical order.
    pub fn edge(&self, i: usize) -> Edge {
        Edge {
            u: self.src[i],
            v: self.dst[i],
            w: self.weight[i],
        }
    }

    /// Verifies that the edges form a spanning tree (connected, acyclic).
    pub fn validate_tree(&self) -> Result<(), String> {
        if self.n_vertices == 0 {
            return Ok(());
        }
        let mut dsu = pandora_exec::dsu::SeqDsu::new(self.n_vertices);
        for i in 0..self.n_edges() {
            if dsu.union(self.src[i], self.dst[i]).is_none() {
                return Err(format!("edge {i} creates a cycle"));
            }
        }
        // n-1 successful unions over n vertices ⇒ connected.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_descending_with_ties_broken_by_endpoints() {
        let ctx = ExecCtx::serial();
        let edges = vec![
            Edge::new(3, 2, 1.0),
            Edge::new(0, 1, 5.0),
            Edge::new(4, 1, 1.0),
            Edge::new(2, 0, 3.0),
        ];
        let mst = SortedMst::from_edges(&ctx, 5, &edges);
        assert_eq!(mst.weight, vec![5.0, 3.0, 1.0, 1.0]);
        // Tie between (2,3) and (1,4): (1,4) sorts first.
        assert_eq!((mst.src[2], mst.dst[2]), (1, 4));
        assert_eq!((mst.src[3], mst.dst[3]), (2, 3));
        mst.validate_tree().unwrap();
    }

    #[test]
    fn canonicalizes_endpoint_order() {
        let ctx = ExecCtx::serial();
        let mst = SortedMst::from_edges(&ctx, 2, &[Edge::new(1, 0, 2.0)]);
        assert_eq!((mst.src[0], mst.dst[0]), (0, 1));
    }

    #[test]
    fn single_vertex_tree_is_empty() {
        let ctx = ExecCtx::serial();
        let mst = SortedMst::from_edges(&ctx, 1, &[]);
        assert_eq!(mst.n_edges(), 0);
        mst.validate_tree().unwrap();
    }

    #[test]
    #[should_panic(expected = "must have")]
    fn wrong_edge_count_panics() {
        let ctx = ExecCtx::serial();
        let _ = SortedMst::from_edges(&ctx, 3, &[Edge::new(0, 1, 1.0)]);
    }

    #[test]
    fn cycle_detected() {
        let mst =
            SortedMst::from_sorted_arrays(4, vec![0, 0, 0], vec![1, 1, 2], vec![3.0, 2.0, 1.0]);
        assert!(mst.validate_tree().is_err());
    }

    #[test]
    fn canonical_order_is_invariant_under_input_permutation() {
        // The determinism contract: the sorted form is a function of the
        // edge *set*, even when every weight ties.
        let ctx = ExecCtx::serial();
        let n = 40u32;
        let edges: Vec<Edge> = (1..n).map(|v| Edge::new(v / 3, v, 2.5)).collect();
        let reference = SortedMst::from_edges(&ctx, n as usize, &edges);
        let mut rotated = edges;
        rotated.rotate_left(17);
        rotated.reverse();
        let permuted = SortedMst::from_edges(&ctx, n as usize, &rotated);
        assert_eq!(reference.src, permuted.src);
        assert_eq!(reference.dst, permuted.dst);
        assert_eq!(reference.weight, permuted.weight);
    }

    #[test]
    fn negative_weights_sort_after_positive() {
        let ctx = ExecCtx::serial();
        let edges = vec![Edge::new(0, 1, -1.0), Edge::new(1, 2, 1.0)];
        let mst = SortedMst::from_edges(&ctx, 3, &edges);
        assert_eq!(mst.weight, vec![1.0, -1.0]);
    }
}
