//! Structural censuses of dendrograms and contraction hierarchies.
//!
//! Quantifies the paper's §4.2 accounting: every edge-node is a leaf, chain
//! or α edge; `n_leaf = n_α + 1` in every (connected, non-empty) tree; chain
//! edges make up the rest. These identities drive the `n_α ≤ (n−1)/2` bound
//! and the `⌈log₂(n+1)⌉` level bound, and the census is the right tool for
//! inspecting *why* a dataset's dendrogram is skewed (long chains = few α).

use pandora_exec::ExecCtx;

use crate::dendrogram::Dendrogram;
use crate::edge::{SortedMst, INVALID};
use crate::levels::{edge_node_kind, max_incident, ContractionHierarchy, EdgeNodeKind};

/// Edge-node counts of one tree level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelCensus {
    /// Edges whose children are two vertex-nodes.
    pub n_leaf: usize,
    /// Edges with exactly one vertex child.
    pub n_chain: usize,
    /// Edges with no vertex children (branching nodes).
    pub n_alpha: usize,
}

impl LevelCensus {
    /// Total edge count.
    pub fn total(&self) -> usize {
        self.n_leaf + self.n_chain + self.n_alpha
    }

    /// The paper's §4.2 identity `n_leaf = n_α + 1` (holds for any
    /// non-empty tree).
    pub fn leaf_alpha_identity_holds(&self) -> bool {
        self.total() == 0 || self.n_leaf == self.n_alpha + 1
    }
}

/// Census of every level of a contraction hierarchy.
pub fn hierarchy_census(ctx: &ExecCtx, hierarchy: &ContractionHierarchy) -> Vec<LevelCensus> {
    hierarchy
        .trees
        .iter()
        .map(|tree| {
            let mi = max_incident(ctx, tree);
            let mut census = LevelCensus {
                n_leaf: 0,
                n_chain: 0,
                n_alpha: 0,
            };
            for pos in 0..tree.n_edges() {
                match edge_node_kind(tree, &mi, pos) {
                    EdgeNodeKind::Leaf => census.n_leaf += 1,
                    EdgeNodeKind::Chain => census.n_chain += 1,
                    EdgeNodeKind::Alpha => census.n_alpha += 1,
                }
            }
            census
        })
        .collect()
}

/// Distribution of dendrogram chain lengths.
///
/// A chain is a maximal run of edge-nodes each having exactly one edge
/// child. Returns the sorted list of chain lengths; their count and maximum
/// explain the height: `height ≈ Σ of chain lengths along the deepest path`.
pub fn chain_lengths(dendrogram: &Dendrogram) -> Vec<usize> {
    let n = dendrogram.n_edges();
    if n == 0 {
        return Vec::new();
    }
    let children = dendrogram.edge_children();
    // Chain heads: nodes whose parent has 2 edge children (or the root).
    let mut lengths = Vec::new();
    for e in 0..n as u32 {
        let is_head = if e == 0 {
            true
        } else {
            let p = dendrogram.edge_parent[e as usize] as usize;
            children[p][0] != INVALID && children[p][1] != INVALID
        };
        if !is_head {
            continue;
        }
        // Walk down while exactly one edge child.
        let mut len = 1usize;
        let mut cur = e;
        loop {
            let kids = children[cur as usize];
            match (kids[0] != INVALID, kids[1] != INVALID) {
                (true, false) => {
                    cur = kids[0];
                    len += 1;
                }
                (false, true) => {
                    cur = kids[1];
                    len += 1;
                }
                _ => break,
            }
        }
        lengths.push(len);
    }
    lengths.sort_unstable();
    lengths
}

/// Full structural report for one MST: per-level censuses + chain stats.
#[derive(Debug, Clone)]
pub struct StructureReport {
    /// Census per contraction level.
    pub levels: Vec<LevelCensus>,
    /// Sorted chain lengths of the final dendrogram.
    pub chain_lengths: Vec<usize>,
    /// Dendrogram height.
    pub height: usize,
    /// Skew (`Imb`).
    pub skewness: f64,
}

/// Builds the report (runs the contraction hierarchy and the dendrogram).
pub fn structure_report(ctx: &ExecCtx, mst: &SortedMst) -> StructureReport {
    let hierarchy = crate::levels::build_hierarchy(ctx, mst);
    let levels = hierarchy_census(ctx, &hierarchy);
    let (dendrogram, _) = crate::pandora::dendrogram_from_sorted(ctx, mst);
    StructureReport {
        levels,
        chain_lengths: chain_lengths(&dendrogram),
        height: dendrogram.height(),
        skewness: dendrogram.skewness(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;
    use rand::prelude::*;

    #[test]
    fn leaf_alpha_identity_on_random_trees() {
        let ctx = ExecCtx::serial();
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let n = rng.gen_range(2..500);
            let edges: Vec<Edge> = (1..n)
                .map(|v| {
                    Edge::new(
                        rng.gen_range(0..v) as u32,
                        v as u32,
                        rng.gen_range(0.0..8.0f32),
                    )
                })
                .collect();
            let mst = SortedMst::from_edges(&ctx, n, &edges);
            let h = crate::levels::build_hierarchy(&ctx, &mst);
            for (l, census) in hierarchy_census(&ctx, &h).iter().enumerate() {
                assert!(
                    census.leaf_alpha_identity_holds(),
                    "level {l}: {census:?} violates n_leaf = n_α + 1"
                );
                assert_eq!(census.total(), h.trees[l].n_edges());
            }
        }
    }

    #[test]
    fn chain_census_of_path() {
        // A path's dendrogram is a single chain of all n edges.
        let ctx = ExecCtx::serial();
        let n = 30;
        let edges: Vec<Edge> = (0..n - 1)
            .map(|i| Edge::new(i as u32, i as u32 + 1, (n - i) as f32))
            .collect();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let report = structure_report(&ctx, &mst);
        assert_eq!(report.chain_lengths, vec![n - 1]);
        assert_eq!(report.height, n - 1);
        assert_eq!(report.levels.len(), 1);
        assert_eq!(report.levels[0].n_alpha, 0);
    }

    #[test]
    fn chain_lengths_cover_all_edges() {
        let ctx = ExecCtx::serial();
        let mut rng = StdRng::seed_from_u64(77);
        let n = 300;
        let edges: Vec<Edge> = (1..n)
            .map(|v| {
                Edge::new(
                    rng.gen_range(0..v) as u32,
                    v as u32,
                    rng.gen_range(0.0..1.0f32),
                )
            })
            .collect();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let (d, _) = crate::pandora::dendrogram_from_sorted(&ctx, &mst);
        let lengths = chain_lengths(&d);
        // Every edge-node belongs to exactly one chain.
        assert_eq!(lengths.iter().sum::<usize>(), d.n_edges());
    }

    #[test]
    fn balanced_tree_has_short_chains() {
        let ctx = ExecCtx::serial();
        let n = 1024;
        let edges: Vec<Edge> = (1..n)
            .map(|i| Edge::new((i / 2) as u32, i as u32, 1.0 / i as f32))
            .collect();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let report = structure_report(&ctx, &mst);
        let max_chain = report.chain_lengths.last().copied().unwrap_or(0);
        assert!(max_chain <= 4, "balanced tree chain of {max_chain}");
    }
}
