//! Bottom-up dendrogram construction with union–find (paper Algorithm 2).
//!
//! Processes edges from the lightest to the heaviest. For each edge, the two
//! endpoint clusters are looked up; each cluster's current *top edge* (the
//! last edge that merged it) gets the new edge as its dendrogram parent — or
//! the endpoint vertex itself does, if its cluster is still a singleton.
//!
//! This is work-optimal (`O(n α(n))` after sorting) but **inherently
//! sequential**: "for a given edge, it is impossible to say when it should
//! be processed given the information only about its vertices or adjacent
//! edges" (§2.3.2). The multithreaded variant used as the paper's baseline
//! (`UnionFind-MT`, from Wang et al.) parallelizes only the sort.

use pandora_exec::dsu::SeqDsu;
use pandora_exec::trace::KernelKind;
use pandora_exec::ExecCtx;

use crate::dendrogram::Dendrogram;
use crate::edge::{Edge, SortedMst, INVALID};

/// Sequential bottom-up construction over a canonically sorted MST.
pub fn dendrogram_union_find(mst: &SortedMst) -> Dendrogram {
    let n = mst.n_edges();
    let nv = mst.n_vertices();
    let mut dsu = SeqDsu::new(nv);
    // Top edge of each cluster, indexed by DSU root.
    let mut rep_edge = vec![INVALID; nv];
    let mut edge_parent = vec![INVALID; n];
    let mut vertex_parent = vec![INVALID; nv];

    // Lightest edge = largest index, processed first.
    for i in (0..n).rev() {
        let (u, v) = (mst.src[i], mst.dst[i]);
        for endpoint in [u, v] {
            let root = dsu.find(endpoint) as usize;
            let top = rep_edge[root];
            if top != INVALID {
                edge_parent[top as usize] = i as u32;
            } else {
                vertex_parent[endpoint as usize] = i as u32;
            }
        }
        dsu.union(u, v);
        rep_edge[dsu.find(u) as usize] = i as u32;
    }
    Dendrogram {
        edge_parent,
        vertex_parent,
        edge_weight: mst.weight.clone(),
    }
}

/// The paper's `UnionFind-MT` baseline: parallel sort + sequential
/// union–find pass. Returns the dendrogram and the two phase times
/// (seconds): `(sort_s, union_find_s)`.
pub fn dendrogram_union_find_mt(
    ctx: &ExecCtx,
    n_vertices: usize,
    edges: &[Edge],
) -> (Dendrogram, f64, f64) {
    let t0 = std::time::Instant::now();
    ctx.set_phase("sort");
    let mst = SortedMst::from_edges(ctx, n_vertices, edges);
    let sort_s = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    ctx.set_phase("dendrogram");
    // The union–find pass runs on one lane no matter the device.
    ctx.record(
        KernelKind::SeqLoop,
        mst.n_edges() as u64,
        (mst.n_edges() as u64) * 48,
    );
    let dendrogram = dendrogram_union_find(&mst);
    let uf_s = t1.elapsed().as_secs_f64();
    (dendrogram, sort_s, uf_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_exec::ExecCtx;

    #[test]
    fn path_graph_is_one_chain() {
        let ctx = ExecCtx::serial();
        let edges: Vec<Edge> = (0..5)
            .map(|i| Edge::new(i, i + 1, (5 - i) as f32))
            .collect();
        let mst = SortedMst::from_edges(&ctx, 6, &edges);
        let d = dendrogram_union_find(&mst);
        d.validate().unwrap();
        assert_eq!(d.edge_parent, vec![INVALID, 0, 1, 2, 3]);
        assert_eq!(d.height(), 5);
    }

    #[test]
    fn balanced_four_leaves() {
        // Perfectly balanced: two light pairs joined by a heavy bridge.
        //   0-1 (w=1), 2-3 (w=2), 1-2 (w=10)
        let ctx = ExecCtx::serial();
        let edges = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(2, 3, 2.0),
            Edge::new(1, 2, 10.0),
        ];
        let mst = SortedMst::from_edges(&ctx, 4, &edges);
        let d = dendrogram_union_find(&mst);
        d.validate().unwrap();
        // Canonical order: bridge=0, (2,3)=1, (0,1)=2.
        assert_eq!(d.edge_parent, vec![INVALID, 0, 0]);
        assert_eq!(d.vertex_parent, vec![2, 2, 1, 1]);
        assert_eq!(d.height(), 2);
    }

    #[test]
    fn star_vertex_parents_are_own_edges() {
        let ctx = ExecCtx::serial();
        let edges: Vec<Edge> = (1..=6)
            .map(|i| Edge::new(0, i as u32, (7 - i) as f32))
            .collect();
        let mst = SortedMst::from_edges(&ctx, 7, &edges);
        let d = dendrogram_union_find(&mst);
        d.validate().unwrap();
        // Center's parent is the lightest edge.
        assert_eq!(d.vertex_parent[0], 5);
        // Every leaf hangs off its own edge.
        for i in 0..6usize {
            let leaf = mst.dst[i].max(mst.src[i]) as usize;
            assert_eq!(d.vertex_parent[leaf], i as u32);
        }
        // Star dendrogram is a single chain.
        assert_eq!(d.height(), 6);
    }

    #[test]
    fn mt_variant_matches_sequential() {
        let ctx = ExecCtx::threads();
        let edges: Vec<Edge> = (1..100u32)
            .map(|v| Edge::new(v / 3, v, ((v * 7919) % 97) as f32))
            .collect();
        let (d_mt, sort_s, uf_s) = dendrogram_union_find_mt(&ctx, 100, &edges);
        let mst = SortedMst::from_edges(&ExecCtx::serial(), 100, &edges);
        let d_seq = dendrogram_union_find(&mst);
        assert_eq!(d_mt, d_seq);
        assert!(sort_s >= 0.0 && uf_s >= 0.0);
    }
}
