//! Top-down dendrogram construction (paper Algorithm 1).
//!
//! Divide and conquer: the heaviest edge of a component is the component's
//! dendrogram root; removing it splits the component in two, and the
//! recursion continues in each half. Worst-case cost is `O(n·h)` where `h`
//! is the dendrogram height — quadratic on the skewed dendrograms that
//! dominate real data, which is exactly the weakness PANDORA removes
//! (paper §2.3.1). Kept as a baseline and as an ablation subject.

use crate::dendrogram::Dendrogram;
use crate::edge::{SortedMst, INVALID};

/// Sequential top-down construction over a canonically sorted MST.
///
/// Uses an explicit work stack (component edge lists stay sorted, so the
/// heaviest edge of a component is its first element).
pub fn dendrogram_top_down(mst: &SortedMst) -> Dendrogram {
    let n = mst.n_edges();
    let nv = mst.n_vertices();
    let mut edge_parent = vec![INVALID; n];
    let mut vertex_parent = vec![INVALID; nv];
    if n == 0 {
        return Dendrogram {
            edge_parent,
            vertex_parent,
            edge_weight: mst.weight.clone(),
        };
    }

    // CSR adjacency: vertex → incident edge positions.
    let mut offsets = vec![0u32; nv + 1];
    for i in 0..n {
        offsets[mst.src[i] as usize + 1] += 1;
        offsets[mst.dst[i] as usize + 1] += 1;
    }
    for v in 0..nv {
        offsets[v + 1] += offsets[v];
    }
    let mut adjacency = vec![0u32; 2 * n];
    {
        let mut cursor = offsets.clone();
        for i in 0..n {
            for v in [mst.src[i], mst.dst[i]] {
                adjacency[cursor[v as usize] as usize] = i as u32;
                cursor[v as usize] += 1;
            }
        }
    }

    // Epoch-stamped membership arrays avoid reallocating per component.
    let mut edge_stamp = vec![0u32; n];
    let mut vertex_seen = vec![0u32; nv];
    let mut epoch = 0u32;

    // Work stack: (sorted edge positions of the component, parent edge).
    let mut stack: Vec<(Vec<u32>, u32)> = vec![((0..n as u32).collect(), INVALID)];
    while let Some((component, parent)) = stack.pop() {
        let heaviest = component[0];
        edge_parent[heaviest as usize] = parent;

        if component.len() == 1 {
            // Both endpoints become leaf vertex-nodes of this edge... unless
            // they still carry other edges — impossible: a single-edge
            // component has exactly two degree-1 vertices.
            vertex_parent[mst.src[heaviest as usize] as usize] = heaviest;
            vertex_parent[mst.dst[heaviest as usize] as usize] = heaviest;
            continue;
        }

        // Mark the component's edges.
        epoch += 1;
        for &e in &component {
            edge_stamp[e as usize] = epoch;
        }

        // Flood from the `src` endpoint of the removed edge, collecting the
        // side-1 edge set.
        let u = mst.src[heaviest as usize];
        vertex_seen[u as usize] = epoch;
        let mut frontier = vec![u];
        while let Some(v) = frontier.pop() {
            let lo = offsets[v as usize] as usize;
            let hi = offsets[v as usize + 1] as usize;
            for &e in &adjacency[lo..hi] {
                if e == heaviest || edge_stamp[e as usize] != epoch {
                    continue;
                }
                let (a, b) = (mst.src[e as usize], mst.dst[e as usize]);
                let other = if a == v { b } else { a };
                if vertex_seen[other as usize] != epoch {
                    vertex_seen[other as usize] = epoch;
                    frontier.push(other);
                }
            }
        }

        let mut side_u = Vec::new();
        let mut side_v = Vec::new();
        for &e in &component[1..] {
            let a = mst.src[e as usize];
            // An edge is on u's side iff either endpoint was flooded (both
            // are, if any).
            if vertex_seen[a as usize] == epoch {
                side_u.push(e);
            } else {
                side_v.push(e);
            }
        }
        // Empty sides are single vertices hanging directly off `heaviest`.
        if side_u.is_empty() {
            vertex_parent[mst.src[heaviest as usize] as usize] = heaviest;
        } else {
            stack.push((side_u, heaviest));
        }
        if side_v.is_empty() {
            vertex_parent[mst.dst[heaviest as usize] as usize] = heaviest;
        } else {
            stack.push((side_v, heaviest));
        }
    }

    Dendrogram {
        edge_parent,
        vertex_parent,
        edge_weight: mst.weight.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::union_find::dendrogram_union_find;
    use crate::edge::Edge;
    use pandora_exec::ExecCtx;

    #[test]
    fn matches_union_find_on_small_trees() {
        use rand::prelude::*;
        let ctx = ExecCtx::serial();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let n_vertices = rng.gen_range(2..120);
            let edges: Vec<Edge> = (1..n_vertices)
                .map(|v| {
                    Edge::new(
                        rng.gen_range(0..v) as u32,
                        v as u32,
                        rng.gen_range(0.0..10.0f32),
                    )
                })
                .collect();
            let mst = SortedMst::from_edges(&ctx, n_vertices, &edges);
            let top_down = dendrogram_top_down(&mst);
            let bottom_up = dendrogram_union_find(&mst);
            assert_eq!(top_down, bottom_up);
        }
    }

    #[test]
    fn single_edge() {
        let ctx = ExecCtx::serial();
        let mst = SortedMst::from_edges(&ctx, 2, &[Edge::new(0, 1, 1.0)]);
        let d = dendrogram_top_down(&mst);
        d.validate().unwrap();
        assert_eq!(d.vertex_parent, vec![0, 0]);
    }

    #[test]
    fn one_sided_split_assigns_vertex() {
        // Star: removing the heaviest edge always isolates one leaf.
        let ctx = ExecCtx::serial();
        let edges: Vec<Edge> = (1..=4)
            .map(|i| Edge::new(0, i as u32, (5 - i) as f32))
            .collect();
        let mst = SortedMst::from_edges(&ctx, 5, &edges);
        let d = dendrogram_top_down(&mst);
        d.validate().unwrap();
        assert_eq!(d, dendrogram_union_find(&mst));
    }
}
