//! Reference dendrogram-construction algorithms the paper compares against.
//!
//! * [`union_find`] — bottom-up with union–find (Algorithm 2); its
//!   `UnionFind-MT` variant (parallel sort + sequential pass) is the
//!   state-of-the-art baseline in the paper's evaluation (§6.3).
//! * [`top_down`] — divide-and-conquer (Algorithm 1), `O(n·h)`.
//! * [`mixed`] — Wang et al.'s hybrid (§2.3.3): parallel bottom-up over
//!   subtrees below the heaviest edges, sequential top stitching.

pub mod mixed;
pub mod top_down;
pub mod union_find;

pub use mixed::dendrogram_mixed;
pub use top_down::dendrogram_top_down;
pub use union_find::{dendrogram_union_find, dendrogram_union_find_mt};
