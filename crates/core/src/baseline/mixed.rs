//! Mixed top-down / bottom-up dendrogram construction (paper §2.3.3,
//! after Wang et al. SIGMOD'21).
//!
//! The heaviest `fraction · n` edges are removed top-down, splitting the
//! tree into subtrees; each subtree's dendrogram is built bottom-up
//! (Algorithm 2) *in parallel*, and the removed top edges are then folded in
//! sequentially, stitching the subtree dendrograms together.
//!
//! This parallelizes well on mildly skewed inputs but inherits the
//! bottom-up pass's weakness on strongly skewed ones: one giant component
//! swallows most edges and the parallel phase collapses to one worker — the
//! imbalance PANDORA's contraction sidesteps. Kept as the intermediate
//! baseline between `UnionFind-MT` and PANDORA.

use pandora_exec::dsu::AtomicDsu;
use pandora_exec::radix::par_radix_sort_u64;
use pandora_exec::trace::KernelKind;
use pandora_exec::{ExecCtx, UnsafeSlice, DEFAULT_GRAIN};

use crate::dendrogram::Dendrogram;
use crate::edge::{SortedMst, INVALID};

/// Builds the dendrogram with the mixed strategy.
///
/// `top_fraction` is the share of heaviest edges processed sequentially at
/// the end (the paper quotes "a tenth or a half"). Output is bit-identical
/// to the sequential bottom-up construction.
pub fn dendrogram_mixed(ctx: &ExecCtx, mst: &SortedMst, top_fraction: f64) -> Dendrogram {
    let n = mst.n_edges();
    let nv = mst.n_vertices();
    let mut edge_parent = vec![INVALID; n];
    let mut vertex_parent = vec![INVALID; nv];
    if n == 0 {
        return Dendrogram {
            edge_parent,
            vertex_parent,
            edge_weight: mst.weight.clone(),
        };
    }
    let k = ((n as f64 * top_fraction) as usize).clamp(1, n);

    // Phase 1: component membership of the light forest (edges k..n).
    let membership = AtomicDsu::new(nv);
    {
        let (src, dst) = (&mst.src, &mst.dst);
        let dsu_ref = &membership;
        ctx.for_each_chunk_traced(
            n - k,
            DEFAULT_GRAIN / 4,
            KernelKind::DsuUnion,
            ((n - k) as u64) * 16,
            |range| {
                for off in range {
                    let e = k + off;
                    dsu_ref.union(src[e], dst[e]);
                }
            },
        );
    }

    // Phase 2: bucket light edges by component root (radix on packed keys).
    let mut keys: Vec<u64> = Vec::with_capacity(n - k);
    for e in k..n {
        let root = membership.find(mst.src[e]) as u64;
        keys.push((root << 32) | e as u64);
    }
    par_radix_sort_u64(ctx, &mut keys);

    // Segment boundaries: one segment per component.
    let mut segments: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    for i in 1..=keys.len() {
        if i == keys.len() || (keys[i] >> 32) != (keys[start] >> 32) {
            segments.push((start, i));
            start = i;
        }
    }

    // Phase 3: per-component bottom-up dendrogram, components in parallel.
    // A fresh union–find over the full vertex range; each component touches
    // only its own vertices, so the parallel writes are disjoint.
    let mut parent: Vec<u32> = (0..nv as u32).collect();
    let mut rep_edge = vec![INVALID; nv];
    {
        let parent_view = UnsafeSlice::new(&mut parent);
        let rep_view = UnsafeSlice::new(&mut rep_edge);
        let ep_view = UnsafeSlice::new(&mut edge_parent);
        let vp_view = UnsafeSlice::new(&mut vertex_parent);
        let (src, dst) = (&mst.src, &mst.dst);
        let keys_ref = &keys;
        let segments_ref = &segments;
        ctx.for_each_chunk_traced(
            segments.len(),
            1,
            KernelKind::SeqLoop,
            ((n - k) as u64) * 48,
            |range| {
                for s in range {
                    let (lo, hi) = segments_ref[s];
                    // SAFETY (whole block): this component's edges touch only
                    // its own vertices (phase-1 membership), and each edge id
                    // appears in exactly one segment, so all writes below are
                    // disjoint across parallel tasks.
                    unsafe {
                        // Lightest edge first: the segment is sorted by edge
                        // id ascending (heaviest first), so iterate reversed.
                        for i in (lo..hi).rev() {
                            let e = (keys_ref[i] & 0xFFFF_FFFF) as usize;
                            let (u, v) = (src[e], dst[e]);
                            for endpoint in [u, v] {
                                let root = uf_find(&parent_view, endpoint);
                                let top = rep_view.read(root as usize);
                                if top != INVALID {
                                    ep_view.write(top as usize, e as u32);
                                } else {
                                    vp_view.write(endpoint as usize, e as u32);
                                }
                            }
                            let ru = uf_find(&parent_view, u);
                            let rv = uf_find(&parent_view, v);
                            let (hi_r, lo_r) = if ru > rv { (ru, rv) } else { (rv, ru) };
                            parent_view.write(hi_r as usize, lo_r);
                            rep_view.write(lo_r as usize, e as u32);
                        }
                    }
                }
            },
        );
    }

    // Phase 4: fold the k heaviest edges in sequentially (the "top tree").
    ctx.record(KernelKind::SeqLoop, k as u64, (k as u64) * 48);
    {
        let parent_view = UnsafeSlice::new(&mut parent);
        for e in (0..k).rev() {
            let (u, v) = (mst.src[e], mst.dst[e]);
            for endpoint in [u, v] {
                // SAFETY: phase 4 is single-threaded.
                let root = unsafe { uf_find(&parent_view, endpoint) };
                let top = rep_edge[root as usize];
                if top != INVALID {
                    edge_parent[top as usize] = e as u32;
                } else {
                    vertex_parent[endpoint as usize] = e as u32;
                }
            }
            // SAFETY: still phase 4 — this loop is the only thread touching
            // the parent array, so finds and the union write cannot race.
            unsafe {
                let ru = uf_find(&parent_view, u);
                let rv = uf_find(&parent_view, v);
                let (hi_r, lo_r) = if ru > rv { (ru, rv) } else { (rv, ru) };
                parent_view.write(hi_r as usize, lo_r);
                rep_edge[lo_r as usize] = e as u32;
            }
        }
    }

    Dendrogram {
        edge_parent,
        vertex_parent,
        edge_weight: mst.weight.clone(),
    }
}

/// Path-halving find over an [`UnsafeSlice`] parent array.
///
/// # Safety
///
/// The caller must guarantee no concurrent access to any vertex reachable
/// from `x` (per-component disjointness in phase 3, single thread in 4).
#[inline]
unsafe fn uf_find(parent: &UnsafeSlice<'_, u32>, x: u32) -> u32 {
    let mut cur = x;
    loop {
        // SAFETY: `cur` is on the path from `x` to its root, which the
        // caller owns exclusively.
        let p = unsafe { parent.read(cur as usize) };
        if p == cur {
            return cur;
        }
        // SAFETY: `p` is `cur`'s parent — same caller-owned path.
        let gp = unsafe { parent.read(p as usize) };
        if gp == p {
            return p;
        }
        // SAFETY: path-halving writes only to `cur`, on the owned path.
        unsafe { parent.write(cur as usize, gp) };
        cur = gp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::union_find::dendrogram_union_find;
    use crate::edge::Edge;
    use rand::prelude::*;

    #[test]
    fn matches_bottom_up_for_all_fractions() {
        let mut rng = StdRng::seed_from_u64(55);
        for ctx in [ExecCtx::serial(), ExecCtx::threads()] {
            for trial in 0..15 {
                let n_vertices = rng.gen_range(2..400);
                let edges: Vec<Edge> = (1..n_vertices)
                    .map(|v| {
                        Edge::new(
                            rng.gen_range(0..v) as u32,
                            v as u32,
                            rng.gen_range(0..64) as f32 * 0.5,
                        )
                    })
                    .collect();
                let mst = SortedMst::from_edges(&ctx, n_vertices, &edges);
                let expect = dendrogram_union_find(&mst);
                for fraction in [0.1, 0.5, 0.99] {
                    let got = dendrogram_mixed(&ctx, &mst, fraction);
                    assert_eq!(got, expect, "trial {trial} fraction {fraction}");
                }
            }
        }
    }

    #[test]
    fn single_edge_and_chain() {
        let ctx = ExecCtx::serial();
        let mst = SortedMst::from_edges(&ctx, 2, &[Edge::new(0, 1, 1.0)]);
        assert_eq!(
            dendrogram_mixed(&ctx, &mst, 0.1),
            dendrogram_union_find(&mst)
        );
        let chain: Vec<Edge> = (0..50)
            .map(|i| Edge::new(i, i + 1, (50 - i) as f32))
            .collect();
        let mst = SortedMst::from_edges(&ctx, 51, &chain);
        assert_eq!(
            dendrogram_mixed(&ctx, &mst, 0.1),
            dendrogram_union_find(&mst)
        );
    }
}
