//! Work-optimal dendrogram construction by rank-space divide and conquer
//! (Dhulipala, Dhulipala, Łącki, Mirrokni: *Optimal Parallel Algorithms for
//! Dendrogram Computation and Single-Linkage Clustering*, arXiv 2404.19019).
//!
//! The canonically sorted MST ([`SortedMst`]) already fixes every edge's
//! dendrogram *id* (its sort rank: 0 = heaviest = root). What remains is the
//! parent pointer of each edge and vertex, i.e. the heaviest-so-far edge of
//! the cluster a node sits in when the next heavier edge absorbs it. The
//! bottom-up union–find oracle ([`crate::baseline::dendrogram_union_find`])
//! computes exactly that with an inherently sequential lightest→heaviest
//! pass; this module parallelizes it by splitting the *edge ranks* in half:
//!
//! 1. Let `L` be the lighter half and `H` the heavier half of the current
//!    subproblem's edges. All of `L` merges before any of `H` touches
//!    anything, so `L` can be solved as an independent subproblem over the
//!    vertices it touches.
//! 2. For `H`, contract every connected component of `L` to a supervertex
//!    (a lock-free `AtomicDsu` union over `L`'s edges). When an `H` edge
//!    later absorbs that supervertex for the first time, the child pointer
//!    it must write is the component's **top edge** — its heaviest `L` edge,
//!    which under the canonical order is simply the minimum global rank in
//!    the component (one `fetch_min` per `L` edge).
//! 3. Recurse on both halves; subproblems at or below `BASE_CUTOFF` edges
//!    run the sequential union–find pass directly, writing parents straight
//!    into the shared output arrays through [`UnsafeSlice`] (every parent
//!    slot is written by exactly one leaf — see `attach` below).
//!
//! Each subproblem carries an `attach` table: for every local vertex, the
//! *global* parent slot that must be written when a subproblem edge absorbs
//! that vertex while it is still a local singleton — either a real vertex's
//! `vertex_parent` slot or (for a supervertex) the `edge_parent` slot of the
//! contracted component's top edge, tagged with `EDGE_FLAG`. Attach
//! entries are globally unique, which is what makes the leaf writes disjoint.
//!
//! Splitting halves the edge count per level, so the recursion is
//! `O(log n)` levels deep and does `O(n α(n))` total work — work-optimal up
//! to the DSU inverse-Ackermann factor, and crucially *independent of
//! dendrogram height*, unlike the top-down baseline
//! ([`crate::baseline::dendrogram_top_down`]) it supersedes.
//!
//! Determinism: the DSU unions by minimum id, `fetch_min` is commutative,
//! and supervertex renumbering happens in vertex order on the coordinating
//! thread, so serial and threaded contexts produce **bit-identical**
//! dendrograms — the same contract the α-contraction backend honours.

use std::sync::atomic::Ordering;
use std::time::Instant;

use pandora_exec::atomic::as_atomic_u32;
use pandora_exec::dsu::SeqDsu;
use pandora_exec::{ExecCtx, ScratchPool, UnsafeSlice, DEFAULT_GRAIN};

use crate::dendrogram::Dendrogram;
use crate::edge::{SortedMst, INVALID};
use crate::pandora::{DendrogramWorkspace, PandoraStats, PhaseTimings};

/// Top bit of an `attach` entry: set ⇒ the entry is an `edge_parent` slot
/// (a contracted component's top edge), clear ⇒ a `vertex_parent` slot.
const EDGE_FLAG: u32 = 1 << 31;

/// Subproblems at or below this many edges run the sequential base case.
///
/// Public because it doubles as the [`crate::algo::DendrogramBackend::Auto`]
/// crossover: an MST that fits in one base case is solved fastest by this
/// backend's sequential pass, while anything larger amortizes the
/// α-contraction hierarchy better.
pub const BASE_CUTOFF: usize = 2048;

/// One recursion node: a contiguous rank range of the global edge order,
/// with endpoints renumbered into a dense local vertex space.
struct Subproblem {
    /// Global edge ids (sort ranks), ascending — i.e. weight-descending.
    edges: Vec<u32>,
    /// Local smaller/larger endpoint per edge (parallel to `edges`).
    src: Vec<u32>,
    dst: Vec<u32>,
    /// Per local vertex: the global parent slot to write when a subproblem
    /// edge absorbs this vertex as a local singleton ([`EDGE_FLAG`] packed).
    attach: Vec<u32>,
}

impl Subproblem {
    /// Returns every buffer to the pool.
    fn release(self, pool: &ScratchPool) {
        pool.put_u32(self.edges);
        pool.put_u32(self.src);
        pool.put_u32(self.dst);
        pool.put_u32(self.attach);
    }
}

/// Builds the dendrogram of a canonically sorted MST with the work-optimal
/// rank divide-and-conquer backend.
///
/// Output is bit-identical to [`crate::pandora::dendrogram_from_sorted`]
/// and to the union–find oracle, for any execution context.
pub fn dendrogram_work_optimal(ctx: &ExecCtx, mst: &SortedMst) -> (Dendrogram, PandoraStats) {
    let mut ws = DendrogramWorkspace::new();
    dendrogram_work_optimal_with(ctx, mst, &mut ws)
}

/// [`dendrogram_work_optimal`] reusing a [`DendrogramWorkspace`].
///
/// Every per-split-level array — the edge-rank halves, renumbered endpoint
/// arrays, attach tables, component roots/tops and the contraction
/// union–find — is leased from the workspace's [`ScratchPool`], so warm
/// repeat builds only allocate the returned [`Dendrogram`]. The same
/// workspace serves both dendrogram backends interchangeably.
pub fn dendrogram_work_optimal_with(
    ctx: &ExecCtx,
    mst: &SortedMst,
    ws: &mut DendrogramWorkspace,
) -> (Dendrogram, PandoraStats) {
    let n_edges = mst.n_edges();
    let n_vertices = mst.n_vertices();
    assert!(
        n_vertices < EDGE_FLAG as usize,
        "work-optimal backend packs ids into 31 bits"
    );
    let pool = ws.scratch();

    let mut edge_parent = vec![INVALID; n_edges];
    let mut vertex_parent = vec![INVALID; n_vertices];
    let mut level_edge_counts = vec![n_edges];

    // Split phase: peel rank halves breadth-first until every subproblem is
    // leaf-sized. Subproblems on one level are split one at a time, each
    // split using ctx-parallel kernels internally — pool lanes must never
    // nest a broadcast, so the fan-out lives in the kernels, not the tree.
    let t_split = Instant::now();
    ctx.set_phase("contraction");
    let mut leaves: Vec<Subproblem> = Vec::new();
    let root_sub = {
        let mut edges = pool.take_u32();
        edges.extend(0..n_edges as u32);
        let mut src = pool.take_u32();
        src.extend_from_slice(&mst.src);
        let mut dst = pool.take_u32();
        dst.extend_from_slice(&mst.dst);
        let mut attach = pool.take_u32();
        attach.extend(0..n_vertices as u32);
        Subproblem {
            edges,
            src,
            dst,
            attach,
        }
    };
    let mut frontier = vec![root_sub];
    while !frontier.is_empty() {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for sub in frontier {
            if sub.edges.len() <= BASE_CUTOFF {
                leaves.push(sub);
            } else {
                let (heavy, light) = split(ctx, &sub, pool);
                sub.release(pool);
                next.push(heavy);
                next.push(light);
            }
        }
        if !next.is_empty() {
            level_edge_counts.push(next.iter().map(|s| s.edges.len()).sum());
        }
        frontier = next;
    }
    let split_s = t_split.elapsed().as_secs_f64();

    // Leaf phase: independent sequential base cases across pool lanes. All
    // writes go to globally unique slots (component tops and attach entries
    // are unique per leaf and across leaves), so the shared views are safe.
    // The pool hands each lane its own `rep` scratch (`ScratchPool` is
    // concurrency-safe by construction).
    let t_leaves = Instant::now();
    ctx.set_phase("expansion");
    {
        let ep = UnsafeSlice::new(&mut edge_parent);
        let vp = UnsafeSlice::new(&mut vertex_parent);
        ctx.for_each(leaves.len(), 1, |i| solve_leaf(&leaves[i], &ep, &vp, pool));
    }
    for leaf in leaves {
        leaf.release(pool);
    }
    let leaves_s = t_leaves.elapsed().as_secs_f64();

    let stats = PandoraStats {
        n_levels: level_edge_counts.len(),
        level_edge_counts,
        timings: PhaseTimings {
            sort_s: 0.0, // rank splitting needs no sort beyond the input's
            contraction_s: split_s,
            expansion_s: leaves_s,
        },
    };
    (
        Dendrogram {
            edge_parent,
            vertex_parent,
            edge_weight: mst.weight.clone(),
        },
        stats,
    )
}

/// Splits a subproblem at its median rank into the heavier-half and
/// lighter-half children (in that order). All child buffers (and the
/// split's own transient arrays) are leased from `pool`.
fn split(ctx: &ExecCtx, sub: &Subproblem, pool: &ScratchPool) -> (Subproblem, Subproblem) {
    let m = sub.edges.len();
    let nv = sub.attach.len();
    let mid = m / 2;

    // Connected components of the lighter half, union-by-min → the root of
    // every component is its minimum local vertex id (scheduling-free).
    let dsu = pool.take_dsu(nv);
    ctx.for_each(m - mid, DEFAULT_GRAIN, |i| {
        dsu.union(sub.src[mid + i], sub.dst[mid + i]);
    });
    dsu.flatten();
    let mut root = pool.take_u32();
    root.resize(nv, 0);
    {
        let out = UnsafeSlice::new(&mut root);
        ctx.for_each_chunk(nv, DEFAULT_GRAIN, |range| {
            for v in range {
                // SAFETY: each index is written by exactly one chunk.
                unsafe { out.write(v, dsu.find(v as u32)) };
            }
        });
    }
    pool.put_dsu(dsu);

    // Top edge (heaviest = minimum global rank) of each light component.
    // INVALID marks a component with no light edges (a singleton).
    let mut comp_top = pool.take_u32();
    comp_top.resize(nv, INVALID);
    {
        let top = as_atomic_u32(&mut comp_top);
        ctx.for_each(m - mid, DEFAULT_GRAIN, |i| {
            let r = root[sub.src[mid + i] as usize] as usize;
            // pandora-lint: allow(PL004) — commutative fetch_min picks the component's top edge in any order; read only after for_each joins
            top[r].fetch_min(sub.edges[mid + i], Ordering::Relaxed);
        });
    }

    // Dense renumbering, sequential in vertex order so child ids never
    // depend on lane scheduling. Heavy child: one supervertex per component
    // (absorbing it means absorbing the component's top edge — or, for a
    // singleton, whatever the parent's attach slot was). Light child: the
    // vertices incident to a light edge, keeping their parent attach slots.
    let mut heavy_id = pool.take_u32();
    heavy_id.resize(nv, INVALID);
    let mut light_id = pool.take_u32();
    light_id.resize(nv, INVALID);
    let mut heavy_attach = pool.take_u32();
    let mut light_attach = pool.take_u32();
    for v in 0..nv {
        let r = root[v] as usize;
        if r == v {
            heavy_id[v] = heavy_attach.len() as u32;
            heavy_attach.push(if comp_top[v] != INVALID {
                EDGE_FLAG | comp_top[v]
            } else {
                sub.attach[v]
            });
        }
        if comp_top[r] != INVALID {
            light_id[v] = light_attach.len() as u32;
            light_attach.push(sub.attach[v]);
        }
    }

    let mut heavy_edges = pool.take_u32();
    heavy_edges.extend_from_slice(&sub.edges[..mid]);
    let mut light_edges = pool.take_u32();
    light_edges.extend_from_slice(&sub.edges[mid..]);
    let heavy = Subproblem {
        edges: heavy_edges,
        src: remap(ctx, &sub.src[..mid], pool, |v| heavy_id[root[v] as usize]),
        dst: remap(ctx, &sub.dst[..mid], pool, |v| heavy_id[root[v] as usize]),
        attach: heavy_attach,
    };
    let light = Subproblem {
        edges: light_edges,
        src: remap(ctx, &sub.src[mid..], pool, |v| light_id[v]),
        dst: remap(ctx, &sub.dst[mid..], pool, |v| light_id[v]),
        attach: light_attach,
    };
    pool.put_u32(root);
    pool.put_u32(comp_top);
    pool.put_u32(heavy_id);
    pool.put_u32(light_id);
    (heavy, light)
}

/// Applies a local-vertex renumbering to an endpoint array in parallel,
/// writing into a pool-leased buffer (returned to the pool with the
/// subproblem that owns it).
fn remap(
    ctx: &ExecCtx,
    endpoints: &[u32],
    pool: &ScratchPool,
    f: impl Fn(usize) -> u32 + Sync,
) -> Vec<u32> {
    let mut out = pool.take_u32();
    out.resize(endpoints.len(), 0);
    {
        let view = UnsafeSlice::new(&mut out);
        ctx.for_each_chunk(endpoints.len(), DEFAULT_GRAIN, |range| {
            for i in range {
                // SAFETY: each index is written by exactly one chunk.
                unsafe { view.write(i, f(endpoints[i] as usize)) };
            }
        });
    }
    out
}

/// Sequential base case: the union–find oracle pass (paper Algorithm 2)
/// over one leaf subproblem, lightest edge first. Parents of edges that
/// stay cluster tops inside this leaf are owned by an enclosing heavier
/// subproblem (via its `attach` table) or remain the global root.
fn solve_leaf(sub: &Subproblem, ep: &UnsafeSlice<u32>, vp: &UnsafeSlice<u32>, pool: &ScratchPool) {
    let nv = sub.attach.len();
    let mut dsu = SeqDsu::new(nv);
    let mut rep = pool.take_u32();
    rep.resize(nv, INVALID);
    for i in (0..sub.edges.len()).rev() {
        let gid = sub.edges[i];
        let (u, v) = (sub.src[i], sub.dst[i]);
        for endpoint in [u, v] {
            let r = dsu.find(endpoint) as usize;
            let top = rep[r];
            if top != INVALID {
                // SAFETY: `top` is this leaf's live cluster top; it stops
                // being one right here, so no other write targets it.
                unsafe { ep.write(top as usize, gid) };
            } else {
                // First absorption of a local singleton: write through the
                // globally unique attach slot.
                let slot = sub.attach[endpoint as usize];
                if slot & EDGE_FLAG != 0 {
                    // SAFETY: attach slots are globally unique.
                    unsafe { ep.write((slot & !EDGE_FLAG) as usize, gid) };
                } else {
                    // SAFETY: attach slots are globally unique.
                    unsafe { vp.write(slot as usize, gid) };
                }
            }
        }
        dsu.union(u, v);
        let r = dsu.find(u) as usize;
        rep[r] = gid;
    }
    pool.put_u32(rep);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::dendrogram_union_find;
    use crate::edge::Edge;
    use rand::prelude::*;

    fn random_tree(rng: &mut StdRng, n: usize, weight_levels: u32) -> Vec<Edge> {
        (1..n)
            .map(|v| {
                let w = rng.gen_range(0..weight_levels) as f32 / 4.0;
                Edge::new(rng.gen_range(0..v) as u32, v as u32, w)
            })
            .collect()
    }

    #[test]
    fn matches_union_find_across_sizes_and_ties() {
        let ctx = ExecCtx::serial();
        let mut rng = StdRng::seed_from_u64(2024);
        // Straddles BASE_CUTOFF so the splitter actually runs.
        for n in [1usize, 2, 3, 17, 400, 2049, 3000, 6000] {
            for weight_levels in [1u32, 7, 1 << 20] {
                let edges = random_tree(&mut rng, n, weight_levels);
                let mst = SortedMst::from_edges(&ctx, n, &edges);
                let (got, stats) = dendrogram_work_optimal(&ctx, &mst);
                got.validate().unwrap();
                assert_eq!(
                    got,
                    dendrogram_union_find(&mst),
                    "n={n} levels={weight_levels}"
                );
                assert_eq!(stats.level_edge_counts[0], mst.n_edges());
                assert!(stats.n_levels >= 1);
            }
        }
    }

    #[test]
    fn serial_and_threaded_are_bit_identical() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let edges = random_tree(&mut rng, n, 1 << 16);
        let serial = ExecCtx::serial();
        let mst = SortedMst::from_edges(&serial, n, &edges);
        let (d_serial, _) = dendrogram_work_optimal(&serial, &mst);
        let (d_threaded, _) = dendrogram_work_optimal(&ExecCtx::threads(), &mst);
        assert_eq!(d_serial, d_threaded);
    }

    #[test]
    fn workspace_reuse_is_balanced_and_bit_identical() {
        let ctx = ExecCtx::serial();
        let mut rng = StdRng::seed_from_u64(11);
        let mut ws = DendrogramWorkspace::new();
        // Shrinking then regrowing inputs through one workspace; the large
        // sizes force real splits so the split-level leases are exercised.
        for n in [6000usize, 301, 6000] {
            let edges = random_tree(&mut rng, n, 1 << 16);
            let mst = SortedMst::from_edges(&ctx, n, &edges);
            let (fresh, _) = dendrogram_work_optimal(&ctx, &mst);
            let (warm, _) = dendrogram_work_optimal_with(&ctx, &mst, &mut ws);
            assert_eq!(fresh, warm, "n={n}");
            assert_eq!(ws.scratch().outstanding(), 0, "leaked leases at n={n}");
        }
        assert!(
            ws.scratch().reuse_hits() > 0,
            "warm runs should recycle split-level buffers"
        );
    }

    #[test]
    fn empty_and_star_inputs() {
        let ctx = ExecCtx::serial();
        let empty = SortedMst::from_edges(&ctx, 1, &[]);
        let (d, stats) = dendrogram_work_optimal(&ctx, &empty);
        assert_eq!(d.n_edges(), 0);
        assert_eq!(d.vertex_parent, vec![INVALID]);
        assert_eq!(stats.n_levels, 1);

        let n = 4000; // star: one hub, maximally skewed components
        let edges: Vec<Edge> = (1..n).map(|v| Edge::new(0, v as u32, v as f32)).collect();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let (d, _) = dendrogram_work_optimal(&ctx, &mst);
        assert_eq!(d, dendrogram_union_find(&mst));
    }
}
