//! Work-optimal dendrogram construction by rank-space divide and conquer
//! (Dhulipala, Dhulipala, Łącki, Mirrokni: *Optimal Parallel Algorithms for
//! Dendrogram Computation and Single-Linkage Clustering*, arXiv 2404.19019).
//!
//! The canonically sorted MST ([`SortedMst`]) already fixes every edge's
//! dendrogram *id* (its sort rank: 0 = heaviest = root). What remains is the
//! parent pointer of each edge and vertex, i.e. the heaviest-so-far edge of
//! the cluster a node sits in when the next heavier edge absorbs it. The
//! bottom-up union–find oracle ([`crate::baseline::dendrogram_union_find`])
//! computes exactly that with an inherently sequential lightest→heaviest
//! pass; this module parallelizes it by splitting the *edge ranks* in half:
//!
//! 1. Let `L` be the lighter half and `H` the heavier half of the current
//!    subproblem's edges. All of `L` merges before any of `H` touches
//!    anything, so `L` can be solved as an independent subproblem over the
//!    vertices it touches.
//! 2. For `H`, contract every connected component of `L` to a supervertex
//!    (a lock-free [`AtomicDsu`] union over `L`'s edges). When an `H` edge
//!    later absorbs that supervertex for the first time, the child pointer
//!    it must write is the component's **top edge** — its heaviest `L` edge,
//!    which under the canonical order is simply the minimum global rank in
//!    the component (one `fetch_min` per `L` edge).
//! 3. Recurse on both halves; subproblems at or below `BASE_CUTOFF` edges
//!    run the sequential union–find pass directly, writing parents straight
//!    into the shared output arrays through [`UnsafeSlice`] (every parent
//!    slot is written by exactly one leaf — see `attach` below).
//!
//! Each subproblem carries an `attach` table: for every local vertex, the
//! *global* parent slot that must be written when a subproblem edge absorbs
//! that vertex while it is still a local singleton — either a real vertex's
//! `vertex_parent` slot or (for a supervertex) the `edge_parent` slot of the
//! contracted component's top edge, tagged with `EDGE_FLAG`. Attach
//! entries are globally unique, which is what makes the leaf writes disjoint.
//!
//! Splitting halves the edge count per level, so the recursion is
//! `O(log n)` levels deep and does `O(n α(n))` total work — work-optimal up
//! to the DSU inverse-Ackermann factor, and crucially *independent of
//! dendrogram height*, unlike the top-down baseline
//! ([`crate::baseline::dendrogram_top_down`]) it supersedes.
//!
//! Determinism: the DSU unions by minimum id, `fetch_min` is commutative,
//! and supervertex renumbering happens in vertex order on the coordinating
//! thread, so serial and threaded contexts produce **bit-identical**
//! dendrograms — the same contract the α-contraction backend honours.

use std::sync::atomic::Ordering;
use std::time::Instant;

use pandora_exec::atomic::as_atomic_u32;
use pandora_exec::dsu::{AtomicDsu, SeqDsu};
use pandora_exec::{ExecCtx, UnsafeSlice, DEFAULT_GRAIN};

use crate::dendrogram::Dendrogram;
use crate::edge::{SortedMst, INVALID};
use crate::pandora::{PandoraStats, PhaseTimings};

/// Top bit of an `attach` entry: set ⇒ the entry is an `edge_parent` slot
/// (a contracted component's top edge), clear ⇒ a `vertex_parent` slot.
const EDGE_FLAG: u32 = 1 << 31;

/// Subproblems at or below this many edges run the sequential base case.
const BASE_CUTOFF: usize = 2048;

/// One recursion node: a contiguous rank range of the global edge order,
/// with endpoints renumbered into a dense local vertex space.
struct Subproblem {
    /// Global edge ids (sort ranks), ascending — i.e. weight-descending.
    edges: Vec<u32>,
    /// Local smaller/larger endpoint per edge (parallel to `edges`).
    src: Vec<u32>,
    dst: Vec<u32>,
    /// Per local vertex: the global parent slot to write when a subproblem
    /// edge absorbs this vertex as a local singleton ([`EDGE_FLAG`] packed).
    attach: Vec<u32>,
}

/// Builds the dendrogram of a canonically sorted MST with the work-optimal
/// rank divide-and-conquer backend.
///
/// Output is bit-identical to [`crate::pandora::dendrogram_from_sorted`]
/// and to the union–find oracle, for any execution context.
pub fn dendrogram_work_optimal(ctx: &ExecCtx, mst: &SortedMst) -> (Dendrogram, PandoraStats) {
    let n_edges = mst.n_edges();
    let n_vertices = mst.n_vertices();
    assert!(
        n_vertices < EDGE_FLAG as usize,
        "work-optimal backend packs ids into 31 bits"
    );

    let mut edge_parent = vec![INVALID; n_edges];
    let mut vertex_parent = vec![INVALID; n_vertices];
    let mut level_edge_counts = vec![n_edges];

    // Split phase: peel rank halves breadth-first until every subproblem is
    // leaf-sized. Subproblems on one level are split one at a time, each
    // split using ctx-parallel kernels internally — pool lanes must never
    // nest a broadcast, so the fan-out lives in the kernels, not the tree.
    let t_split = Instant::now();
    ctx.set_phase("contraction");
    let mut leaves: Vec<Subproblem> = Vec::new();
    let mut frontier = vec![Subproblem {
        edges: (0..n_edges as u32).collect(),
        src: mst.src.clone(),
        dst: mst.dst.clone(),
        attach: (0..n_vertices as u32).collect(),
    }];
    while !frontier.is_empty() {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for sub in frontier {
            if sub.edges.len() <= BASE_CUTOFF {
                leaves.push(sub);
            } else {
                let (heavy, light) = split(ctx, &sub);
                next.push(heavy);
                next.push(light);
            }
        }
        if !next.is_empty() {
            level_edge_counts.push(next.iter().map(|s| s.edges.len()).sum());
        }
        frontier = next;
    }
    let split_s = t_split.elapsed().as_secs_f64();

    // Leaf phase: independent sequential base cases across pool lanes. All
    // writes go to globally unique slots (component tops and attach entries
    // are unique per leaf and across leaves), so the shared views are safe.
    let t_leaves = Instant::now();
    ctx.set_phase("expansion");
    {
        let ep = UnsafeSlice::new(&mut edge_parent);
        let vp = UnsafeSlice::new(&mut vertex_parent);
        ctx.for_each(leaves.len(), 1, |i| solve_leaf(&leaves[i], &ep, &vp));
    }
    let leaves_s = t_leaves.elapsed().as_secs_f64();

    let stats = PandoraStats {
        n_levels: level_edge_counts.len(),
        level_edge_counts,
        timings: PhaseTimings {
            sort_s: 0.0, // rank splitting needs no sort beyond the input's
            contraction_s: split_s,
            expansion_s: leaves_s,
        },
    };
    (
        Dendrogram {
            edge_parent,
            vertex_parent,
            edge_weight: mst.weight.clone(),
        },
        stats,
    )
}

/// Splits a subproblem at its median rank into the heavier-half and
/// lighter-half children (in that order).
fn split(ctx: &ExecCtx, sub: &Subproblem) -> (Subproblem, Subproblem) {
    let m = sub.edges.len();
    let nv = sub.attach.len();
    let mid = m / 2;

    // Connected components of the lighter half, union-by-min → the root of
    // every component is its minimum local vertex id (scheduling-free).
    let dsu = AtomicDsu::new(nv);
    ctx.for_each(m - mid, DEFAULT_GRAIN, |i| {
        dsu.union(sub.src[mid + i], sub.dst[mid + i]);
    });
    dsu.flatten();
    let mut root = vec![0u32; nv];
    {
        let out = UnsafeSlice::new(&mut root);
        ctx.for_each_chunk(nv, DEFAULT_GRAIN, |range| {
            for v in range {
                // Safety: each index is written by exactly one chunk.
                unsafe { out.write(v, dsu.find(v as u32)) };
            }
        });
    }

    // Top edge (heaviest = minimum global rank) of each light component.
    // INVALID marks a component with no light edges (a singleton).
    let mut comp_top = vec![INVALID; nv];
    {
        let top = as_atomic_u32(&mut comp_top);
        ctx.for_each(m - mid, DEFAULT_GRAIN, |i| {
            let r = root[sub.src[mid + i] as usize] as usize;
            top[r].fetch_min(sub.edges[mid + i], Ordering::Relaxed);
        });
    }

    // Dense renumbering, sequential in vertex order so child ids never
    // depend on lane scheduling. Heavy child: one supervertex per component
    // (absorbing it means absorbing the component's top edge — or, for a
    // singleton, whatever the parent's attach slot was). Light child: the
    // vertices incident to a light edge, keeping their parent attach slots.
    let mut heavy_id = vec![INVALID; nv];
    let mut light_id = vec![INVALID; nv];
    let mut heavy_attach = Vec::new();
    let mut light_attach = Vec::new();
    for v in 0..nv {
        let r = root[v] as usize;
        if r == v {
            heavy_id[v] = heavy_attach.len() as u32;
            heavy_attach.push(if comp_top[v] != INVALID {
                EDGE_FLAG | comp_top[v]
            } else {
                sub.attach[v]
            });
        }
        if comp_top[r] != INVALID {
            light_id[v] = light_attach.len() as u32;
            light_attach.push(sub.attach[v]);
        }
    }

    let heavy = Subproblem {
        edges: sub.edges[..mid].to_vec(),
        src: remap(ctx, &sub.src[..mid], |v| heavy_id[root[v] as usize]),
        dst: remap(ctx, &sub.dst[..mid], |v| heavy_id[root[v] as usize]),
        attach: heavy_attach,
    };
    let light = Subproblem {
        edges: sub.edges[mid..].to_vec(),
        src: remap(ctx, &sub.src[mid..], |v| light_id[v]),
        dst: remap(ctx, &sub.dst[mid..], |v| light_id[v]),
        attach: light_attach,
    };
    (heavy, light)
}

/// Applies a local-vertex renumbering to an endpoint array in parallel.
fn remap(ctx: &ExecCtx, endpoints: &[u32], f: impl Fn(usize) -> u32 + Sync) -> Vec<u32> {
    let mut out = vec![0u32; endpoints.len()];
    {
        let view = UnsafeSlice::new(&mut out);
        ctx.for_each_chunk(endpoints.len(), DEFAULT_GRAIN, |range| {
            for i in range {
                // Safety: each index is written by exactly one chunk.
                unsafe { view.write(i, f(endpoints[i] as usize)) };
            }
        });
    }
    out
}

/// Sequential base case: the union–find oracle pass (paper Algorithm 2)
/// over one leaf subproblem, lightest edge first. Parents of edges that
/// stay cluster tops inside this leaf are owned by an enclosing heavier
/// subproblem (via its `attach` table) or remain the global root.
fn solve_leaf(sub: &Subproblem, ep: &UnsafeSlice<u32>, vp: &UnsafeSlice<u32>) {
    let nv = sub.attach.len();
    let mut dsu = SeqDsu::new(nv);
    let mut rep = vec![INVALID; nv];
    for i in (0..sub.edges.len()).rev() {
        let gid = sub.edges[i];
        let (u, v) = (sub.src[i], sub.dst[i]);
        for endpoint in [u, v] {
            let r = dsu.find(endpoint) as usize;
            let top = rep[r];
            if top != INVALID {
                // Safety: `top` is this leaf's live cluster top; it stops
                // being one right here, so no other write targets it.
                unsafe { ep.write(top as usize, gid) };
            } else {
                // First absorption of a local singleton: write through the
                // globally unique attach slot.
                let slot = sub.attach[endpoint as usize];
                if slot & EDGE_FLAG != 0 {
                    // Safety: attach slots are globally unique.
                    unsafe { ep.write((slot & !EDGE_FLAG) as usize, gid) };
                } else {
                    // Safety: attach slots are globally unique.
                    unsafe { vp.write(slot as usize, gid) };
                }
            }
        }
        dsu.union(u, v);
        let r = dsu.find(u) as usize;
        rep[r] = gid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::dendrogram_union_find;
    use crate::edge::Edge;
    use rand::prelude::*;

    fn random_tree(rng: &mut StdRng, n: usize, weight_levels: u32) -> Vec<Edge> {
        (1..n)
            .map(|v| {
                let w = rng.gen_range(0..weight_levels) as f32 / 4.0;
                Edge::new(rng.gen_range(0..v) as u32, v as u32, w)
            })
            .collect()
    }

    #[test]
    fn matches_union_find_across_sizes_and_ties() {
        let ctx = ExecCtx::serial();
        let mut rng = StdRng::seed_from_u64(2024);
        // Straddles BASE_CUTOFF so the splitter actually runs.
        for n in [1usize, 2, 3, 17, 400, 2049, 3000, 6000] {
            for weight_levels in [1u32, 7, 1 << 20] {
                let edges = random_tree(&mut rng, n, weight_levels);
                let mst = SortedMst::from_edges(&ctx, n, &edges);
                let (got, stats) = dendrogram_work_optimal(&ctx, &mst);
                got.validate().unwrap();
                assert_eq!(
                    got,
                    dendrogram_union_find(&mst),
                    "n={n} levels={weight_levels}"
                );
                assert_eq!(stats.level_edge_counts[0], mst.n_edges());
                assert!(stats.n_levels >= 1);
            }
        }
    }

    #[test]
    fn serial_and_threaded_are_bit_identical() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let edges = random_tree(&mut rng, n, 1 << 16);
        let serial = ExecCtx::serial();
        let mst = SortedMst::from_edges(&serial, n, &edges);
        let (d_serial, _) = dendrogram_work_optimal(&serial, &mst);
        let (d_threaded, _) = dendrogram_work_optimal(&ExecCtx::threads(), &mst);
        assert_eq!(d_serial, d_threaded);
    }

    #[test]
    fn empty_and_star_inputs() {
        let ctx = ExecCtx::serial();
        let empty = SortedMst::from_edges(&ctx, 1, &[]);
        let (d, stats) = dendrogram_work_optimal(&ctx, &empty);
        assert_eq!(d.n_edges(), 0);
        assert_eq!(d.vertex_parent, vec![INVALID]);
        assert_eq!(stats.n_levels, 1);

        let n = 4000; // star: one hub, maximally skewed components
        let edges: Vec<Edge> = (1..n).map(|v| Edge::new(0, v as u32, v as f32)).collect();
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        let (d, _) = dendrogram_work_optimal(&ctx, &mst);
        assert_eq!(d, dendrogram_union_find(&mst));
    }
}
