//! Single-level dendrogram expansion (paper §3.3.1) — the ablation PANDORA
//! improves on.
//!
//! With only **one** level of contraction, a non-α edge must find its chain
//! by *walking the α-dendrogram upwards* from the parent of its supervertex
//! until it meets an α edge heavier than itself (paper Fig. 10). The walk is
//! `O(height of the α-dendrogram)`, which is `O(n)` on skewed inputs, so the
//! whole expansion degrades to `O(n²)` worst case — exactly why §3.3.2
//! replaces the walk with `O(log n)` per-level checks. Exposed so the
//! ablation benchmark can measure the difference; results are bit-identical
//! to the multilevel algorithm.

use pandora_exec::counters::RelaxedCounter;
use pandora_exec::trace::KernelKind;
use pandora_exec::{ExecCtx, UnsafeSlice, DEFAULT_GRAIN};

use crate::dendrogram::Dendrogram;
use crate::edge::{SortedMst, INVALID};
use crate::expansion::{sort_chain_keys, stitch_chains};
use crate::levels::{contract_level, max_incident, packed_id, split_alpha, LevelTree};

/// `(parent edge position, side)` pairs for the α-dendrogram, or `NONE`.
const NONE: u32 = u32::MAX;

/// α-dendrogram with side bits, computed sequentially (Algorithm 2 +
/// child-slot bookkeeping).
struct AlphaDendrogram {
    /// Per α-edge position: parent α-edge position (`NONE` for the root).
    edge_parent_pos: Vec<u32>,
    /// Per α-edge position: which child slot of its parent it occupies
    /// (0 = `src` side, 1 = `dst` side).
    edge_side: Vec<u32>,
    /// Per supervertex: parent α-edge position.
    vertex_parent_pos: Vec<u32>,
    /// Per supervertex: child slot under its parent.
    vertex_side: Vec<u32>,
}

/// Bottom-up union–find over the α-MST, recording parent *and* side.
fn alpha_dendrogram(tree: &LevelTree) -> AlphaDendrogram {
    let n = tree.n_edges();
    let nv = tree.n_vertices;
    let mut dsu = pandora_exec::dsu::SeqDsu::new(nv);
    let mut rep_edge = vec![NONE; nv];
    let mut out = AlphaDendrogram {
        edge_parent_pos: vec![NONE; n],
        edge_side: vec![0; n],
        vertex_parent_pos: vec![NONE; nv],
        vertex_side: vec![0; nv],
    };
    for pos in (0..n).rev() {
        let (u, v) = (tree.src[pos], tree.dst[pos]);
        for (side, endpoint) in [(0u32, u), (1u32, v)] {
            let root = dsu.find(endpoint) as usize;
            let top = rep_edge[root];
            if top != NONE {
                out.edge_parent_pos[top as usize] = pos as u32;
                out.edge_side[top as usize] = side;
            } else {
                out.vertex_parent_pos[endpoint as usize] = pos as u32;
                out.vertex_side[endpoint as usize] = side;
            }
        }
        dsu.union(u, v);
        rep_edge[dsu.find(u) as usize] = pos as u32;
    }
    out
}

/// Builds the dendrogram with a single contraction level and walk-based
/// chain assignment. Bit-identical output to [`crate::pandora::dendrogram`].
pub fn dendrogram_single_level(ctx: &ExecCtx, mst: &SortedMst) -> Dendrogram {
    let n = mst.n_edges();
    let tree0 = LevelTree::from_mst(mst);
    let mi0 = max_incident(ctx, &tree0);

    // Vertex parents of the final dendrogram (Eq. 1).
    let mut vertex_parent = vec![INVALID; mst.n_vertices()];
    for (v, slot) in vertex_parent.iter_mut().enumerate() {
        *slot = packed_id(mi0[v]);
    }

    let split = split_alpha(ctx, &tree0, &mi0);
    if split.alpha.is_empty() {
        // No α edges: the dendrogram is the sorted root chain.
        let mut edge_parent = vec![INVALID; n];
        for (e, parent) in edge_parent.iter_mut().enumerate().skip(1) {
            *parent = e as u32 - 1;
        }
        return Dendrogram {
            edge_parent,
            vertex_parent,
            edge_weight: mst.weight.clone(),
        };
    }

    let step = contract_level(ctx, &tree0, &split);
    let alpha_tree = &step.next;
    let alpha = alpha_dendrogram(alpha_tree);

    // Position of each α edge in the α-MST is needed to map global ids; the
    // α-MST stores ids ascending, so position == rank.
    let ids = &alpha_tree.ids;

    // Chain keys for all edges.
    let mut keys = vec![0u64; n];
    let total_steps = RelaxedCounter::new();
    {
        let keys_view = UnsafeSlice::new(&mut keys);
        // Map global edge id → (is_alpha, alpha position | non-alpha rank).
        // split.alpha / split.non_alpha are level-0 positions == global ids.
        let mut alpha_rank = vec![NONE; n];
        for (rank, &pos) in split.alpha.iter().enumerate() {
            alpha_rank[pos as usize] = rank as u32;
        }
        let mut home_of = vec![NONE; n];
        for (k, &pos) in split.non_alpha.iter().enumerate() {
            home_of[pos as usize] = step.home[k];
        }
        let alpha_ref = &alpha;
        let steps_ref = &total_steps;
        ctx.for_each_chunk(n, DEFAULT_GRAIN / 4, |range| {
            let mut local_steps = 0u64;
            for e in range {
                let key: u32 = if alpha_rank[e] != NONE {
                    // α edge: parent straight from the α-dendrogram.
                    let pos = alpha_rank[e] as usize;
                    let ppos = alpha_ref.edge_parent_pos[pos];
                    if ppos == NONE {
                        0 // root chain
                    } else {
                        ((ids[ppos as usize] + 1) << 1) | alpha_ref.edge_side[pos]
                    }
                } else {
                    // Non-α edge: walk up from its supervertex's parent
                    // until an ancestor heavier than `e` appears (Fig. 10).
                    let sv = home_of[e] as usize;
                    let mut pos = alpha_ref.vertex_parent_pos[sv];
                    let mut side = alpha_ref.vertex_side[sv];
                    let mut key = 0u32;
                    while pos != NONE {
                        local_steps += 1;
                        let id = ids[pos as usize] as usize;
                        if id < e {
                            key = ((ids[pos as usize] + 1) << 1) | side;
                            break;
                        }
                        side = alpha_ref.edge_side[pos as usize];
                        pos = alpha_ref.edge_parent_pos[pos as usize];
                    }
                    key
                };
                // SAFETY: slot e written once.
                unsafe { keys_view.write(e, ((key as u64) << 32) | e as u64) };
            }
            steps_ref.add(local_steps);
        });
    }
    // The walk is a dendrogram traversal; traced under its own kind so the
    // ablation can read the step count back.
    let steps = total_steps.get();
    ctx.record(KernelKind::TreeTraverse, steps, steps * 16);

    ctx.set_phase("sort");
    sort_chain_keys(ctx, &mut keys);
    ctx.set_phase("expansion");
    let edge_parent = stitch_chains(ctx, n, &keys);

    Dendrogram {
        edge_parent,
        vertex_parent,
        edge_weight: mst.weight.clone(),
    }
}

/// Number of α-dendrogram walk steps the single-level expansion needs on
/// this input (the ablation's work measure).
pub fn walk_steps(ctx: &ExecCtx, mst: &SortedMst) -> u64 {
    let (traced_ctx, tracer) = ctx.with_tracing();
    let _ = dendrogram_single_level(&traced_ctx, mst);
    tracer
        .snapshot()
        .events
        .iter()
        .filter(|e| e.kind == KernelKind::TreeTraverse)
        .map(|e| e.n)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::union_find::dendrogram_union_find;
    use crate::edge::Edge;
    use rand::prelude::*;

    #[test]
    fn matches_multilevel_on_random_trees() {
        let ctx = ExecCtx::serial();
        let mut rng = StdRng::seed_from_u64(71);
        for trial in 0..30 {
            let n_vertices = rng.gen_range(2..300);
            let edges: Vec<Edge> = (1..n_vertices)
                .map(|v| {
                    Edge::new(
                        rng.gen_range(0..v) as u32,
                        v as u32,
                        rng.gen_range(0..40) as f32 * 0.25,
                    )
                })
                .collect();
            let mst = SortedMst::from_edges(&ctx, n_vertices, &edges);
            let single = dendrogram_single_level(&ctx, &mst);
            let expect = dendrogram_union_find(&mst);
            assert_eq!(single, expect, "trial {trial}");
        }
    }

    #[test]
    fn chain_has_no_alpha_and_still_works() {
        let ctx = ExecCtx::serial();
        let edges: Vec<Edge> = (0..20)
            .map(|i| Edge::new(i, i + 1, (20 - i) as f32))
            .collect();
        let mst = SortedMst::from_edges(&ctx, 21, &edges);
        let single = dendrogram_single_level(&ctx, &mst);
        assert_eq!(single, dendrogram_union_find(&mst));
    }

    #[test]
    fn walk_cost_grows_with_skew() {
        // The §3.3.1 worst case: a deep chain of α edges (hub path, each hub
        // carrying a light leaf so the bridges stay α) plus a batch of
        // globally-heaviest leaves at the deepest hub. Each heavy leaf must
        // walk the whole α-dendrogram chain upward before landing in the
        // root chain — Θ(n) steps per edge. A balanced tree of the same size
        // needs O(1) steps per edge.
        let ctx = ExecCtx::serial();
        let hubs = 500usize;
        let heavies = 50usize;
        let mut edges = Vec::new();
        // Bridges h-1 → h, weights descending: the α-dendrogram is a chain.
        for h in 1..hubs {
            edges.push(Edge::new((h - 1) as u32, h as u32, 2000.0 - h as f32));
        }
        // One light leaf per hub keeps every bridge α.
        let mut next = hubs as u32;
        for h in 0..hubs {
            edges.push(Edge::new(h as u32, next, 1.0 + h as f32 * 1e-3));
            next += 1;
        }
        // Heavy leaves at the deepest hub: heavier than every bridge.
        for k in 0..heavies {
            edges.push(Edge::new((hubs - 1) as u32, next, 1e6 + k as f32));
            next += 1;
        }
        let nv = next as usize;
        let mst_skewed = SortedMst::from_edges(&ctx, nv, &edges);
        // Sanity: output still correct.
        assert_eq!(
            dendrogram_single_level(&ctx, &mst_skewed),
            dendrogram_union_find(&mst_skewed)
        );
        let steps_skewed = walk_steps(&ctx, &mst_skewed);

        let n = nv;
        let balanced: Vec<Edge> = (1..n)
            .map(|i| Edge::new((i / 2) as u32, i as u32, 1.0 / i as f32))
            .collect();
        let mst_balanced = SortedMst::from_edges(&ctx, n, &balanced);
        let steps_balanced = walk_steps(&ctx, &mst_balanced);

        // 50 heavy leaves × ~500-step walks ≫ any O(n) baseline.
        assert!(
            steps_skewed as f64 > 3.0 * steps_balanced.max(1) as f64,
            "skewed {steps_skewed} vs balanced {steps_balanced}"
        );
    }
}
