//! `pandorad` — the serving daemon over the two-tier Session API.
//!
//! [`crate::serve`] made the library concurrency-shaped (shared
//! [`DatasetIndex`], per-request [`Session`](crate::Session), fallible
//! [`ClusterRequest`]); this module is the process around it: a long-running
//! daemon speaking newline-delimited JSON-RPC over TCP (plus a one-shot
//! stdin/stdout mode for scripting), with the serving disciplines a shared
//! deployment needs — bounded queueing, load shedding, request coalescing
//! and latency accounting. The protocol itself lives in [`proto`]; the full
//! wire reference is `docs/SERVING.md`.
//!
//! ```text
//!            accept loop (nonblocking, 1 thread)
//!                 │ one reader thread per connection
//!                 ▼
//!   parse → dispatch ──────────────▶ stats/shutdown answered inline
//!                 │ load/cluster/sweep
//!                 ▼
//!        coalescer (in-flight map) ──▶ duplicate (dataset, request):
//!                 │ leader only          follower waits, 0 engine runs
//!                 ▼
//!        bounded queue (shed when full → "overloaded")
//!                 │
//!                 ▼
//!        worker lanes (default: one per `ExecCtx::threads()` lane)
//!        each run: registry lookup → Session::run → canonical payload
//! ```
//!
//! **Ownership and lifetimes.** The [`DatasetRegistry`] owns one
//! `Arc<DatasetIndex>` per loaded dataset; workers clone the `Arc` for the
//! duration of a request, so a `load` with `"replace": true` never
//! invalidates an in-flight computation — the old index is freed when its
//! last in-flight request finishes. Sessions are drawn per request and
//! their scratch returns to the index's internal pool, so steady-state
//! serving allocates nothing per request (the [`crate::serve`] contract).
//!
//! A daemon end to end, from this side of the socket:
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//! use std::sync::Arc;
//! use pandora_hdbscan::daemon::{Daemon, DaemonConfig};
//! use pandora_hdbscan::DatasetIndex;
//! use pandora_mst::PointSet;
//!
//! let daemon = Daemon::bind("127.0.0.1:0", DaemonConfig::new().workers(1))?;
//!
//! // Preload a dataset in-process (clients can also `load` over the wire).
//! let mut coords = Vec::new();
//! for i in 0..20 {
//!     coords.extend_from_slice(&[i as f32 * 0.01, 0.0]);
//!     coords.extend_from_slice(&[9.0 + i as f32 * 0.01, 0.0]);
//! }
//! let points = PointSet::try_new(coords, 2).expect("finite");
//! let index = Arc::new(DatasetIndex::freeze(points, 4).expect("ceiling"));
//! daemon.registry().register("toy", index, false).expect("fresh name");
//!
//! let mut conn = TcpStream::connect(daemon.local_addr())?;
//! writeln!(conn, r#"{{"id":1,"method":"cluster","params":{{"dataset":"toy","min_pts":2}}}}"#)?;
//! let mut reply = String::new();
//! BufReader::new(conn.try_clone()?).read_line(&mut reply)?;
//! assert!(reply.contains(r#""n_clusters":2"#), "{reply}");
//!
//! daemon.shutdown();
//! daemon.join();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod json;
pub mod proto;

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use pandora_exec::counters::RelaxedCounter;
use pandora_exec::ExecCtx;
use pandora_mst::PointSet;

use crate::serve::{ClusterRequest, DatasetIndex};
use json::Json;
use proto::{code, ClusterParams, LoadParams, Method, SweepParams, WireError, WireRequest};

/// Environment variable overriding the default bounded-queue capacity.
pub const QUEUE_DEPTH_ENV: &str = "PANDORA_QUEUE_DEPTH";

/// Default bounded-queue capacity when neither the builder nor
/// [`QUEUE_DEPTH_ENV`] picks one.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Latency samples retained per method (a ring: beyond this many, new
/// samples overwrite the oldest — percentiles stay O(recent traffic)).
const LATENCY_WINDOW: usize = 4096;

/// Daemon tuning knobs, with environment-driven defaults.
///
/// ```
/// use pandora_hdbscan::daemon::DaemonConfig;
///
/// let config = DaemonConfig::new().workers(2).queue_depth(8);
/// assert_eq!(config.workers, 2);
/// assert_eq!(config.queue_depth, 8);
/// // Defaults: one worker lane per `ExecCtx::threads()` lane
/// // (PANDORA_THREADS), queue depth from PANDORA_QUEUE_DEPTH or 64.
/// assert!(DaemonConfig::new().workers >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker lanes answering queued requests. Each lane serves one request
    /// at a time through its own [`Session`](crate::Session) with serial
    /// stage dispatch — request-level parallelism, the shape the serve
    /// canary gates. Defaults to the process pool's lane count
    /// (`PANDORA_THREADS` aware).
    pub workers: usize,
    /// Bounded queue capacity; a full queue sheds new work with a typed
    /// `"overloaded"` error instead of queueing unboundedly. Defaults to
    /// [`QUEUE_DEPTH_ENV`], then [`DEFAULT_QUEUE_DEPTH`].
    pub queue_depth: usize,
}

impl DaemonConfig {
    /// The environment-driven defaults (see the field docs).
    pub fn new() -> Self {
        let queue_depth = std::env::var(QUEUE_DEPTH_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&d| d >= 1)
            .unwrap_or(DEFAULT_QUEUE_DEPTH);
        Self {
            workers: ExecCtx::threads().lanes(),
            queue_depth,
        }
    }

    /// Pins the worker-lane count (clamped to ≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Pins the bounded-queue capacity (clamped to ≥ 1).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The named-dataset registry: one frozen [`DatasetIndex`] per name,
/// shared by `Arc` with every in-flight request.
///
/// Replacing an entry swaps the `Arc` — requests already running against
/// the old index finish on it unharmed; the old index is freed when the
/// last such request drops its clone.
///
/// ```
/// use std::sync::Arc;
/// use pandora_hdbscan::daemon::DatasetRegistry;
/// use pandora_hdbscan::DatasetIndex;
/// use pandora_mst::PointSet;
///
/// let registry = DatasetRegistry::new();
/// let points = PointSet::try_new(vec![0.0, 0.0, 1.0, 0.0, 5.0, 1.0], 2)?;
/// let index = Arc::new(DatasetIndex::freeze(points, 3)?);
///
/// registry.register("demo", Arc::clone(&index), false).expect("fresh name");
/// assert!(registry.get("demo").is_some());
/// assert_eq!(registry.names(), vec!["demo".to_string()]);
///
/// // Duplicate names are rejected unless replacement is explicit.
/// assert!(registry.register("demo", Arc::clone(&index), false).is_err());
/// assert!(registry.register("demo", index, true).is_ok());
/// # Ok::<(), pandora_mst::PandoraError>(())
/// ```
#[derive(Debug, Default)]
pub struct DatasetRegistry {
    entries: Mutex<BTreeMap<String, Arc<DatasetIndex>>>,
}

impl DatasetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `index` under `name`. Without `replace`, an existing entry
    /// is a typed `"dataset_exists"` error; with it, the entry is swapped
    /// (in-flight requests finish on the old index).
    pub fn register(
        &self,
        name: &str,
        index: Arc<DatasetIndex>,
        replace: bool,
    ) -> Result<(), WireError> {
        let mut entries = self.entries.lock();
        if !replace && entries.contains_key(name) {
            return Err(WireError::new(
                code::DATASET_EXISTS,
                format!("dataset already loaded: {name} (pass \"replace\": true to swap)"),
            ));
        }
        entries.insert(name.to_string(), index);
        Ok(())
    }

    /// The index under `name`, if loaded.
    pub fn get(&self, name: &str) -> Option<Arc<DatasetIndex>> {
        self.entries.lock().get(name).cloned()
    }

    /// Loaded dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.lock().keys().cloned().collect()
    }

    /// Number of loaded datasets.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether no dataset is loaded.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// The per-dataset rows of the `stats` payload.
    fn stats_json(&self) -> Json {
        let entries = self.entries.lock();
        Json::Arr(
            entries
                .iter()
                .map(|(name, index)| {
                    // Borůvka cache effectiveness: queries answered by a
                    // merge-surviving witness vs. full tree re-searches, and
                    // how many cold lanes warmed from the shared endgame
                    // snapshot (docs/SERVING.md, "stats").
                    let boruvka = index.emst().stats();
                    Json::obj(vec![
                        ("name", Json::Str(name.clone())),
                        ("n", Json::Int(index.len() as i64)),
                        ("dim", Json::Int(index.emst().points().dim() as i64)),
                        ("max_min_pts", Json::Int(index.max_min_pts() as i64)),
                        ("pooled_sessions", Json::Int(index.pooled_sessions() as i64)),
                        ("witness_hits", Json::Int(boruvka.witness_hits() as i64)),
                        ("researches", Json::Int(boruvka.researches() as i64)),
                        (
                            "snapshot_adopts",
                            Json::Int(boruvka.snapshot_adopts() as i64),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

/// A monotonic snapshot of the daemon's work counters (also served over the
/// wire inside `stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Responses written, of any kind (successes and typed errors).
    pub served: u64,
    /// Actual `Session::run` executions (each sweep member counts once).
    /// Coalesced followers do **not** bump this — the protocol test's
    /// proof that duplicates share one computation.
    pub engine_runs: u64,
    /// Requests answered from another request's in-flight computation.
    pub coalesced: u64,
    /// Requests shed by admission control (`"overloaded"`).
    pub shed: u64,
}

#[derive(Debug, Default)]
struct Counters {
    served: RelaxedCounter,
    engine_runs: RelaxedCounter,
    coalesced: RelaxedCounter,
    shed: RelaxedCounter,
    /// Requests currently executing on worker lanes.
    active: RelaxedCounter,
}

impl Counters {
    fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            served: self.served.get(),
            engine_runs: self.engine_runs.get(),
            coalesced: self.coalesced.get(),
            shed: self.shed.get(),
        }
    }
}

/// Ring of recent per-method latencies.
#[derive(Debug, Default)]
struct MethodLatency {
    samples: Vec<Duration>,
    total: u64,
}

impl MethodLatency {
    fn record(&mut self, d: Duration) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(d);
        } else {
            self.samples[(self.total % LATENCY_WINDOW as u64) as usize] = d;
        }
        self.total += 1;
    }

    fn stats_json(&self) -> Json {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let ms = |d: Duration| Json::Float(d.as_secs_f64() * 1e3);
        Json::obj(vec![
            ("count", Json::Int(self.total as i64)),
            ("p50_ms", ms(criterion::percentile(&sorted, 0.50))),
            ("p95_ms", ms(criterion::percentile(&sorted, 0.95))),
        ])
    }
}

/// Where a response line goes: one locked writer per connection (workers
/// answering different requests of one client interleave whole lines, never
/// bytes).
type Sink = Arc<Mutex<Box<dyn Write + Send>>>;

fn send_line(sink: &Sink, counters: &Counters, line: &str) {
    write_line(&mut *sink.lock(), counters, line);
}

fn write_line(out: &mut dyn Write, counters: &Counters, line: &str) {
    // A vanished client is not a daemon error; the write result is
    // deliberately dropped (the reader thread notices the hangup).
    let _ = out.write_all(line.as_bytes());
    let _ = out.write_all(b"\n");
    let _ = out.flush();
    counters.served.incr();
}

/// Coalescing key: requests with equal keys in flight at the same time
/// share one computation. `min_pts_list` is empty for `cluster` requests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct JobKey {
    dataset: String,
    request: ClusterRequest,
    min_pts_list: Vec<usize>,
}

struct Waiter {
    id: Json,
    sink: Sink,
}

enum Work {
    Load(LoadParams),
    Cluster(ClusterParams),
    Sweep(SweepParams),
}

struct Job {
    id: Json,
    sink: Sink,
    work: Work,
    /// Present on coalescable work (`cluster` / `sweep`).
    key: Option<JobKey>,
    enqueued: Instant,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
}

/// Everything the accept loop, connection readers and worker lanes share.
struct Shared {
    config: DaemonConfig,
    registry: DatasetRegistry,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    in_flight: Mutex<HashMap<JobKey, Vec<Waiter>>>,
    counters: Counters,
    latencies: Mutex<BTreeMap<&'static str, MethodLatency>>,
    stopping: AtomicBool,
    started: Instant,
    /// Freezes (`load`) run on the process pool; per-request sessions use
    /// serial stage dispatch (request-level parallelism across lanes).
    freeze_ctx: ExecCtx,
}

impl Shared {
    fn new(config: DaemonConfig, registry: DatasetRegistry) -> Arc<Self> {
        Arc::new(Self {
            config,
            registry,
            queue: Mutex::new(QueueState::default()),
            queue_cv: Condvar::new(),
            in_flight: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            latencies: Mutex::new(BTreeMap::new()),
            stopping: AtomicBool::new(false),
            started: Instant::now(),
            freeze_ctx: ExecCtx::threads(),
        })
    }

    fn is_stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    fn begin_stop(&self) {
        self.stopping.store(true, Ordering::Release);
        self.queue_cv.notify_all();
    }

    /// Admission control: space in the bounded queue or a typed rejection.
    fn enqueue(&self, job: Job) -> Result<(), WireError> {
        let mut state = self.queue.lock();
        if state.jobs.len() >= self.config.queue_depth {
            return Err(WireError::new(
                code::OVERLOADED,
                format!(
                    "request queue is full ({} pending); retry with backoff",
                    state.jobs.len()
                ),
            ));
        }
        state.jobs.push_back(job);
        drop(state);
        self.queue_cv.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once stopping and drained.
    fn dequeue(&self) -> Option<Job> {
        let mut state = self.queue.lock();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if self.is_stopping() {
                return None;
            }
            self.queue_cv.wait(&mut state);
        }
    }

    fn record_latency(&self, method: &'static str, since: Instant) {
        self.latencies
            .lock()
            .entry(method)
            .or_default()
            .record(since.elapsed());
    }

    /// One request line → zero or one queued job, with every immediate
    /// outcome (stats, shutdown, typed rejection, coalesced attach)
    /// answered before returning.
    fn dispatch(self: &Arc<Self>, line: &str, sink: &Sink) {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return;
        }
        let request = match proto::parse_request(trimmed) {
            Ok(r) => r,
            Err(e) => {
                send_line(sink, &self.counters, &proto::response_err(&e.id, &e.error));
                return;
            }
        };
        match request.method {
            Method::Stats => {
                let stats = self.stats_json();
                send_line(
                    sink,
                    &self.counters,
                    &proto::response_ok(&request.id, stats),
                );
            }
            Method::Shutdown => {
                send_line(
                    sink,
                    &self.counters,
                    &proto::response_ok(
                        &request.id,
                        Json::obj(vec![("stopping", Json::Bool(true))]),
                    ),
                );
                self.begin_stop();
            }
            Method::Load | Method::Cluster | Method::Sweep => {
                if let Err(e) = self.admit(request, sink) {
                    let RequestRejected { id, error } = e;
                    send_line(sink, &self.counters, &proto::response_err(&id, &error));
                }
            }
        }
    }

    /// Validates params, coalesces duplicates, and enqueues the leader.
    fn admit(self: &Arc<Self>, request: WireRequest, sink: &Sink) -> Result<(), RequestRejected> {
        let reject = |error: WireError| RequestRejected {
            id: request.id.clone(),
            error,
        };
        if self.is_stopping() {
            return Err(reject(WireError::new(
                code::SHUTTING_DOWN,
                "daemon is shutting down",
            )));
        }
        let (work, key) = match request.method {
            Method::Load => (
                Work::Load(proto::load_params(&request.params).map_err(reject)?),
                None,
            ),
            Method::Cluster => {
                let params = proto::cluster_params(&request.params).map_err(reject)?;
                let key = JobKey {
                    dataset: params.dataset.clone(),
                    request: params.request,
                    min_pts_list: Vec::new(),
                };
                (Work::Cluster(params), Some(key))
            }
            Method::Sweep => {
                let params = proto::sweep_params(&request.params).map_err(reject)?;
                let key = JobKey {
                    dataset: params.dataset.clone(),
                    request: params.base,
                    min_pts_list: params.min_pts.clone(),
                };
                (Work::Sweep(params), Some(key))
            }
            // Stats/Shutdown were answered inline by `dispatch`.
            Method::Stats | Method::Shutdown => return Ok(()),
        };
        if let Some(key) = &key {
            let mut in_flight = self.in_flight.lock();
            if let Some(waiters) = in_flight.get_mut(key) {
                // An identical computation is already queued or running:
                // attach to it instead of spending a queue slot.
                waiters.push(Waiter {
                    id: request.id,
                    sink: Arc::clone(sink),
                });
                return Ok(());
            }
            in_flight.insert(key.clone(), Vec::new());
        }
        let job = Job {
            id: request.id.clone(),
            sink: Arc::clone(sink),
            work,
            key: key.clone(),
            enqueued: Instant::now(),
        };
        if let Err(error) = self.enqueue(job) {
            if let Some(key) = &key {
                self.in_flight.lock().remove(key);
            }
            self.counters.shed.incr();
            return Err(RequestRejected {
                id: request.id,
                error,
            });
        }
        Ok(())
    }

    /// Executes one queued job and writes its response(s) — the leader's
    /// and every coalesced follower's.
    fn execute(&self, job: Job) {
        self.counters.active.incr();
        let (method, outcome) = match &job.work {
            Work::Load(params) => ("load", self.run_load(params)),
            Work::Cluster(params) => ("cluster", self.run_cluster(params)),
            Work::Sweep(params) => ("sweep", self.run_sweep(params)),
        };
        // Take the followers *after* computing: arrivals during the run
        // attached to this key and are answered from this one computation.
        let waiters = job
            .key
            .as_ref()
            .and_then(|key| self.in_flight.lock().remove(key))
            .unwrap_or_default();
        self.counters.coalesced.add(waiters.len() as u64);
        let respond = |id: &Json, sink: &Sink| {
            let line = match &outcome {
                Ok(result) => proto::response_ok(id, result.clone()),
                Err(error) => proto::response_err(id, error),
            };
            send_line(sink, &self.counters, &line);
        };
        respond(&job.id, &job.sink);
        for waiter in &waiters {
            respond(&waiter.id, &waiter.sink);
        }
        self.counters.active.sub(1);
        self.record_latency(method, job.enqueued);
    }

    fn run_load(&self, params: &LoadParams) -> Result<Json, WireError> {
        let t = Instant::now();
        let points = PointSet::try_new(params.points.clone(), params.dim)
            .map_err(|e| proto::pandora_error(&e))?;
        let (n, dim) = (points.len(), points.dim());
        let index =
            DatasetIndex::freeze_with_ctx(self.freeze_ctx.clone(), points, params.max_min_pts)
                .map_err(|e| proto::pandora_error(&e))?;
        self.registry
            .register(&params.name, Arc::new(index), params.replace)?;
        Ok(Json::obj(vec![
            ("name", Json::Str(params.name.clone())),
            ("n", Json::Int(n as i64)),
            ("dim", Json::Int(dim as i64)),
            ("max_min_pts", Json::Int(params.max_min_pts as i64)),
            ("freeze_ms", Json::Float(t.elapsed().as_secs_f64() * 1e3)),
        ]))
    }

    fn lookup(&self, dataset: &str) -> Result<Arc<DatasetIndex>, WireError> {
        self.registry.get(dataset).ok_or_else(|| {
            WireError::new(
                code::UNKNOWN_DATASET,
                format!("no dataset loaded under: {dataset}"),
            )
        })
    }

    fn run_cluster(&self, params: &ClusterParams) -> Result<Json, WireError> {
        let index = self.lookup(&params.dataset)?;
        let mut session = index.session_with_ctx(ExecCtx::serial());
        self.counters.engine_runs.incr();
        let result = session
            .run(&params.request)
            .map_err(|e| proto::pandora_error(&e))?;
        Ok(proto::cluster_result(&result))
    }

    fn run_sweep(&self, params: &SweepParams) -> Result<Json, WireError> {
        let index = self.lookup(&params.dataset)?;
        // One warm session for the whole sweep: the frozen substrate, the
        // pooled buffers and the endgame cache amortize across members —
        // the engine's sweep path, reached over the wire.
        let mut session = index.session_with_ctx(ExecCtx::serial());
        let mut results = Vec::with_capacity(params.min_pts.len());
        for &min_pts in &params.min_pts {
            self.counters.engine_runs.incr();
            let result = session
                .run(&params.base.min_pts(min_pts))
                .map_err(|e| proto::pandora_error(&e))?;
            results.push(result);
        }
        Ok(proto::sweep_result(&params.min_pts, &results))
    }

    /// The `stats` payload: liveness, registry, queue and latency state.
    fn stats_json(&self) -> Json {
        let snapshot = self.counters.snapshot();
        let (depth, capacity) = {
            let state = self.queue.lock();
            (state.jobs.len(), self.config.queue_depth)
        };
        let latency = {
            let latencies = self.latencies.lock();
            Json::Obj(
                latencies
                    .iter()
                    .filter(|(_, l)| !l.samples.is_empty())
                    .map(|(method, l)| ((*method).to_string(), l.stats_json()))
                    .collect(),
            )
        };
        Json::obj(vec![
            (
                "uptime_ms",
                Json::Float(self.started.elapsed().as_secs_f64() * 1e3),
            ),
            ("workers", Json::Int(self.config.workers as i64)),
            (
                "queue",
                Json::obj(vec![
                    ("depth", Json::Int(depth as i64)),
                    ("capacity", Json::Int(capacity as i64)),
                    ("active", Json::Int(self.counters.active.get() as i64)),
                ]),
            ),
            ("datasets", self.registry.stats_json()),
            (
                "counters",
                Json::obj(vec![
                    ("served", Json::Int(snapshot.served as i64)),
                    ("engine_runs", Json::Int(snapshot.engine_runs as i64)),
                    ("coalesced", Json::Int(snapshot.coalesced as i64)),
                    ("shed", Json::Int(snapshot.shed as i64)),
                ]),
            ),
            ("latency", latency),
        ])
    }
}

struct RequestRejected {
    id: Json,
    error: WireError,
}

/// A running `pandorad` instance: the TCP front-end over one shared
/// core. Created by [`Daemon::bind`]; stopped by a wire `shutdown` request
/// or [`Daemon::shutdown`], then reaped by [`Daemon::join`].
pub struct Daemon {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Daemon {
    /// Binds the daemon on `addr` (use port 0 for an ephemeral port) and
    /// spawns its accept loop and worker lanes. See the module docs for a
    /// full request/response example.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: DaemonConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let config = DaemonConfig {
            workers: config.workers.max(1),
            queue_depth: config.queue_depth.max(1),
        };
        let workers_n = config.workers;
        let shared = Shared::new(config, DatasetRegistry::new());
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let mut workers = Vec::with_capacity(workers_n);
        for lane in 0..workers_n {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("pandorad-worker-{lane}"))
                .spawn(move || {
                    while let Some(job) = shared.dequeue() {
                        shared.execute(job);
                    }
                })?;
            workers.push(handle);
        }

        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conns);
        let accept_conn_threads = Arc::clone(&conn_threads);
        let accept_thread = std::thread::Builder::new()
            .name("pandorad-accept".to_string())
            .spawn(move || {
                accept_loop(
                    &listener,
                    &accept_shared,
                    &accept_conns,
                    &accept_conn_threads,
                );
            })?;

        Ok(Self {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            workers,
            conns,
            conn_threads,
        })
    }

    /// The bound address (the ephemeral port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The dataset registry — preload indexes in-process before (or while)
    /// clients connect.
    pub fn registry(&self) -> &DatasetRegistry {
        &self.shared.registry
    }

    /// A snapshot of the work counters (also served over the wire in
    /// `stats`).
    pub fn counters(&self) -> CounterSnapshot {
        self.shared.counters.snapshot()
    }

    /// Signals the daemon to stop: queued work drains, new work is
    /// rejected, the accept loop exits. Non-blocking; pair with
    /// [`Daemon::join`].
    pub fn shutdown(&self) {
        self.shared.begin_stop();
    }

    /// Waits for a full stop (a wire `shutdown` or [`Daemon::shutdown`]):
    /// drains queued work, then unblocks and reaps every thread.
    pub fn join(mut self) {
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        // Workers exit once the queue drains after the stop signal.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Unblock connection readers parked in read() and reap them.
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = self.conn_threads.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.is_stopping() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let reader = match stream.try_clone() {
                    Ok(r) => r,
                    Err(_) => continue,
                };
                conns.lock().push(match stream.try_clone() {
                    Ok(c) => c,
                    Err(_) => continue,
                });
                let sink: Sink = Arc::new(Mutex::new(Box::new(stream)));
                let shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("pandorad-conn".to_string())
                    .spawn(move || serve_connection(reader, &shared, &sink));
                if let Ok(handle) = spawned {
                    conn_threads.lock().push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn serve_connection(reader: TcpStream, shared: &Arc<Shared>, sink: &Sink) {
    let mut lines = BufReader::new(reader);
    let mut line = String::new();
    loop {
        line.clear();
        match lines.read_line(&mut line) {
            Ok(0) | Err(_) => return, // EOF or hangup (incl. shutdown)
            Ok(_) => shared.dispatch(&line, sink),
        }
    }
}

/// One-shot scripting mode: serve newline-delimited requests from `input`
/// to `output` on the calling thread until EOF or a `shutdown` request.
///
/// Same protocol, same registry semantics, no sockets or threads — requests
/// execute strictly in order (so coalescing and shedding never trigger:
/// nothing is ever concurrently in flight). `pandorad --stdio` wires this
/// to stdin/stdout:
///
/// ```
/// use pandora_hdbscan::daemon::{serve_once, DaemonConfig, DatasetRegistry};
///
/// let input = concat!(
///     r#"{"id":1,"method":"load","params":{"name":"d","dim":1,"points":[0,0.1,9,9.1]}}"#,
///     "\n",
///     r#"{"id":2,"method":"cluster","params":{"dataset":"d","min_pts":2,"min_cluster_size":2}}"#,
///     "\n",
/// );
/// let mut output = Vec::new();
/// serve_once(DaemonConfig::new(), DatasetRegistry::new(), input.as_bytes(), &mut output);
/// let text = String::from_utf8(output).expect("utf-8");
/// let mut lines = text.lines();
/// assert!(lines.next().expect("load reply").contains(r#""n":4"#));
/// assert!(lines.next().expect("cluster reply").contains(r#""n_clusters":2"#));
/// ```
pub fn serve_once<R: Read, W: Write>(
    config: DaemonConfig,
    registry: DatasetRegistry,
    input: R,
    mut output: W,
) {
    let shared = Shared::new(config, registry);
    let mut lines = BufReader::new(input);
    let mut line = String::new();
    loop {
        line.clear();
        match lines.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                match proto::parse_request(trimmed) {
                    Err(e) => write_line(
                        &mut output,
                        &shared.counters,
                        &proto::response_err(&e.id, &e.error),
                    ),
                    Ok(request) => {
                        let stop = request.method == Method::Shutdown;
                        serve_inline(&shared, request, &mut output);
                        if stop {
                            return;
                        }
                    }
                }
            }
        }
    }
}

/// Executes one parsed request synchronously (the `serve_once` path).
fn serve_inline(shared: &Arc<Shared>, request: WireRequest, output: &mut dyn Write) {
    let started = Instant::now();
    let reply = |outcome: Result<Json, WireError>| match outcome {
        Ok(result) => proto::response_ok(&request.id, result),
        Err(error) => proto::response_err(&request.id, &error),
    };
    let (method, line) = match request.method {
        Method::Stats => ("stats", reply(Ok(shared.stats_json()))),
        Method::Shutdown => (
            "shutdown",
            reply(Ok(Json::obj(vec![("stopping", Json::Bool(true))]))),
        ),
        Method::Load => (
            "load",
            reply(proto::load_params(&request.params).and_then(|p| shared.run_load(&p))),
        ),
        Method::Cluster => (
            "cluster",
            reply(proto::cluster_params(&request.params).and_then(|p| shared.run_cluster(&p))),
        ),
        Method::Sweep => (
            "sweep",
            reply(proto::sweep_params(&request.params).and_then(|p| shared.run_sweep(&p))),
        ),
    };
    write_line(output, &shared.counters, &line);
    shared.record_latency(method, started);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_data::synthetic::gaussian_blobs;

    fn tiny_index() -> Arc<DatasetIndex> {
        let (points, _) = gaussian_blobs(60, 2, 2, 40.0, 0.6, 11);
        Arc::new(DatasetIndex::freeze_with_ctx(ExecCtx::serial(), points, 8).expect("freeze"))
    }

    #[test]
    fn config_defaults_and_builders() {
        let config = DaemonConfig::new();
        assert!(config.workers >= 1);
        assert!(config.queue_depth >= 1);
        assert_eq!(DaemonConfig::new().workers(0).workers, 1, "clamped");
        assert_eq!(DaemonConfig::new().queue_depth(0).queue_depth, 1, "clamped");
    }

    #[test]
    fn registry_rejects_duplicates_without_replace() {
        let registry = DatasetRegistry::new();
        assert!(registry.is_empty());
        registry.register("a", tiny_index(), false).expect("fresh");
        let dup = registry
            .register("a", tiny_index(), false)
            .expect_err("dup");
        assert_eq!(dup.code, code::DATASET_EXISTS);
        registry.register("a", tiny_index(), true).expect("replace");
        assert_eq!(registry.len(), 1);
        assert!(registry.get("a").is_some());
        assert!(registry.get("b").is_none());
    }

    #[test]
    fn replace_keeps_inflight_requests_on_the_old_index() {
        let registry = DatasetRegistry::new();
        let old = tiny_index();
        registry
            .register("a", Arc::clone(&old), false)
            .expect("fresh");
        let held = registry.get("a").expect("loaded"); // an in-flight clone
        registry.register("a", tiny_index(), true).expect("replace");
        // The held Arc still points at the old index and still serves.
        assert!(Arc::ptr_eq(&held, &old));
        let mut session = held.session();
        assert!(session.run(&ClusterRequest::new().min_pts(2)).is_ok());
    }

    #[test]
    fn queue_sheds_beyond_capacity() {
        let shared = Shared::new(
            DaemonConfig::new().workers(1).queue_depth(2),
            DatasetRegistry::new(),
        );
        let sink: Sink = Arc::new(Mutex::new(Box::new(Vec::new())));
        let job = |i: i64| Job {
            id: Json::Int(i),
            sink: Arc::clone(&sink),
            work: Work::Cluster(ClusterParams {
                dataset: format!("d{i}"),
                request: ClusterRequest::new(),
            }),
            key: None,
            enqueued: Instant::now(),
        };
        shared.enqueue(job(1)).expect("slot 1");
        shared.enqueue(job(2)).expect("slot 2");
        let shed = shared.enqueue(job(3)).expect_err("full");
        assert_eq!(shed.code, code::OVERLOADED);
    }

    #[test]
    fn latency_ring_is_bounded() {
        let mut lat = MethodLatency::default();
        for i in 0..(LATENCY_WINDOW + 100) {
            lat.record(Duration::from_micros(i as u64));
        }
        assert_eq!(lat.samples.len(), LATENCY_WINDOW);
        assert_eq!(lat.total, (LATENCY_WINDOW + 100) as u64);
        let stats = lat.stats_json();
        assert_eq!(
            stats.get("count").and_then(Json::as_usize),
            Some(LATENCY_WINDOW + 100)
        );
        assert!(stats.get("p50_ms").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn serve_once_runs_the_full_protocol_inline() {
        let input = concat!(
            r#"{"id":"a","method":"load","params":{"name":"d","dim":2,"points":[0,0,0.1,0,9,9,9.1,9]}}"#,
            "\n",
            "not json\n",
            r#"{"id":"b","method":"cluster","params":{"dataset":"d","min_pts":2,"min_cluster_size":2}}"#,
            "\n",
            r#"{"id":"c","method":"cluster","params":{"dataset":"missing"}}"#,
            "\n",
            r#"{"id":"d","method":"sweep","params":{"dataset":"d","min_pts":[2,3],"min_cluster_size":2}}"#,
            "\n",
            r#"{"id":"e","method":"stats"}"#,
            "\n",
            r#"{"id":"f","method":"shutdown"}"#,
            "\n",
            r#"{"id":"never","method":"stats"}"#,
            "\n",
        );
        let mut out = Vec::new();
        serve_once(
            DaemonConfig::new().workers(1),
            DatasetRegistry::new(),
            input.as_bytes(),
            &mut out,
        );
        let text = String::from_utf8(out).expect("utf-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7, "shutdown stops the loop: {text}");
        assert!(lines[0].contains(r#""id":"a""#) && lines[0].contains(r#""n":4"#));
        assert!(lines[1].contains(r#""code":"parse_error""#));
        assert!(lines[2].contains(r#""n_clusters":2"#));
        assert!(lines[3].contains(r#""code":"unknown_dataset""#));
        assert!(lines[4].contains(r#""results":"#));
        assert!(lines[5].contains(r#""uptime_ms""#));
        assert!(lines[6].contains(r#""stopping":true"#));
    }
}
