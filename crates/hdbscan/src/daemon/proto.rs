//! The `pandorad` wire protocol: newline-delimited JSON-RPC requests and
//! responses, typed error codes, and the canonical result encoders.
//!
//! One request per line, one response per line (see `docs/SERVING.md` for
//! the full reference):
//!
//! ```text
//! → {"id": 1, "method": "cluster", "params": {"dataset": "d", "min_pts": 4}}
//! ← {"id":1,"result":{"n_clusters":2,"n_noise":0,"labels":[...],"probabilities":[...]}}
//! ← {"id":1,"error":{"code":"bad_params","message":"invalid min_pts = 0: ..."}}
//! ```
//!
//! Everything in this module is a pure function from bytes to values — the
//! daemon, the protocol tests and the RPS bench all call the same encoders,
//! which is what makes "the daemon's payload is bit-identical to an
//! in-process [`Session::run`](crate::Session::run)" a checkable statement:
//! both sides serialize through [`cluster_result`] and compare strings.
//!
//! ```
//! use pandora_hdbscan::daemon::proto::{self, Method};
//!
//! let line = r#"{"id": 7, "method": "stats"}"#;
//! let request = proto::parse_request(line).expect("well-formed");
//! assert_eq!(request.method, Method::Stats);
//!
//! // Malformed lines come back as typed, positioned errors — never panics.
//! let err = proto::parse_request("{nope").expect_err("malformed");
//! assert_eq!(err.error.code, proto::code::PARSE_ERROR);
//! ```

use pandora_core::DendrogramBackend;
use pandora_mst::{Linkage, MetricKind, PandoraError};

use super::json::Json;
use crate::pipeline::HdbscanResult;
use crate::serve::ClusterRequest;

/// The wire error codes `pandorad` can return, one constant per code so
/// clients and tests match on names, not string literals.
pub mod code {
    /// The request line is not valid JSON.
    pub const PARSE_ERROR: &str = "parse_error";
    /// The line is valid JSON but not a valid request envelope, or a
    /// params field has the wrong type/shape.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The `method` field names no protocol method.
    pub const UNKNOWN_METHOD: &str = "unknown_method";
    /// The named dataset is not in the registry.
    pub const UNKNOWN_DATASET: &str = "unknown_dataset";
    /// `load` without `"replace": true` over an existing name.
    pub const DATASET_EXISTS: &str = "dataset_exists";
    /// Admission control shed this request: the bounded queue is full.
    pub const OVERLOADED: &str = "overloaded";
    /// The daemon is stopping and no longer accepts work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// A parameter failed range validation ([`PandoraError::BadParams`](pandora_mst::PandoraError::BadParams)).
    pub const BAD_PARAMS: &str = "bad_params";
    /// A coordinate was NaN or infinite ([`PandoraError::NonFinite`](pandora_mst::PandoraError::NonFinite)).
    pub const NON_FINITE: &str = "non_finite";
    /// The point buffer does not tile into `dim`-vectors
    /// ([`PandoraError::BadShape`](pandora_mst::PandoraError::BadShape)).
    pub const BAD_SHAPE: &str = "bad_shape";
    /// The dataset holds no points ([`PandoraError::EmptyDataset`](pandora_mst::PandoraError::EmptyDataset)).
    pub const EMPTY_DATASET: &str = "empty_dataset";
    /// A library error this protocol revision has no dedicated code for
    /// (future [`PandoraError`](pandora_mst::PandoraError) variants — the enum is `#[non_exhaustive]`).
    pub const INTERNAL: &str = "internal";
}

/// The five protocol methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Freeze a named dataset into the registry.
    Load,
    /// Answer one clustering request.
    Cluster,
    /// Answer a batched multi-`minPts` sweep.
    Sweep,
    /// Report liveness, registry, queue and latency statistics.
    Stats,
    /// Stop the daemon (drains queued work first).
    Shutdown,
}

impl Method {
    /// The canonical wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            Method::Load => "load",
            Method::Cluster => "cluster",
            Method::Sweep => "sweep",
            Method::Stats => "stats",
            Method::Shutdown => "shutdown",
        }
    }

    /// Parses a wire method name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "load" => Some(Method::Load),
            "cluster" => Some(Method::Cluster),
            "sweep" => Some(Method::Sweep),
            "stats" => Some(Method::Stats),
            "shutdown" => Some(Method::Shutdown),
            _ => None,
        }
    }
}

/// A typed wire error: the `error` object of a response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// One of the [`code`] constants.
    pub code: &'static str,
    /// Human-readable description (mirrors [`PandoraError`]'s `Display`
    /// for library rejections).
    pub message: String,
    /// Optional structured detail (e.g. the offending parameter).
    pub data: Option<Json>,
}

impl WireError {
    /// A wire error with no structured detail.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
            data: None,
        }
    }

    /// The `error` member as a JSON value.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("code", Json::Str(self.code.to_string())),
            ("message", Json::Str(self.message.clone())),
        ];
        if let Some(data) = &self.data {
            pairs.push(("data", data.clone()));
        }
        Json::obj(pairs)
    }
}

/// Maps a library rejection to its wire error, structured fields included.
pub fn pandora_error(e: &PandoraError) -> WireError {
    let message = e.to_string();
    match e {
        PandoraError::BadParams { param, value, .. } => WireError {
            code: code::BAD_PARAMS,
            message,
            data: Some(Json::obj(vec![
                ("param", Json::Str((*param).to_string())),
                ("value", Json::Int(*value as i64)),
            ])),
        },
        PandoraError::NonFinite { point, dim } => WireError {
            code: code::NON_FINITE,
            message,
            data: Some(Json::obj(vec![
                ("point", Json::Int(*point as i64)),
                ("dim", Json::Int(*dim as i64)),
            ])),
        },
        PandoraError::BadShape { len, dim } => WireError {
            code: code::BAD_SHAPE,
            message,
            data: Some(Json::obj(vec![
                ("len", Json::Int(*len as i64)),
                ("dim", Json::Int(*dim as i64)),
            ])),
        },
        PandoraError::EmptyDataset => WireError::new(code::EMPTY_DATASET, message),
        // `PandoraError` is #[non_exhaustive]: future variants degrade to
        // a generic code instead of breaking the daemon build.
        _ => WireError::new(code::INTERNAL, message),
    }
}

/// A parsed request envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// The client-chosen correlation id, echoed verbatim in the response
    /// (`null` when omitted).
    pub id: Json,
    /// The protocol method.
    pub method: Method,
    /// The `params` object (`null` when omitted; methods that need none
    /// ignore it).
    pub params: Json,
}

/// A request rejected before dispatch: the best-effort id to echo plus the
/// typed error to return.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// The `id` of the offending request when one could be extracted
    /// (`null` for unparseable lines).
    pub id: Json,
    /// The typed rejection.
    pub error: WireError,
}

/// Parses one request line into its envelope.
///
/// Failures carry the request id whenever the line parsed far enough to
/// have one, so even a rejection is correlatable client-side.
pub fn parse_request(line: &str) -> Result<WireRequest, RequestError> {
    let value = Json::parse(line).map_err(|e| RequestError {
        id: Json::Null,
        error: WireError::new(code::PARSE_ERROR, e.to_string()),
    })?;
    let id = value.get("id").cloned().unwrap_or(Json::Null);
    if !matches!(value, Json::Obj(_)) {
        return Err(RequestError {
            id,
            error: WireError::new(code::BAD_REQUEST, "request must be a JSON object"),
        });
    }
    let Some(method_field) = value.get("method") else {
        return Err(RequestError {
            id,
            error: WireError::new(code::BAD_REQUEST, "missing \"method\""),
        });
    };
    let Some(name) = method_field.as_str() else {
        return Err(RequestError {
            id,
            error: WireError::new(code::BAD_REQUEST, "\"method\" must be a string"),
        });
    };
    let Some(method) = Method::parse(name) else {
        return Err(RequestError {
            id,
            error: WireError::new(code::UNKNOWN_METHOD, format!("unknown method: {name}")),
        });
    };
    let params = value.get("params").cloned().unwrap_or(Json::Null);
    if !matches!(params, Json::Obj(_) | Json::Null) {
        return Err(RequestError {
            id,
            error: WireError::new(code::BAD_REQUEST, "\"params\" must be an object"),
        });
    }
    Ok(WireRequest { id, method, params })
}

/// Validated `load` parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadParams {
    /// Registry name to freeze under.
    pub name: String,
    /// Flat row-major coordinates (`n × dim` numbers).
    pub points: Vec<f32>,
    /// Dimensionality.
    pub dim: usize,
    /// Freeze ceiling: the largest `min_pts` requests may carry
    /// (default 16).
    pub max_min_pts: usize,
    /// Whether an existing entry under `name` may be replaced.
    pub replace: bool,
}

/// Default `load` freeze ceiling when the request does not pick one.
pub const DEFAULT_MAX_MIN_PTS: usize = 16;

fn required<'a>(params: &'a Json, key: &'static str) -> Result<&'a Json, WireError> {
    params
        .get(key)
        .ok_or_else(|| WireError::new(code::BAD_REQUEST, format!("missing \"{key}\"")))
}

fn usize_field(params: &Json, key: &'static str, default: usize) -> Result<usize, WireError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_usize().ok_or_else(|| {
            WireError::new(
                code::BAD_REQUEST,
                format!("\"{key}\" must be a non-negative integer"),
            )
        }),
    }
}

fn bool_field(params: &Json, key: &'static str, default: bool) -> Result<bool, WireError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| {
            WireError::new(code::BAD_REQUEST, format!("\"{key}\" must be a boolean"))
        }),
    }
}

fn str_field<'a>(params: &'a Json, key: &'static str) -> Result<&'a str, WireError> {
    required(params, key)?
        .as_str()
        .ok_or_else(|| WireError::new(code::BAD_REQUEST, format!("\"{key}\" must be a string")))
}

/// Extracts and validates `load` parameters.
pub fn load_params(params: &Json) -> Result<LoadParams, WireError> {
    let name = str_field(params, "name")?.to_string();
    if name.is_empty() {
        return Err(WireError::new(
            code::BAD_REQUEST,
            "\"name\" must not be empty",
        ));
    }
    let dim = usize_field(params, "dim", 0)?;
    if params.get("dim").is_none() {
        return Err(WireError::new(code::BAD_REQUEST, "missing \"dim\""));
    }
    let raw = required(params, "points")?.as_slice().ok_or_else(|| {
        WireError::new(code::BAD_REQUEST, "\"points\" must be an array of numbers")
    })?;
    let mut points = Vec::with_capacity(raw.len());
    for v in raw {
        let Some(f) = v.as_f32() else {
            return Err(WireError::new(
                code::BAD_REQUEST,
                "\"points\" must be an array of numbers",
            ));
        };
        points.push(f);
    }
    // The default ceiling clamps to the dataset size (the minPts-th
    // neighbour must exist); an explicit value passes through so the
    // freeze-time BadParams error surfaces instead of being masked.
    let explicit = params.get("max_min_pts").is_some_and(|v| *v != Json::Null);
    let mut max_min_pts = usize_field(params, "max_min_pts", DEFAULT_MAX_MIN_PTS)?;
    if !explicit && dim > 0 {
        max_min_pts = max_min_pts.min((points.len() / dim).max(1));
    }
    Ok(LoadParams {
        name,
        points,
        dim,
        max_min_pts,
        replace: bool_field(params, "replace", false)?,
    })
}

/// Extracts the shared `ClusterRequest` fields of `cluster` and `sweep`
/// params (`min_pts` itself is method-specific and handled by the callers).
fn base_request(params: &Json) -> Result<ClusterRequest, WireError> {
    let defaults = ClusterRequest::new();
    let mut request = ClusterRequest::new()
        .min_cluster_size(usize_field(
            params,
            "min_cluster_size",
            defaults.min_cluster_size,
        )?)
        .allow_single_cluster(bool_field(
            params,
            "allow_single_cluster",
            defaults.allow_single_cluster,
        )?);
    if let Some(v) = params.get("linkage").filter(|v| **v != Json::Null) {
        let name = v
            .as_str()
            .ok_or_else(|| WireError::new(code::BAD_REQUEST, "\"linkage\" must be a string"))?;
        let linkage = Linkage::parse(name)
            .ok_or_else(|| WireError::new(code::BAD_PARAMS, format!("unknown linkage: {name}")))?;
        request = request.linkage(linkage);
    }
    if let Some(v) = params.get("metric").filter(|v| **v != Json::Null) {
        let name = v
            .as_str()
            .ok_or_else(|| WireError::new(code::BAD_REQUEST, "\"metric\" must be a string"))?;
        let metric = MetricKind::parse(name)
            .ok_or_else(|| WireError::new(code::BAD_PARAMS, format!("unknown metric: {name}")))?;
        request = request.metric(metric);
    }
    if let Some(v) = params.get("dendrogram").filter(|v| **v != Json::Null) {
        let name = v
            .as_str()
            .ok_or_else(|| WireError::new(code::BAD_REQUEST, "\"dendrogram\" must be a string"))?;
        let backend = DendrogramBackend::parse(name).ok_or_else(|| {
            WireError::new(
                code::BAD_PARAMS,
                format!("unknown dendrogram backend: {name}"),
            )
        })?;
        request = request.dendrogram(backend);
    }
    Ok(request)
}

/// Validated `cluster` parameters: the target dataset plus the full
/// [`ClusterRequest`] surface.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterParams {
    /// Registry name of the dataset to cluster.
    pub dataset: String,
    /// The request to run (range-validated later, against the index).
    pub request: ClusterRequest,
}

/// Extracts and validates `cluster` parameters.
pub fn cluster_params(params: &Json) -> Result<ClusterParams, WireError> {
    let dataset = str_field(params, "dataset")?.to_string();
    let defaults = ClusterRequest::new();
    let request = base_request(params)?.min_pts(usize_field(params, "min_pts", defaults.min_pts)?);
    Ok(ClusterParams { dataset, request })
}

/// Validated `sweep` parameters: one base request fanned over a `min_pts`
/// list through a single warm session (the engine's amortized sweep path).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepParams {
    /// Registry name of the dataset to sweep.
    pub dataset: String,
    /// The request shared by every sweep member (its own `min_pts` is
    /// overwritten per member).
    pub base: ClusterRequest,
    /// The `min_pts` values to sweep, in request order.
    pub min_pts: Vec<usize>,
}

/// Extracts and validates `sweep` parameters.
pub fn sweep_params(params: &Json) -> Result<SweepParams, WireError> {
    let dataset = str_field(params, "dataset")?.to_string();
    let base = base_request(params)?;
    let raw = required(params, "min_pts")?.as_slice().ok_or_else(|| {
        WireError::new(
            code::BAD_REQUEST,
            "\"min_pts\" must be an array of integers",
        )
    })?;
    if raw.is_empty() {
        return Err(WireError::new(
            code::BAD_REQUEST,
            "\"min_pts\" must not be empty",
        ));
    }
    let mut min_pts = Vec::with_capacity(raw.len());
    for v in raw {
        let Some(m) = v.as_usize() else {
            return Err(WireError::new(
                code::BAD_REQUEST,
                "\"min_pts\" must be an array of non-negative integers",
            ));
        };
        min_pts.push(m);
    }
    Ok(SweepParams {
        dataset,
        base,
        min_pts,
    })
}

/// The canonical `cluster` result payload.
///
/// Deliberately a pure function of `(dataset, request)` — no timings, no
/// host-dependent fields — so duplicate requests (coalesced or not, served
/// by the daemon or run in-process) produce byte-identical payloads. The
/// protocol tests rely on this to assert bit-identity through the socket.
pub fn cluster_result(result: &HdbscanResult) -> Json {
    Json::obj(vec![
        ("n_clusters", Json::Int(result.n_clusters() as i64)),
        ("n_noise", Json::Int(result.n_noise() as i64)),
        (
            "labels",
            Json::Arr(
                result
                    .labels
                    .iter()
                    .map(|&l| Json::Int(i64::from(l)))
                    .collect(),
            ),
        ),
        (
            "probabilities",
            Json::Arr(result.probabilities.iter().map(|&p| Json::F32(p)).collect()),
        ),
    ])
}

/// The canonical `sweep` result payload: one [`cluster_result`] per swept
/// `min_pts`, in request order.
pub fn sweep_result(min_pts: &[usize], results: &[HdbscanResult]) -> Json {
    let members = min_pts
        .iter()
        .zip(results)
        .map(|(&m, r)| {
            let mut pairs = vec![("min_pts".to_string(), Json::Int(m as i64))];
            if let Json::Obj(inner) = cluster_result(r) {
                pairs.extend(inner);
            }
            Json::Obj(pairs)
        })
        .collect();
    Json::obj(vec![("results", Json::Arr(members))])
}

/// Serializes a success response line (no trailing newline).
pub fn response_ok(id: &Json, result: Json) -> String {
    Json::obj(vec![("id", id.clone()), ("result", result)]).to_string()
}

/// Serializes an error response line (no trailing newline).
pub fn response_err(id: &Json, error: &WireError) -> String {
    Json::obj(vec![("id", id.clone()), ("error", error.to_json())]).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_cluster_request() {
        let line = r#"{"id": 3, "method": "cluster", "params": {
            "dataset": "d", "min_pts": 4, "min_cluster_size": 7,
            "allow_single_cluster": true, "linkage": "ward",
            "metric": "euclidean", "dendrogram": "work-optimal"}}"#;
        let req = parse_request(line).expect("well-formed");
        assert_eq!(req.id, Json::Int(3));
        assert_eq!(req.method, Method::Cluster);
        let params = cluster_params(&req.params).expect("valid");
        assert_eq!(params.dataset, "d");
        assert_eq!(params.request.min_pts, 4);
        assert_eq!(params.request.min_cluster_size, 7);
        assert!(params.request.allow_single_cluster);
        assert_eq!(params.request.linkage, Some(Linkage::Ward));
        assert_eq!(params.request.metric, Some(MetricKind::Euclidean));
        assert_eq!(
            params.request.dendrogram,
            Some(DendrogramBackend::WorkOptimal)
        );
    }

    #[test]
    fn defaults_match_the_in_process_request_defaults() {
        let req =
            parse_request(r#"{"method":"cluster","params":{"dataset":"d"}}"#).expect("well-formed");
        let params = cluster_params(&req.params).expect("valid");
        assert_eq!(params.request, ClusterRequest::new());
        assert_eq!(req.id, Json::Null, "omitted id echoes as null");
    }

    #[test]
    fn envelope_errors_are_typed() {
        assert_eq!(
            parse_request("{").expect_err("malformed").error.code,
            code::PARSE_ERROR
        );
        assert_eq!(
            parse_request("[1,2]")
                .expect_err("not an object")
                .error
                .code,
            code::BAD_REQUEST
        );
        assert_eq!(
            parse_request(r#"{"id":9}"#)
                .expect_err("no method")
                .error
                .code,
            code::BAD_REQUEST
        );
        let err = parse_request(r#"{"id":9,"method":"frobnicate"}"#).expect_err("unknown");
        assert_eq!(err.error.code, code::UNKNOWN_METHOD);
        assert_eq!(err.id, Json::Int(9), "id still echoed on rejection");
        assert_eq!(
            parse_request(r#"{"method":"stats","params":7}"#)
                .expect_err("params type")
                .error
                .code,
            code::BAD_REQUEST
        );
    }

    #[test]
    fn param_errors_distinguish_shape_from_value() {
        // Wrong type → bad_request.
        let shape =
            cluster_params(&Json::parse(r#"{"dataset":"d","min_pts":"four"}"#).expect("json"))
                .expect_err("type error");
        assert_eq!(shape.code, code::BAD_REQUEST);
        // Well-typed but unknown value → bad_params.
        let value =
            cluster_params(&Json::parse(r#"{"dataset":"d","linkage":"median"}"#).expect("json"))
                .expect_err("value error");
        assert_eq!(value.code, code::BAD_PARAMS);
    }

    #[test]
    fn load_and_sweep_params_validate_structure() {
        let load = load_params(
            &Json::parse(r#"{"name":"n","dim":2,"points":[0,0,1.5,2]}"#).expect("json"),
        )
        .expect("valid");
        assert_eq!(load.points, vec![0.0, 0.0, 1.5, 2.0]);
        // The default ceiling clamps to the dataset size (2 points here);
        // an explicit value passes through unclamped.
        assert_eq!(load.max_min_pts, 2);
        let explicit = load_params(
            &Json::parse(r#"{"name":"n","dim":2,"points":[0,0,1.5,2],"max_min_pts":9}"#)
                .expect("json"),
        )
        .expect("valid");
        assert_eq!(explicit.max_min_pts, 9);
        assert!(!load.replace);
        assert!(load_params(&Json::parse(r#"{"name":"n","dim":2}"#).expect("json")).is_err());
        assert!(
            load_params(&Json::parse(r#"{"name":"n","dim":2,"points":["x"]}"#).expect("json"))
                .is_err()
        );

        let sweep =
            sweep_params(&Json::parse(r#"{"dataset":"d","min_pts":[2,4,8]}"#).expect("json"))
                .expect("valid");
        assert_eq!(sweep.min_pts, vec![2, 4, 8]);
        assert!(
            sweep_params(&Json::parse(r#"{"dataset":"d","min_pts":[]}"#).expect("json")).is_err()
        );
    }

    #[test]
    fn pandora_errors_map_to_structured_wire_codes() {
        let e = pandora_error(&PandoraError::BadParams {
            param: "min_pts",
            value: 0,
            reason: "must be at least 1",
        });
        assert_eq!(e.code, code::BAD_PARAMS);
        assert!(e.message.contains("min_pts"));
        assert_eq!(
            e.data
                .as_ref()
                .and_then(|d| d.get("param"))
                .and_then(Json::as_str),
            Some("min_pts")
        );
        assert_eq!(
            pandora_error(&PandoraError::EmptyDataset).code,
            code::EMPTY_DATASET
        );
        assert_eq!(
            pandora_error(&PandoraError::NonFinite { point: 1, dim: 0 }).code,
            code::NON_FINITE
        );
        assert_eq!(
            pandora_error(&PandoraError::BadShape { len: 3, dim: 2 }).code,
            code::BAD_SHAPE
        );
    }

    #[test]
    fn responses_echo_ids_verbatim() {
        let ok = response_ok(
            &Json::Str("req-1".into()),
            Json::obj(vec![("x", Json::Int(1))]),
        );
        assert_eq!(ok, r#"{"id":"req-1","result":{"x":1}}"#);
        let err = response_err(
            &Json::Int(2),
            &WireError::new(code::OVERLOADED, "queue full"),
        );
        assert_eq!(
            err,
            r#"{"id":2,"error":{"code":"overloaded","message":"queue full"}}"#
        );
    }
}
