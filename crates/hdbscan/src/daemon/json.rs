//! A minimal JSON value model for the daemon's wire protocol.
//!
//! The offline build has no `serde`, and the protocol needs only a small,
//! predictable subset of JSON: parse one request object per line, write one
//! response object per line. This module provides exactly that — a
//! [`Json`] tree, a fallible recursive-descent parser, and a writer whose
//! float formatting is **round-trip exact** (Rust's shortest-representation
//! `Display`), so a served `f32` probability parses back to the identical
//! bits.
//!
//! Nothing in here panics on untrusted input: parse errors are positioned
//! [`JsonError`] values and nesting is depth-limited, so a hostile request
//! line can neither crash a worker nor overflow its stack.
//!
//! ```
//! use pandora_hdbscan::daemon::json::Json;
//!
//! let v = Json::parse(r#"{"method": "cluster", "params": {"min_pts": 4}}"#)?;
//! assert_eq!(v.get("method").and_then(Json::as_str), Some("cluster"));
//! let min_pts = v.get("params").and_then(|p| p.get("min_pts"));
//! assert_eq!(min_pts.and_then(Json::as_usize), Some(4));
//!
//! // Writing is canonical: stable field order, shortest float spelling.
//! assert_eq!(Json::F32(0.25).to_string(), "0.25");
//! assert!(Json::parse("[1, 2,").is_err()); // errors, never panics
//! # Ok::<(), pandora_hdbscan::daemon::json::JsonError>(())
//! ```

use std::fmt::{self, Write as _};

/// Maximum nesting depth the parser accepts. Deeper input is rejected with
/// an error instead of recursing toward a stack overflow.
const MAX_DEPTH: usize = 64;

/// One JSON value.
///
/// Numbers keep three shapes so serving stays lossless in both directions:
/// integers parse to [`Json::Int`] (exact for ids and counts), general
/// numbers to [`Json::Float`], and the pipeline's `f32` outputs are written
/// through [`Json::F32`] so their `Display` is the shortest string that
/// round-trips to the identical `f32` — the bit-identity contract of the
/// wire tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction or exponent) fitting `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A number carried as `f32` (used when writing pipeline outputs).
    F32(f32),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key–value pairs (insertion order preserved;
    /// duplicate keys are kept as parsed, first match wins on lookup).
    Obj(Vec<(String, Json)>),
}

/// A positioned parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub pos: usize,
    /// What the parser expected or rejected.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Self, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the value"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A non-negative integer literal as `usize` (floats are rejected:
    /// protocol counts are integers by contract).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Int(i) => usize::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Any numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            Json::F32(f) => Some(f64::from(*f)),
            _ => None,
        }
    }

    /// Any numeric payload narrowed to `f32`.
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Json::F32(f) => Some(*f),
            _ => self.as_f64().map(|f| f as f32),
        }
    }

    /// The element slice, if this is an array.
    pub fn as_slice(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from key–value pairs (ergonomic response builder).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_finite(out, f.is_finite(), *f),
            // NaN/inf cannot appear in JSON; the pipeline never emits them,
            // but degrade to null rather than emit garbage.
            Json::F32(f) => write_finite(out, f.is_finite(), *f),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Canonical single-line serialization (no insignificant whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Writes a float through Rust's shortest-round-trip `Display`, degrading
/// non-finite values (invalid in JSON) to `null`.
fn write_finite<T: fmt::Display>(out: &mut String, finite: bool, value: T) {
    if finite {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so byte runs between structural
                // characters are valid UTF-8 by construction.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
                        pos: start,
                        msg: "invalid UTF-8 in string",
                    })?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: require the low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect_byte(b'u', "expected low surrogate escape")?;
                        let lo = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xdc00..0xe000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = (code << 4) | digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            pos: start,
            msg: "invalid number",
        })?;
        let bad = JsonError {
            pos: start,
            msg: "invalid number",
        };
        if fractional {
            let f: f64 = text.parse().map_err(|_| bad.clone())?;
            if !f.is_finite() {
                return Err(bad);
            }
            Ok(Json::Float(f))
        } else if text == "-0" {
            // Int(0) would erase the sign; the float path keeps -0.0 so a
            // served negative zero round-trips bit-exactly.
            Ok(Json::Float(-0.0))
        } else {
            // Integer literal; overflow degrades to float like every other
            // JSON reader (ids and counts in this protocol fit i64).
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => {
                    let f: f64 = text.parse().map_err(|_| bad.clone())?;
                    if !f.is_finite() {
                        return Err(bad);
                    }
                    Ok(Json::Float(f))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null"), Ok(Json::Null));
        assert_eq!(Json::parse(" true "), Ok(Json::Bool(true)));
        assert_eq!(Json::parse("false"), Ok(Json::Bool(false)));
        assert_eq!(Json::parse("42"), Ok(Json::Int(42)));
        assert_eq!(Json::parse("-7"), Ok(Json::Int(-7)));
        assert_eq!(Json::parse("2.5"), Ok(Json::Float(2.5)));
        assert_eq!(Json::parse("1e3"), Ok(Json::Float(1000.0)));
        assert_eq!(Json::parse("\"hi\""), Ok(Json::Str("hi".into())));
    }

    #[test]
    fn parses_structures_and_lookup() {
        let v = Json::parse(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).expect("valid");
        assert_eq!(
            v.get("a").and_then(Json::as_slice).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nquote\"slash\\tab\tunicode\u{1F600}\u{0007}";
        let written = Json::Str(original.into()).to_string();
        assert_eq!(Json::parse(&written), Ok(Json::Str(original.into())));
        // Explicit escape forms parse too.
        assert_eq!(
            Json::parse(r#""\u0041\ud83d\ude00\/""#),
            Ok(Json::Str("A\u{1F600}/".into()))
        );
    }

    #[test]
    fn f32_display_round_trips_bit_exact() {
        // The wire contract: a served f32, written then re-parsed and
        // narrowed, recovers the identical bits.
        for f in [0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30, -0.0, 123.456] {
            let written = Json::F32(f).to_string();
            let back = Json::parse(&written).expect("valid").as_f32().expect("num");
            assert_eq!(back.to_bits(), f.to_bits(), "{f} → {written}");
        }
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "01x",
            "--1",
            "1e",
            "nul",
            "{\"a\":}",
            "[,]",
            "\"\\q\"",
            "\"\\ud800\"",
            "\u{7}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
        // Reasonable nesting is fine.
        let ok = "[".repeat(30) + "1" + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_are_strict_where_the_protocol_needs_them() {
        assert_eq!(Json::Int(5).as_usize(), Some(5));
        assert_eq!(Json::Int(-5).as_usize(), None);
        assert_eq!(Json::Float(5.0).as_usize(), None, "counts are integers");
        assert_eq!(Json::Int(2).as_f32(), Some(2.0));
        assert_eq!(Json::Str("2".into()).as_usize(), None);
    }

    #[test]
    fn canonical_output_is_stable() {
        let v = Json::obj(vec![
            ("b", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.to_string(), r#"{"b":1,"a":[null,false]}"#);
    }
}
