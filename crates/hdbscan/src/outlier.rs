//! GLOSH outlier scores (Global-Local Outlier Score from Hierarchies,
//! Campello et al. — the outlier-detection companion of HDBSCAN\*, cited as
//! part of \[9\]'s framework).
//!
//! For a point `x` that falls out of condensed cluster `C` at `λ_x`, with
//! `λ_death(C)` the largest λ at which `C` or any of its descendants still
//! exists, the score is `1 − λ_x / λ_death(C)`: points that leave a
//! long-lived cluster early are outliers (score → 1), points that persist
//! until the cluster dissolves are inliers (score → 0).

use crate::condensed::CondensedTree;

/// GLOSH score per point, in `[0, 1]`.
pub fn glosh_scores(ct: &CondensedTree) -> Vec<f32> {
    let k = ct.n_clusters();
    // λ_death per cluster: max λ of any row under the cluster, propagated
    // bottom-up (children have larger ids than parents).
    let mut death = vec![0.0f32; k];
    for row in 0..ct.parent.len() {
        let c = ct.parent[row] as usize;
        death[c] = death[c].max(ct.lambda[row]);
    }
    for c in (1..k).rev() {
        let p = ct.cluster_parent[c] as usize;
        death[p] = death[p].max(death[c]);
    }

    let mut scores = vec![0.0f32; ct.n_points];
    for row in 0..ct.parent.len() {
        if ct.child_is_cluster(row) {
            continue;
        }
        let point = ct.child[row] as usize;
        let cluster = ct.parent[row] as usize;
        let d = death[cluster];
        scores[point] = if d > 0.0 {
            (1.0 - ct.lambda[row] / d).clamp(0.0, 1.0)
        } else {
            0.0
        };
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condensed::condense;
    use pandora_core::{pandora, Edge};
    use pandora_exec::ExecCtx;

    #[test]
    fn isolated_point_scores_high() {
        // A tight pair of clusters with one far outlier hanging off the top.
        let ctx = ExecCtx::serial();
        let edges = vec![
            Edge::new(0, 1, 0.1),
            Edge::new(1, 2, 0.12),
            Edge::new(2, 3, 0.11),
            Edge::new(3, 4, 100.0), // vertex 4 is the outlier
        ];
        let d = pandora::dendrogram(&ctx, 5, &edges);
        let ct = condense(&d, 2);
        let scores = glosh_scores(&ct);
        // The outlier (vertex 4) must score far above the pack.
        let max_inlier = scores[..4].iter().cloned().fold(0.0f32, f32::max);
        assert!(
            scores[4] > max_inlier + 0.5,
            "outlier {} vs inliers {:?}",
            scores[4],
            &scores[..4]
        );
    }

    #[test]
    fn uniform_chain_scores_bounded() {
        let ctx = ExecCtx::serial();
        let edges: Vec<Edge> = (0..20).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        let d = pandora::dendrogram(&ctx, 21, &edges);
        let ct = condense(&d, 3);
        let scores = glosh_scores(&ct);
        assert_eq!(scores.len(), 21);
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
        // Equal distances ⇒ every point leaves at λ_death ⇒ all scores 0.
        assert!(scores.iter().all(|&s| s == 0.0));
    }
}
