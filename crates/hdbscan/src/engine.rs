//! The long-lived HDBSCAN\* engine: one dataset, many `minPts` queries —
//! now a **thin shim over the two-tier serving API**.
//!
//! [`HdbscanEngine`] predates [`crate::serve::DatasetIndex`] /
//! [`crate::serve::Session`]: it is `&mut self`, lifetime-bound to one
//! borrower, and panics on bad input. Since the serving redesign it simply
//! freezes an index on first use and delegates every run to a session —
//! same substrate sharing, same bit-identical results, one implementation.
//! New code should hold a [`DatasetIndex`] directly (it adds concurrency
//! and fallible APIs); the engine remains for the sequential sweep
//! ergonomics its callers already rely on:
//!
//! ```
//! use pandora_hdbscan::{Hdbscan, HdbscanParams};
//! use pandora_mst::PointSet;
//!
//! let mut coords = Vec::new();
//! for i in 0..40 {
//!     coords.extend_from_slice(&[i as f32 * 0.01, 0.0]);
//!     coords.extend_from_slice(&[50.0 + i as f32 * 0.01, 0.0]);
//! }
//! let points = PointSet::new(coords, 2);
//! let mut engine = Hdbscan::new(HdbscanParams::default()).engine(&points);
//! let sweep = engine.sweep_min_pts(&[2, 4, 8]);
//! assert_eq!(sweep.len(), 3);
//! assert!(sweep.iter().all(|r| r.n_clusters() == 2));
//! ```
//!
//! Every [`HdbscanResult`] an engine produces is **bit-identical** to the
//! corresponding one-shot [`Hdbscan::run`] — MST edges, dendrogram, labels
//! and all — in both serial and threaded contexts (enforced by
//! `tests/engine_equivalence.rs`). What changes is the cost: a sweep pays
//! one kd-tree build and one k-NN pass instead of one per member, and
//! repeat runs allocate only their outputs.
//!
//! Engine requests leave the linkage and metric unset, so they follow the
//! same resolution as any other session request (`PANDORA_LINKAGE` env,
//! then single linkage on the EMST fast path — see
//! [`crate::serve::ClusterRequest`]).

use std::sync::Arc;

use pandora_core::DendrogramWorkspace;
use pandora_exec::ExecCtx;
use pandora_mst::PointSet;

use crate::pipeline::{Hdbscan, HdbscanParams, HdbscanResult, StageTimings};
use crate::serve::{finish_pipeline, ClusterRequest, DatasetIndex, Session};

/// A reusable HDBSCAN\* pipeline bound to one dataset (see module docs).
///
/// Created by [`Hdbscan::engine`]; borrows the point set for its lifetime.
/// Deprecated in spirit (not yet in attribute — the figure binaries still
/// sweep through it): new code should freeze a
/// [`DatasetIndex`] and draw [`Session`]s,
/// which this engine now merely wraps.
pub struct HdbscanEngine<'a> {
    params: HdbscanParams,
    ctx: ExecCtx,
    points: &'a PointSet,
    /// The frozen substrate (`None` until the first run or `prepare`).
    index: Option<Arc<DatasetIndex>>,
    /// The engine's single long-lived session over `index`.
    session: Option<Session>,
    /// Workspace for the empty-dataset bypass (no index exists for n = 0).
    empty_dendro: DendrogramWorkspace,
}

impl<'a> HdbscanEngine<'a> {
    pub(crate) fn new(params: HdbscanParams, ctx: ExecCtx, points: &'a PointSet) -> Self {
        Self {
            params,
            ctx,
            points,
            index: None,
            session: None,
            empty_dendro: DendrogramWorkspace::new(),
        }
    }

    /// The driver parameters (`min_cluster_size` / `allow_single_cluster`
    /// apply to every run; `min_pts` is what the one-shot
    /// [`Hdbscan::run`] wrapper passes to [`HdbscanEngine::run_with`]).
    pub fn params(&self) -> &HdbscanParams {
        &self.params
    }

    /// The dataset this engine serves.
    pub fn points(&self) -> &PointSet {
        self.points
    }

    /// The frozen index backing this engine (`None` until the first run or
    /// [`HdbscanEngine::prepare`]). Clone the `Arc` to share the same
    /// substrate with concurrent sessions.
    pub fn index(&self) -> Option<&Arc<DatasetIndex>> {
        self.index.as_ref()
    }

    /// The engine's session (`None` until the first run or `prepare`) —
    /// exposes the scratch accounting the leak tests assert on.
    pub fn session(&self) -> Option<&Session> {
        self.session.as_ref()
    }

    /// Pre-warms the shared substrate for requests up to `max_min_pts`:
    /// freezes a [`DatasetIndex`] whose kd-tree and k-NN rows (with slack,
    /// see [`pandora_mst::ROW_SLACK`]) cover every `min_pts ≤ max_min_pts`.
    /// Returns the seconds spent (0 when already frozen wide enough).
    ///
    /// Calling this first keeps a descending or unsorted sweep from
    /// re-freezing at each widening request.
    ///
    /// # Panics
    ///
    /// Panics if `max_min_pts` exceeds the point count (for two or more
    /// points), exactly like the one-shot pipeline.
    pub fn prepare(&mut self, max_min_pts: usize) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let needed = max_min_pts.max(1);
        if self
            .index
            .as_ref()
            .is_some_and(|index| index.max_min_pts() >= needed)
        {
            return 0.0;
        }
        // Widening re-freeze: cover everything served before as well, so
        // alternating wide/narrow requests never thrash the ceiling down.
        let ceiling = needed.max(self.index.as_ref().map_or(0, |i| i.max_min_pts()));
        let index = DatasetIndex::freeze_with_ctx(self.ctx.clone(), self.points.clone(), ceiling)
            .unwrap_or_else(|e| panic!("{e}"));
        let spent = index.freeze_seconds();
        let index = Arc::new(index);
        // A fresh index invalidates nothing semantically (results are
        // dataset + minPts functions), but the session's endgame cache is
        // kept by re-drawing from the old session's pool via drop order:
        // the old session parks its scratch in the *old* index, which is
        // dropped with it, so the new session starts cold. Correctness is
        // unaffected (the cache is purely an optimization).
        self.session = Some(index.session_with_ctx(self.ctx.clone()));
        self.index = Some(index);
        spent
    }

    /// Runs the full pipeline for one `min_pts`, reusing every warm stage.
    ///
    /// The first call (or a call widening the frozen `minPts` ceiling)
    /// pays the shared substrate cost and reports it in
    /// [`StageTimings::tree_build_s`] / [`StageTimings::core_s`]; warm runs
    /// report only their incremental work.
    ///
    /// # Panics
    ///
    /// Panics if `min_pts` is 0 or (for two or more points) exceeds the
    /// point count, exactly like the one-shot pipeline. The concurrent
    /// serving API ([`Session::run`]) reports these as errors instead.
    pub fn run_with(&mut self, min_pts: usize) -> HdbscanResult {
        if min_pts == 0 {
            // Rejected before the empty-dataset bypass and before freezing,
            // so the panic names the actual offender on every input (the
            // legacy engine rejected min_pts = 0 unconditionally too).
            panic!("invalid min_pts = 0: must be at least 1");
        }
        if self.points.is_empty() {
            // No index exists for an empty dataset; run the back half of
            // the pipeline directly over an empty MST (legacy behavior:
            // nothing to cluster, nothing to mis-serve).
            let ctx = self.ctx.clone();
            let request = self.request_with(min_pts);
            return finish_pipeline(
                &ctx,
                0,
                Vec::new(),
                &[],
                &request,
                &mut self.empty_dendro,
                StageTimings::default(),
            );
        }
        let freeze_s = self.prepare(min_pts);
        let request = self.request_with(min_pts);
        let session = self.session.as_mut().expect("prepare froze an index");
        let mut result = session.run(&request).unwrap_or_else(|e| panic!("{e}"));
        if freeze_s > 0.0 {
            // This run paid the freeze: surface it in the stage timings the
            // way the pre-index engine reported its lazy tree build.
            let index = self.index.as_ref().expect("prepare froze an index");
            result.timings.tree_build_s += index.emst().build_seconds();
            result.timings.core_s += index.emst().rows_seconds();
        }
        result
    }

    /// Runs the pipeline once per entry of `min_pts_list` (in order),
    /// amortizing the kd-tree build and a single widest k-NN pass across
    /// the whole sweep — the engine's reason to exist. Results are
    /// bit-identical to running [`Hdbscan::run`] per entry.
    pub fn sweep_min_pts(&mut self, min_pts_list: &[usize]) -> Vec<HdbscanResult> {
        if let Some(&max) = min_pts_list.iter().max() {
            self.prepare(max);
        }
        min_pts_list.iter().map(|&m| self.run_with(m)).collect()
    }

    /// The engine's driver parameters specialized to one `min_pts`.
    fn request_with(&self, min_pts: usize) -> ClusterRequest {
        ClusterRequest::new()
            .min_pts(min_pts)
            .min_cluster_size(self.params.min_cluster_size)
            .allow_single_cluster(self.params.allow_single_cluster)
    }
}

impl Hdbscan {
    /// Creates a long-lived engine over `points`, inheriting this driver's
    /// parameters and execution context.
    ///
    /// The engine is lazy: the index is frozen by the first run (or by
    /// [`HdbscanEngine::prepare`] / [`HdbscanEngine::sweep_min_pts`]).
    /// For concurrent serving, freeze a [`DatasetIndex`]
    /// instead and draw one [`Session`] per thread.
    pub fn engine<'a>(&self, points: &'a PointSet) -> HdbscanEngine<'a> {
        HdbscanEngine::new(*self.params(), self.ctx().clone(), points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_data::synthetic::gaussian_blobs;

    #[test]
    fn sweep_matches_one_shot_runs() {
        let (points, _) = gaussian_blobs(500, 2, 3, 90.0, 0.8, 17);
        let driver = Hdbscan::with_ctx(HdbscanParams::default(), ExecCtx::serial());
        let mut engine = driver.engine(&points);
        let sweep = engine.sweep_min_pts(&[2, 4, 8, 16]);
        for (result, &min_pts) in sweep.iter().zip(&[2usize, 4, 8, 16]) {
            let one_shot = Hdbscan::with_ctx(
                HdbscanParams {
                    min_pts,
                    ..Default::default()
                },
                ExecCtx::serial(),
            )
            .run(&points);
            assert_eq!(result.core2, one_shot.core2, "min_pts={min_pts}");
            assert_eq!(result.mst.src, one_shot.mst.src);
            assert_eq!(result.mst.dst, one_shot.mst.dst);
            assert_eq!(result.mst.weight, one_shot.mst.weight);
            assert_eq!(result.dendrogram, one_shot.dendrogram);
            assert_eq!(result.labels, one_shot.labels);
        }
    }

    #[test]
    fn warm_runs_skip_the_shared_substrate() {
        let (points, _) = gaussian_blobs(400, 3, 2, 60.0, 1.0, 5);
        let mut engine = Hdbscan::new(HdbscanParams::default()).engine(&points);
        engine.prepare(16);
        let warm = engine.run_with(4);
        assert_eq!(warm.timings.tree_build_s, 0.0);
        assert!(warm.timings.mst_s > 0.0);
        // Buffers all returned between runs.
        let session = engine.session().expect("engine is warm");
        assert_eq!(session.scratch_outstanding(), 0);
    }

    #[test]
    fn engine_serves_repeated_identical_requests() {
        let (points, _) = gaussian_blobs(300, 2, 3, 70.0, 0.6, 23);
        let mut engine = Hdbscan::new(HdbscanParams::default()).engine(&points);
        let a = engine.run_with(4);
        let b = engine.run_with(4);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.mst.weight, b.mst.weight);
    }

    #[test]
    fn widening_requests_refreeze_and_stay_exact() {
        // Request orders a frozen index cannot serve must transparently
        // re-freeze at the wider ceiling (the legacy grow-on-demand
        // contract) — and stay bit-identical to cold runs.
        let (points, _) = gaussian_blobs(200, 2, 2, 50.0, 0.8, 7);
        let mut engine = Hdbscan::new(HdbscanParams::default()).engine(&points);
        let ctx = ExecCtx::serial();
        for &min_pts in &[2usize, 8, 4, 16, 2] {
            let warm = engine.run_with(min_pts);
            let cold = Hdbscan::with_ctx(
                HdbscanParams {
                    min_pts,
                    ..Default::default()
                },
                ctx.clone(),
            )
            .run(&points);
            assert_eq!(warm.labels, cold.labels, "min_pts={min_pts}");
            assert_eq!(warm.mst.weight, cold.mst.weight, "min_pts={min_pts}");
        }
        assert_eq!(
            engine.index().map(|i| i.max_min_pts()),
            Some(16),
            "the ceiling must only widen"
        );
    }

    #[test]
    #[should_panic(expected = "min_pts = 0")]
    fn zero_min_pts_still_panics_like_the_legacy_engine() {
        let (points, _) = gaussian_blobs(50, 2, 1, 20.0, 0.5, 2);
        let mut engine = Hdbscan::new(HdbscanParams::default()).engine(&points);
        let _ = engine.run_with(0);
    }
}
