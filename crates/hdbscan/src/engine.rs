//! The long-lived HDBSCAN\* engine: one dataset, many `minPts` queries.
//!
//! [`Hdbscan::run`] answers a single clustering request and throws its
//! spatial substrate away. The paper's own evaluation (§6.5, Fig. 15)
//! already wants more — the same dataset swept over `mpts ∈ {2, 4, 8, 16}`
//! — and a serving deployment wants arbitrary repetition. An
//! [`HdbscanEngine`] keeps every stage workspace alive between runs:
//!
//! * the EMST substrate ([`EmstWorkspace`]) builds the kd-tree **once**,
//!   captures sorted k-NN rows at the largest `minPts` of interest once,
//!   serves every smaller `minPts`'s core distances by prefix, and reuses
//!   all Borůvka round buffers;
//! * the dendrogram stage ([`DendrogramWorkspace`]) recycles the
//!   contraction hierarchy, α splits, union–find and chain-key buffers.
//!
//! Every [`HdbscanResult`] an engine produces is **bit-identical** to the
//! corresponding one-shot [`Hdbscan::run`] — MST edges, dendrogram, labels
//! and all — in both serial and threaded contexts (enforced by
//! `tests/engine_equivalence.rs`). What changes is the cost: a sweep pays
//! one tree build and one k-NN pass instead of one per member, and repeat
//! runs allocate only their outputs.
//!
//! ```
//! use pandora_hdbscan::{Hdbscan, HdbscanParams};
//! use pandora_mst::PointSet;
//!
//! let mut coords = Vec::new();
//! for i in 0..40 {
//!     coords.extend_from_slice(&[i as f32 * 0.01, 0.0]);
//!     coords.extend_from_slice(&[50.0 + i as f32 * 0.01, 0.0]);
//! }
//! let points = PointSet::new(coords, 2);
//! let mut engine = Hdbscan::new(HdbscanParams::default()).engine(&points);
//! let sweep = engine.sweep_min_pts(&[2, 4, 8]);
//! assert_eq!(sweep.len(), 3);
//! assert!(sweep.iter().all(|r| r.n_clusters() == 2));
//! ```

use std::time::Instant;

use pandora_core::{pandora, DendrogramWorkspace, SortedMst};
use pandora_exec::ExecCtx;
use pandora_mst::{emst_into, EmstWorkspace, PointSet};

use crate::condensed::condense;
use crate::pipeline::{Hdbscan, HdbscanParams, HdbscanResult, StageTimings};
use crate::stability::{cluster_stabilities, extract_labels, select_clusters};

/// A reusable HDBSCAN\* pipeline bound to one dataset (see module docs).
///
/// Created by [`Hdbscan::engine`]; borrows the point set for its lifetime.
pub struct HdbscanEngine<'a> {
    params: HdbscanParams,
    ctx: ExecCtx,
    points: &'a PointSet,
    emst: EmstWorkspace,
    dendro: DendrogramWorkspace,
}

impl<'a> HdbscanEngine<'a> {
    pub(crate) fn new(params: HdbscanParams, ctx: ExecCtx, points: &'a PointSet) -> Self {
        Self {
            params,
            ctx,
            points,
            emst: EmstWorkspace::new(),
            dendro: DendrogramWorkspace::new(),
        }
    }

    /// The driver parameters (`min_cluster_size` / `allow_single_cluster`
    /// apply to every run; `min_pts` is what the one-shot
    /// [`Hdbscan::run`] wrapper passes to [`HdbscanEngine::run_with`]).
    pub fn params(&self) -> &HdbscanParams {
        &self.params
    }

    /// The dataset this engine serves.
    pub fn points(&self) -> &PointSet {
        self.points
    }

    /// Pre-warms the shared substrate for requests up to `max_min_pts`:
    /// builds the kd-tree and captures k-NN rows wide enough (with slack,
    /// see [`pandora_mst::ROW_SLACK`]) for every `min_pts ≤ max_min_pts`.
    /// Returns the seconds spent (0 when already warm enough).
    ///
    /// Calling this first keeps a descending or unsorted sweep from
    /// re-capturing rows at each widening request.
    pub fn prepare(&mut self, max_min_pts: usize) -> f64 {
        self.emst.prepare(&self.ctx, self.points, max_min_pts)
    }

    /// Runs the full pipeline for one `min_pts`, reusing every warm stage.
    ///
    /// The first call (or a call widening the k-NN rows) pays the shared
    /// substrate cost and reports it in
    /// [`StageTimings::tree_build_s`] / [`StageTimings::core_s`]; warm runs
    /// report only their incremental work.
    ///
    /// # Panics
    ///
    /// Panics if `min_pts` is 0 or (for two or more points) exceeds the
    /// point count, exactly like the one-shot pipeline.
    pub fn run_with(&mut self, min_pts: usize) -> HdbscanResult {
        let ctx = self.ctx.clone();
        let mut timings = StageTimings::default();

        // EMST stage out of the warm workspace (phases emst_build /
        // emst_core / emst_boruvka are traced by the workspace runner).
        let result = emst_into(&ctx, self.points, min_pts, &mut self.emst);
        timings.tree_build_s = result.timings.tree_build_s;
        timings.core_s = result.timings.core_s;
        timings.mst_s = result.timings.boruvka_s;
        let (core2, edges) = (result.core2, result.edges);

        let t = Instant::now();
        ctx.set_phase("sort");
        let sort_start = Instant::now();
        let mst = SortedMst::from_edges(&ctx, self.points.len(), &edges);
        let input_sort_s = sort_start.elapsed().as_secs_f64();
        let (dendrogram, mut pandora_stats) =
            pandora::dendrogram_from_sorted_with(&ctx, &mst, &mut self.dendro);
        pandora_stats.timings.sort_s += input_sort_s;
        timings.dendrogram_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        ctx.set_phase("extract");
        let condensed = condense(&dendrogram, self.params.min_cluster_size);
        let stabilities = cluster_stabilities(&condensed);
        let selected = select_clusters(&condensed, &stabilities, self.params.allow_single_cluster);
        let (labels, probabilities) = extract_labels(&condensed, &selected);
        timings.extract_s = t.elapsed().as_secs_f64();

        HdbscanResult {
            core2,
            mst,
            dendrogram,
            condensed,
            stabilities,
            labels,
            probabilities,
            timings,
            pandora_stats,
        }
    }

    /// Runs the pipeline once per entry of `min_pts_list` (in order),
    /// amortizing the kd-tree build and a single widest k-NN pass across
    /// the whole sweep — the engine's reason to exist. Results are
    /// bit-identical to running [`Hdbscan::run`] per entry.
    pub fn sweep_min_pts(&mut self, min_pts_list: &[usize]) -> Vec<HdbscanResult> {
        if let Some(&max) = min_pts_list.iter().max() {
            self.prepare(max);
        }
        min_pts_list.iter().map(|&m| self.run_with(m)).collect()
    }

    /// The EMST workspace (tree / row / Borůvka-buffer accounting).
    pub fn emst_workspace(&self) -> &EmstWorkspace {
        &self.emst
    }

    /// The dendrogram workspace (hierarchy-buffer accounting).
    pub fn dendrogram_workspace(&self) -> &DendrogramWorkspace {
        &self.dendro
    }
}

impl Hdbscan {
    /// Creates a long-lived engine over `points`, inheriting this driver's
    /// parameters and execution context.
    ///
    /// The engine is lazy: the kd-tree is built by the first run (or by
    /// [`HdbscanEngine::prepare`] / [`HdbscanEngine::sweep_min_pts`]).
    pub fn engine<'a>(&self, points: &'a PointSet) -> HdbscanEngine<'a> {
        HdbscanEngine::new(*self.params(), self.ctx().clone(), points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_data::synthetic::gaussian_blobs;

    #[test]
    fn sweep_matches_one_shot_runs() {
        let (points, _) = gaussian_blobs(500, 2, 3, 90.0, 0.8, 17);
        let driver = Hdbscan::with_ctx(HdbscanParams::default(), ExecCtx::serial());
        let mut engine = driver.engine(&points);
        let sweep = engine.sweep_min_pts(&[2, 4, 8, 16]);
        for (result, &min_pts) in sweep.iter().zip(&[2usize, 4, 8, 16]) {
            let one_shot = Hdbscan::with_ctx(
                HdbscanParams {
                    min_pts,
                    ..Default::default()
                },
                ExecCtx::serial(),
            )
            .run(&points);
            assert_eq!(result.core2, one_shot.core2, "min_pts={min_pts}");
            assert_eq!(result.mst.src, one_shot.mst.src);
            assert_eq!(result.mst.dst, one_shot.mst.dst);
            assert_eq!(result.mst.weight, one_shot.mst.weight);
            assert_eq!(result.dendrogram, one_shot.dendrogram);
            assert_eq!(result.labels, one_shot.labels);
        }
    }

    #[test]
    fn warm_runs_skip_the_shared_substrate() {
        let (points, _) = gaussian_blobs(400, 3, 2, 60.0, 1.0, 5);
        let mut engine = Hdbscan::new(HdbscanParams::default()).engine(&points);
        engine.prepare(16);
        let warm = engine.run_with(4);
        assert_eq!(warm.timings.tree_build_s, 0.0);
        assert!(warm.timings.mst_s > 0.0);
        // Buffers all returned between runs.
        assert_eq!(engine.emst_workspace().scratch().outstanding(), 0);
        assert_eq!(engine.dendrogram_workspace().scratch().outstanding(), 0);
    }

    #[test]
    fn engine_serves_repeated_identical_requests() {
        let (points, _) = gaussian_blobs(300, 2, 3, 70.0, 0.6, 23);
        let mut engine = Hdbscan::new(HdbscanParams::default()).engine(&points);
        let a = engine.run_with(4);
        let b = engine.run_with(4);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.mst.weight, b.mst.weight);
    }
}
