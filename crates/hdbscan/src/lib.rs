//! # pandora-hdbscan
//!
//! HDBSCAN\* (Campello–Moulavi–Zimek–Sander, the paper's \[9\]) built on the
//! pandora stack: mutual-reachability core distances → parallel Borůvka MST
//! → PANDORA dendrogram → condensed tree → stability-optimal flat clusters.
//!
//! ```
//! use pandora_hdbscan::{Hdbscan, HdbscanParams};
//! use pandora_mst::PointSet;
//!
//! // Two obvious 2-D groups.
//! let mut coords = Vec::new();
//! for i in 0..20 {
//!     coords.extend_from_slice(&[i as f32 * 0.01, 0.0]);        // group A
//!     coords.extend_from_slice(&[100.0 + i as f32 * 0.01, 0.0]); // group B
//! }
//! let result = Hdbscan::new(HdbscanParams::default()).run(&PointSet::new(coords, 2));
//! assert_eq!(result.n_clusters(), 2);
//! ```

pub mod condensed;
pub mod daemon;
pub mod dbscan;
pub mod engine;
pub mod outlier;
pub mod pipeline;
pub mod serve;
pub mod stability;
pub mod validity;

pub use condensed::{condense, CondensedTree};
pub use dbscan::{dbscan_star, epsilon_profile};
pub use engine::HdbscanEngine;
pub use outlier::glosh_scores;
pub use pandora_core::DendrogramBackend;
pub use pandora_mst::{Linkage, MetricKind};
pub use pipeline::{Hdbscan, HdbscanParams, HdbscanResult, StageTimings};
pub use serve::{ClusterRequest, DatasetIndex, Session};
pub use stability::{cluster_stabilities, extract_labels, select_clusters};
pub use validity::dbcv;

// The stack-wide error type lives in `pandora-mst` (the lowest layer that
// validates datasets); re-exported here so serving code can name it from
// the crate it actually calls.
pub use pandora_mst::PandoraError;
