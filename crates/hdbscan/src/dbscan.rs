//! DBSCAN\* flat clustering from the HDBSCAN\* hierarchy.
//!
//! DBSCAN\* (Campello et al., \[9\]) is DBSCAN without border points: clusters
//! are the connected components of *core* points at distance ≤ ε under the
//! mutual reachability metric. Given the hierarchy, every ε-level is just a
//! dendrogram cut plus a core-distance filter — the "optional flat clusters"
//! step the paper lists in §6.5.

use crate::pipeline::HdbscanResult;

/// Labels for a DBSCAN\* run at radius `epsilon` (−1 = noise).
///
/// A point is noise iff its core distance exceeds `epsilon`; remaining
/// points are grouped by mutual-reachability connectivity at ≤ `epsilon`.
pub fn dbscan_star(result: &HdbscanResult, epsilon: f32) -> Vec<i32> {
    let eps2 = epsilon * epsilon;
    let cut = result
        .dendrogram
        .cut(epsilon, &result.mst.src, &result.mst.dst);
    // Renumber clusters over core points only, keeping noise at -1 and
    // labels dense in first-appearance order.
    let mut remap = std::collections::HashMap::new();
    let mut labels = vec![-1i32; cut.len()];
    for (p, &component) in cut.iter().enumerate() {
        if result.core2[p] > eps2 {
            continue; // not a core point at this radius
        }
        let next = remap.len() as i32;
        let label = *remap.entry(component).or_insert(next);
        labels[p] = label;
    }
    labels
}

/// Sweeps ε over the dendrogram's merge distances and returns
/// `(epsilon, n_clusters, n_noise)` triples — the cluster-count profile.
pub fn epsilon_profile(result: &HdbscanResult, n_steps: usize) -> Vec<(f32, usize, usize)> {
    let weights = &result.dendrogram.edge_weight;
    if weights.is_empty() {
        return Vec::new();
    }
    let (max_w, min_w) = (weights[0], *weights.last().unwrap());
    (0..n_steps)
        .map(|i| {
            let eps = min_w + (max_w - min_w) * (i as f32 + 0.5) / n_steps as f32;
            let labels = dbscan_star(result, eps);
            let k = labels.iter().copied().max().map_or(0, |m| (m + 1) as usize);
            let noise = labels.iter().filter(|&&l| l == -1).count();
            (eps, k, noise)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Hdbscan, HdbscanParams};
    use pandora_data::synthetic::gaussian_blobs;
    use pandora_exec::ExecCtx;

    fn blob_result() -> HdbscanResult {
        let (points, _) = gaussian_blobs(400, 2, 2, 100.0, 0.5, 3);
        Hdbscan::with_ctx(HdbscanParams::default(), ExecCtx::serial()).run(&points)
    }

    #[test]
    fn mid_epsilon_finds_both_blobs() {
        let result = blob_result();
        let labels = dbscan_star(&result, 10.0);
        let k = labels.iter().copied().max().unwrap() + 1;
        assert_eq!(k, 2);
        assert_eq!(labels.iter().filter(|&&l| l == -1).count(), 0);
    }

    #[test]
    fn tiny_epsilon_marks_everything_noise() {
        let result = blob_result();
        let labels = dbscan_star(&result, 1e-6);
        assert!(labels.iter().all(|&l| l == -1));
    }

    #[test]
    fn huge_epsilon_single_cluster() {
        let result = blob_result();
        let labels = dbscan_star(&result, 1e6);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn profile_is_well_formed() {
        let result = blob_result();
        let profile = epsilon_profile(&result, 8);
        assert_eq!(profile.len(), 8);
        // ε increases monotonically; noise decreases monotonically.
        for w in profile.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].2 >= w[1].2);
        }
    }
}
