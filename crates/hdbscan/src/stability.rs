//! Cluster stability and flat-cluster extraction (Excess of Mass).
//!
//! Stability of a condensed cluster `C` is
//! `σ(C) = Σ_{p ∈ C} (λ_p(C) − λ_birth(C))` — every condensed-tree row
//! contributes `(λ_row − λ_birth(parent)) · size_row`. The optimal flat
//! clustering selects the antichain of clusters maximizing total stability
//! (Campello et al., the paper's \[9\]); the classic bottom-up dynamic program
//! computes it in one pass.

use pandora_core::INVALID;

use crate::condensed::CondensedTree;

/// Stability `σ(C)` of every condensed cluster.
pub fn cluster_stabilities(ct: &CondensedTree) -> Vec<f64> {
    let mut stability = vec![0.0f64; ct.n_clusters()];
    for row in 0..ct.parent.len() {
        let c = ct.parent[row] as usize;
        let contribution =
            (ct.lambda[row] as f64 - ct.cluster_birth[c] as f64) * ct.size[row] as f64;
        // λ rows can never precede the birth of their cluster, but guard
        // against tiny negative noise from f32 rounding.
        stability[c] += contribution.max(0.0);
    }
    stability
}

/// Selects the stability-optimal antichain of clusters.
///
/// Returns a boolean per cluster. With `allow_single_cluster = false`
/// (HDBSCAN\*'s default) the root is never selected.
pub fn select_clusters(
    ct: &CondensedTree,
    stability: &[f64],
    allow_single_cluster: bool,
) -> Vec<bool> {
    let k = ct.n_clusters();
    let mut selected = vec![false; k];
    if k == 0 {
        return selected;
    }
    // Children lists.
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); k];
    for c in 1..k {
        let p = ct.cluster_parent[c];
        debug_assert_ne!(p, INVALID);
        children[p as usize].push(c as u32);
    }
    // Bottom-up DP: children have larger ids than parents.
    let mut subtree = vec![0.0f64; k];
    for c in (0..k).rev() {
        let kids = &children[c];
        if kids.is_empty() {
            selected[c] = true;
            subtree[c] = stability[c];
            continue;
        }
        let kids_total: f64 = kids.iter().map(|&ch| subtree[ch as usize]).sum();
        let may_select = c != 0 || allow_single_cluster;
        if may_select && stability[c] > kids_total {
            selected[c] = true;
            subtree[c] = stability[c];
        } else {
            selected[c] = false;
            subtree[c] = kids_total.max(if may_select { stability[c] } else { 0.0 });
        }
    }
    if !allow_single_cluster {
        selected[0] = false;
    }
    // Enforce the antichain: deselect descendants of selected clusters.
    let mut covered = vec![false; k];
    for c in 1..k {
        let p = ct.cluster_parent[c] as usize;
        covered[c] = covered[p] || selected[p];
        if covered[c] {
            selected[c] = false;
        }
    }
    selected
}

/// Flat labels and membership probabilities from a cluster selection.
///
/// Labels are dense `0..k` over selected clusters (ordered by cluster id);
/// unclustered points get `-1` (noise). Probability is
/// `λ_p / λ_max(cluster)`, the standard HDBSCAN\* membership strength.
pub fn extract_labels(ct: &CondensedTree, selected: &[bool]) -> (Vec<i32>, Vec<f32>) {
    let k = ct.n_clusters();
    // Map each cluster to its nearest selected ancestor-or-self.
    let mut owner = vec![-1i32; k];
    let mut label_of = vec![-1i32; k];
    let mut next_label = 0i32;
    for c in 0..k {
        if selected[c] {
            label_of[c] = next_label;
            next_label += 1;
            owner[c] = label_of[c];
        } else if c > 0 {
            owner[c] = owner[ct.cluster_parent[c] as usize];
        }
    }
    // λ_max per selected label (for probabilities).
    let mut lambda_max = vec![0.0f32; next_label.max(0) as usize];
    for row in 0..ct.parent.len() {
        if !ct.child_is_cluster(row) {
            let lbl = owner[ct.parent[row] as usize];
            if lbl >= 0 {
                let slot = &mut lambda_max[lbl as usize];
                *slot = slot.max(ct.lambda[row]);
            }
        }
    }
    let mut labels = vec![-1i32; ct.n_points];
    let mut probabilities = vec![0.0f32; ct.n_points];
    for row in 0..ct.parent.len() {
        if ct.child_is_cluster(row) {
            continue;
        }
        let point = ct.child[row] as usize;
        let lbl = owner[ct.parent[row] as usize];
        labels[point] = lbl;
        if lbl >= 0 {
            let lm = lambda_max[lbl as usize];
            probabilities[point] = if lm > 0.0 {
                (ct.lambda[row] / lm).clamp(0.0, 1.0)
            } else {
                1.0
            };
        }
    }
    (labels, probabilities)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condensed::condense;
    use pandora_core::{pandora, Edge};
    use pandora_exec::ExecCtx;

    /// Two tight pairs bridged by a long edge.
    fn two_pair_tree() -> CondensedTree {
        let ctx = ExecCtx::serial();
        let edges = vec![
            Edge::new(0, 1, 0.1),
            Edge::new(2, 3, 0.2),
            Edge::new(1, 2, 10.0),
        ];
        let d = pandora::dendrogram(&ctx, 4, &edges);
        condense(&d, 2)
    }

    #[test]
    fn pairs_are_selected_over_root() {
        let ct = two_pair_tree();
        let stab = cluster_stabilities(&ct);
        let selected = select_clusters(&ct, &stab, false);
        assert_eq!(selected, vec![false, true, true]);
        let (labels, probs) = extract_labels(&ct, &selected);
        assert_eq!(labels.iter().filter(|&&l| l == -1).count(), 0);
        // Pair {0,1} and pair {2,3} get different labels.
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn no_split_means_all_noise_without_single_cluster() {
        let ctx = ExecCtx::serial();
        // A chain with uniform spacing: no dense substructure of size ≥ 3.
        let edges = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 1.0),
            Edge::new(2, 3, 1.0),
        ];
        let d = pandora::dendrogram(&ctx, 4, &edges);
        let ct = condense(&d, 3);
        let stab = cluster_stabilities(&ct);
        let selected = select_clusters(&ct, &stab, false);
        assert!(selected.iter().all(|&s| !s));
        let (labels, _) = extract_labels(&ct, &selected);
        assert!(labels.iter().all(|&l| l == -1));
    }

    #[test]
    fn allow_single_cluster_labels_everything() {
        let ctx = ExecCtx::serial();
        let edges = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 1.0),
            Edge::new(2, 3, 1.0),
        ];
        let d = pandora::dendrogram(&ctx, 4, &edges);
        let ct = condense(&d, 3);
        let stab = cluster_stabilities(&ct);
        let selected = select_clusters(&ct, &stab, true);
        assert_eq!(selected, vec![true]);
        let (labels, _) = extract_labels(&ct, &selected);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn stabilities_are_nonnegative() {
        let ct = two_pair_tree();
        assert!(cluster_stabilities(&ct).iter().all(|&s| s >= 0.0));
    }
}
